//! Record a workload's instruction trace to disk, replay it, and verify
//! the replay drives the simulator to bit-identical statistics — the
//! workflow for sharing a reproducible miss stream with someone who does
//! not want to regenerate it from `(spec, seed)`.
//!
//! ```text
//! cargo run --release --example trace_replay [workload] [instructions]
//! ```

use ppf::cpu::InstStream;
use ppf::sim::Simulator;
use ppf::types::SystemConfig;
use ppf::workloads::{trace, Workload};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload = args
        .first()
        .and_then(|n| Workload::from_name(n))
        .unwrap_or(Workload::Gzip);
    let n: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(200_000);
    // The trace must outlast the run: the core fetches ahead of
    // retirement, so record a healthy margin.
    let trace_len = (n + n / 2) as usize;

    // 1. Record.
    let bytes = trace::record(&mut workload.stream(42), trace_len).expect("trace encodes");
    let path = std::env::temp_dir().join(format!("ppf-{workload}.trace"));
    trace::save(&bytes, &path).expect("write trace");
    println!(
        "recorded {trace_len} instructions of {workload} to {} ({} KiB)",
        path.display(),
        bytes.len() / 1024
    );

    // 2. Simulate from the live generator.
    let mut live_stream = workload.stream(42);
    let mut live = Simulator::new(SystemConfig::paper_default(), move || {
        live_stream.next_inst()
    })
    .expect("valid config");
    let live_report = live.run(n);

    // 3. Simulate from the file.
    let loaded = trace::load(&path).expect("read trace");
    let mut replayed = Simulator::new(
        SystemConfig::paper_default(),
        trace::TraceStream::from_bytes(loaded),
    )
    .expect("valid config");
    let replay_report = replayed.run(n);

    println!("\nlive run:\n{}", live_report.summary());
    println!("replayed run:\n{}", replay_report.summary());
    assert_eq!(
        live_report.stats, replay_report.stats,
        "replay must be bit-identical"
    );
    println!("replay is bit-identical to the live run ✓");
    std::fs::remove_file(&path).ok();
}
