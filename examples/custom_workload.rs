//! Build a *custom* workload from the pattern library and study how the
//! pollution filter treats it — the API a downstream user would reach for
//! to model their own program.
//!
//! The synthetic program here walks a linked free-list (unprefetchable),
//! streams through a large log (prefetchable), and keeps hot metadata —
//! roughly a memory allocator under load.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use ppf::sim::Simulator;
use ppf::types::{FilterKind, SystemConfig};
use ppf::workloads::{MixStream, PatternKind, PatternSpec, SwPrefetchSpec, WorkloadSpec};

fn allocator_workload() -> WorkloadSpec {
    let hot_metadata = PatternSpec {
        store_frac: 0.4,
        pc_base: 0x1_0000,
        n_pcs: 16,
        ..PatternSpec::new(
            "metadata",
            PatternKind::Strided { stride: 8 },
            0x1000_0000,
            4 * 1024,
            0.80,
        )
    };
    let free_list = PatternSpec {
        pc_base: 0x1_4300,
        n_pcs: 8,
        serial_dep: true,
        ..PatternSpec::new(
            "free-list",
            PatternKind::PointerChase {
                node_bytes: 64,
                fields: 2,
                run: 2,
            },
            0x2000_0000,
            192 * 1024,
            0.12,
        )
    };
    let log_stream = PatternSpec {
        pc_base: 0x1_c900,
        store_frac: 0.5,
        sw_prefetch: Some(SwPrefetchSpec {
            lead_bytes: 128,
            every: 4,
        }),
        ..PatternSpec::new(
            "log",
            PatternKind::Stream {
                advance: 24,
                window: 4 * 1024,
                reread_p: 0.1,
            },
            0x4000_0000,
            32 * 1024 * 1024,
            0.08,
        )
    };
    WorkloadSpec {
        name: "allocator",
        patterns: vec![hot_metadata, free_list, log_stream],
        frac_mem: 0.40,
        frac_branch: 0.15,
        frac_fp: 0.0,
        branch_predictability: 0.75,
        dep_p: 0.5,
        code_kb: 32,
        cold_code_frac: 0.06,
        expect_l1_miss: 0.0, // not calibrated against the paper
        expect_l2_miss: 0.0,
    }
}

fn main() {
    let spec = allocator_workload();
    spec.validate().expect("workload is well-formed");
    println!(
        "custom workload: {} ({} patterns)",
        spec.name,
        spec.patterns.len()
    );
    println!();
    println!(
        "{:<8} {:>7} {:>9} {:>8} {:>8} {:>9}",
        "filter", "IPC", "L1 miss%", "good", "bad", "filtered"
    );
    for kind in [FilterKind::None, FilterKind::Pa, FilterKind::Pc] {
        let config = SystemConfig::paper_default().with_filter(kind);
        let stream = MixStream::new(spec.clone(), 7);
        let mut sim = Simulator::new(config, stream).expect("valid config");
        sim.warmup(300_000);
        let r = sim.run(500_000);
        println!(
            "{:<8} {:>7.3} {:>8.2}% {:>8} {:>8} {:>9}",
            kind.label(),
            r.stats.ipc(),
            100.0 * r.stats.l1.miss_rate(),
            r.stats.good_total(),
            r.stats.bad_total(),
            r.stats.prefetches_filtered.total(),
        );
    }
    println!();
    println!("Expected shape: the free-list's next-line prefetches are mostly bad");
    println!("and get filtered; the log stream's prefetches survive.");
}
