//! Quickstart: simulate one benchmark on the paper's default machine, with
//! and without the PC-based pollution filter, and print what happened.
//!
//! ```text
//! cargo run --release --example quickstart [workload] [instructions]
//! ```

use ppf::sim::Simulator;
use ppf::types::{FilterKind, SystemConfig};
use ppf::workloads::Workload;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload = args
        .first()
        .and_then(|n| Workload::from_name(n))
        .unwrap_or(Workload::Em3d);
    let n: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(500_000);
    let seed = 42;

    println!("workload: {workload}   instructions: {n}   seed: {seed}");
    println!();
    println!(
        "{:<10} {:>7} {:>9} {:>9} {:>9} {:>10}",
        "filter", "IPC", "L1 miss%", "good pf", "bad pf", "filtered"
    );

    for kind in [FilterKind::None, FilterKind::Pa, FilterKind::Pc] {
        let config = SystemConfig::paper_default().with_filter(kind);
        let mut sim = Simulator::new(config, workload.stream(seed)).expect("valid config");
        sim.warmup(n / 2);
        let report = sim.run(n);
        println!(
            "{:<10} {:>7.3} {:>8.2}% {:>9} {:>9} {:>10}",
            kind.label(),
            report.stats.ipc(),
            100.0 * report.stats.l1.miss_rate(),
            report.stats.good_total(),
            report.stats.bad_total(),
            report.stats.prefetches_filtered.total(),
        );
    }

    println!();
    println!("The filter trains 2-bit counters on PIB/RIB eviction feedback:");
    println!("bad (never-referenced) prefetches are learned and dropped before");
    println!("they pollute the 8KB L1 or consume its ports.");
}
