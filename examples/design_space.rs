//! Design-space exploration: history-table size × counter width for the
//! PA filter — the hardware-budget question §5.3 of the paper asks, plus
//! the counter-width ablation the paper leaves open.
//!
//! ```text
//! cargo run --release --example design_space [workload]
//! ```

use ppf::sim::report::TextTable;
use ppf::sim::{run_grid, RunSpec};
use ppf::types::{FilterKind, SystemConfig};
use ppf::workloads::Workload;

fn main() {
    let workload = std::env::args()
        .nth(1)
        .and_then(|n| Workload::from_name(&n))
        .unwrap_or(Workload::Mcf);
    let sizes = [1024usize, 4096, 16384];
    let widths = [1u8, 2, 3];

    let mut grid = Vec::new();
    for &entries in &sizes {
        for &bits in &widths {
            let mut cfg = SystemConfig::paper_default()
                .with_filter(FilterKind::Pa)
                .with_table_entries(entries);
            cfg.filter.counter_bits = bits;
            grid.push(
                RunSpec::new(format!("{entries}x{bits}b"), cfg, workload).instructions(400_000),
            );
        }
    }
    let reports = run_grid(grid);

    println!("PA filter design space on {workload} (IPC / bad kept / good kept):");
    let mut t = TextTable::new(vec!["entries \\ width", "1-bit", "2-bit", "3-bit"]);
    let mut idx = 0;
    for &entries in &sizes {
        let mut row = vec![format!(
            "{entries} ({}B)",
            entries * 2 / 8 // size at the paper's 2-bit width, for scale
        )];
        for _ in &widths {
            let r = &reports[idx];
            idx += 1;
            row.push(format!(
                "{:.3} ipc, {} bad, {} good",
                r.ipc(),
                r.stats.bad_total(),
                r.stats.good_total()
            ));
        }
        t.row(row);
    }
    println!("{}", t.render());
    println!("(paper default: 4096 entries x 2 bits = 1KB)");
}
