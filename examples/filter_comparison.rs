//! Filter comparison across the whole benchmark suite — a compact version
//! of the paper's Figures 4–6 that runs in a few seconds.
//!
//! ```text
//! cargo run --release --example filter_comparison [instructions]
//! ```

use ppf::sim::report::{f3, geomean, pct, TextTable};
use ppf::sim::{run_grid, RunSpec};
use ppf::types::{FilterKind, SystemConfig};
use ppf::workloads::Workload;

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300_000);

    let mut grid = Vec::new();
    for kind in [FilterKind::None, FilterKind::Pa, FilterKind::Pc] {
        for &w in &Workload::ALL {
            grid.push(
                RunSpec::new(
                    kind.label(),
                    SystemConfig::paper_default().with_filter(kind),
                    w,
                )
                .instructions(n),
            );
        }
    }
    let reports = run_grid(grid);
    let by = |label: &str| -> Vec<&ppf::sim::SimReport> {
        reports.iter().filter(|r| r.label == label).collect()
    };
    let (none, pa, pc) = (by("none"), by("PA"), by("PC"));

    let mut t = TextTable::new(vec![
        "benchmark",
        "bad kept PA",
        "bad kept PC",
        "good kept PA",
        "good kept PC",
        "IPC none",
        "IPC PA",
        "IPC PC",
    ]);
    let mut gains_pa = Vec::new();
    let mut gains_pc = Vec::new();
    for i in 0..none.len() {
        let b0 = none[i].stats.bad_total().max(1) as f64;
        let g0 = none[i].stats.good_total().max(1) as f64;
        gains_pa.push(pa[i].ipc() / none[i].ipc());
        gains_pc.push(pc[i].ipc() / none[i].ipc());
        t.row(vec![
            none[i].workload.clone(),
            pct(pa[i].stats.bad_total() as f64 / b0),
            pct(pc[i].stats.bad_total() as f64 / b0),
            pct(pa[i].stats.good_total() as f64 / g0),
            pct(pc[i].stats.good_total() as f64 / g0),
            f3(none[i].ipc()),
            f3(pa[i].ipc()),
            f3(pc[i].ipc()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "geomean IPC vs no-filter:  PA {}   PC {}",
        pct(geomean(&gains_pa) - 1.0),
        pct(geomean(&gains_pc) - 1.0)
    );
}
