//! # ppf — Prefetch Pollution Filter simulator
//!
//! A from-scratch Rust reproduction of *"A Hardware-based Cache Pollution
//! Filtering Mechanism for Aggressive Prefetches"* (Zhuang & Lee, ICPP 2003).
//!
//! The paper's idea: aggressive hardware and software prefetching pollutes a
//! small L1 data cache with lines that are never referenced. A small
//! branch-predictor-style **history table of 2-bit saturating counters** —
//! indexed by either the prefetched **line address** (PA) or the triggering
//! instruction's **PC** — learns which prefetches tend to be useless and
//! drops them before they consume cache ports, bus bandwidth, or L1 lines.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`types`] — addresses, configuration ([`types::SystemConfig`] mirrors
//!   Table 1 of the paper), statistics.
//! * [`mem`] — caches with PIB/RIB line metadata, port arbitration, bus,
//!   DRAM, the prefetch queue and the §5.5 dedicated prefetch buffer.
//! * [`prefetch`] — NSP, SDP and stride hardware prefetchers plus software
//!   prefetch plumbing.
//! * [`filter`] — the paper's contribution: PA/PC pollution filters.
//! * [`cpu`] — an 8-wide out-of-order timing core.
//! * [`workloads`] — deterministic models of the ten paper benchmarks.
//! * [`sim`] — the assembled simulator and per-figure experiment presets.
//!
//! ## Quickstart
//!
//! ```
//! use ppf::sim::Simulator;
//! use ppf::types::{FilterKind, SystemConfig};
//! use ppf::workloads::Workload;
//!
//! let config = SystemConfig::paper_default().with_filter(FilterKind::Pc);
//! let mut sim = Simulator::new(config, Workload::Em3d.stream(42)).unwrap();
//! let report = sim.run(200_000);
//! println!("IPC = {:.3}", report.stats.ipc());
//! println!("good prefetches = {}", report.stats.good_total());
//! println!("bad  prefetches = {}", report.stats.bad_total());
//! ```

pub use ppf_cpu as cpu;
pub use ppf_filter as filter;
pub use ppf_mem as mem;
pub use ppf_prefetch as prefetch;
pub use ppf_sim as sim;
pub use ppf_types as types;
pub use ppf_workloads as workloads;
