//! Property-based tests for the memory substrate: structural invariants
//! must hold under arbitrary operation sequences.

use ppf_mem::cache::{Cache, FillKind};
use ppf_mem::mshr::MshrFile;
use ppf_mem::queue::{PrefetchQueue, PushOutcome};
use ppf_mem::replacement::ReplacementPolicy;
use ppf_types::{CacheConfig, LineAddr, PrefetchOrigin, PrefetchRequest, PrefetchSource};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum CacheOp {
    Probe(u64, bool),
    FillDemand(u64),
    FillPrefetch(u64),
    Invalidate(u64),
}

fn cache_op() -> impl Strategy<Value = CacheOp> {
    prop_oneof![
        (0u64..512, any::<bool>()).prop_map(|(l, w)| CacheOp::Probe(l, w)),
        (0u64..512).prop_map(CacheOp::FillDemand),
        (0u64..512).prop_map(CacheOp::FillPrefetch),
        (0u64..512).prop_map(CacheOp::Invalidate),
    ]
}

fn origin(line: u64) -> PrefetchOrigin {
    PrefetchOrigin {
        line: LineAddr(line),
        trigger_pc: 0x1000 + (line % 64) * 4,
        source: PrefetchSource::Nsp,
        tenant: 0,
        depth: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_invariants_hold_under_any_op_sequence(
        ops in prop::collection::vec(cache_op(), 1..400),
        ways in 1usize..5,
    ) {
        // 4KB cache; ways varies, sets stay a power of two.
        let cfg = CacheConfig {
            size_bytes: 4096,
            line_bytes: 32,
            ways,
            hit_latency: 1,
            ports: 1,
        };
        prop_assume!(cfg.sets().is_power_of_two());
        let mut c = Cache::new(&cfg, ReplacementPolicy::Lru, 7);
        let capacity = cfg.lines();
        for op in ops {
            match op {
                CacheOp::Probe(l, w) => { c.probe(LineAddr(l), w); }
                CacheOp::FillDemand(l) => { c.fill(LineAddr(l), FillKind::Demand); }
                CacheOp::FillPrefetch(l) => {
                    c.fill(LineAddr(l), FillKind::Prefetch(origin(l)));
                }
                CacheOp::Invalidate(l) => { c.invalidate(LineAddr(l)); }
            }
            prop_assert!(c.valid_lines() <= capacity);
        }
        c.check_invariants().map_err(TestCaseError::fail)?;
    }

    #[test]
    fn fill_then_probe_always_hits(lines in prop::collection::vec(0u64..100_000, 1..50)) {
        let cfg = CacheConfig {
            size_bytes: 8192,
            line_bytes: 32,
            ways: 1,
            hit_latency: 1,
            ports: 1,
        };
        let mut c = Cache::new(&cfg, ReplacementPolicy::Lru, 0);
        for l in lines {
            c.fill(LineAddr(l), FillKind::Demand);
            prop_assert!(c.probe(LineAddr(l), false).is_some(), "just-filled line must hit");
        }
    }

    #[test]
    fn eviction_reports_every_prefetch_exactly_once(
        lines in prop::collection::vec(0u64..2048, 1..300),
    ) {
        // Fill-only workload: every prefetch fill is eventually reported
        // either as an eviction or by drain — never twice, never lost.
        let cfg = CacheConfig {
            size_bytes: 1024,
            line_bytes: 32,
            ways: 2,
            hit_latency: 1,
            ports: 1,
        };
        let mut c = Cache::new(&cfg, ReplacementPolicy::Lru, 3);
        let mut fills = 0u64;
        let mut reports = 0u64;
        for l in lines {
            if !c.contains(LineAddr(l)) {
                if let Some(ev) = c.fill(LineAddr(l), FillKind::Prefetch(origin(l))) {
                    if ev.prefetch.is_some() {
                        reports += 1;
                    }
                }
                fills += 1;
            }
        }
        reports += c.drain().filter(|e| e.prefetch.is_some()).count() as u64;
        prop_assert_eq!(fills, reports);
    }

    #[test]
    fn queue_never_exceeds_capacity_or_duplicates(
        pushes in prop::collection::vec(0u64..64, 1..300),
        cap in 1usize..64,
    ) {
        let mut q = PrefetchQueue::new(cap);
        let mut pops = 0usize;
        for (i, line) in pushes.iter().enumerate() {
            let req = PrefetchRequest {
                line: LineAddr(*line),
                trigger_pc: 0,
                source: PrefetchSource::Sdp,
                tenant: 0,
                depth: 1,
            };
            match q.push(req) {
                PushOutcome::Enqueued => {}
                PushOutcome::Duplicate => prop_assert!(q.contains(LineAddr(*line))),
                PushOutcome::Overflow => prop_assert_eq!(q.len(), cap),
            }
            prop_assert!(q.len() <= cap);
            if i % 3 == 0 && q.pop().is_some() {
                pops += 1;
            }
        }
        let _ = pops;
        // No duplicate lines inside the queue.
        let mut seen = std::collections::HashSet::new();
        while let Some(r) = q.pop() {
            prop_assert!(seen.insert(r.line), "duplicate {:?} in queue", r.line);
        }
    }

    #[test]
    fn mshr_ready_times_respect_insertion(
        inserts in prop::collection::vec((0u64..128, 1u64..500), 1..64),
    ) {
        let mut m = MshrFile::new(16);
        for (now, (line, delay)) in inserts.into_iter().enumerate() {
            let now = now as u64;
            m.insert(LineAddr(line), now + delay, now);
            // Whatever is reported must be in the future.
            if let Some(ready) = m.ready_at(LineAddr(line), now) {
                prop_assert!(ready > now);
            }
        }
    }
}
