//! Shadow-tag miss classification (the 3C taxonomy).
//!
//! When [`ppf_types::DiagnosticsConfig::classify_misses`] is set, each cache
//! level carries two shadow tag structures that observe the *demand*
//! reference stream alongside the real array:
//!
//! * an **infinite-tag** shadow — a set of every line ever referenced. A
//!   miss on a never-seen line is **compulsory**: even an unbounded cache
//!   would miss it.
//! * a **fully-associative** shadow of the same capacity with true LRU. A
//!   non-compulsory miss that this shadow would also miss is a **capacity**
//!   miss; one the shadow would have hit is a **conflict** miss — only the
//!   real array's limited associativity/indexing evicted the line early.
//!
//! Prefetch fills are deliberately *not* replayed into the shadows: the
//! taxonomy answers "how would this demand stream behave in an ideal
//! cache?", so pollution from aggressive prefetching cannot perturb the
//! classification it is being measured against. The shadows are tag-only
//! (no data, no timing) and live outside the simulated machine.

use ppf_types::{LineAddr, MissClass};
use std::collections::{HashMap, HashSet};
use std::hash::BuildHasherDefault;

/// How a (real-cache) miss would have fared in the shadow structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissKind {
    /// First reference to the line anywhere in the run.
    Compulsory,
    /// A fully-associative cache of the same capacity would also miss.
    Capacity,
    /// Only the real array's indexing/associativity lost the line.
    Conflict,
}

impl MissKind {
    /// Bump the matching [`MissClass`] counter.
    pub fn tally(self, into: &mut MissClass) {
        match self {
            MissKind::Compulsory => into.compulsory += 1,
            MissKind::Capacity => into.capacity += 1,
            MissKind::Conflict => into.conflict += 1,
        }
    }
}

/// Hasher for the shadow structures' u64 line-number keys: one multiply
/// plus an xor-shift (Fibonacci hashing). The default SipHash is measurable
/// in the classify hot path and keys here are simulator-internal line
/// numbers, so HashDoS hardening buys nothing.
#[derive(Debug, Default, Clone)]
struct LineHasher(u64);

impl std::hash::Hasher for LineHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-u64 keys (unused here, but required).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        let mut h = (self.0 ^ n).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= h >> 29;
        self.0 = h;
    }
}

type LineHashBuilder = BuildHasherDefault<LineHasher>;

/// Sentinel "no node" index for the intrusive LRU list.
const NIL: u32 = u32::MAX;

/// One entry of the fully-associative shadow's recency list.
#[derive(Debug, Clone, Copy)]
struct LruNode {
    line: u64,
    prev: u32,
    next: u32,
}

/// Fully-associative LRU tag array: a line → node map plus an intrusive
/// doubly-linked recency list over a slab, giving O(1) touch/evict. The
/// list head is the LRU entry, the tail the MRU; eviction order is exactly
/// true-LRU, so the classification is deterministic.
#[derive(Debug, Default, Clone)]
struct ShadowLru {
    cap: usize,
    idx_of: HashMap<u64, u32, LineHashBuilder>,
    nodes: Vec<LruNode>,
    head: u32,
    tail: u32,
}

impl ShadowLru {
    fn new(cap: usize) -> Self {
        ShadowLru {
            cap: cap.max(1),
            head: NIL,
            tail: NIL,
            ..Default::default()
        }
    }

    /// Detach node `i` from the recency list.
    fn unlink(&mut self, i: u32) {
        let LruNode { prev, next, .. } = self.nodes[i as usize];
        match prev {
            NIL => self.head = next,
            p => self.nodes[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.nodes[n as usize].prev = prev,
        }
    }

    /// Append node `i` at the MRU end.
    fn push_tail(&mut self, i: u32) {
        let tail = self.tail;
        {
            let n = &mut self.nodes[i as usize];
            n.prev = tail;
            n.next = NIL;
        }
        match tail {
            NIL => self.head = i,
            t => self.nodes[t as usize].next = i,
        }
        self.tail = i;
    }

    /// Reference `line`: returns whether it was resident, then makes it the
    /// most recently used entry (evicting the LRU line on overflow).
    fn touch(&mut self, line: u64) -> bool {
        if let Some(&i) = self.idx_of.get(&line) {
            if self.tail != i {
                self.unlink(i);
                self.push_tail(i);
            }
            return true;
        }
        if self.idx_of.len() == self.cap {
            // Full: recycle the LRU slot for the new line.
            let i = self.head;
            let old = self.nodes[i as usize].line;
            self.idx_of.remove(&old);
            self.unlink(i);
            self.nodes[i as usize].line = line;
            self.push_tail(i);
            self.idx_of.insert(line, i);
        } else {
            let i = u32::try_from(self.nodes.len()).expect("shadow cap fits u32");
            self.nodes.push(LruNode {
                line,
                prev: NIL,
                next: NIL,
            });
            self.push_tail(i);
            self.idx_of.insert(line, i);
        }
        false
    }
}

/// Shadow structures for one cache level.
#[derive(Debug, Clone)]
pub struct MissClassifier {
    seen: HashSet<u64, LineHashBuilder>,
    fa: ShadowLru,
}

impl MissClassifier {
    /// Shadows for a cache holding `total_lines` lines.
    pub fn new(total_lines: usize) -> Self {
        MissClassifier {
            seen: HashSet::default(),
            fa: ShadowLru::new(total_lines),
        }
    }

    /// Observe one demand reference. Must be called for *every* demand
    /// access — hits included — so the shadow LRU state tracks the full
    /// stream. The returned kind is meaningful only when the real cache
    /// missed; on a hit the caller simply discards it.
    pub fn access(&mut self, line: LineAddr) -> MissKind {
        let new = self.seen.insert(line.0);
        let fa_hit = self.fa.touch(line.0);
        if new {
            MissKind::Compulsory
        } else if fa_hit {
            MissKind::Conflict
        } else {
            MissKind::Capacity
        }
    }

    /// Distinct lines ever observed (diagnostics: the footprint).
    pub fn footprint_lines(&self) -> usize {
        self.seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(n: u64) -> LineAddr {
        LineAddr(n)
    }

    #[test]
    fn first_touch_is_compulsory() {
        let mut c = MissClassifier::new(4);
        assert_eq!(c.access(l(1)), MissKind::Compulsory);
        assert_eq!(c.access(l(2)), MissKind::Compulsory);
        assert_eq!(c.footprint_lines(), 2);
    }

    #[test]
    fn within_capacity_rereference_is_conflict() {
        // 4-line shadow; 3 distinct lines cycle. A fully-associative cache
        // never evicts them, so a real-cache miss here must be conflict.
        let mut c = MissClassifier::new(4);
        for n in [1, 2, 3] {
            c.access(l(n));
        }
        assert_eq!(c.access(l(1)), MissKind::Conflict);
        assert_eq!(c.access(l(3)), MissKind::Conflict);
    }

    #[test]
    fn oversubscribed_rereference_is_capacity() {
        // 2-line shadow; 3 lines in round-robin defeat LRU entirely: every
        // rereference would miss fully-associative too.
        let mut c = MissClassifier::new(2);
        for n in [1, 2, 3] {
            c.access(l(n));
        }
        assert_eq!(c.access(l(1)), MissKind::Capacity);
        assert_eq!(c.access(l(2)), MissKind::Capacity);
    }

    #[test]
    fn lru_keeps_the_hot_line() {
        let mut c = MissClassifier::new(2);
        c.access(l(1));
        c.access(l(2));
        c.access(l(1)); // 1 is now MRU; 2 is the LRU victim
        c.access(l(3)); // evicts 2
        assert_eq!(c.access(l(1)), MissKind::Conflict, "1 stayed resident");
        assert_eq!(c.access(l(2)), MissKind::Capacity, "2 was evicted");
    }

    #[test]
    fn kinds_tally_into_miss_class() {
        let mut mc = MissClass::default();
        MissKind::Compulsory.tally(&mut mc);
        MissKind::Capacity.tally(&mut mc);
        MissKind::Capacity.tally(&mut mc);
        MissKind::Conflict.tally(&mut mc);
        assert_eq!((mc.compulsory, mc.capacity, mc.conflict), (1, 2, 1));
        assert_eq!(mc.total(), 4);
    }
}
