//! Shadow-tag miss classification (the 3C taxonomy).
//!
//! When [`ppf_types::DiagnosticsConfig::classify_misses`] is set, each cache
//! level carries two shadow tag structures that observe the *demand*
//! reference stream alongside the real array:
//!
//! * an **infinite-tag** shadow — a set of every line ever referenced. A
//!   miss on a never-seen line is **compulsory**: even an unbounded cache
//!   would miss it.
//! * a **fully-associative** shadow of the same capacity with true LRU. A
//!   non-compulsory miss that this shadow would also miss is a **capacity**
//!   miss; one the shadow would have hit is a **conflict** miss — only the
//!   real array's limited associativity/indexing evicted the line early.
//!
//! Prefetch fills are deliberately *not* replayed into the shadows: the
//! taxonomy answers "how would this demand stream behave in an ideal
//! cache?", so pollution from aggressive prefetching cannot perturb the
//! classification it is being measured against. The shadows are tag-only
//! (no data, no timing) and live outside the simulated machine.

use ppf_types::{LineAddr, MissClass};
use std::collections::{BTreeMap, HashMap, HashSet};

/// How a (real-cache) miss would have fared in the shadow structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissKind {
    /// First reference to the line anywhere in the run.
    Compulsory,
    /// A fully-associative cache of the same capacity would also miss.
    Capacity,
    /// Only the real array's indexing/associativity lost the line.
    Conflict,
}

impl MissKind {
    /// Bump the matching [`MissClass`] counter.
    pub fn tally(self, into: &mut MissClass) {
        match self {
            MissKind::Compulsory => into.compulsory += 1,
            MissKind::Capacity => into.capacity += 1,
            MissKind::Conflict => into.conflict += 1,
        }
    }
}

/// Fully-associative LRU tag array. Recency is a monotone stamp per line
/// plus an ordered stamp → line index, giving O(log n) touch/evict without
/// any unsafe linked-list plumbing; determinism comes for free.
#[derive(Debug, Default)]
struct ShadowLru {
    cap: usize,
    tick: u64,
    stamp_of: HashMap<u64, u64>,
    by_stamp: BTreeMap<u64, u64>,
}

impl ShadowLru {
    fn new(cap: usize) -> Self {
        ShadowLru {
            cap: cap.max(1),
            ..Default::default()
        }
    }

    /// Reference `line`: returns whether it was resident, then makes it the
    /// most recently used entry (evicting the LRU line on overflow).
    fn touch(&mut self, line: u64) -> bool {
        self.tick += 1;
        let hit = if let Some(old) = self.stamp_of.insert(line, self.tick) {
            self.by_stamp.remove(&old);
            true
        } else {
            false
        };
        self.by_stamp.insert(self.tick, line);
        if self.stamp_of.len() > self.cap {
            let (_, victim) = self.by_stamp.pop_first().expect("over capacity");
            self.stamp_of.remove(&victim);
        }
        hit
    }
}

/// Shadow structures for one cache level.
#[derive(Debug)]
pub struct MissClassifier {
    seen: HashSet<u64>,
    fa: ShadowLru,
}

impl MissClassifier {
    /// Shadows for a cache holding `total_lines` lines.
    pub fn new(total_lines: usize) -> Self {
        MissClassifier {
            seen: HashSet::new(),
            fa: ShadowLru::new(total_lines),
        }
    }

    /// Observe one demand reference. Must be called for *every* demand
    /// access — hits included — so the shadow LRU state tracks the full
    /// stream. The returned kind is meaningful only when the real cache
    /// missed; on a hit the caller simply discards it.
    pub fn access(&mut self, line: LineAddr) -> MissKind {
        let new = self.seen.insert(line.0);
        let fa_hit = self.fa.touch(line.0);
        if new {
            MissKind::Compulsory
        } else if fa_hit {
            MissKind::Conflict
        } else {
            MissKind::Capacity
        }
    }

    /// Distinct lines ever observed (diagnostics: the footprint).
    pub fn footprint_lines(&self) -> usize {
        self.seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(n: u64) -> LineAddr {
        LineAddr(n)
    }

    #[test]
    fn first_touch_is_compulsory() {
        let mut c = MissClassifier::new(4);
        assert_eq!(c.access(l(1)), MissKind::Compulsory);
        assert_eq!(c.access(l(2)), MissKind::Compulsory);
        assert_eq!(c.footprint_lines(), 2);
    }

    #[test]
    fn within_capacity_rereference_is_conflict() {
        // 4-line shadow; 3 distinct lines cycle. A fully-associative cache
        // never evicts them, so a real-cache miss here must be conflict.
        let mut c = MissClassifier::new(4);
        for n in [1, 2, 3] {
            c.access(l(n));
        }
        assert_eq!(c.access(l(1)), MissKind::Conflict);
        assert_eq!(c.access(l(3)), MissKind::Conflict);
    }

    #[test]
    fn oversubscribed_rereference_is_capacity() {
        // 2-line shadow; 3 lines in round-robin defeat LRU entirely: every
        // rereference would miss fully-associative too.
        let mut c = MissClassifier::new(2);
        for n in [1, 2, 3] {
            c.access(l(n));
        }
        assert_eq!(c.access(l(1)), MissKind::Capacity);
        assert_eq!(c.access(l(2)), MissKind::Capacity);
    }

    #[test]
    fn lru_keeps_the_hot_line() {
        let mut c = MissClassifier::new(2);
        c.access(l(1));
        c.access(l(2));
        c.access(l(1)); // 1 is now MRU; 2 is the LRU victim
        c.access(l(3)); // evicts 2
        assert_eq!(c.access(l(1)), MissKind::Conflict, "1 stayed resident");
        assert_eq!(c.access(l(2)), MissKind::Capacity, "2 was evicted");
    }

    #[test]
    fn kinds_tally_into_miss_class() {
        let mut mc = MissClass::default();
        MissKind::Compulsory.tally(&mut mc);
        MissKind::Capacity.tally(&mut mc);
        MissKind::Capacity.tally(&mut mc);
        MissKind::Conflict.tally(&mut mc);
        assert_eq!((mc.compulsory, mc.capacity, mc.conflict), (1, 2, 1));
        assert_eq!(mc.total(), 4);
    }
}
