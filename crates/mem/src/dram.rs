//! Main memory: a fixed leadoff latency (Table 1: 150 core cycles) in front
//! of the shared bus — the paper's model. An optional bank model
//! (`MemConfig::banks`) serializes accesses that land in the same
//! line-interleaved bank, for the memory-level-parallelism ablation.

use ppf_types::{Cycle, LineAddr, MemConfig};

/// Main memory with optional bank contention.
#[derive(Debug, Clone)]
pub struct MainMemory {
    latency: u64,
    /// Per-bank next-free cycle; empty = unlimited concurrency.
    banks_free: Vec<Cycle>,
    bank_mask: u64,
    bank_busy: u64,
}

impl MainMemory {
    /// Build from the memory config.
    pub fn new(cfg: &MemConfig) -> Self {
        let banks = if cfg.banks > 0 {
            assert!(cfg.banks.is_power_of_two(), "bank count must be 2^k");
            cfg.banks
        } else {
            0
        };
        MainMemory {
            latency: cfg.latency,
            banks_free: vec![0; banks],
            bank_mask: banks.saturating_sub(1) as u64,
            bank_busy: cfg.bank_busy,
        }
    }

    /// Leadoff latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Earliest cycle after `now` at which a busy bank frees up, for the
    /// skip-ahead kernel's event calendar. `None` with the bankless model
    /// (unlimited concurrency: memory never changes state on its own) or
    /// when every bank is already free.
    pub fn next_event_cycle(&self, now: Cycle) -> Option<Cycle> {
        self.banks_free.iter().copied().filter(|&f| f > now).min()
    }

    /// Cycle at which data for a request issued at `now` leaves the memory
    /// array (bus transfer time is charged separately by the caller). With
    /// banks configured, the request first waits for its line-interleaved
    /// bank and then occupies it for the busy time.
    #[inline]
    pub fn access(&mut self, line: LineAddr, now: Cycle) -> Cycle {
        if self.banks_free.is_empty() {
            return now + self.latency;
        }
        let bank = (line.0 & self.bank_mask) as usize;
        let start = now.max(self.banks_free[bank]);
        self.banks_free[bank] = start + self.bank_busy;
        start + self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_latency_without_banks() {
        let mut m = MainMemory::new(&MemConfig::default());
        assert_eq!(m.latency(), 150);
        assert_eq!(m.access(LineAddr(1), 0), 150);
        assert_eq!(m.access(LineAddr(1), 1000), 1150);
        // Unlimited concurrency: same-cycle requests do not queue.
        assert_eq!(m.access(LineAddr(1), 1000), 1150);
    }

    #[test]
    fn banked_memory_serializes_same_bank() {
        let cfg = MemConfig {
            banks: 4,
            bank_busy: 40,
            ..MemConfig::default()
        };
        let mut m = MainMemory::new(&cfg);
        // Lines 0 and 4 share bank 0; line 1 uses bank 1.
        assert_eq!(m.access(LineAddr(0), 0), 150);
        assert_eq!(m.access(LineAddr(4), 0), 40 + 150, "same bank queues");
        assert_eq!(m.access(LineAddr(1), 0), 150, "other bank is free");
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_banks_rejected() {
        MainMemory::new(&MemConfig {
            banks: 3,
            ..MemConfig::default()
        });
    }
}
