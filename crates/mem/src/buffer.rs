//! The dedicated prefetch buffer evaluated in §5.5 (Chen et al., MICRO'91).
//!
//! A small fully-associative buffer that holds prefetched lines *instead of*
//! allocating them in the L1. Demand accesses probe the L1 and the buffer;
//! a buffer hit promotes the line into the L1 (and is by definition a *good*
//! prefetch). A line evicted from the buffer without ever being referenced
//! is a *bad* prefetch. The paper finds this structure interacts poorly
//! with aggressive prefetching and with the pollution filters (Figures
//! 15–16); this module lets the benches reproduce that comparison.

use ppf_types::{LineAddr, PrefetchOrigin};

/// An entry evicted from the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferEvicted {
    /// The prefetch that brought the line in.
    pub origin: PrefetchOrigin,
    /// Whether the line was ever hit while in the buffer. With promotion-
    /// on-hit this is always false for LRU victims, but `drain` reports
    /// resident lines too.
    pub referenced: bool,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    line: LineAddr,
    origin: PrefetchOrigin,
    stamp: u64,
}

/// Fully-associative LRU prefetch buffer.
#[derive(Debug, Clone)]
pub struct PrefetchBuffer {
    slots: Vec<Slot>,
    cap: usize,
    next_stamp: u64,
}

impl PrefetchBuffer {
    /// A buffer with `cap` fully-associative entries (paper: 16).
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0);
        PrefetchBuffer {
            slots: Vec::with_capacity(cap),
            cap,
            next_stamp: 1,
        }
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Occupancy.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Non-mutating presence check (for duplicate squashing).
    pub fn contains(&self, line: LineAddr) -> bool {
        self.slots.iter().any(|s| s.line == line)
    }

    /// Demand probe. On a hit the line is *removed* (promoted to the L1 by
    /// the caller) and its provenance returned — a buffer hit is a good
    /// prefetch. Misses return `None`.
    pub fn take(&mut self, line: LineAddr) -> Option<PrefetchOrigin> {
        let idx = self.slots.iter().position(|s| s.line == line)?;
        Some(self.slots.swap_remove(idx).origin)
    }

    /// Insert a prefetched line, evicting the LRU entry if full. The evicted
    /// entry was never referenced (hits promote out of the buffer), so it is
    /// a bad prefetch.
    pub fn insert(&mut self, line: LineAddr, origin: PrefetchOrigin) -> Option<BufferEvicted> {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        if let Some(s) = self.slots.iter_mut().find(|s| s.line == line) {
            // Re-prefetch of a buffered line: refresh recency, keep origin.
            s.stamp = stamp;
            return None;
        }
        let evicted = if self.slots.len() >= self.cap {
            let (idx, _) = self
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.stamp)
                .expect("buffer is full, so non-empty");
            let victim = self.slots.swap_remove(idx);
            Some(BufferEvicted {
                origin: victim.origin,
                referenced: false,
            })
        } else {
            None
        };
        self.slots.push(Slot {
            line,
            origin,
            stamp,
        });
        evicted
    }

    /// Report and remove every resident line (end-of-run census). Resident
    /// lines were never referenced — references promote out of the buffer.
    pub fn drain(&mut self) -> impl Iterator<Item = BufferEvicted> + '_ {
        self.slots.drain(..).map(|s| BufferEvicted {
            origin: s.origin,
            referenced: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppf_types::PrefetchSource;

    fn origin(line: u64) -> PrefetchOrigin {
        PrefetchOrigin {
            line: LineAddr(line),
            trigger_pc: 0x2000,
            source: PrefetchSource::Sdp,
            tenant: 0,
            depth: 0,
        }
    }

    #[test]
    fn hit_promotes_and_removes() {
        let mut b = PrefetchBuffer::new(4);
        b.insert(LineAddr(1), origin(1));
        assert!(b.contains(LineAddr(1)));
        let o = b.take(LineAddr(1)).expect("hit");
        assert_eq!(o.line, LineAddr(1));
        assert!(!b.contains(LineAddr(1)), "promotion removes from buffer");
        assert!(b.take(LineAddr(1)).is_none());
    }

    #[test]
    fn lru_eviction_when_full() {
        let mut b = PrefetchBuffer::new(2);
        assert!(b.insert(LineAddr(1), origin(1)).is_none());
        assert!(b.insert(LineAddr(2), origin(2)).is_none());
        let ev = b
            .insert(LineAddr(3), origin(3))
            .expect("full buffer evicts");
        assert_eq!(ev.origin.line, LineAddr(1), "oldest entry is the victim");
        assert!(!ev.referenced);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_recency() {
        let mut b = PrefetchBuffer::new(2);
        b.insert(LineAddr(1), origin(1));
        b.insert(LineAddr(2), origin(2));
        b.insert(LineAddr(1), origin(1)); // refresh 1
        let ev = b.insert(LineAddr(3), origin(3)).unwrap();
        assert_eq!(
            ev.origin.line,
            LineAddr(2),
            "2 became LRU after 1's refresh"
        );
    }

    #[test]
    fn reinsert_does_not_grow() {
        let mut b = PrefetchBuffer::new(2);
        b.insert(LineAddr(1), origin(1));
        b.insert(LineAddr(1), origin(1));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn drain_reports_unreferenced() {
        let mut b = PrefetchBuffer::new(4);
        b.insert(LineAddr(1), origin(1));
        b.insert(LineAddr(2), origin(2));
        let drained: Vec<_> = b.drain().collect();
        assert_eq!(drained.len(), 2);
        assert!(drained.iter().all(|e| !e.referenced));
        assert!(b.is_empty());
    }

    #[test]
    fn paper_size_is_16() {
        let b = PrefetchBuffer::new(ppf_types::BufferConfig::default().entries);
        assert_eq!(b.capacity(), 16);
    }
}
