//! A small outstanding-miss file (MSHR-style).
//!
//! The hierarchy applies fills functionally at access time but the data is
//! only *architecturally* available at the returned completion cycle. The
//! MSHR file records `(line, ready_at)` for in-flight fills so later hits on
//! those lines wait for the fill instead of observing 1-cycle latency — this
//! is what makes "prefetch arrived too late" cost something, and it merges
//! concurrent misses to the same line the way real MSHRs do.
//!
//! Entries are a fixed-size array scanned linearly: 16 entries is both the
//! realistic hardware size and faster than a hash map at this scale.

use ppf_types::{Cycle, LineAddr};

/// Default number of entries, matching contemporary L1 designs.
pub const DEFAULT_MSHRS: usize = 16;

#[derive(Debug, Clone, Copy)]
struct Entry {
    line: LineAddr,
    ready_at: Cycle,
}

/// Fixed-capacity outstanding-miss file.
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: Vec<Entry>,
    cap: usize,
    /// Latest completion cycle ever recorded: once `now` passes it the
    /// file provably holds no live entry, so the per-hit probe returns
    /// without scanning. Purely an optimization.
    max_ready: Cycle,
    /// Conservative presence filter over in-flight lines (bit
    /// `hash(line) % 64`), rebuilt on insert; stale bits from expired
    /// entries only cost a scan, a clear bit proves absence.
    sig: u64,
}

impl MshrFile {
    /// A file with `cap` entries.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0);
        MshrFile {
            entries: Vec::with_capacity(cap),
            cap,
            max_ready: 0,
            sig: 0,
        }
    }

    /// The presence-filter bit for `line` (see `sig`).
    #[inline]
    fn sig_bit(line: LineAddr) -> u64 {
        1 << (line.0.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 58)
    }

    /// Number of live (not yet expired) entries at `now`.
    pub fn live(&self, now: Cycle) -> usize {
        if now >= self.max_ready {
            return 0;
        }
        self.entries.iter().filter(|e| e.ready_at > now).count()
    }

    /// If `line` has an in-flight fill at `now`, the cycle it completes.
    #[inline]
    pub fn ready_at(&self, line: LineAddr, now: Cycle) -> Option<Cycle> {
        if now >= self.max_ready || self.sig & Self::sig_bit(line) == 0 {
            return None; // provably no live entry for this line
        }
        self.entries
            .iter()
            .find(|e| e.line == line && e.ready_at > now)
            .map(|e| e.ready_at)
    }

    /// Live `(line, ready_at)` pairs at `now`, sorted. Slot positions are
    /// an implementation detail, so this sorted view is the structure's
    /// whole observable state — the differential oracle compares it after
    /// every operation.
    pub fn live_entries(&self, now: Cycle) -> Vec<(LineAddr, Cycle)> {
        let mut out: Vec<_> = self
            .entries
            .iter()
            .filter(|e| e.ready_at > now)
            .map(|e| (e.line, e.ready_at))
            .collect();
        out.sort();
        out
    }

    /// Earliest completion of any in-flight fill after `now`, for the
    /// skip-ahead kernel's event calendar. `None` when nothing is in
    /// flight. Fills are purely passive (hits *wait* on them), so this is
    /// a conservative wake-up, never a correctness requirement.
    pub fn next_event_cycle(&self, now: Cycle) -> Option<Cycle> {
        if now >= self.max_ready {
            return None;
        }
        self.entries
            .iter()
            .map(|e| e.ready_at)
            .filter(|&r| r > now)
            .min()
    }

    /// Record an in-flight fill of `line` completing at `ready_at`.
    ///
    /// Expired entries are recycled first; when the file is full the entry
    /// expiring soonest is replaced (timing-only structure — overwriting
    /// loses a little accuracy, never correctness).
    pub fn insert(&mut self, line: LineAddr, ready_at: Cycle, now: Cycle) {
        self.insert_inner(line, ready_at, now);
        self.max_ready = self.max_ready.max(ready_at);
        // Re-derive the presence filter over the entries still live, so
        // bits from expired or overwritten lines age out at insert time.
        self.sig = self
            .entries
            .iter()
            .filter(|e| e.ready_at > now)
            .fold(0, |sig, e| sig | Self::sig_bit(e.line));
    }

    fn insert_inner(&mut self, line: LineAddr, ready_at: Cycle, now: Cycle) {
        // Merge with an existing in-flight entry for the same line.
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.line == line && e.ready_at > now)
        {
            e.ready_at = e.ready_at.max(ready_at);
            return;
        }
        // Recycle an expired slot.
        if let Some(e) = self.entries.iter_mut().find(|e| e.ready_at <= now) {
            *e = Entry { line, ready_at };
            return;
        }
        if self.entries.len() < self.cap {
            self.entries.push(Entry { line, ready_at });
            return;
        }
        // Full of live entries: replace the one completing soonest.
        if let Some(e) = self.entries.iter_mut().min_by_key(|e| e.ready_at) {
            *e = Entry { line, ready_at };
        }
    }
}

impl Default for MshrFile {
    fn default() -> Self {
        MshrFile::new(DEFAULT_MSHRS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_in_flight_lines() {
        let mut m = MshrFile::new(4);
        m.insert(LineAddr(1), 100, 0);
        assert_eq!(m.ready_at(LineAddr(1), 50), Some(100));
        assert_eq!(m.ready_at(LineAddr(2), 50), None);
    }

    #[test]
    fn expired_entries_invisible() {
        let mut m = MshrFile::new(4);
        m.insert(LineAddr(1), 100, 0);
        assert_eq!(
            m.ready_at(LineAddr(1), 100),
            None,
            "ready_at == now is complete"
        );
        assert_eq!(m.ready_at(LineAddr(1), 150), None);
    }

    #[test]
    fn merge_same_line_takes_later_completion() {
        let mut m = MshrFile::new(4);
        m.insert(LineAddr(1), 100, 0);
        m.insert(LineAddr(1), 80, 0);
        assert_eq!(m.ready_at(LineAddr(1), 0), Some(100));
        m.insert(LineAddr(1), 130, 0);
        assert_eq!(m.ready_at(LineAddr(1), 0), Some(130));
        assert_eq!(m.live(0), 1, "merged, not duplicated");
    }

    #[test]
    fn recycles_expired_slots() {
        let mut m = MshrFile::new(2);
        m.insert(LineAddr(1), 10, 0);
        m.insert(LineAddr(2), 20, 0);
        // At cycle 15, line 1's entry has expired and can be recycled.
        m.insert(LineAddr(3), 40, 15);
        assert_eq!(m.ready_at(LineAddr(3), 15), Some(40));
        assert_eq!(m.ready_at(LineAddr(2), 15), Some(20));
    }

    #[test]
    fn full_file_replaces_soonest_completion() {
        let mut m = MshrFile::new(2);
        m.insert(LineAddr(1), 100, 0);
        m.insert(LineAddr(2), 200, 0);
        m.insert(LineAddr(3), 300, 0); // replaces line 1 (soonest)
        assert_eq!(m.ready_at(LineAddr(1), 0), None);
        assert_eq!(m.ready_at(LineAddr(2), 0), Some(200));
        assert_eq!(m.ready_at(LineAddr(3), 0), Some(300));
    }

    #[test]
    fn live_count() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.live(0), 0);
        m.insert(LineAddr(1), 10, 0);
        m.insert(LineAddr(2), 20, 0);
        assert_eq!(m.live(0), 2);
        assert_eq!(m.live(15), 1);
        assert_eq!(m.live(25), 0);
    }
}
