//! Victim cache (Jouppi, ISCA 1990) — ablation hardware.
//!
//! The paper's machine has a *direct-mapped* 8KB L1, so conflict misses —
//! including those induced by prefetch pollution — are a big part of its
//! story. A small fully-associative victim cache between the L1 and L2
//! catches recently evicted lines and is the classic alternative fix for
//! conflict misses; the `ablations` experiment quantifies how much of the
//! pollution filter's benefit a victim cache captures instead.
//!
//! Evicted L1 lines (with their PIB/RIB/provenance metadata intact) enter
//! the victim cache; a demand miss that hits a victim swaps the line back
//! into the L1. A prefetched line recovered from the victim cache before
//! any use continues its lifetime — its good/bad classification is decided
//! only when it finally leaves the L1-side hierarchy, so the filter's
//! feedback stays consistent.

use crate::cache::Evicted;
use ppf_types::LineAddr;

#[derive(Debug, Clone, Copy)]
struct Slot {
    line: LineAddr,
    /// The eviction record carried while the line sits here.
    record: Evicted,
    stamp: u64,
}

/// Fully-associative LRU victim cache.
#[derive(Debug, Clone)]
pub struct VictimCache {
    slots: Vec<Slot>,
    cap: usize,
    next_stamp: u64,
    /// Demand misses served from the victim cache.
    pub hits: u64,
    /// Lines that aged out of the victim cache (their eviction records are
    /// final at that point).
    pub final_evictions: u64,
}

impl VictimCache {
    /// A victim cache with `cap` entries (Jouppi's sweet spot is 4-16).
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0);
        VictimCache {
            slots: Vec::with_capacity(cap),
            cap,
            next_stamp: 1,
            hits: 0,
            final_evictions: 0,
        }
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Occupancy.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Non-mutating presence check.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.slots.iter().any(|s| s.line == line)
    }

    /// An L1 eviction enters the victim cache. If a victim ages out to
    /// make room, its (now final) eviction record is returned — that is
    /// the record the pollution filter should train on.
    pub fn insert(&mut self, record: Evicted) -> Option<Evicted> {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        // Re-inserting a line already here replaces the record (can happen
        // if the line bounced back to L1 and was evicted again).
        if let Some(s) = self.slots.iter_mut().find(|s| s.line == record.line) {
            let old = s.record;
            s.record = record;
            s.stamp = stamp;
            return Some(old);
        }
        let displaced = if self.slots.len() >= self.cap {
            let (idx, _) = self
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.stamp)
                .expect("full, so non-empty");
            let victim = self.slots.swap_remove(idx);
            self.final_evictions += 1;
            Some(victim.record)
        } else {
            None
        };
        self.slots.push(Slot {
            line: record.line,
            record,
            stamp,
        });
        displaced
    }

    /// A demand miss probes the victim cache: on a hit the line (with its
    /// carried eviction record, i.e. its PIB/RIB state) moves back toward
    /// the L1 and is removed here.
    pub fn take(&mut self, line: LineAddr) -> Option<Evicted> {
        let idx = self.slots.iter().position(|s| s.line == line)?;
        self.hits += 1;
        Some(self.slots.swap_remove(idx).record)
    }

    /// Drain all remaining records (end-of-run census).
    pub fn drain(&mut self) -> impl Iterator<Item = Evicted> + '_ {
        self.slots.drain(..).map(|s| s.record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppf_types::{PrefetchOrigin, PrefetchSource};

    fn record(line: u64, prefetched: bool) -> Evicted {
        Evicted {
            line: LineAddr(line),
            dirty: false,
            prefetch: prefetched.then_some((
                PrefetchOrigin {
                    line: LineAddr(line),
                    trigger_pc: 0x100,
                    source: PrefetchSource::Nsp,
                    tenant: 0,
                    depth: 0,
                },
                false,
            )),
        }
    }

    #[test]
    fn insert_take_round_trip() {
        let mut v = VictimCache::new(4);
        assert!(v.insert(record(1, false)).is_none());
        assert!(v.contains(LineAddr(1)));
        let r = v.take(LineAddr(1)).expect("victim hit");
        assert_eq!(r.line, LineAddr(1));
        assert_eq!(v.hits, 1);
        assert!(!v.contains(LineAddr(1)));
    }

    #[test]
    fn lru_ages_out_oldest() {
        let mut v = VictimCache::new(2);
        v.insert(record(1, false));
        v.insert(record(2, false));
        let aged = v.insert(record(3, false)).expect("oldest displaced");
        assert_eq!(aged.line, LineAddr(1));
        assert_eq!(v.final_evictions, 1);
        assert!(v.contains(LineAddr(2)) && v.contains(LineAddr(3)));
    }

    #[test]
    fn prefetch_metadata_survives_the_trip() {
        let mut v = VictimCache::new(4);
        v.insert(record(7, true));
        let r = v.take(LineAddr(7)).unwrap();
        let (origin, referenced) = r.prefetch.expect("provenance carried");
        assert_eq!(origin.trigger_pc, 0x100);
        assert!(!referenced);
    }

    #[test]
    fn reinsert_replaces_record() {
        let mut v = VictimCache::new(2);
        v.insert(record(5, false));
        let old = v.insert(record(5, true)).expect("old record returned");
        assert!(old.prefetch.is_none());
        assert_eq!(v.len(), 1);
        assert!(v.take(LineAddr(5)).unwrap().prefetch.is_some());
    }

    #[test]
    fn drain_returns_everything() {
        let mut v = VictimCache::new(4);
        v.insert(record(1, false));
        v.insert(record(2, true));
        let drained: Vec<_> = v.drain().collect();
        assert_eq!(drained.len(), 2);
        assert!(v.is_empty());
    }

    #[test]
    fn miss_returns_none() {
        let mut v = VictimCache::new(2);
        assert!(v.take(LineAddr(9)).is_none());
        assert_eq!(v.hits, 0);
    }
}
