//! Victim selection policies.
//!
//! The paper's machines use a direct-mapped L1 (no choice to make) and a
//! 4-way LRU L2. FIFO and random are provided for the associativity
//! ablations in `ppf-bench`.

use ppf_types::SplitMix64;

/// Replacement policy for a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// Evict the least-recently *used* way (stamp refreshed on every hit).
    Lru,
    /// Evict the oldest-*filled* way (stamp set at fill only).
    Fifo,
    /// Evict a uniformly random way.
    Random,
}

/// Per-cache replacement state: a monotone stamp source and an RNG for the
/// random policy. Kept outside the policy enum so `ReplacementPolicy` stays
/// `Copy` and configs stay comparable.
#[derive(Debug, Clone)]
pub struct ReplacementState {
    policy: ReplacementPolicy,
    next_stamp: u64,
    rng: SplitMix64,
}

impl ReplacementState {
    /// Create state for `policy`. `seed` only matters for `Random`.
    pub fn new(policy: ReplacementPolicy, seed: u64) -> Self {
        ReplacementState {
            policy,
            next_stamp: 1, // 0 is reserved for "never touched"
            rng: SplitMix64::new(seed),
        }
    }

    /// The policy this state drives.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Fresh monotone stamp (for fills, and for hits under LRU).
    #[inline]
    pub fn stamp(&mut self) -> u64 {
        let s = self.next_stamp;
        self.next_stamp += 1;
        s
    }

    /// Whether a hit should refresh the line's stamp.
    #[inline]
    pub fn touch_on_hit(&self) -> bool {
        matches!(self.policy, ReplacementPolicy::Lru)
    }

    /// Choose a victim way among `ways` candidate stamps (all valid).
    /// Smallest stamp loses for LRU/FIFO; Random ignores stamps.
    #[inline]
    pub fn victim(&mut self, stamps: &[u64]) -> usize {
        debug_assert!(!stamps.is_empty());
        match self.policy {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => {
                let mut best = 0;
                for (i, &s) in stamps.iter().enumerate().skip(1) {
                    if s < stamps[best] {
                        best = i;
                    }
                }
                best
            }
            ReplacementPolicy::Random => self.rng.below(stamps.len() as u64) as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_are_monotone_and_nonzero() {
        let mut st = ReplacementState::new(ReplacementPolicy::Lru, 0);
        let a = st.stamp();
        let b = st.stamp();
        assert!(a > 0);
        assert!(b > a);
    }

    #[test]
    fn lru_touches_on_hit_fifo_does_not() {
        assert!(ReplacementState::new(ReplacementPolicy::Lru, 0).touch_on_hit());
        assert!(!ReplacementState::new(ReplacementPolicy::Fifo, 0).touch_on_hit());
        assert!(!ReplacementState::new(ReplacementPolicy::Random, 0).touch_on_hit());
    }

    #[test]
    fn lru_victim_is_min_stamp() {
        let mut st = ReplacementState::new(ReplacementPolicy::Lru, 0);
        assert_eq!(st.victim(&[5, 2, 9, 3]), 1);
        assert_eq!(st.victim(&[1]), 0);
    }

    #[test]
    fn fifo_victim_is_min_stamp() {
        let mut st = ReplacementState::new(ReplacementPolicy::Fifo, 0);
        assert_eq!(st.victim(&[10, 20, 4, 30]), 2);
    }

    #[test]
    fn random_victim_in_range_and_covers_ways() {
        let mut st = ReplacementState::new(ReplacementPolicy::Random, 7);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = st.victim(&[1, 1, 1, 1]);
            assert!(v < 4);
            seen[v] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "random policy never chose some way"
        );
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut a = ReplacementState::new(ReplacementPolicy::Random, 42);
        let mut b = ReplacementState::new(ReplacementPolicy::Random, 42);
        for _ in 0..50 {
            assert_eq!(a.victim(&[0; 8]), b.victim(&[0; 8]));
        }
    }
}
