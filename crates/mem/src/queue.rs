//! The prefetch queue (Table 1: 64 entries).
//!
//! Prefetches that survive the pollution filter wait here for a free L1
//! port (Figure 3: "the prefetch queue contends the L1 cache ports with
//! normal L1 memory references"). The queue squashes duplicates — "all
//! duplicate prefetches are squashed automatically with no penalty" (§5.1)
//! — and drops new requests when full.

use ppf_types::{Cycle, LineAddr, PrefetchRequest};
use std::collections::VecDeque;

/// Outcome of offering a request to the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Request enqueued.
    Enqueued,
    /// Same target line already queued: squashed, no penalty.
    Duplicate,
    /// Queue full: request dropped.
    Overflow,
}

/// Bounded FIFO of pending prefetches with duplicate squashing.
#[derive(Debug, Clone)]
pub struct PrefetchQueue {
    q: VecDeque<PrefetchRequest>,
    cap: usize,
}

impl PrefetchQueue {
    /// A queue holding at most `cap` requests.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0);
        PrefetchQueue {
            q: VecDeque::with_capacity(cap),
            cap,
        }
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Pending requests.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True when no requests are pending.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// True if a request for `line` is already pending. The queue is small
    /// (64 entries) so a linear scan is cheaper than maintaining an index.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.q.iter().any(|r| r.line == line)
    }

    /// Offer a request.
    pub fn push(&mut self, req: PrefetchRequest) -> PushOutcome {
        if self.contains(req.line) {
            PushOutcome::Duplicate
        } else if self.q.len() >= self.cap {
            PushOutcome::Overflow
        } else {
            self.q.push_back(req);
            PushOutcome::Enqueued
        }
    }

    /// Take the oldest pending request.
    pub fn pop(&mut self) -> Option<PrefetchRequest> {
        self.q.pop_front()
    }

    /// Peek at the oldest pending request without removing it.
    pub fn front(&self) -> Option<&PrefetchRequest> {
        self.q.front()
    }

    /// Drop every pending request (used on pipeline flush ablations).
    pub fn clear(&mut self) {
        self.q.clear();
    }

    /// Next cycle the queue can act, for the skip-ahead kernel: a pending
    /// request wants a port every cycle, so a non-empty queue's next event
    /// is always the very next cycle; an empty queue schedules nothing
    /// (it only refills from core activity, which has its own events).
    pub fn next_event_cycle(&self, now: Cycle) -> Option<Cycle> {
        if self.q.is_empty() {
            None
        } else {
            Some(now + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppf_types::PrefetchSource;

    fn req(line: u64) -> PrefetchRequest {
        PrefetchRequest {
            line: LineAddr(line),
            trigger_pc: 0x400,
            source: PrefetchSource::Nsp,
            tenant: 0,
            depth: 0,
        }
    }

    #[test]
    fn fifo_order() {
        let mut q = PrefetchQueue::new(4);
        assert_eq!(q.push(req(1)), PushOutcome::Enqueued);
        assert_eq!(q.push(req(2)), PushOutcome::Enqueued);
        assert_eq!(q.pop().unwrap().line, LineAddr(1));
        assert_eq!(q.pop().unwrap().line, LineAddr(2));
        assert!(q.pop().is_none());
    }

    #[test]
    fn duplicates_squashed() {
        let mut q = PrefetchQueue::new(4);
        q.push(req(5));
        assert_eq!(q.push(req(5)), PushOutcome::Duplicate);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn overflow_drops() {
        let mut q = PrefetchQueue::new(2);
        q.push(req(1));
        q.push(req(2));
        assert_eq!(q.push(req(3)), PushOutcome::Overflow);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn contains_and_front() {
        let mut q = PrefetchQueue::new(4);
        assert!(!q.contains(LineAddr(9)));
        q.push(req(9));
        assert!(q.contains(LineAddr(9)));
        assert_eq!(q.front().unwrap().line, LineAddr(9));
        q.pop();
        assert!(!q.contains(LineAddr(9)));
    }

    #[test]
    fn clear_empties() {
        let mut q = PrefetchQueue::new(4);
        q.push(req(1));
        q.push(req(2));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.push(req(1)), PushOutcome::Enqueued);
    }

    #[test]
    fn dup_of_popped_line_is_allowed_again() {
        let mut q = PrefetchQueue::new(4);
        q.push(req(7));
        q.pop();
        assert_eq!(q.push(req(7)), PushOutcome::Enqueued);
    }
}
