//! Occupancy model of the shared L2 ↔ main-memory bus.
//!
//! Table 1 specifies a 64-byte-wide bus. Every line fill (and writeback)
//! between the L2 and memory occupies the bus for
//! `ceil(bytes / bus_bytes) * bus_cycle` core cycles; requests that arrive
//! while the bus is busy queue behind it. The paper's bandwidth argument —
//! filtered prefetches "alleviate the excessive memory bandwidth" — shows up
//! here as reduced `bus_busy_cycles` and queuing delay.

use ppf_types::{Cycle, MemConfig, SimStats};

/// A single shared bus with FIFO occupancy.
#[derive(Debug, Clone)]
pub struct Bus {
    bus_bytes: u32,
    bus_cycle: u64,
    next_free: Cycle,
}

impl Bus {
    /// Build from the memory config.
    pub fn new(cfg: &MemConfig) -> Self {
        assert!(cfg.bus_bytes > 0);
        assert!(cfg.bus_cycle > 0);
        Bus {
            bus_bytes: cfg.bus_bytes,
            bus_cycle: cfg.bus_cycle,
            next_free: 0,
        }
    }

    /// Cycle at which the bus next becomes free.
    pub fn next_free(&self) -> Cycle {
        self.next_free
    }

    /// The bus's next state change after `now` (it frees up), for the
    /// skip-ahead kernel's event calendar. `None` while idle.
    pub fn next_event_cycle(&self, now: Cycle) -> Option<Cycle> {
        (self.next_free > now).then_some(self.next_free)
    }

    /// Occupy the bus for a `bytes`-byte transfer requested at `now`.
    /// Returns the cycle at which the transfer completes; accounts traffic
    /// and busy time in `stats`.
    pub fn request(&mut self, now: Cycle, bytes: u32, stats: &mut SimStats) -> Cycle {
        let slots = bytes.div_ceil(self.bus_bytes) as u64;
        let busy = slots * self.bus_cycle;
        let start = now.max(self.next_free);
        self.next_free = start + busy;
        stats.bus_bytes += bytes as u64;
        stats.bus_busy_cycles += busy;
        self.next_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> Bus {
        Bus::new(&MemConfig {
            bus_bytes: 64,
            bus_cycle: 1,
            ..MemConfig::default()
        })
    }

    #[test]
    fn single_transfer_of_one_line() {
        let mut b = bus();
        let mut s = SimStats::default();
        // 32-byte line on a 64-byte bus: one slot.
        let done = b.request(10, 32, &mut s);
        assert_eq!(done, 11);
        assert_eq!(s.bus_bytes, 32);
        assert_eq!(s.bus_busy_cycles, 1);
    }

    #[test]
    fn wide_transfer_takes_multiple_slots() {
        let mut b = bus();
        let mut s = SimStats::default();
        let done = b.request(0, 200, &mut s); // ceil(200/64) = 4 slots
        assert_eq!(done, 4);
        assert_eq!(s.bus_busy_cycles, 4);
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut b = bus();
        let mut s = SimStats::default();
        let d1 = b.request(0, 64, &mut s);
        assert_eq!(d1, 1);
        // Second request at the same time queues behind the first.
        let d2 = b.request(0, 64, &mut s);
        assert_eq!(d2, 2);
        // A later request after the bus drained starts immediately.
        let d3 = b.request(10, 64, &mut s);
        assert_eq!(d3, 11);
    }

    #[test]
    fn slow_bus_cycle() {
        let mut b = Bus::new(&MemConfig {
            bus_bytes: 8,
            bus_cycle: 2,
            ..MemConfig::default()
        });
        let mut s = SimStats::default();
        let done = b.request(0, 32, &mut s); // 4 slots * 2 cycles
        assert_eq!(done, 8);
    }
}
