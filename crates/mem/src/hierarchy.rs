//! The assembled two-level memory hierarchy.
//!
//! Mirrors Figure 3 of the paper: demand accesses from the LSQ and pops from
//! the prefetch queue reach the L1 (port arbitration happens in the
//! simulator loop, which owns the [`crate::ports::PortArbiter`]); misses go
//! to the unified L2 and then over the shared bus to main memory. Prefetch
//! fills carry their provenance into the L1 line metadata; every L1 eviction
//! produces the `(address-or-PC, RIB)` feedback record the pollution filter
//! trains on.
//!
//! With the §5.5 dedicated prefetch buffer enabled, prefetches fill the
//! buffer instead of the L1; demand accesses probe L1 and buffer in
//! parallel, and a buffer hit promotes the line into the L1.

use crate::buffer::{BufferEvicted, PrefetchBuffer};
use crate::bus::Bus;
use crate::cache::{Cache, Evicted, FillKind, ProbeHit};
use crate::classify::MissClassifier;
use crate::dram::MainMemory;
use crate::mshr::MshrFile;
use crate::replacement::ReplacementPolicy;
use crate::victim::VictimCache;
use ppf_types::{Cycle, LineAddr, PrefetchOrigin, PrefetchRequest, SimStats, SystemConfig};

/// Who is looking up the L2 (statistics attribution only; all clients
/// share the port and the array).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum L2Client {
    /// Data-side demand miss (counted in Table 2's L2 statistics).
    DemandData,
    /// Hardware/software prefetch fetch.
    Prefetch,
    /// Instruction-side miss.
    Inst,
}

/// Demand access type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load (or the access half of a software prefetch turned demand).
    Load,
    /// A store; write-allocate, marks the line dirty.
    Store,
}

/// Everything a demand access produced, for the core (timing) and the
/// prefetchers/filter (events).
#[derive(Debug, Clone, Copy)]
pub struct AccessResult {
    /// Cycle at which the data is available to dependents.
    pub complete_at: Cycle,
    /// L1 hit?
    pub l1_hit: bool,
    /// L2 hit? `None` when the access never reached the L2.
    pub l2_hit: Option<bool>,
    /// L1 probe detail on a hit (PIB/RIB/NSP-tag view).
    pub l1_probe: Option<ProbeHit>,
    /// L1 eviction caused by this access's fill (filter feedback!).
    pub l1_evicted: Option<Evicted>,
    /// L2 eviction caused by this access's fill.
    pub l2_evicted: Option<Evicted>,
    /// Set when the access hit the dedicated prefetch buffer: the promoted
    /// line's provenance (a *good* prefetch).
    pub from_buffer: Option<PrefetchOrigin>,
    /// Set when the access was served by the victim cache (ablation): the
    /// recovered line's carried eviction record. A prefetched line
    /// recovered this way was referenced after all — a *good* prefetch.
    pub from_victim: Option<Evicted>,
}

/// Everything an issued prefetch produced.
#[derive(Debug, Clone, Copy)]
pub struct PrefetchIssue {
    /// Cycle at which the prefetched line is fully resident.
    pub complete_at: Cycle,
    /// True if the target was already resident (squashed; no fill happened).
    pub duplicate: bool,
    /// L1 eviction caused by the prefetch fill.
    pub l1_evicted: Option<Evicted>,
    /// L2 eviction caused by the prefetch fill.
    pub l2_evicted: Option<Evicted>,
    /// Eviction from the dedicated prefetch buffer (always a bad prefetch).
    pub buffer_evicted: Option<BufferEvicted>,
}

/// Two-level hierarchy with bus, memory, MSHRs and optional prefetch buffer.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// L1 data cache (public: the simulator and prefetchers probe it).
    pub l1: Cache,
    /// L1 instruction cache (Table 1: "L1 I/D 8KB").
    pub l1i: Cache,
    /// Unified L2 (public for SDP's shadow-directory access).
    pub l2: Cache,
    buffer: Option<PrefetchBuffer>,
    victim: Option<VictimCache>,
    bus: Bus,
    mem: MainMemory,
    mshr: MshrFile,
    l1_lat: u64,
    l2_lat: u64,
    line_bytes: u32,
    /// The L2's ports are a serially-occupied resource (Table 1: one
    /// port): each access holds a port for `l2_occupancy` cycles, so
    /// prefetch lookups queue behind (and in front of!) demand misses —
    /// the paper's "competition for finite bandwidth" (§1.3).
    l2_ports_free: Vec<Cycle>,
    l2_occupancy: u64,
    /// Shadow-tag miss classifiers for the (L1 data, L2 data-side) demand
    /// streams; allocated only when [`ppf_types::DiagnosticsConfig`]
    /// requests classification (see [`crate::classify`]).
    classify: Option<(MissClassifier, MissClassifier)>,
}

impl Hierarchy {
    /// Build the hierarchy described by `cfg`. `seed` feeds the random
    /// replacement policy if selected (the paper's L1 is direct-mapped and
    /// its L2 is LRU, so the default construction is deterministic anyway).
    pub fn new(cfg: &SystemConfig, seed: u64) -> Self {
        Hierarchy {
            l1: Cache::new(&cfg.l1, ReplacementPolicy::Lru, seed ^ 0x11),
            l1i: Cache::new(&cfg.l1i, ReplacementPolicy::Lru, seed ^ 0x33),
            l2: Cache::new(&cfg.l2, ReplacementPolicy::Lru, seed ^ 0x22),
            buffer: cfg
                .buffer
                .enabled
                .then(|| PrefetchBuffer::new(cfg.buffer.entries)),
            victim: cfg
                .victim
                .enabled
                .then(|| VictimCache::new(cfg.victim.entries)),
            bus: Bus::new(&cfg.mem),
            mem: MainMemory::new(&cfg.mem),
            mshr: MshrFile::default(),
            l1_lat: cfg.l1.hit_latency,
            l2_lat: cfg.l2.hit_latency,
            line_bytes: cfg.l1.line_bytes,
            l2_ports_free: vec![0; cfg.l2.ports.max(1)],
            l2_occupancy: 2,
            classify: cfg.diag.classify_misses.then(|| {
                (
                    MissClassifier::new(cfg.l1.lines()),
                    MissClassifier::new(cfg.l2.lines()),
                )
            }),
        }
    }

    /// Claim an L2 port at or after `now`; returns the cycle the access can
    /// begin. Ports are modelled as next-free timestamps (earliest wins).
    fn claim_l2_port(&mut self, now: Cycle) -> Cycle {
        let slot = self
            .l2_ports_free
            .iter_mut()
            .min()
            .expect("at least one L2 port");
        let start = now.max(*slot);
        *slot = start + self.l2_occupancy;
        start
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Whether the dedicated prefetch buffer is in use.
    pub fn has_buffer(&self) -> bool {
        self.buffer.is_some()
    }

    /// Fills still in flight at `now` — the interval-telemetry MSHR gauge
    /// (a read-only observation; never affects timing).
    pub fn mshr_live(&self, now: Cycle) -> usize {
        self.mshr.live(now)
    }

    /// Earliest future state change anywhere below the LSQ — MSHR fill
    /// completions, the shared bus freeing up, DRAM banks freeing up — for
    /// the skip-ahead kernel's event calendar. All three structures are
    /// passive (demand accesses *observe* their timestamps; nothing fires
    /// spontaneously), so these wake-ups are conservative: waking on them
    /// can only shorten a jump, never change machine state.
    pub fn next_event_cycle(&self, now: Cycle) -> Option<Cycle> {
        [
            self.mshr.next_event_cycle(now),
            self.bus.next_event_cycle(now),
            self.mem.next_event_cycle(now),
        ]
        .into_iter()
        .flatten()
        .min()
    }

    /// True if `line` is resident in the L1 or the prefetch buffer —
    /// the duplicate-squash predicate for incoming prefetches.
    pub fn prefetch_target_resident(&self, line: LineAddr) -> bool {
        self.l1.contains(line) || self.buffer.as_ref().is_some_and(|b| b.contains(line))
    }

    /// Bring `line` from L2/memory: returns the completion cycle, filling
    /// the L2 on a miss. `stats` L2 counters attribute the access to demand
    /// or prefetch via `is_prefetch`.
    fn fetch_from_l2(
        &mut self,
        line: LineAddr,
        now: Cycle,
        client: L2Client,
        stats: &mut SimStats,
    ) -> (Cycle, Option<bool>, Option<Evicted>) {
        // L1 lookup time is charged by the caller; the access then queues
        // for an L2 port (data, prefetch and instruction lookups share
        // them). Only data-side demand lookups enter the L2 *demand*
        // counters — Table 2's L2 column is data traffic — but every
        // client occupies the port and fills the shared array.
        let l2_start = self.claim_l2_port(now);
        let count = client == L2Client::DemandData;
        // The L2 shadows observe the same demand-data stream the L2 demand
        // counters attribute (hits included — LRU recency needs the full
        // stream); the kind is tallied only if this lookup misses.
        let l2_kind = if count {
            self.classify.as_mut().map(|(_, l2c)| l2c.access(line))
        } else {
            None
        };
        if count {
            stats.l2.demand_accesses += 1;
        }
        if self.l2.probe(line, false).is_some() {
            if count {
                stats.l2.demand_hits += 1;
            }
            return (l2_start + self.l2_lat, Some(true), None);
        }
        if count {
            stats.l2.demand_misses += 1;
            if let Some(kind) = l2_kind {
                kind.tally(&mut stats.l2.miss_class);
            }
        }
        // L2 miss: memory access then line transfer over the shared bus.
        let mem_done = self.mem.access(line, l2_start + self.l2_lat);
        let done = self.bus.request(mem_done, self.line_bytes, stats);
        let l2_evicted = self.l2.fill(line, FillKind::Demand);
        if client == L2Client::Prefetch {
            stats.l2.prefetch_fills += 1;
        }
        if let Some(ev) = &l2_evicted {
            stats.l2.evictions += 1;
            if ev.dirty {
                stats.l2.writebacks += 1;
                // Writeback to memory occupies the bus.
                self.bus.request(done, self.line_bytes, stats);
            }
        }
        (done, Some(false), l2_evicted)
    }

    /// Handle an L1 eviction's writeback: mark the line dirty in the L2, or
    /// send it straight to memory if the L2 no longer holds it. With the
    /// victim-cache ablation enabled, the evicted line parks there and the
    /// *final* eviction record (an older line aging out) is returned for
    /// filter feedback instead; without it, the record is final as-is.
    fn writeback_from_l1(
        &mut self,
        ev: &Evicted,
        now: Cycle,
        stats: &mut SimStats,
    ) -> Option<Evicted> {
        stats.l1.evictions += 1;
        if ev.dirty {
            stats.l1.writebacks += 1;
            if !self.l2.mark_dirty(ev.line) {
                // Victim no longer in L2 (non-inclusive hierarchy): write
                // through to memory.
                self.bus.request(now, self.line_bytes, stats);
            }
        }
        match &mut self.victim {
            Some(v) => v.insert(*ev),
            None => Some(*ev),
        }
    }

    /// An instruction fetch touching `line` at cycle `now`. Hits are free
    /// (fetch overlaps with the 1-cycle I-cache pipeline); misses fetch
    /// through the unified L2 — competing for its port with data traffic —
    /// and return the cycle the fetch group is available.
    pub fn inst_access(&mut self, line: LineAddr, now: Cycle, stats: &mut SimStats) -> Cycle {
        stats.l1i.demand_accesses += 1;
        if self.l1i.probe(line, false).is_some() {
            stats.l1i.demand_hits += 1;
            return now;
        }
        stats.l1i.demand_misses += 1;
        let (data_at, _, l2_evicted) = self.fetch_from_l2(line, now + 1, L2Client::Inst, stats);
        if let Some(ev) = &l2_evicted {
            let _ = ev; // unified L2 eviction already accounted by fetch_from_l2
        }
        if self.l1i.fill(line, FillKind::Demand).is_some() {
            stats.l1i.evictions += 1;
        }
        data_at
    }

    /// A demand load/store to `line` at cycle `now` (the caller has already
    /// won an L1 port for this cycle).
    pub fn demand_access(
        &mut self,
        line: LineAddr,
        kind: AccessKind,
        now: Cycle,
        stats: &mut SimStats,
    ) -> AccessResult {
        let is_write = matches!(kind, AccessKind::Store);
        stats.l1.demand_accesses += 1;
        // Shadow structures see every demand reference up front (their LRU
        // state must track the whole stream); the kind only lands in the
        // counters if the real L1 goes on to miss.
        let l1_kind = self.classify.as_mut().map(|(l1c, _)| l1c.access(line));

        // With the victim-cache ablation, a line can be in L1 *or* parked
        // in the victim cache; L1 is probed first as in Jouppi's design.
        if let Some(probe) = self.l1.probe(line, is_write) {
            stats.l1.demand_hits += 1;
            if probe.first_use {
                stats.l1.prefetch_first_use += 1;
            }
            // A hit on a line whose fill is still in flight waits for it.
            let base = now + self.l1_lat;
            let complete_at = match self.mshr.ready_at(line, now) {
                Some(ready) => base.max(ready),
                None => base,
            };
            return AccessResult {
                complete_at,
                l1_hit: true,
                l2_hit: None,
                l1_probe: Some(probe),
                l1_evicted: None,
                l2_evicted: None,
                from_buffer: None,
                from_victim: None,
            };
        }
        stats.l1.demand_misses += 1;
        if let Some(kind) = l1_kind {
            kind.tally(&mut stats.l1.miss_class);
        }

        // Victim-cache probe (one extra cycle, swap back into the L1).
        if let Some(victim) = &mut self.victim {
            if let Some(record) = victim.take(line) {
                let l1_evicted = self.l1.fill(line, FillKind::Demand);
                if is_write {
                    self.l1.mark_dirty(line);
                }
                let final_evicted = match l1_evicted {
                    Some(ev) => self.writeback_from_l1(&ev, now, stats),
                    None => None,
                };
                return AccessResult {
                    complete_at: now + self.l1_lat + 1,
                    l1_hit: false,
                    l2_hit: None,
                    l1_probe: None,
                    l1_evicted: final_evicted,
                    l2_evicted: None,
                    from_buffer: None,
                    from_victim: Some(record),
                };
            }
        }

        // Probe the dedicated prefetch buffer (parallel probe: no extra
        // latency beyond the L1 lookup).
        if let Some(buffer) = &mut self.buffer {
            if let Some(origin) = buffer.take(line) {
                stats.buffer_hits += 1;
                let l1_evicted = self.l1.fill(line, FillKind::Demand);
                if is_write {
                    self.l1.mark_dirty(line);
                }
                let final_evicted = match l1_evicted {
                    Some(ev) => self.writeback_from_l1(&ev, now, stats),
                    None => None,
                };
                return AccessResult {
                    complete_at: now + self.l1_lat,
                    l1_hit: false,
                    l2_hit: None,
                    l1_probe: None,
                    l1_evicted: final_evicted,
                    l2_evicted: None,
                    from_buffer: Some(origin),
                    from_victim: None,
                };
            }
        }

        // Miss: go to L2 (and memory beyond).
        let (data_at, l2_hit, l2_evicted) =
            self.fetch_from_l2(line, now + self.l1_lat, L2Client::DemandData, stats);
        let l1_evicted = self.l1.fill(line, FillKind::Demand);
        if is_write {
            self.l1.mark_dirty(line);
        }
        let final_evicted = match l1_evicted {
            Some(ev) => self.writeback_from_l1(&ev, now, stats),
            None => None,
        };
        self.mshr.insert(line, data_at, now);
        AccessResult {
            complete_at: data_at,
            l1_hit: false,
            l2_hit,
            l1_probe: None,
            l1_evicted: final_evicted,
            l2_evicted,
            from_buffer: None,
            from_victim: None,
        }
    }

    /// Issue a prefetch that already passed the pollution filter and won an
    /// L1 port at cycle `now`.
    pub fn issue_prefetch(
        &mut self,
        req: &PrefetchRequest,
        now: Cycle,
        stats: &mut SimStats,
    ) -> PrefetchIssue {
        if self.prefetch_target_resident(req.line) {
            // Duplicate slipped between enqueue and issue; squash.
            return PrefetchIssue {
                complete_at: now,
                duplicate: true,
                l1_evicted: None,
                l2_evicted: None,
                buffer_evicted: None,
            };
        }
        let (data_at, _l2_hit, l2_evicted) =
            self.fetch_from_l2(req.line, now + self.l1_lat, L2Client::Prefetch, stats);
        if let Some(ev) = &l2_evicted {
            // If the L2 victim is in the L1 we leave it (non-inclusive).
            let _ = ev;
        }
        let origin = req.origin();
        if let Some(buffer) = &mut self.buffer {
            let buffer_evicted = buffer.insert(req.line, origin);
            if buffer_evicted.is_some() {
                stats.buffer_bad_evictions += 1;
            }
            stats.l1.prefetch_fills += 1; // buffer stands in for the L1
            return PrefetchIssue {
                complete_at: data_at,
                duplicate: false,
                l1_evicted: None,
                l2_evicted,
                buffer_evicted,
            };
        }
        let l1_evicted = self.l1.fill(req.line, FillKind::Prefetch(origin));
        stats.l1.prefetch_fills += 1;
        let final_evicted = match l1_evicted {
            Some(ev) => self.writeback_from_l1(&ev, now, stats),
            None => None,
        };
        self.mshr.insert(req.line, data_at, now);
        PrefetchIssue {
            complete_at: data_at,
            duplicate: false,
            l1_evicted: final_evicted,
            l2_evicted,
            buffer_evicted: None,
        }
    }

    /// End-of-run census: report every resident L1 line and buffered line so
    /// prefetches that were never evicted are classified too. The L1 reports
    /// are routed through the same eviction records the filter trains on.
    pub fn drain_l1(&mut self) -> Vec<Evicted> {
        self.l1.drain().collect()
    }

    /// End-of-run census of the prefetch buffer.
    pub fn drain_buffer(&mut self) -> Vec<BufferEvicted> {
        match &mut self.buffer {
            Some(b) => b.drain().collect(),
            None => Vec::new(),
        }
    }

    /// End-of-run census of the victim cache (records parked there are
    /// final at the end of the run).
    pub fn drain_victim(&mut self) -> Vec<Evicted> {
        match &mut self.victim {
            Some(v) => v.drain().collect(),
            None => Vec::new(),
        }
    }

    /// Victim-cache statistics: (hits, aged-out lines); zeros without one.
    pub fn victim_stats(&self) -> (u64, u64) {
        self.victim
            .as_ref()
            .map(|v| (v.hits, v.final_evictions))
            .unwrap_or((0, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppf_types::{PrefetchSource, SystemConfig};

    fn hierarchy() -> (Hierarchy, SimStats) {
        let cfg = SystemConfig::paper_default();
        (Hierarchy::new(&cfg, 7), SimStats::default())
    }

    fn pf(line: u64) -> PrefetchRequest {
        PrefetchRequest {
            line: LineAddr(line),
            trigger_pc: 0x4400,
            source: PrefetchSource::Nsp,
            tenant: 0,
            depth: 0,
        }
    }

    #[test]
    fn cold_miss_goes_to_memory() {
        let (mut h, mut s) = hierarchy();
        let r = h.demand_access(LineAddr(10), AccessKind::Load, 0, &mut s);
        assert!(!r.l1_hit);
        assert_eq!(r.l2_hit, Some(false));
        // 1 (L1) + 15 (L2) + 150 (mem) + 1 (bus slot) = 167.
        assert_eq!(r.complete_at, 167);
        assert_eq!(s.l1.demand_misses, 1);
        assert_eq!(s.l2.demand_misses, 1);
        assert_eq!(s.bus_bytes, 32);
    }

    #[test]
    fn second_access_hits_l1_but_waits_for_fill() {
        let (mut h, mut s) = hierarchy();
        let r1 = h.demand_access(LineAddr(10), AccessKind::Load, 0, &mut s);
        // One cycle later the line is functionally present but still in
        // flight: the hit's completion is held to the fill time.
        let r2 = h.demand_access(LineAddr(10), AccessKind::Load, 1, &mut s);
        assert!(r2.l1_hit);
        assert_eq!(r2.complete_at, r1.complete_at);
        // Long after the fill, a hit costs one cycle.
        let r3 = h.demand_access(LineAddr(10), AccessKind::Load, 1000, &mut s);
        assert!(r3.l1_hit);
        assert_eq!(r3.complete_at, 1001);
    }

    #[test]
    fn l2_hit_costs_l1_plus_l2() {
        let (mut h, mut s) = hierarchy();
        h.demand_access(LineAddr(10), AccessKind::Load, 0, &mut s);
        // Evict line 10 from L1 via its direct-mapped conflict (256 sets).
        h.demand_access(LineAddr(10 + 256), AccessKind::Load, 500, &mut s);
        assert!(!h.l1.contains(LineAddr(10)));
        let r = h.demand_access(LineAddr(10), AccessKind::Load, 1000, &mut s);
        assert!(!r.l1_hit);
        assert_eq!(r.l2_hit, Some(true));
        assert_eq!(r.complete_at, 1000 + 1 + 15);
    }

    #[test]
    fn prefetch_fill_sets_provenance_and_feedback() {
        let (mut h, mut s) = hierarchy();
        let r = h.issue_prefetch(&pf(20), 0, &mut s);
        assert!(!r.duplicate);
        assert!(h.l1.contains(LineAddr(20)));
        assert_eq!(s.l1.prefetch_fills, 1);
        // Unreferenced: evict via conflict -> bad feedback record.
        let r2 = h.demand_access(LineAddr(20 + 256), AccessKind::Load, 500, &mut s);
        let ev = r2.l1_evicted.expect("conflict eviction");
        let (origin, referenced) = ev.prefetch.expect("prefetched line");
        assert_eq!(origin.line, LineAddr(20));
        assert_eq!(origin.trigger_pc, 0x4400);
        assert!(!referenced);
    }

    #[test]
    fn referenced_prefetch_reports_good() {
        let (mut h, mut s) = hierarchy();
        h.issue_prefetch(&pf(20), 0, &mut s);
        let r = h.demand_access(LineAddr(20), AccessKind::Load, 400, &mut s);
        assert!(r.l1_hit);
        assert!(r.l1_probe.unwrap().was_prefetched);
        assert!(r.l1_probe.unwrap().first_use);
        assert_eq!(s.l1.prefetch_first_use, 1);
        let r2 = h.demand_access(LineAddr(20 + 256), AccessKind::Load, 800, &mut s);
        let (_, referenced) = r2.l1_evicted.unwrap().prefetch.unwrap();
        assert!(referenced);
    }

    #[test]
    fn duplicate_prefetch_squashed() {
        let (mut h, mut s) = hierarchy();
        h.issue_prefetch(&pf(20), 0, &mut s);
        let r = h.issue_prefetch(&pf(20), 1, &mut s);
        assert!(r.duplicate);
        assert_eq!(s.l1.prefetch_fills, 1);
    }

    #[test]
    fn prefetch_hit_on_in_flight_line_waits() {
        let (mut h, mut s) = hierarchy();
        let p = h.issue_prefetch(&pf(30), 0, &mut s);
        assert!(p.complete_at > 100, "cold prefetch goes to memory");
        let r = h.demand_access(LineAddr(30), AccessKind::Load, 5, &mut s);
        assert!(r.l1_hit, "functionally present");
        assert_eq!(r.complete_at, p.complete_at, "but waits for the fill");
    }

    #[test]
    fn store_allocate_and_writeback_traffic() {
        let (mut h, mut s) = hierarchy();
        h.demand_access(LineAddr(40), AccessKind::Store, 0, &mut s);
        assert!(h.l1.contains(LineAddr(40)));
        let bus_before = s.bus_bytes;
        // Conflict-evict the dirty line: writeback marks L2 dirty (no bus).
        h.demand_access(LineAddr(40 + 256), AccessKind::Load, 500, &mut s);
        assert_eq!(s.l1.writebacks, 1);
        assert_eq!(s.bus_bytes, bus_before + 32, "only the new line's fill");
    }

    #[test]
    fn buffer_mode_prefetch_fills_buffer_not_l1() {
        let mut cfg = SystemConfig::paper_default();
        cfg.buffer.enabled = true;
        let mut h = Hierarchy::new(&cfg, 7);
        let mut s = SimStats::default();
        h.issue_prefetch(&pf(50), 0, &mut s);
        assert!(!h.l1.contains(LineAddr(50)));
        assert!(h.prefetch_target_resident(LineAddr(50)));
        // Demand access hits the buffer, promotes into L1.
        let r = h.demand_access(LineAddr(50), AccessKind::Load, 10, &mut s);
        assert!(!r.l1_hit);
        assert_eq!(r.from_buffer.unwrap().line, LineAddr(50));
        assert!(h.l1.contains(LineAddr(50)));
        assert_eq!(s.buffer_hits, 1);
    }

    #[test]
    fn buffer_overflow_reports_bad() {
        let mut cfg = SystemConfig::paper_default();
        cfg.buffer.enabled = true;
        cfg.buffer.entries = 2;
        let mut h = Hierarchy::new(&cfg, 7);
        let mut s = SimStats::default();
        h.issue_prefetch(&pf(1), 0, &mut s);
        h.issue_prefetch(&pf(2), 1, &mut s);
        let r = h.issue_prefetch(&pf(3), 2, &mut s);
        let ev = r.buffer_evicted.expect("LRU spill");
        assert_eq!(ev.origin.line, LineAddr(1));
        assert_eq!(s.buffer_bad_evictions, 1);
    }

    #[test]
    fn drain_reports_resident_prefetches() {
        let (mut h, mut s) = hierarchy();
        h.issue_prefetch(&pf(60), 0, &mut s);
        h.demand_access(LineAddr(61), AccessKind::Load, 10, &mut s);
        let drained = h.drain_l1();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained.iter().filter(|e| e.prefetch.is_some()).count(), 1);
        assert!(!h.l1.contains(LineAddr(60)));
    }

    #[test]
    fn victim_cache_catches_conflict_evictions() {
        let cfg = SystemConfig::paper_default().with_victim_cache(8);
        let mut h = Hierarchy::new(&cfg, 7);
        let mut s = SimStats::default();
        h.demand_access(LineAddr(10), AccessKind::Load, 0, &mut s);
        // Conflict-evict line 10 (same set, 256 sets apart)...
        h.demand_access(LineAddr(10 + 256), AccessKind::Load, 500, &mut s);
        assert!(!h.l1.contains(LineAddr(10)));
        // ...then re-demand it: served from the victim cache, fast.
        let r = h.demand_access(LineAddr(10), AccessKind::Load, 1000, &mut s);
        assert!(r.from_victim.is_some());
        assert_eq!(r.complete_at, 1000 + 1 + 1, "L1 latency + swap cycle");
        assert!(h.l1.contains(LineAddr(10)));
        assert_eq!(h.victim_stats().0, 1);
    }

    #[test]
    fn victim_cache_finalizes_aged_out_prefetch_records() {
        let mut cfg = SystemConfig::paper_default().with_victim_cache(1);
        cfg.prefetch.nsp = true;
        let mut h = Hierarchy::new(&cfg, 7);
        let mut s = SimStats::default();
        // Prefetch line 20, evict it unused, then push a second eviction
        // through the 1-entry victim cache: 20's record ages out as final.
        h.issue_prefetch(&pf(20), 0, &mut s);
        let r1 = h.demand_access(LineAddr(20 + 256), AccessKind::Load, 100, &mut s);
        assert!(r1.l1_evicted.is_none(), "record parked in the victim cache");
        h.demand_access(LineAddr(30), AccessKind::Load, 200, &mut s);
        let r2 = h.demand_access(LineAddr(30 + 256), AccessKind::Load, 300, &mut s);
        let final_ev = r2.l1_evicted.expect("aged-out record surfaces");
        assert_eq!(final_ev.line, LineAddr(20));
        let (origin, referenced) = final_ev.prefetch.expect("prefetched");
        assert_eq!(origin.line, LineAddr(20));
        assert!(!referenced, "never referenced: finally a bad prefetch");
    }

    #[test]
    fn recovered_prefetched_line_reports_through_from_victim() {
        let cfg = SystemConfig::paper_default().with_victim_cache(8);
        let mut h = Hierarchy::new(&cfg, 7);
        let mut s = SimStats::default();
        h.issue_prefetch(&pf(40), 0, &mut s);
        h.demand_access(LineAddr(40 + 256), AccessKind::Load, 100, &mut s);
        // The prefetched line was evicted unused but is demanded soon
        // after: the victim cache rescues it and the record says so.
        let r = h.demand_access(LineAddr(40), AccessKind::Load, 150, &mut s);
        let record = r.from_victim.expect("victim hit");
        let (origin, referenced) = record.prefetch.expect("prefetched line");
        assert_eq!(origin.line, LineAddr(40));
        assert!(!referenced, "RIB was still 0 when it was evicted");
    }

    #[test]
    fn miss_classification_off_by_default() {
        let (mut h, mut s) = hierarchy();
        h.demand_access(LineAddr(10), AccessKind::Load, 0, &mut s);
        assert_eq!(s.l1.demand_misses, 1);
        assert_eq!(s.l1.miss_class.total(), 0, "diagnostics default off");
    }

    #[test]
    fn miss_classification_splits_the_3cs() {
        let cfg = SystemConfig::paper_default().with_miss_classification();
        let mut h = Hierarchy::new(&cfg, 7);
        let mut s = SimStats::default();
        // Cold miss: compulsory at both levels.
        h.demand_access(LineAddr(10), AccessKind::Load, 0, &mut s);
        assert_eq!(s.l1.miss_class.compulsory, 1);
        assert_eq!(s.l2.miss_class.compulsory, 1);
        // Conflict-evict line 10 (direct-mapped L1, 256 sets), then
        // re-demand it: the 256-line fully-associative shadow still holds
        // both lines, so the re-miss is a conflict miss — and the L2 hit
        // means no new L2 classification.
        h.demand_access(LineAddr(10 + 256), AccessKind::Load, 500, &mut s);
        h.demand_access(LineAddr(10), AccessKind::Load, 1000, &mut s);
        assert_eq!(s.l1.miss_class.compulsory, 2);
        assert_eq!(s.l1.miss_class.conflict, 1);
        assert_eq!(s.l1.miss_class.capacity, 0);
        assert_eq!(s.l2.miss_class.total(), 2, "both cold lines, then a hit");
        // Every classified miss is a real miss.
        assert_eq!(s.l1.miss_class.total(), s.l1.demand_misses);
    }

    #[test]
    fn capacity_misses_need_an_oversubscribed_footprint() {
        let cfg = SystemConfig::paper_default().with_miss_classification();
        let mut h = Hierarchy::new(&cfg, 7);
        let mut s = SimStats::default();
        // Stream 2x the L1's 256 lines round-robin, twice: the second pass
        // misses everywhere, and LRU in the shadow keeps none of them.
        for pass in 0..2 {
            for n in 0..512u64 {
                h.demand_access(
                    LineAddr(n * 257),
                    AccessKind::Load,
                    1 + pass * 10_000 + n,
                    &mut s,
                );
            }
        }
        assert_eq!(s.l1.miss_class.compulsory, 512);
        assert!(
            s.l1.miss_class.capacity > 400,
            "second pass is capacity-bound: {:?}",
            s.l1.miss_class
        );
        assert_eq!(s.l1.miss_class.total(), s.l1.demand_misses);
    }

    #[test]
    fn prefetch_fills_do_not_perturb_classification() {
        let cfg = SystemConfig::paper_default().with_miss_classification();
        let mut h = Hierarchy::new(&cfg, 7);
        let mut s = SimStats::default();
        // A prefetch fills line 20; the later demand access hits the real
        // L1, so nothing is classified — and the shadow never saw the
        // prefetch either.
        h.issue_prefetch(&pf(20), 0, &mut s);
        let r = h.demand_access(LineAddr(20), AccessKind::Load, 400, &mut s);
        assert!(r.l1_hit);
        assert_eq!(s.l1.miss_class.total(), 0);
        // Evict it and demand it again: the shadow saw exactly one prior
        // reference (the demand hit above), so this miss is a conflict.
        h.demand_access(LineAddr(20 + 256), AccessKind::Load, 800, &mut s);
        h.demand_access(LineAddr(20), AccessKind::Load, 1200, &mut s);
        assert_eq!(s.l1.miss_class.conflict, 1);
    }

    #[test]
    fn bus_serializes_concurrent_misses() {
        let (mut h, mut s) = hierarchy();
        let r1 = h.demand_access(LineAddr(100), AccessKind::Load, 0, &mut s);
        let r2 = h.demand_access(LineAddr(200), AccessKind::Load, 0, &mut s);
        assert!(r2.complete_at > r1.complete_at, "second transfer queues");
    }
}
