//! Memory-hierarchy substrate for the PPF simulator.
//!
//! Everything the paper's evaluation machine needs below the core:
//!
//! * [`cache`] — set-associative caches whose lines carry the paper's
//!   **PIB** (Prefetch Indication Bit) and **RIB** (Reference Indication
//!   Bit) plus full prefetch provenance for eviction-time filter feedback.
//! * [`replacement`] — LRU / FIFO / random victim selection.
//! * [`ports`] — the per-cycle arbiter for the L1's universal ports, where
//!   the prefetch queue competes with demand accesses (§4, Figure 3).
//! * [`bus`] — occupancy model of the 64-byte L2↔memory bus.
//! * [`dram`] — fixed-leadoff-latency main memory.
//! * [`queue`] — the 64-entry prefetch queue with duplicate squashing.
//! * [`buffer`] — the §5.5 dedicated fully-associative prefetch buffer.
//! * [`mshr`] — a small outstanding-miss file so that hits on in-flight
//!   lines observe the fill's completion time.
//! * [`classify`] — optional shadow-tag structures splitting every demand
//!   miss into compulsory/capacity/conflict (the 3C taxonomy), enabled via
//!   [`ppf_types::DiagnosticsConfig`].
//! * [`hierarchy`] — the assembled two-level hierarchy.
//!
//! ## Timing model
//!
//! The hierarchy is *functionally immediate, timing deferred*: state changes
//! (fills, evictions, LRU updates) apply at access time, while the returned
//! completion cycle carries the latency. Hits on lines whose fill is still
//! in flight are held to the fill's completion time via the MSHR file. This
//! is the same discipline SimpleScalar's `sim-outorder` cache module uses
//! and keeps the simulator single-pass.

#![warn(missing_docs)]

pub mod buffer;
pub mod bus;
pub mod cache;
pub mod classify;
pub mod dram;
pub mod hierarchy;
pub mod mshr;
pub mod ports;
pub mod queue;
pub mod replacement;
pub mod victim;

pub use buffer::PrefetchBuffer;
pub use bus::Bus;
pub use cache::{Cache, Evicted, FillKind, LineState, ProbeHit, TenantAttribution};
pub use classify::{MissClassifier, MissKind};
pub use dram::MainMemory;
pub use hierarchy::{AccessKind, AccessResult, Hierarchy, PrefetchIssue};
pub use mshr::MshrFile;
pub use ports::PortArbiter;
pub use queue::PrefetchQueue;
pub use replacement::ReplacementPolicy;
pub use victim::VictimCache;
