//! Per-cycle arbitration for the L1's universal cache ports.
//!
//! Table 1's machine has 3 universal (read/write) L1 ports. Demand accesses
//! from the LSQ and pops from the prefetch queue compete for them each cycle
//! — this competition is one of the two costs of bad prefetches the paper
//! identifies (§1.3), and it is what the §5.4 port sweep varies.
//!
//! The arbiter is intentionally simple: a per-cycle grant counter that
//! resets whenever a new cycle begins. Priority is enforced by *call order*
//! (the simulator offers demand accesses before prefetch pops each cycle),
//! matching the paper's design where the prefetch queue waits for free
//! ports.

use ppf_types::Cycle;

/// Grant counter for one cache's ports.
#[derive(Debug, Clone)]
pub struct PortArbiter {
    ports: usize,
    current_cycle: Cycle,
    used: usize,
}

impl PortArbiter {
    /// An arbiter for `ports` universal ports. `ports` must be nonzero.
    pub fn new(ports: usize) -> Self {
        assert!(ports > 0, "a cache needs at least one port");
        PortArbiter {
            ports,
            current_cycle: 0,
            used: 0,
        }
    }

    /// Total ports.
    pub fn ports(&self) -> usize {
        self.ports
    }

    #[inline]
    fn roll(&mut self, now: Cycle) {
        if now != self.current_cycle {
            debug_assert!(now > self.current_cycle, "time went backwards");
            self.current_cycle = now;
            self.used = 0;
        }
    }

    /// Try to take one port in cycle `now`. Returns false when all ports in
    /// this cycle are already granted.
    #[inline]
    pub fn try_acquire(&mut self, now: Cycle) -> bool {
        self.roll(now);
        if self.used < self.ports {
            self.used += 1;
            true
        } else {
            false
        }
    }

    /// Ports still free in cycle `now`.
    #[inline]
    pub fn free(&mut self, now: Cycle) -> usize {
        self.roll(now);
        self.ports - self.used
    }

    /// True if every port in cycle `now` has been granted.
    #[inline]
    pub fn saturated(&mut self, now: Cycle) -> bool {
        self.free(now) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_up_to_port_count() {
        let mut a = PortArbiter::new(3);
        assert!(a.try_acquire(1));
        assert!(a.try_acquire(1));
        assert!(a.try_acquire(1));
        assert!(!a.try_acquire(1), "4th grant in one cycle must fail");
    }

    #[test]
    fn resets_on_new_cycle() {
        let mut a = PortArbiter::new(1);
        assert!(a.try_acquire(1));
        assert!(!a.try_acquire(1));
        assert!(a.try_acquire(2), "new cycle frees the ports");
    }

    #[test]
    fn free_counts_down() {
        let mut a = PortArbiter::new(2);
        assert_eq!(a.free(5), 2);
        a.try_acquire(5);
        assert_eq!(a.free(5), 1);
        a.try_acquire(5);
        assert_eq!(a.free(5), 0);
        assert!(a.saturated(5));
        assert_eq!(a.free(6), 2);
    }

    #[test]
    #[should_panic]
    fn zero_ports_rejected() {
        PortArbiter::new(0);
    }
}
