//! Per-cycle arbitration for the L1's universal cache ports.
//!
//! Table 1's machine has 3 universal (read/write) L1 ports. Demand accesses
//! from the LSQ and pops from the prefetch queue compete for them each cycle
//! — this competition is one of the two costs of bad prefetches the paper
//! identifies (§1.3), and it is what the §5.4 port sweep varies.
//!
//! The arbiter is intentionally simple: a per-cycle grant counter that
//! resets whenever a new cycle begins (forward only — stale timestamps
//! never refresh the budget). Priority is enforced by *call order*
//! (the simulator offers demand accesses before prefetch pops each cycle),
//! matching the paper's design where the prefetch queue waits for free
//! ports.

use ppf_types::Cycle;

/// Grant counter for one cache's ports.
#[derive(Debug, Clone)]
pub struct PortArbiter {
    ports: usize,
    current_cycle: Cycle,
    used: usize,
}

impl PortArbiter {
    /// An arbiter for `ports` universal ports. `ports` must be nonzero.
    pub fn new(ports: usize) -> Self {
        assert!(ports > 0, "a cache needs at least one port");
        PortArbiter {
            ports,
            current_cycle: 0,
            used: 0,
        }
    }

    /// Total ports.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Advance the grant counter to cycle `now`. The counter only ever
    /// rolls *forward*: a stale `now` (time went backwards) must not reset
    /// `used`, or a single mid-cycle query with an old timestamp would
    /// silently refresh every port and let the caller exceed the per-cycle
    /// budget — exactly the over-grant the `debug_assert` used to catch
    /// only in debug builds.
    #[inline]
    fn roll(&mut self, now: Cycle) {
        if now > self.current_cycle {
            self.current_cycle = now;
            self.used = 0;
        }
    }

    /// Try to take one port in cycle `now`. Returns false when all ports in
    /// this cycle are already granted, or when `now` is a stale cycle — in
    /// every build profile a backwards timestamp is treated as saturated
    /// rather than resetting the grant counter.
    #[inline]
    pub fn try_acquire(&mut self, now: Cycle) -> bool {
        if now < self.current_cycle {
            return false;
        }
        self.roll(now);
        if self.used < self.ports {
            self.used += 1;
            true
        } else {
            false
        }
    }

    /// Return one grant taken in cycle `now` (the caller acquired a port
    /// and then discovered the access was unnecessary — e.g. a prefetch
    /// target that turned out to be resident, which §5.1 requires to cost
    /// nothing). A release for a cycle other than the one the grant was
    /// taken in is a no-op: the budget of a past cycle is gone either way,
    /// and a future cycle's budget was never touched.
    #[inline]
    pub fn release(&mut self, now: Cycle) {
        if now == self.current_cycle && self.used > 0 {
            self.used -= 1;
        }
    }

    /// Ports still free in cycle `now`. A pure read: querying never rolls
    /// the grant counter. A future cycle reports every port free; a stale
    /// cycle reports zero (matching [`PortArbiter::try_acquire`]'s refusal
    /// to grant on a backwards timestamp).
    #[inline]
    pub fn free(&self, now: Cycle) -> usize {
        if now > self.current_cycle {
            self.ports
        } else if now == self.current_cycle {
            self.ports - self.used
        } else {
            0
        }
    }

    /// True if no port can be granted in cycle `now`.
    #[inline]
    pub fn saturated(&self, now: Cycle) -> bool {
        self.free(now) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_up_to_port_count() {
        let mut a = PortArbiter::new(3);
        assert!(a.try_acquire(1));
        assert!(a.try_acquire(1));
        assert!(a.try_acquire(1));
        assert!(!a.try_acquire(1), "4th grant in one cycle must fail");
    }

    #[test]
    fn resets_on_new_cycle() {
        let mut a = PortArbiter::new(1);
        assert!(a.try_acquire(1));
        assert!(!a.try_acquire(1));
        assert!(a.try_acquire(2), "new cycle frees the ports");
    }

    #[test]
    fn free_counts_down() {
        let mut a = PortArbiter::new(2);
        assert_eq!(a.free(5), 2);
        a.try_acquire(5);
        assert_eq!(a.free(5), 1);
        a.try_acquire(5);
        assert_eq!(a.free(5), 0);
        assert!(a.saturated(5));
        assert_eq!(a.free(6), 2);
    }

    #[test]
    #[should_panic]
    fn zero_ports_rejected() {
        PortArbiter::new(0);
    }

    #[test]
    fn stale_cycle_cannot_exceed_port_budget() {
        // Regression: `roll` used to reset `used = 0` on *any* cycle
        // change, so a stale-cycle acquire (or even a read through
        // `free`/`saturated`) mid-cycle silently refreshed all ports and
        // over-granted L1 bandwidth in release builds.
        let mut a = PortArbiter::new(2);
        assert!(a.try_acquire(10));
        assert!(a.try_acquire(10));
        assert!(!a.try_acquire(10), "budget spent at cycle 10");
        // A backwards timestamp must not grant and must not reset state.
        assert!(!a.try_acquire(9), "stale acquire must be rejected");
        assert_eq!(a.free(9), 0, "stale cycle reads as saturated");
        assert!(a.saturated(9));
        // The current cycle is still exhausted afterwards.
        assert!(!a.try_acquire(10), "stale traffic must not refresh ports");
        assert_eq!(a.free(10), 0);
        // Rolling forward still frees the ports as before.
        assert!(a.try_acquire(11));
    }

    #[test]
    fn reads_do_not_roll_the_counter() {
        let mut a = PortArbiter::new(1);
        assert!(a.try_acquire(3));
        // A read with a future timestamp reports full availability but
        // must not advance the arbiter: the grant budget of cycle 3 is
        // still spent, and cycle 4's budget is untouched until an acquire.
        assert_eq!(a.free(4), 1);
        assert!(!a.try_acquire(3), "query must not have reset cycle 3");
        assert!(a.try_acquire(4));
    }
}
