//! Set-associative cache with the paper's per-line PIB/RIB metadata.
//!
//! Each line carries, beyond the usual valid/tag/dirty state:
//!
//! * **PIB** — Prefetch Indication Bit: line was brought in by a prefetch.
//! * **RIB** — Reference Indication Bit: a prefetched line was referenced at
//!   least once during its residency (valid only while PIB is set).
//! * The full [`PrefetchOrigin`] (target line, trigger PC, source), which is
//!   what lets eviction-time feedback reach the right history-table entry.
//! * The **NSP tag bit** used by next-sequence prefetching: set on prefetch
//!   fill, consumed by the first demand hit to re-trigger the prefetcher.
//!
//! The eviction report [`Evicted`] is the filter's only training input, as in
//! the paper: "Whenever a cache line is replaced and evicted from the L1, its
//! corresponding PIB is checked... The address of the cache line or the PC
//! together with the RIB are passed to the pollution filter" (§4).

use crate::replacement::{ReplacementPolicy, ReplacementState};
use ppf_types::{CacheConfig, LineAddr, PrefetchOrigin, MAX_TENANTS, TENANT_ADDR_SHIFT};

/// How a line is being filled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillKind {
    /// Demand miss fill: PIB = 0.
    Demand,
    /// Prefetch fill: PIB = 1, RIB = 0, provenance attached, NSP tag set.
    Prefetch(PrefetchOrigin),
}

/// What a successful probe saw (state *before* the probe's side effects).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeHit {
    /// The line was brought in by a prefetch (PIB set).
    pub was_prefetched: bool,
    /// This probe is the line's first reference since the prefetch fill
    /// (the RIB 0→1 edge) — the paper's "good prefetch" moment.
    pub first_use: bool,
    /// The NSP tag bit was set; the probe consumed (cleared) it.
    pub nsp_tagged: bool,
}

/// Eviction report passed to the pollution filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The evicted line.
    pub line: LineAddr,
    /// Line was dirty (writeback needed).
    pub dirty: bool,
    /// If the line was prefetched: its provenance and whether it was ever
    /// referenced (the RIB value at eviction).
    pub prefetch: Option<(PrefetchOrigin, bool)>,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    valid: bool,
    /// Full line number (the set index is recomputed from it; simpler and
    /// no narrower than a real tag for a simulator).
    line: LineAddr,
    dirty: bool,
    pib: bool,
    rib: bool,
    nsp_tag: bool,
    origin: Option<PrefetchOrigin>,
    stamp: u64,
}

const INVALID: Line = Line {
    valid: false,
    line: LineAddr(0),
    dirty: false,
    pib: false,
    rib: false,
    nsp_tag: false,
    origin: None,
    stamp: 0,
};

impl Line {
    fn evict_report(&self) -> Evicted {
        Evicted {
            line: self.line,
            dirty: self.dirty,
            prefetch: if self.pib {
                // A prefetched line always has its origin attached; the
                // `unwrap_or` guards the (unreachable) inconsistent state.
                Some((
                    self.origin.unwrap_or(PrefetchOrigin {
                        line: self.line,
                        trigger_pc: 0,
                        source: ppf_types::PrefetchSource::Nsp,
                        tenant: 0,
                        depth: 0,
                    }),
                    self.rib,
                ))
            } else {
                None
            },
        }
    }
}

/// Observable metadata of one resident line — the cache's architectural
/// state minus replacement bookkeeping. Snapshot type for differential
/// checking (`ppf-oracle`) and diagnostics; replacement stamps are
/// deliberately excluded because they are an implementation detail the
/// reference models must not depend on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineState {
    /// The resident line.
    pub line: LineAddr,
    /// Writeback needed on eviction.
    pub dirty: bool,
    /// Prefetch Indication Bit.
    pub pib: bool,
    /// Reference Indication Bit.
    pub rib: bool,
    /// NSP re-trigger tag.
    pub nsp_tag: bool,
    /// Prefetch provenance (set iff PIB).
    pub origin: Option<PrefetchOrigin>,
}

/// Per-tenant attribution of prefetch outcomes and eviction pressure
/// (DESIGN.md §12). Indexed by the tenant IDs carried in prefetch
/// provenance / encoded in the address region, so a hostile tenant's bad
/// prefetches and the conflict evictions it inflicts on other tenants are
/// charged to *it* rather than diluted into global counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantAttribution {
    /// Referenced (RIB=1) prefetched lines retired, per owning tenant.
    pub prefetch_good: [u64; MAX_TENANTS],
    /// Unreferenced (RIB=0) prefetched lines retired, per owning tenant.
    pub prefetch_bad: [u64; MAX_TENANTS],
    /// Conflict evictions: `cross_evictions[victim][evictor]` counts valid
    /// lines of tenant `victim` displaced by a fill from tenant `evictor`.
    /// Off-diagonal mass is inter-tenant interference.
    pub cross_evictions: [[u64; MAX_TENANTS]; MAX_TENANTS],
}

impl TenantAttribution {
    /// Evictions of `victim`'s lines caused by *other* tenants.
    pub fn inflicted_on(&self, victim: u8) -> u64 {
        let v = victim as usize % MAX_TENANTS;
        (0..MAX_TENANTS)
            .filter(|&e| e != v)
            .map(|e| self.cross_evictions[v][e])
            .sum()
    }
}

/// Widest associativity whose replacement stamps fit the fill path's
/// stack buffer (covers every configured geometry; wider falls back to a
/// heap collect).
const STAMP_BUF_WAYS: usize = 16;

/// A set-associative cache with PIB/RIB line metadata.
#[derive(Debug, Clone)]
pub struct Cache {
    lines: Box<[Line]>,
    sets: usize,
    ways: usize,
    set_mask: u64,
    repl: ReplacementState,
    /// Right-shift that exposes the tenant bits of a *line* address
    /// (`TENANT_ADDR_SHIFT` minus the line-offset bits).
    tenant_shift: u32,
    attribution: TenantAttribution,
}

impl Cache {
    /// Build a cache from `cfg` (validated by the caller / `SystemConfig`).
    pub fn new(cfg: &CacheConfig, policy: ReplacementPolicy, seed: u64) -> Self {
        let sets = cfg.sets();
        let ways = cfg.ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(ways > 0);
        Cache {
            lines: vec![INVALID; sets * ways].into_boxed_slice(),
            sets,
            ways,
            set_mask: (sets - 1) as u64,
            repl: ReplacementState::new(policy, seed),
            tenant_shift: TENANT_ADDR_SHIFT.saturating_sub(cfg.line_bytes.max(1).trailing_zeros()),
            attribution: TenantAttribution::default(),
        }
    }

    /// Tenant owning a resident line: the prefetch provenance when the line
    /// was prefetched (authoritative), else the tenant bits of its address
    /// region — the same derivation [`ppf_types::tenant_of_addr`] performs
    /// on byte addresses.
    #[inline]
    fn tenant_of_line(&self, line: LineAddr) -> u8 {
        ((line.0 >> self.tenant_shift) as usize & (MAX_TENANTS - 1)) as u8
    }

    /// Per-tenant prefetch-outcome and interference counters.
    pub fn tenant_attribution(&self) -> &TenantAttribution {
        &self.attribution
    }

    /// Charge a retiring line's prefetch outcome to its owning tenant.
    #[inline]
    fn attribute_retirement(&mut self, victim: &Line) {
        if victim.pib {
            let t = victim
                .origin
                .map(|o| o.tenant as usize % MAX_TENANTS)
                .unwrap_or(0);
            if victim.rib {
                self.attribution.prefetch_good[t] += 1;
            } else {
                self.attribution.prefetch_bad[t] += 1;
            }
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    #[inline]
    fn set_range(&self, line: LineAddr) -> std::ops::Range<usize> {
        let set = (line.0 & self.set_mask) as usize;
        let base = set * self.ways;
        base..base + self.ways
    }

    #[inline]
    fn find(&self, line: LineAddr) -> Option<usize> {
        self.set_range(line)
            .find(|&i| self.lines[i].valid && self.lines[i].line == line)
    }

    /// Non-mutating presence check (no LRU/RIB side effects). Used for
    /// duplicate-prefetch squashing.
    #[inline]
    pub fn contains(&self, line: LineAddr) -> bool {
        self.find(line).is_some()
    }

    /// Demand reference to `line`. On a hit: refreshes replacement stamp
    /// (LRU), sets RIB on prefetched lines, consumes the NSP tag bit, and
    /// optionally marks the line dirty (`is_write`). Returns `None` on miss.
    pub fn probe(&mut self, line: LineAddr, is_write: bool) -> Option<ProbeHit> {
        let idx = self.find(line)?;
        let touch = self.repl.touch_on_hit();
        let stamp = if touch { self.repl.stamp() } else { 0 };
        let l = &mut self.lines[idx];
        let hit = ProbeHit {
            was_prefetched: l.pib,
            first_use: l.pib && !l.rib,
            nsp_tagged: l.nsp_tag,
        };
        if l.pib {
            l.rib = true;
        }
        l.nsp_tag = false;
        if is_write {
            l.dirty = true;
        }
        if touch {
            l.stamp = stamp;
        }
        Some(hit)
    }

    /// Install `line`. Returns the eviction report if a valid line was
    /// displaced. Filling a line that is already present refreshes its
    /// metadata in place (this happens when a demand miss races a prefetch
    /// in the simulator's functional-immediate model) and evicts nothing.
    pub fn fill(&mut self, line: LineAddr, kind: FillKind) -> Option<Evicted> {
        let stamp = self.repl.stamp();
        if let Some(idx) = self.find(line) {
            // Already resident: a demand fill of a prefetched line counts as
            // a reference; a prefetch fill of a resident line is a no-op
            // (the queue squashes these, but be safe).
            let l = &mut self.lines[idx];
            if matches!(kind, FillKind::Demand) && l.pib {
                l.rib = true;
                l.nsp_tag = false;
            }
            l.stamp = stamp;
            return None;
        }
        let range = self.set_range(line);
        // Prefer an invalid way; otherwise ask the policy for a victim.
        let idx = match self.lines[range.clone()].iter().position(|l| !l.valid) {
            Some(off) => range.start + off,
            None if self.ways <= STAMP_BUF_WAYS => {
                // Common geometries stay on the stack: a conflict eviction
                // happens on every steady-state miss fill, so a heap
                // allocation here is a per-miss malloc.
                let mut stamps = [0u64; STAMP_BUF_WAYS];
                for (s, l) in stamps.iter_mut().zip(&self.lines[range.clone()]) {
                    *s = l.stamp;
                }
                range.start + self.repl.victim(&stamps[..self.ways])
            }
            None => {
                let stamps: Vec<u64> = self.lines[range.clone()].iter().map(|l| l.stamp).collect();
                range.start + self.repl.victim(&stamps)
            }
        };
        let victim = self.lines[idx];
        let report = victim.valid.then(|| victim.evict_report());
        if victim.valid {
            let v = victim
                .origin
                .filter(|_| victim.pib)
                .map(|o| o.tenant)
                .unwrap_or_else(|| self.tenant_of_line(victim.line));
            let evictor = match kind {
                FillKind::Prefetch(o) => o.tenant,
                FillKind::Demand => self.tenant_of_line(line),
            };
            self.attribution.cross_evictions[v as usize % MAX_TENANTS]
                [evictor as usize % MAX_TENANTS] += 1;
            self.attribute_retirement(&victim);
        }
        self.lines[idx] = match kind {
            FillKind::Demand => Line {
                valid: true,
                line,
                dirty: false,
                pib: false,
                rib: false,
                nsp_tag: false,
                origin: None,
                stamp,
            },
            FillKind::Prefetch(origin) => Line {
                valid: true,
                line,
                dirty: false,
                pib: true,
                rib: false,
                nsp_tag: true,
                origin: Some(origin),
                stamp,
            },
        };
        report
    }

    /// Mark a resident line dirty (writeback path from an inner level).
    /// Returns false if the line is not resident.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        match self.find(line) {
            Some(idx) => {
                self.lines[idx].dirty = true;
                true
            }
            None => false,
        }
    }

    /// Remove `line` if present, returning its eviction report.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<Evicted> {
        let idx = self.find(line)?;
        let victim = self.lines[idx];
        let report = victim.evict_report();
        self.attribute_retirement(&victim);
        self.lines[idx] = INVALID;
        Some(report)
    }

    /// Number of currently valid lines.
    pub fn valid_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Snapshot of every resident line's observable state, sorted by line
    /// number. Cheap state-inspection hook for the differential oracle.
    pub fn resident_lines(&self) -> Vec<LineState> {
        let mut out: Vec<LineState> = self
            .lines
            .iter()
            .filter(|l| l.valid)
            .map(|l| LineState {
                line: l.line,
                dirty: l.dirty,
                pib: l.pib,
                rib: l.rib,
                nsp_tag: l.nsp_tag,
                origin: l.origin,
            })
            .collect();
        out.sort_by_key(|l| l.line.0);
        out
    }

    /// Iterate eviction reports for all resident lines, invalidating them.
    /// Used at end-of-run so the good/bad prefetch census covers lines that
    /// never got evicted (Figure 1's census is over *all* prefetches).
    pub fn drain(&mut self) -> impl Iterator<Item = Evicted> + '_ {
        let attribution = &mut self.attribution;
        self.lines.iter_mut().filter(|l| l.valid).map(move |l| {
            if l.pib {
                let t = l
                    .origin
                    .map(|o| o.tenant as usize % MAX_TENANTS)
                    .unwrap_or(0);
                if l.rib {
                    attribution.prefetch_good[t] += 1;
                } else {
                    attribution.prefetch_bad[t] += 1;
                }
            }
            let report = l.evict_report();
            *l = INVALID;
            report
        })
    }

    /// Debug/test helper: assert internal invariants (no duplicate tags in a
    /// set; every valid line maps to the set it is stored in; PIB lines have
    /// an origin; RIB implies PIB).
    pub fn check_invariants(&self) -> Result<(), String> {
        for set in 0..self.sets {
            let base = set * self.ways;
            for i in 0..self.ways {
                let l = &self.lines[base + i];
                if !l.valid {
                    continue;
                }
                if (l.line.0 & self.set_mask) as usize != set {
                    return Err(format!("line {} stored in wrong set {}", l.line, set));
                }
                if l.pib && l.origin.is_none() {
                    return Err(format!("PIB line {} has no origin", l.line));
                }
                if l.rib && !l.pib {
                    return Err(format!("RIB without PIB on line {}", l.line));
                }
                for j in (i + 1)..self.ways {
                    let m = &self.lines[base + j];
                    if m.valid && m.line == l.line {
                        return Err(format!("duplicate line {} in set {}", l.line, set));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppf_types::{PrefetchSource, SplitMix64};

    fn cfg(size: usize, ways: usize) -> CacheConfig {
        CacheConfig {
            size_bytes: size,
            line_bytes: 32,
            ways,
            hit_latency: 1,
            ports: 1,
        }
    }

    fn origin(line: LineAddr) -> PrefetchOrigin {
        PrefetchOrigin {
            line,
            trigger_pc: 0x1000,
            source: PrefetchSource::Nsp,
            tenant: 0,
            depth: 0,
        }
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = Cache::new(&cfg(1024, 1), ReplacementPolicy::Lru, 0);
        let l = LineAddr(5);
        assert!(c.probe(l, false).is_none());
        assert!(c.fill(l, FillKind::Demand).is_none());
        let hit = c.probe(l, false).expect("hit after fill");
        assert!(!hit.was_prefetched);
        assert!(!hit.first_use);
        assert!(!hit.nsp_tagged);
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        // 1KB direct-mapped, 32B lines => 32 sets; lines 1 and 33 collide.
        let mut c = Cache::new(&cfg(1024, 1), ReplacementPolicy::Lru, 0);
        c.fill(LineAddr(1), FillKind::Demand);
        let ev = c
            .fill(LineAddr(33), FillKind::Demand)
            .expect("conflict eviction");
        assert_eq!(ev.line, LineAddr(1));
        assert!(!ev.dirty);
        assert!(ev.prefetch.is_none());
        assert!(!c.contains(LineAddr(1)));
        assert!(c.contains(LineAddr(33)));
    }

    #[test]
    fn prefetch_fill_sets_pib_and_nsp_tag() {
        let mut c = Cache::new(&cfg(1024, 1), ReplacementPolicy::Lru, 0);
        let l = LineAddr(7);
        c.fill(l, FillKind::Prefetch(origin(l)));
        let hit = c.probe(l, false).unwrap();
        assert!(hit.was_prefetched);
        assert!(hit.first_use, "first touch is the RIB 0->1 edge");
        assert!(hit.nsp_tagged, "NSP tag visible to first touch");
        // Second touch: RIB already set, tag consumed.
        let hit2 = c.probe(l, false).unwrap();
        assert!(hit2.was_prefetched);
        assert!(!hit2.first_use);
        assert!(!hit2.nsp_tagged);
    }

    #[test]
    fn evicted_prefetched_line_reports_rib() {
        let mut c = Cache::new(&cfg(1024, 1), ReplacementPolicy::Lru, 0);
        let a = LineAddr(2);
        let b = LineAddr(34); // same set
                              // Unreferenced prefetch -> bad.
        c.fill(a, FillKind::Prefetch(origin(a)));
        let ev = c.fill(b, FillKind::Demand).unwrap();
        let (o, referenced) = ev.prefetch.expect("prefetched line");
        assert_eq!(o.line, a);
        assert!(!referenced);
        // Referenced prefetch -> good.
        c.fill(a, FillKind::Prefetch(origin(a)));
        c.probe(a, false);
        let ev = c.fill(b, FillKind::Demand).unwrap();
        // b was demand; victim must be a (same set, LRU: b touched later).
        let (_, referenced) = ev.prefetch.expect("prefetched line evicted");
        assert!(referenced);
    }

    #[test]
    fn store_hit_marks_dirty_and_writeback_reported() {
        let mut c = Cache::new(&cfg(1024, 1), ReplacementPolicy::Lru, 0);
        c.fill(LineAddr(3), FillKind::Demand);
        c.probe(LineAddr(3), true);
        let ev = c.fill(LineAddr(35), FillKind::Demand).unwrap();
        assert!(ev.dirty, "dirty line must request writeback");
    }

    #[test]
    fn lru_prefers_least_recently_used_way() {
        // 2-way, 2 sets: 128 bytes / 32B = 4 lines.
        let mut c = Cache::new(&cfg(128, 2), ReplacementPolicy::Lru, 0);
        // Set 0 holds even line numbers.
        c.fill(LineAddr(0), FillKind::Demand);
        c.fill(LineAddr(2), FillKind::Demand);
        c.probe(LineAddr(0), false); // 0 is now MRU
        let ev = c.fill(LineAddr(4), FillKind::Demand).unwrap();
        assert_eq!(ev.line, LineAddr(2));
        assert!(c.contains(LineAddr(0)));
        assert!(c.contains(LineAddr(4)));
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut c = Cache::new(&cfg(128, 2), ReplacementPolicy::Fifo, 0);
        c.fill(LineAddr(0), FillKind::Demand);
        c.fill(LineAddr(2), FillKind::Demand);
        c.probe(LineAddr(0), false); // should NOT protect 0 under FIFO
        let ev = c.fill(LineAddr(4), FillKind::Demand).unwrap();
        assert_eq!(ev.line, LineAddr(0), "FIFO evicts oldest fill despite hit");
    }

    #[test]
    fn refill_of_resident_line_evicts_nothing() {
        let mut c = Cache::new(&cfg(1024, 1), ReplacementPolicy::Lru, 0);
        c.fill(LineAddr(9), FillKind::Demand);
        assert!(c.fill(LineAddr(9), FillKind::Demand).is_none());
        assert_eq!(c.valid_lines(), 1);
    }

    #[test]
    fn demand_refill_of_prefetched_line_counts_as_reference() {
        let mut c = Cache::new(&cfg(1024, 1), ReplacementPolicy::Lru, 0);
        let l = LineAddr(4);
        c.fill(l, FillKind::Prefetch(origin(l)));
        c.fill(l, FillKind::Demand); // demand touched the prefetched line
        let ev = c.invalidate(l).unwrap();
        let (_, referenced) = ev.prefetch.unwrap();
        assert!(referenced);
    }

    #[test]
    fn invalidate_returns_report_and_clears() {
        let mut c = Cache::new(&cfg(1024, 1), ReplacementPolicy::Lru, 0);
        assert!(c.invalidate(LineAddr(1)).is_none());
        c.fill(LineAddr(1), FillKind::Demand);
        let ev = c.invalidate(LineAddr(1)).unwrap();
        assert_eq!(ev.line, LineAddr(1));
        assert!(!c.contains(LineAddr(1)));
    }

    #[test]
    fn drain_reports_all_and_empties() {
        let mut c = Cache::new(&cfg(1024, 1), ReplacementPolicy::Lru, 0);
        c.fill(LineAddr(1), FillKind::Demand);
        let l2 = LineAddr(2);
        c.fill(l2, FillKind::Prefetch(origin(l2)));
        let drained: Vec<Evicted> = c.drain().collect();
        assert_eq!(drained.len(), 2);
        assert_eq!(c.valid_lines(), 0);
        assert_eq!(drained.iter().filter(|e| e.prefetch.is_some()).count(), 1);
    }

    #[test]
    fn mark_dirty() {
        let mut c = Cache::new(&cfg(1024, 1), ReplacementPolicy::Lru, 0);
        assert!(!c.mark_dirty(LineAddr(8)));
        c.fill(LineAddr(8), FillKind::Demand);
        assert!(c.mark_dirty(LineAddr(8)));
        let ev = c.invalidate(LineAddr(8)).unwrap();
        assert!(ev.dirty);
    }

    #[test]
    fn invariants_hold_under_random_workload() {
        let mut c = Cache::new(&cfg(2048, 4), ReplacementPolicy::Lru, 1);
        let mut rng = SplitMix64::new(99);
        for i in 0..5_000u64 {
            let line = LineAddr(rng.below(512));
            match rng.below(4) {
                0 => {
                    c.probe(line, rng.chance(0.3));
                }
                1 => {
                    c.fill(line, FillKind::Demand);
                }
                2 => {
                    c.fill(line, FillKind::Prefetch(origin(line)));
                }
                _ => {
                    c.invalidate(line);
                }
            }
            if i % 512 == 0 {
                c.check_invariants().unwrap();
            }
        }
        c.check_invariants().unwrap();
    }

    #[test]
    fn tenant_attribution_charges_the_causing_tenant() {
        // 32B lines: tenant bits sit at line-address bit 36.
        let t1 = 1u64 << 36;
        let mut c = Cache::new(&cfg(1024, 1), ReplacementPolicy::Lru, 0);
        // Tenant 1 prefetches a line into tenant 0's set, unreferenced...
        let victim = LineAddr(5);
        c.fill(victim, FillKind::Demand);
        let mut o = origin(LineAddr(t1 | 37)); // same set (32 sets): 5 + 32
        o.tenant = 1;
        c.fill(LineAddr(37), FillKind::Prefetch(o));
        // ...then the bad prefetch is itself displaced by tenant 0.
        c.fill(LineAddr(69), FillKind::Demand);
        let a = c.tenant_attribution();
        assert_eq!(a.cross_evictions[0][1], 1, "t1 displaced t0's line");
        assert_eq!(a.cross_evictions[1][0], 1, "t0 displaced t1's prefetch");
        assert_eq!(a.prefetch_bad[1], 1, "bad prefetch charged to tenant 1");
        assert_eq!(a.prefetch_bad[0], 0);
        assert_eq!(a.inflicted_on(0), 1);
    }

    #[test]
    fn drain_attributes_resident_prefetches() {
        let mut c = Cache::new(&cfg(1024, 1), ReplacementPolicy::Lru, 0);
        let mut o = origin(LineAddr(2));
        o.tenant = 2;
        c.fill(LineAddr(2), FillKind::Prefetch(o));
        c.probe(LineAddr(2), false);
        let _ = c.drain().count();
        assert_eq!(c.tenant_attribution().prefetch_good[2], 1);
    }

    #[test]
    fn paper_l1_geometry() {
        // 8KB direct-mapped with 32B lines = 256 sets of 1 way.
        let c = Cache::new(&cfg(8 * 1024, 1), ReplacementPolicy::Lru, 0);
        assert_eq!(c.sets(), 256);
        assert_eq!(c.ways(), 1);
    }
}
