//! Property-based tests for the workload models: region containment,
//! determinism, and structural sanity of every benchmark's stream.

use ppf_cpu::{InstStream, Op};
use ppf_types::SplitMix64;
use ppf_workloads::{PatternKind, PatternSpec, Workload};
use proptest::prelude::*;

fn pattern_kind() -> impl Strategy<Value = PatternKind> {
    prop_oneof![
        (1i64..256).prop_map(|stride| PatternKind::Strided { stride }),
        ((1i64..128), (2u8..8))
            .prop_map(|(stride, streams)| PatternKind::MultiStream { stride, streams }),
        Just(PatternKind::Uniform),
        ((1u64..64), (2u16..32))
            .prop_map(|(stride, run)| PatternKind::BurstUniform { stride, run }),
        ((32u64..=256), (1u8..4), (0u32..3)).prop_map(|(node_bytes, fields, run_log)| {
            PatternKind::PointerChase {
                node_bytes,
                fields,
                run: 1 << run_log,
            }
        }),
        ((8u64..64), (1u64..8192), (0.0..0.9f64)).prop_map(|(advance, window, reread_p)| {
            PatternKind::Stream {
                advance,
                window,
                reread_p,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_pattern_stays_in_its_region(
        kind in pattern_kind(),
        base_k in 0u64..1024,
        footprint_log2 in 12u32..24,
        seed in any::<u64>(),
    ) {
        let base = base_k << 24;
        let footprint = 1u64 << footprint_log2;
        let spec = PatternSpec::new("prop", kind, base, footprint, 1.0);
        let mut st = ppf_workloads::patterns::PatternState::new(spec);
        let mut rng = SplitMix64::new(seed);
        for _ in 0..300 {
            let a = st.next_access(&mut rng);
            prop_assert!(
                a.addr >= base && a.addr < base + footprint,
                "addr {:#x} outside [{:#x}, {:#x})", a.addr, base, base + footprint
            );
            if let Some(p) = a.prefetch {
                prop_assert!(p >= base && p < base + footprint);
            }
        }
    }

    #[test]
    fn workload_streams_are_seed_deterministic(seed in any::<u64>(), w_idx in 0usize..10) {
        let w = Workload::ALL[w_idx];
        let mut a = w.stream(seed);
        let mut b = w.stream(seed);
        for _ in 0..200 {
            prop_assert_eq!(a.next_inst(), b.next_inst());
        }
    }

    #[test]
    fn all_addresses_land_in_declared_regions(seed in any::<u64>(), w_idx in 0usize..10) {
        let w = Workload::ALL[w_idx];
        let spec = w.spec();
        let regions: Vec<(u64, u64)> = spec
            .patterns
            .iter()
            .map(|p| (p.base, p.base + p.footprint))
            .collect();
        let mut s = w.stream(seed);
        for _ in 0..2000 {
            let inst = s.next_inst();
            if let Op::Load { addr } | Op::Store { addr } | Op::SoftPrefetch { addr } = inst.op {
                prop_assert!(
                    regions.iter().any(|&(lo, hi)| addr >= lo && addr < hi),
                    "{}: address {:#x} outside every pattern region", w, addr
                );
            }
        }
    }

    #[test]
    fn dependencies_never_point_past_the_rob(seed in any::<u64>(), w_idx in 0usize..10) {
        let w = Workload::ALL[w_idx];
        let mut s = w.stream(seed);
        for _ in 0..2000 {
            let inst = s.next_inst();
            prop_assert!((inst.dep as usize) <= 120, "dep distance {}", inst.dep);
        }
    }

    #[test]
    fn pcs_are_instruction_aligned(seed in any::<u64>(), w_idx in 0usize..10) {
        let w = Workload::ALL[w_idx];
        let mut s = w.stream(seed);
        for _ in 0..1000 {
            let inst = s.next_inst();
            prop_assert_eq!(inst.pc % 4, 0, "pc {:#x} unaligned", inst.pc);
        }
    }
}
