//! Reusable address-pattern generators.
//!
//! Each [`PatternSpec`] describes a region of the simulated address space
//! and a traversal discipline over it. The pattern kinds map to the access
//! behaviours of the paper's benchmark families:
//!
//! * [`PatternKind::Strided`] — affine array sweeps (wave5, fpppp, the body
//!   array of bh): perfectly analyzable, so compilers insert software
//!   prefetches and NSP's next-line guesses are usually right.
//! * [`PatternKind::Blocked2d`] — tiled image traversal (ijpeg): strided
//!   within a block row, jumping between rows/blocks.
//! * [`PatternKind::PointerChase`] — linked structures (em3d, perimeter,
//!   mcf, the tree of bh): the next node is unpredictable from the current
//!   address, so next-line prefetches are mostly pollution. Implemented as
//!   a full-period LCG walk over node indices — deterministic, O(1) state,
//!   and as opaque to a stride/next-line predictor as a real heap walk.
//! * [`PatternKind::Uniform`] — irregular accesses with no structure at all
//!   (gcc's symbol tables and allocator).
//! * [`PatternKind::Stream`] — forward streaming with window re-reads
//!   (gzip's dictionary window).

use ppf_types::{Addr, Pc, SplitMix64};

/// Traversal discipline over a pattern's region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PatternKind {
    /// Affine sweep: `addr += stride`, wrapping within the footprint.
    Strided {
        /// Byte stride per access (may be negative).
        stride: i64,
    },
    /// Several concurrent affine streams advancing in lock-step, the way a
    /// loop body walks `a[i]`, `b[i]`, `c[i]` together. Each stream owns a
    /// slice of the footprint at a seeded, line-aligned jitter offset, so
    /// some stream pairs persistently conflict in a direct-mapped L1 —
    /// the cross-stream eviction that makes some prefetches reliably die
    /// before use while others reliably survive (what a per-address
    /// pollution filter learns).
    MultiStream {
        /// Byte stride per access within each stream.
        stride: i64,
        /// Number of concurrent streams (round-robin).
        streams: u8,
    },
    /// Tiled 2D traversal: sequential `elem`-byte accesses along a block
    /// row, then the next row of the tile (one `row_bytes` jump), then the
    /// next tile.
    Blocked2d {
        /// Bytes per full image row.
        row_bytes: u64,
        /// Tile width in bytes.
        block_w: u64,
        /// Tile height in rows.
        block_h: u64,
        /// Element size in bytes.
        elem: u64,
    },
    /// Linked-structure walk. Nodes are visited in sequential *runs* of
    /// `run` nodes (heap allocators place list/tree nodes in allocation
    /// order, so real pointer chases have bursts of sequentiality); the
    /// runs themselves are visited in a full-period LCG permutation. The
    /// whole traversal is a fixed permutation of the nodes, so each line's
    /// position (run-interior vs run-boundary) — and therefore the fate of
    /// a next-line prefetch for it — is *stable across periods*, which is
    /// the per-address consistency a pollution filter learns. `run = 1`
    /// gives a maximally irregular walk. Each node visit touches `fields`
    /// consecutive 8-byte fields.
    PointerChase {
        /// Bytes per node (node index × this = node offset).
        node_bytes: u64,
        /// 8-byte fields referenced per node visit.
        fields: u8,
        /// Nodes per sequential (allocation-order) run. Power of two.
        run: u16,
    },
    /// Uniformly random accesses within the footprint.
    Uniform,
    /// Random starting points followed by short sequential runs — LZ77
    /// match copying (gzip's dictionary window), string operations, small
    /// struct copies. Next-line prefetches on these are right about half
    /// the time, unlike pure `Uniform` where they are always wrong.
    BurstUniform {
        /// Byte stride within a run.
        stride: u64,
        /// Accesses per run before re-seeding the position.
        run: u16,
    },
    /// Forward byte stream with occasional re-reads of a trailing window.
    Stream {
        /// Bytes advanced per fresh access.
        advance: u64,
        /// Trailing window size for re-reads.
        window: u64,
        /// Probability an access is a window re-read instead of fresh.
        reread_p: f64,
    },
}

/// Software-prefetch behaviour a compiler would attach to a pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwPrefetchSpec {
    /// Prefetch this many bytes ahead of the current position.
    pub lead_bytes: u64,
    /// Emit a prefetch every `every`-th pattern access.
    pub every: u32,
}

/// One address pattern inside a workload mixture.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternSpec {
    /// Diagnostic name ("tree-walk", "pixels", ...).
    pub name: &'static str,
    /// Traversal discipline.
    pub kind: PatternKind,
    /// Region base address (regions must not overlap across patterns).
    pub base: Addr,
    /// Region size in bytes.
    pub footprint: u64,
    /// Relative selection weight among the workload's memory accesses.
    pub weight: f64,
    /// Fraction of this pattern's accesses that are stores.
    pub store_frac: f64,
    /// Base PC of the instructions touching this pattern.
    pub pc_base: Pc,
    /// Number of distinct PCs (rotated round-robin) touching the pattern.
    pub n_pcs: u16,
    /// Pointer loads carry a serial dependency on the previous access of
    /// the same pattern (load-use chains — the pointer-chasing tax).
    pub serial_dep: bool,
    /// Compiler-inserted prefetch behaviour, if the pattern is analyzable.
    pub sw_prefetch: Option<SwPrefetchSpec>,
}

impl PatternSpec {
    /// A convenience constructor with the common defaults (loads only, 4
    /// PCs, no software prefetch, no serial dependency).
    pub fn new(
        name: &'static str,
        kind: PatternKind,
        base: Addr,
        footprint: u64,
        weight: f64,
    ) -> Self {
        PatternSpec {
            name,
            kind,
            base,
            footprint,
            weight,
            store_frac: 0.0,
            pc_base: 0x1000,
            n_pcs: 4,
            serial_dep: false,
            sw_prefetch: None,
        }
    }
}

/// One emitted access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternAccess {
    /// Byte address referenced.
    pub addr: Addr,
    /// PC of the referencing instruction.
    pub pc: Pc,
    /// Store (vs load)?
    pub is_store: bool,
    /// Address a software prefetch should target, when due this access.
    pub prefetch: Option<Addr>,
}

/// Byte offset of a blocked-2D cursor `(block, row-in-block, col)` within
/// the region. Tiles are `block_h` rows tall, so a band of tiles spans
/// `block_h * row_bytes` bytes.
#[inline]
fn blocked_offset(
    cursor: (u64, u64, u64),
    row_bytes: u64,
    block_w: u64,
    block_h: u64,
    footprint: u64,
) -> u64 {
    let (block, row, col) = cursor;
    let blocks_per_band = (row_bytes / block_w).max(1);
    let band = block / blocks_per_band;
    let block_in_band = block % blocks_per_band;
    (band * block_h * row_bytes + row * row_bytes + block_in_band * block_w + col) % footprint
}

/// Advance a blocked-2D cursor by one `elem`-byte element: column, then row
/// within the tile, then the next tile.
#[inline]
fn blocked_advance(
    cursor: (u64, u64, u64),
    block_w: u64,
    block_h: u64,
    elem: u64,
) -> (u64, u64, u64) {
    let (mut b, mut r, mut c) = cursor;
    c += elem;
    if c >= block_w {
        c = 0;
        r += 1;
        if r >= block_h {
            r = 0;
            b += 1;
        }
    }
    (b, r, c)
}

/// Runtime state for a [`PatternSpec`].
#[derive(Debug, Clone)]
pub struct PatternState {
    spec: PatternSpec,
    /// Current byte offset within the region (strided/stream/blocked).
    pos: u64,
    /// Blocked2d decomposed cursor: (block index, row-in-block, col-in-row).
    block_cursor: (u64, u64, u64),
    /// MultiStream: per-stream byte offsets within the stream's slice.
    stream_pos: Vec<u64>,
    /// MultiStream: per-stream base offsets (slice start + seeded jitter).
    stream_base: Vec<u64>,
    /// MultiStream: which stream the next access uses.
    stream_rotor: u8,
    /// PointerChase: current node index (LCG state).
    node: u64,
    /// PointerChase: node count (power of two for full-period LCG).
    node_count: u64,
    /// PointerChase: next field to touch; 0 = advance to a new node.
    field: u8,
    /// Round-robin PC cursor.
    pc_rotor: u16,
    /// Accesses emitted (drives `SwPrefetchSpec::every`).
    emitted: u64,
}

impl PatternState {
    /// Initialize traversal state for `spec`.
    pub fn new(spec: PatternSpec) -> Self {
        let node_count = match spec.kind {
            PatternKind::PointerChase {
                node_bytes, run, ..
            } => {
                assert!(run.max(1).is_power_of_two(), "chase run must be 2^k");
                let n = spec.footprint / node_bytes.max(1);
                // Round down to a power of two so the LCG has full period.
                let n = if n < 2 {
                    2
                } else {
                    1u64 << (63 - n.leading_zeros())
                };
                n.max(run.max(1) as u64 * 2)
            }
            _ => 0,
        };
        let (stream_pos, stream_base) = match spec.kind {
            PatternKind::MultiStream { streams, .. } => {
                let n = streams.max(1) as u64;
                let slice = spec.footprint / n;
                let bases = (0..n)
                    .map(|k| {
                        // Seeded, line-aligned jitter within the first half
                        // of the slice; deterministic per (region, stream).
                        let h = (spec.base ^ (k.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
                            .wrapping_mul(0xff51_afd7_ed55_8ccd);
                        let jitter = (h % (slice / 2).max(1)) & !31;
                        k * slice + jitter
                    })
                    .collect();
                (vec![0u64; n as usize], bases)
            }
            _ => (Vec::new(), Vec::new()),
        };
        PatternState {
            spec,
            pos: 0,
            block_cursor: (0, 0, 0),
            stream_pos,
            stream_base,
            stream_rotor: 0,
            node: 1,
            node_count,
            field: 0,
            pc_rotor: 0,
            emitted: 0,
        }
    }

    /// The pattern's spec.
    pub fn spec(&self) -> &PatternSpec {
        &self.spec
    }

    /// Whether accesses carry a serial dependency.
    pub fn serial_dep(&self) -> bool {
        self.spec.serial_dep
    }

    fn next_pc(&mut self) -> Pc {
        let pc = self.spec.pc_base + 4 * self.pc_rotor as u64;
        self.pc_rotor = (self.pc_rotor + 1) % self.spec.n_pcs.max(1);
        pc
    }

    /// Produce the next access of this pattern.
    pub fn next_access(&mut self, rng: &mut SplitMix64) -> PatternAccess {
        self.emitted += 1;
        let spec = self.spec.clone();
        let (offset, lookahead) = match spec.kind {
            PatternKind::Strided { stride } => {
                let off = self.pos;
                self.pos = (self.pos as i64 + stride).rem_euclid(spec.footprint as i64) as u64;
                let ahead = spec.sw_prefetch.map(|p| {
                    (off as i64 + p.lead_bytes as i64 * stride.signum())
                        .rem_euclid(spec.footprint as i64) as u64
                });
                (off, ahead)
            }
            PatternKind::MultiStream { stride, streams } => {
                let n = streams.max(1) as u64;
                let slice = self.spec.footprint / n;
                let k = self.stream_rotor as usize;
                self.stream_rotor = (self.stream_rotor + 1) % streams.max(1);
                let walk = slice / 2; // each stream cycles half its slice
                let off_in_stream = self.stream_pos[k];
                self.stream_pos[k] =
                    (off_in_stream as i64 + stride).rem_euclid(walk.max(1) as i64) as u64;
                let off = (self.stream_base[k] + off_in_stream) % spec.footprint;
                let ahead = spec.sw_prefetch.map(|p| {
                    let a = (off_in_stream as i64 + p.lead_bytes as i64 * stride.signum())
                        .rem_euclid(walk.max(1) as i64) as u64;
                    (self.stream_base[k] + a) % spec.footprint
                });
                (off, ahead)
            }
            PatternKind::Blocked2d {
                row_bytes,
                block_w,
                block_h,
                elem,
            } => {
                let off = blocked_offset(
                    self.block_cursor,
                    row_bytes,
                    block_w,
                    block_h,
                    spec.footprint,
                );
                self.block_cursor = blocked_advance(self.block_cursor, block_w, block_h, elem);
                // The compiler's lookahead follows the *traversal*, not the
                // linear address space: walk the cursor forward by the lead
                // distance in elements.
                let ahead = spec.sw_prefetch.map(|p| {
                    let steps = (p.lead_bytes / elem.max(1)).max(1);
                    let mut cur = self.block_cursor;
                    for _ in 1..steps {
                        cur = blocked_advance(cur, block_w, block_h, elem);
                    }
                    blocked_offset(cur, row_bytes, block_w, block_h, spec.footprint)
                });
                (off, ahead)
            }
            PatternKind::PointerChase {
                node_bytes,
                fields,
                run,
            } => {
                if self.field == 0 || self.field >= fields {
                    let run = run.max(1) as u64;
                    // `node` encodes the walk state: low bits = position in
                    // the current sequential run, high bits = run index.
                    let pos_in_run = self.node % run;
                    if pos_in_run + 1 < run {
                        // Continue the allocation-order run.
                        self.node += 1;
                    } else {
                        // Jump to the next run: full-period LCG over the
                        // run indices (multiplier ≡ 1 mod 4, odd increment,
                        // power-of-two modulus).
                        let runs = self.node_count / run;
                        let run_idx = (self.node / run)
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407)
                            & (runs - 1);
                        self.node = run_idx * run;
                    }
                    self.field = 0;
                }
                let off = self.node * node_bytes + 8 * self.field as u64;
                self.field += 1;
                // Pointer chains are not statically analyzable: no lookahead.
                (off % spec.footprint, None)
            }
            PatternKind::Uniform => (rng.below(spec.footprint), None),
            PatternKind::BurstUniform { stride, run } => {
                // `field` doubles as the run cursor here.
                if self.field == 0 || self.field as u16 >= run {
                    self.pos = rng.below(spec.footprint);
                    self.field = 0;
                }
                self.field += 1;
                let off = (self.pos + (self.field as u64 - 1) * stride) % spec.footprint;
                (off, None)
            }
            PatternKind::Stream {
                advance,
                window,
                reread_p,
            } => {
                if rng.chance(reread_p) && self.pos > 0 {
                    let back = rng.below(window.min(self.pos)) + 1;
                    ((self.pos - back) % spec.footprint, None)
                } else {
                    let off = self.pos;
                    self.pos = (self.pos + advance) % spec.footprint;
                    let ahead = spec
                        .sw_prefetch
                        .map(|p| (off + p.lead_bytes) % spec.footprint);
                    (off, ahead)
                }
            }
        };
        let due = spec
            .sw_prefetch
            .map(|p| self.emitted.is_multiple_of(p.every.max(1) as u64))
            .unwrap_or(false);
        PatternAccess {
            addr: spec.base + offset,
            pc: self.next_pc(),
            is_store: rng.chance(spec.store_frac),
            prefetch: if due {
                lookahead.map(|o| spec.base + o)
            } else {
                None
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SplitMix64 {
        SplitMix64::new(42)
    }

    #[test]
    fn strided_advances_by_stride_and_wraps() {
        let spec = PatternSpec::new("s", PatternKind::Strided { stride: 64 }, 0x1000, 256, 1.0);
        let mut st = PatternState::new(spec);
        let mut r = rng();
        let addrs: Vec<Addr> = (0..6).map(|_| st.next_access(&mut r).addr).collect();
        assert_eq!(addrs, vec![0x1000, 0x1040, 0x1080, 0x10c0, 0x1000, 0x1040]);
    }

    #[test]
    fn strided_negative_stride() {
        let spec = PatternSpec::new("s", PatternKind::Strided { stride: -32 }, 0x0, 128, 1.0);
        let mut st = PatternState::new(spec);
        let mut r = rng();
        let addrs: Vec<Addr> = (0..4).map(|_| st.next_access(&mut r).addr).collect();
        assert_eq!(addrs, vec![0, 96, 64, 32]);
    }

    #[test]
    fn strided_prefetch_leads_position() {
        let mut spec = PatternSpec::new("s", PatternKind::Strided { stride: 32 }, 0, 1 << 20, 1.0);
        spec.sw_prefetch = Some(SwPrefetchSpec {
            lead_bytes: 256,
            every: 1,
        });
        let mut st = PatternState::new(spec);
        let mut r = rng();
        let a = st.next_access(&mut r);
        assert_eq!(a.prefetch, Some(a.addr + 256));
    }

    #[test]
    fn prefetch_every_n() {
        let mut spec = PatternSpec::new("s", PatternKind::Strided { stride: 32 }, 0, 1 << 20, 1.0);
        spec.sw_prefetch = Some(SwPrefetchSpec {
            lead_bytes: 128,
            every: 4,
        });
        let mut st = PatternState::new(spec);
        let mut r = rng();
        let emitted: Vec<bool> = (0..8)
            .map(|_| st.next_access(&mut r).prefetch.is_some())
            .collect();
        assert_eq!(emitted.iter().filter(|&&b| b).count(), 2, "{emitted:?}");
    }

    #[test]
    fn pointer_chase_covers_many_nodes_unpredictably() {
        let spec = PatternSpec::new(
            "chase",
            PatternKind::PointerChase {
                node_bytes: 64,
                fields: 1,
                run: 1,
            },
            0,
            64 * 1024,
            1.0,
        );
        let mut st = PatternState::new(spec);
        let mut r = rng();
        let addrs: Vec<Addr> = (0..1024).map(|_| st.next_access(&mut r).addr).collect();
        // Coverage: visits most of the 1024 nodes within one period.
        let mut nodes: Vec<u64> = addrs.iter().map(|a| a / 64).collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert!(
            nodes.len() == 1024,
            "full-period LCG covers all nodes: {}",
            nodes.len()
        );
        // Unpredictability: consecutive deltas are almost never constant.
        let constant_deltas = addrs
            .windows(3)
            .filter(|w| w[1].wrapping_sub(w[0]) == w[2].wrapping_sub(w[1]))
            .count();
        assert!(constant_deltas < 20, "{constant_deltas} repeated strides");
    }

    #[test]
    fn pointer_chase_fields_share_a_node() {
        let spec = PatternSpec::new(
            "chase",
            PatternKind::PointerChase {
                node_bytes: 64,
                fields: 3,
                run: 1,
            },
            0,
            64 * 1024,
            1.0,
        );
        let mut st = PatternState::new(spec);
        let mut r = rng();
        let addrs: Vec<Addr> = (0..9).map(|_| st.next_access(&mut r).addr).collect();
        // Groups of 3 share the node base.
        for g in addrs.chunks(3) {
            assert_eq!(g[0] / 64, g[1] / 64);
            assert_eq!(g[1] / 64, g[2] / 64);
            assert_eq!(g[1] - g[0], 8);
            assert_eq!(g[2] - g[1], 8);
        }
    }

    #[test]
    fn uniform_stays_in_region() {
        let spec = PatternSpec::new("u", PatternKind::Uniform, 0x10_0000, 4096, 1.0);
        let mut st = PatternState::new(spec);
        let mut r = rng();
        for _ in 0..1000 {
            let a = st.next_access(&mut r).addr;
            assert!((0x10_0000..0x10_1000).contains(&a));
        }
    }

    #[test]
    fn stream_advances_with_rereads_behind() {
        let spec = PatternSpec::new(
            "z",
            PatternKind::Stream {
                advance: 16,
                window: 4096,
                reread_p: 0.5,
            },
            0,
            1 << 24,
            1.0,
        );
        let mut st = PatternState::new(spec);
        let mut r = rng();
        let mut max_fresh = 0u64;
        let mut rereads = 0;
        let mut fresh = 0;
        for _ in 0..4000 {
            let a = st.next_access(&mut r).addr;
            if a >= max_fresh {
                max_fresh = a;
                fresh += 1;
            } else {
                rereads += 1;
                assert!(max_fresh - a <= 4096 + 16, "re-read within window");
            }
        }
        assert!(
            fresh > 1000 && rereads > 1000,
            "fresh={fresh} rereads={rereads}"
        );
    }

    #[test]
    fn blocked2d_walks_tile_rows() {
        let spec = PatternSpec::new(
            "img",
            PatternKind::Blocked2d {
                row_bytes: 1024,
                block_w: 32,
                block_h: 4,
                elem: 8,
            },
            0,
            1 << 20,
            1.0,
        );
        let mut st = PatternState::new(spec);
        let mut r = rng();
        let addrs: Vec<Addr> = (0..8).map(|_| st.next_access(&mut r).addr).collect();
        // First block row: 32/8 = 4 sequential elements...
        assert_eq!(&addrs[0..4], &[0, 8, 16, 24]);
        // ...then the next row of the tile, one image row below.
        assert_eq!(&addrs[4..8], &[1024, 1032, 1040, 1048]);
    }

    #[test]
    fn pc_rotation() {
        let mut spec = PatternSpec::new("s", PatternKind::Strided { stride: 8 }, 0, 4096, 1.0);
        spec.pc_base = 0x4000;
        spec.n_pcs = 3;
        let mut st = PatternState::new(spec);
        let mut r = rng();
        let pcs: Vec<Pc> = (0..6).map(|_| st.next_access(&mut r).pc).collect();
        assert_eq!(pcs, vec![0x4000, 0x4004, 0x4008, 0x4000, 0x4004, 0x4008]);
    }

    #[test]
    fn stores_follow_fraction() {
        let mut spec = PatternSpec::new("s", PatternKind::Strided { stride: 8 }, 0, 1 << 16, 1.0);
        spec.store_frac = 0.3;
        let mut st = PatternState::new(spec);
        let mut r = rng();
        let stores = (0..10_000)
            .filter(|_| st.next_access(&mut r).is_store)
            .count();
        assert!((2_500..3_500).contains(&stores), "{stores}");
    }

    #[test]
    fn multistream_round_robins_lockstep_streams() {
        let spec = PatternSpec::new(
            "ms",
            PatternKind::MultiStream {
                stride: 16,
                streams: 3,
            },
            0,
            3 * 64 * 1024,
            1.0,
        );
        let mut st = PatternState::new(spec);
        let mut r = rng();
        let addrs: Vec<Addr> = (0..9).map(|_| st.next_access(&mut r).addr).collect();
        // Three interleaved streams: every third access advances the same
        // stream by exactly the stride.
        for k in 0..3 {
            assert_eq!(addrs[k + 3] - addrs[k], 16, "stream {k} advances by stride");
            assert_eq!(addrs[k + 6] - addrs[k + 3], 16);
        }
        // Streams occupy disjoint slices.
        let slice = 64 * 1024;
        let slots: Vec<u64> = addrs[..3].iter().map(|a| a / slice).collect();
        assert_eq!(slots, vec![0, 1, 2]);
    }

    #[test]
    fn multistream_prefetch_leads_its_own_stream() {
        let mut spec = PatternSpec::new(
            "ms",
            PatternKind::MultiStream {
                stride: 16,
                streams: 2,
            },
            0,
            2 * 64 * 1024,
            1.0,
        );
        spec.sw_prefetch = Some(SwPrefetchSpec {
            lead_bytes: 64,
            every: 1,
        });
        let mut st = PatternState::new(spec);
        let mut r = rng();
        for _ in 0..8 {
            let a = st.next_access(&mut r);
            let p = a.prefetch.expect("every access prefetches");
            // The lookahead stays in the same stream's slice and leads by
            // lead_bytes * signum(stride) (modulo the stream walk).
            assert_eq!(p / (64 * 1024), a.addr / (64 * 1024), "same slice");
        }
    }

    #[test]
    fn burst_uniform_runs_are_sequential() {
        let spec = PatternSpec::new(
            "burst",
            PatternKind::BurstUniform { stride: 8, run: 4 },
            0,
            1 << 20,
            1.0,
        );
        let mut st = PatternState::new(spec);
        let mut r = rng();
        let addrs: Vec<Addr> = (0..12).map(|_| st.next_access(&mut r).addr).collect();
        // Within each run of 4, consecutive deltas are exactly the stride.
        for run in addrs.chunks(4) {
            assert_eq!(run[1] - run[0], 8);
            assert_eq!(run[2] - run[1], 8);
            assert_eq!(run[3] - run[2], 8);
        }
        // Across runs the jump is (almost surely) not the stride.
        assert_ne!(addrs[4].wrapping_sub(addrs[3]), 8);
    }

    #[test]
    fn chase_runs_are_sequential_in_node_space() {
        let spec = PatternSpec::new(
            "chase",
            PatternKind::PointerChase {
                node_bytes: 32,
                fields: 1,
                run: 4,
            },
            0,
            32 * 1024,
            1.0,
        );
        let mut st = PatternState::new(spec);
        let mut r = rng();
        let nodes: Vec<u64> = (0..64).map(|_| st.next_access(&mut r).addr / 32).collect();
        // Count sequential steps: with run=4, ~3/4 of transitions are +1.
        let seq = nodes.windows(2).filter(|w| w[1] == w[0] + 1).count();
        assert!(seq >= 40, "allocation-order runs visible ({seq}/63)");
        // And the traversal still covers distinct nodes (it is a
        // permutation walk, not a loop).
        let mut uniq = nodes.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() >= 60, "{} unique nodes", uniq.len());
    }

    #[test]
    fn determinism_per_seed() {
        let spec = PatternSpec::new("u", PatternKind::Uniform, 0, 1 << 20, 1.0);
        let mut a = PatternState::new(spec.clone());
        let mut b = PatternState::new(spec);
        let mut ra = SplitMix64::new(5);
        let mut rb = SplitMix64::new(5);
        for _ in 0..100 {
            assert_eq!(a.next_access(&mut ra), b.next_access(&mut rb));
        }
    }
}
