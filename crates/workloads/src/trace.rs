//! Compact binary traces of instruction streams.
//!
//! For debugging and for feeding external tools, a prefix of any workload
//! stream can be serialized to a compact binary record format (16 bytes per
//! instruction) using the `bytes` crate, and read back losslessly. The
//! simulator itself always regenerates streams from `(spec, seed)` — traces
//! are a diagnostic artifact, not the source of truth.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use ppf_cpu::{Inst, InstStream, Op};

/// Record type tags.
const T_INT: u8 = 0;
const T_FP: u8 = 1;
const T_LOAD: u8 = 2;
const T_STORE: u8 = 3;
const T_PREFETCH: u8 = 4;
const T_BRANCH: u8 = 5;

/// Serialize the next `n` instructions of `stream` into a trace buffer.
///
/// Record layout (little-endian): `tag u8, dep u8, pc_lo u32 (pc/4 truncated),
/// payload u64` — where payload is the address for memory ops, or
/// `(target << 1) | taken` for branches, 0 otherwise.
pub fn record(stream: &mut dyn InstStream, n: usize) -> Bytes {
    let mut buf = BytesMut::with_capacity(n * 14);
    for _ in 0..n {
        let inst = stream.next_inst();
        let (tag, payload) = match inst.op {
            Op::IntAlu => (T_INT, 0u64),
            Op::FpAlu => (T_FP, 0),
            Op::Load { addr } => (T_LOAD, addr),
            Op::Store { addr } => (T_STORE, addr),
            Op::SoftPrefetch { addr } => (T_PREFETCH, addr),
            Op::Branch { taken, target } => (T_BRANCH, (target << 1) | taken as u64),
        };
        buf.put_u8(tag);
        buf.put_u8(inst.dep);
        buf.put_u32_le((inst.pc / 4) as u32);
        buf.put_u64_le(payload);
    }
    buf.freeze()
}

/// Deserialize a trace produced by [`record`].
pub fn replay(mut trace: Bytes) -> Vec<Inst> {
    let mut out = Vec::with_capacity(trace.len() / 14);
    while trace.remaining() >= 14 {
        let tag = trace.get_u8();
        let dep = trace.get_u8();
        let pc = trace.get_u32_le() as u64 * 4;
        let payload = trace.get_u64_le();
        let op = match tag {
            T_INT => Op::IntAlu,
            T_FP => Op::FpAlu,
            T_LOAD => Op::Load { addr: payload },
            T_STORE => Op::Store { addr: payload },
            T_PREFETCH => Op::SoftPrefetch { addr: payload },
            T_BRANCH => Op::Branch {
                taken: payload & 1 == 1,
                target: payload >> 1,
            },
            other => panic!("corrupt trace: unknown tag {other}"),
        };
        out.push(Inst { pc, op, dep });
    }
    out
}

/// Write a binary trace to a file.
pub fn save(trace: &Bytes, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, trace)
}

/// Read a binary trace from a file.
pub fn load(path: &std::path::Path) -> std::io::Result<Bytes> {
    Ok(Bytes::from(std::fs::read(path)?))
}

/// A replayable in-memory trace usable as an [`InstStream`] (loops at the
/// end so the simulator never starves).
pub struct TraceStream {
    insts: Vec<Inst>,
    pos: usize,
}

impl TraceStream {
    /// Wrap a decoded trace. Panics on an empty trace.
    pub fn new(insts: Vec<Inst>) -> Self {
        assert!(!insts.is_empty(), "empty trace");
        TraceStream { insts, pos: 0 }
    }

    /// Decode and wrap a binary trace.
    pub fn from_bytes(trace: Bytes) -> Self {
        TraceStream::new(replay(trace))
    }

    /// Trace length in instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Never empty (checked at construction).
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl InstStream for TraceStream {
    fn next_inst(&mut self) -> Inst {
        let inst = self.insts[self.pos];
        self.pos = (self.pos + 1) % self.insts.len();
        inst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::Workload;

    #[test]
    fn round_trip_preserves_instructions() {
        let mut s = Workload::Mcf.stream(9);
        let mut reference = Workload::Mcf.stream(9);
        let trace = record(&mut s, 2000);
        let decoded = replay(trace);
        assert_eq!(decoded.len(), 2000);
        for inst in &decoded {
            assert_eq!(*inst, reference.next_inst());
        }
    }

    #[test]
    fn record_size_is_14_bytes_per_inst() {
        let mut s = Workload::Bh.stream(1);
        let trace = record(&mut s, 100);
        assert_eq!(trace.len(), 1400);
    }

    #[test]
    fn trace_stream_loops() {
        let mut s = Workload::Gzip.stream(2);
        let trace = record(&mut s, 10);
        let mut ts = TraceStream::from_bytes(trace);
        assert_eq!(ts.len(), 10);
        let first = ts.next_inst();
        for _ in 0..9 {
            ts.next_inst();
        }
        assert_eq!(ts.next_inst(), first, "wraps to the start");
    }

    #[test]
    fn branch_payload_round_trips() {
        let insts = [
            Inst::new(
                0x100,
                Op::Branch {
                    taken: true,
                    target: 0x9000,
                },
            ),
            Inst::new(
                0x104,
                Op::Branch {
                    taken: false,
                    target: 0xa000,
                },
            ),
        ];
        let mut i = 0;
        let mut stream = move || {
            let inst = insts[i % 2];
            i += 1;
            inst
        };
        let decoded = replay(record(&mut stream, 2));
        assert_eq!(
            decoded[0].op,
            Op::Branch {
                taken: true,
                target: 0x9000
            }
        );
        assert_eq!(
            decoded[1].op,
            Op::Branch {
                taken: false,
                target: 0xa000
            }
        );
    }

    #[test]
    #[should_panic]
    fn empty_trace_rejected() {
        TraceStream::new(Vec::new());
    }

    #[test]
    fn file_round_trip() {
        let mut s = Workload::Wave5.stream(4);
        let trace = record(&mut s, 500);
        let path = std::env::temp_dir().join("ppf-trace-test.bin");
        save(&trace, &path).unwrap();
        let loaded = load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, trace);
        assert_eq!(replay(loaded).len(), 500);
    }
}
