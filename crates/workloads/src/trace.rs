//! Compact binary traces of instruction streams.
//!
//! For debugging and for feeding external tools, a prefix of any workload
//! stream can be serialized to a compact binary record format (14 bytes per
//! instruction) as a plain `Vec<u8>`, and read back losslessly. The
//! simulator itself always regenerates streams from `(spec, seed)` — traces
//! are a diagnostic artifact, not the source of truth.

use ppf_cpu::{Inst, InstStream, Op};
use ppf_types::PpfError;

/// Record type tags.
const T_INT: u8 = 0;
const T_FP: u8 = 1;
const T_LOAD: u8 = 2;
const T_STORE: u8 = 3;
const T_PREFETCH: u8 = 4;
const T_BRANCH: u8 = 5;

/// Bytes per encoded instruction record.
const RECORD_LEN: usize = 14;

/// Largest PC the 14-byte record can carry: the PC is stored as a
/// word-aligned `u32` (`pc / 4`), so the format spans 34 bits of address.
pub const MAX_ENCODABLE_PC: u64 = (u32::MAX as u64) * 4;

/// Serialize the next `n` instructions of `stream` into a trace buffer.
///
/// Record layout (little-endian): `tag u8, dep u8, pc_word u32 (pc/4),
/// payload u64` — where payload is the address for memory ops, or
/// `(target << 1) | taken` for branches, 0 otherwise.
///
/// A PC above [`MAX_ENCODABLE_PC`] cannot fit the 34-bit field; rather than
/// silently truncating it (which used to round-trip the trace to the wrong
/// addresses), the encoder fails with a
/// [`TraceEncoding`](ppf_types::PpfErrorKind::TraceEncoding) error naming
/// the offending instruction.
pub fn record(stream: &mut dyn InstStream, n: usize) -> Result<Vec<u8>, PpfError> {
    let mut buf = Vec::with_capacity(n * RECORD_LEN);
    for i in 0..n {
        let inst = stream.next_inst();
        if inst.pc > MAX_ENCODABLE_PC {
            return Err(PpfError::trace_encoding(format!(
                "pc {:#x} of instruction {i} exceeds the trace format's \
                 34-bit range (max {:#x})",
                inst.pc, MAX_ENCODABLE_PC
            )));
        }
        let (tag, payload) = match inst.op {
            Op::IntAlu => (T_INT, 0u64),
            Op::FpAlu => (T_FP, 0),
            Op::Load { addr } => (T_LOAD, addr),
            Op::Store { addr } => (T_STORE, addr),
            Op::SoftPrefetch { addr } => (T_PREFETCH, addr),
            Op::Branch { taken, target } => (T_BRANCH, (target << 1) | taken as u64),
        };
        buf.push(tag);
        buf.push(inst.dep);
        buf.extend_from_slice(&((inst.pc / 4) as u32).to_le_bytes());
        buf.extend_from_slice(&payload.to_le_bytes());
    }
    Ok(buf)
}

/// Deserialize a trace produced by [`record`]. A trailing partial record
/// (fewer than 14 bytes) is ignored, matching a truncated file.
pub fn replay(trace: impl AsRef<[u8]>) -> Vec<Inst> {
    let trace = trace.as_ref();
    let mut out = Vec::with_capacity(trace.len() / RECORD_LEN);
    for rec in trace.chunks_exact(RECORD_LEN) {
        let tag = rec[0];
        let dep = rec[1];
        let pc = u32::from_le_bytes(rec[2..6].try_into().unwrap()) as u64 * 4;
        let payload = u64::from_le_bytes(rec[6..14].try_into().unwrap());
        let op = match tag {
            T_INT => Op::IntAlu,
            T_FP => Op::FpAlu,
            T_LOAD => Op::Load { addr: payload },
            T_STORE => Op::Store { addr: payload },
            T_PREFETCH => Op::SoftPrefetch { addr: payload },
            T_BRANCH => Op::Branch {
                taken: payload & 1 == 1,
                target: payload >> 1,
            },
            other => panic!("corrupt trace: unknown tag {other}"),
        };
        out.push(Inst { pc, op, dep });
    }
    out
}

/// Write a binary trace to a file.
pub fn save(trace: &[u8], path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, trace)
}

/// Read a binary trace from a file.
pub fn load(path: &std::path::Path) -> std::io::Result<Vec<u8>> {
    std::fs::read(path)
}

/// A replayable in-memory trace usable as an [`InstStream`] (loops at the
/// end so the simulator never starves).
pub struct TraceStream {
    insts: Vec<Inst>,
    pos: usize,
}

impl TraceStream {
    /// Wrap a decoded trace. Panics on an empty trace.
    pub fn new(insts: Vec<Inst>) -> Self {
        assert!(!insts.is_empty(), "empty trace");
        TraceStream { insts, pos: 0 }
    }

    /// Decode and wrap a binary trace.
    pub fn from_bytes(trace: impl AsRef<[u8]>) -> Self {
        TraceStream::new(replay(trace))
    }

    /// Trace length in instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Never empty (checked at construction).
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl InstStream for TraceStream {
    fn next_inst(&mut self) -> Inst {
        let inst = self.insts[self.pos];
        self.pos = (self.pos + 1) % self.insts.len();
        inst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::Workload;

    #[test]
    fn round_trip_preserves_instructions() {
        let mut s = Workload::Mcf.stream(9);
        let mut reference = Workload::Mcf.stream(9);
        let trace = record(&mut s, 2000).unwrap();
        let decoded = replay(trace);
        assert_eq!(decoded.len(), 2000);
        for inst in &decoded {
            assert_eq!(*inst, reference.next_inst());
        }
    }

    #[test]
    fn record_size_is_14_bytes_per_inst() {
        let mut s = Workload::Bh.stream(1);
        let trace = record(&mut s, 100).unwrap();
        assert_eq!(trace.len(), 1400);
    }

    #[test]
    fn trace_stream_loops() {
        let mut s = Workload::Gzip.stream(2);
        let trace = record(&mut s, 10).unwrap();
        let mut ts = TraceStream::from_bytes(trace);
        assert_eq!(ts.len(), 10);
        let first = ts.next_inst();
        for _ in 0..9 {
            ts.next_inst();
        }
        assert_eq!(ts.next_inst(), first, "wraps to the start");
    }

    #[test]
    fn branch_payload_round_trips() {
        let insts = [
            Inst::new(
                0x100,
                Op::Branch {
                    taken: true,
                    target: 0x9000,
                },
            ),
            Inst::new(
                0x104,
                Op::Branch {
                    taken: false,
                    target: 0xa000,
                },
            ),
        ];
        let mut i = 0;
        let mut stream = move || {
            let inst = insts[i % 2];
            i += 1;
            inst
        };
        let decoded = replay(record(&mut stream, 2).unwrap());
        assert_eq!(
            decoded[0].op,
            Op::Branch {
                taken: true,
                target: 0x9000
            }
        );
        assert_eq!(
            decoded[1].op,
            Op::Branch {
                taken: false,
                target: 0xa000
            }
        );
    }

    #[test]
    fn truncated_trailing_record_is_ignored() {
        let mut s = Workload::Mcf.stream(3);
        let mut trace = record(&mut s, 5).unwrap();
        trace.truncate(trace.len() - 3); // chop mid-record
        assert_eq!(replay(trace).len(), 4);
    }

    #[test]
    #[should_panic]
    fn empty_trace_rejected() {
        TraceStream::new(Vec::new());
    }

    #[test]
    fn oversized_pc_is_rejected_not_truncated() {
        // Regression: PCs above the record's 34-bit range used to be
        // silently truncated to the low bits, so the trace replayed with
        // wrong addresses. They must fail loudly instead.
        let mut stream = || Inst::new(MAX_ENCODABLE_PC + 4, Op::IntAlu);
        let err = record(&mut stream, 3).unwrap_err();
        assert_eq!(err.kind(), ppf_types::PpfErrorKind::TraceEncoding);
        assert!(err.message.contains("34-bit"), "{err}");
        assert!(err.message.contains("instruction 0"), "{err}");
    }

    #[test]
    fn max_encodable_pc_round_trips() {
        let mut stream = || Inst::new(MAX_ENCODABLE_PC, Op::IntAlu);
        let decoded = replay(record(&mut stream, 1).unwrap());
        assert_eq!(decoded[0].pc, MAX_ENCODABLE_PC);
    }

    #[test]
    fn file_round_trip() {
        let mut s = Workload::Wave5.stream(4);
        let trace = record(&mut s, 500).unwrap();
        let path = std::env::temp_dir().join("ppf-trace-test.bin");
        save(&trace, &path).unwrap();
        let loaded = load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, trace);
        assert_eq!(replay(loaded).len(), 500);
    }
}
