//! Adversarial instruction streams that attack the pollution filter.
//!
//! Each [`AttackKind`] is a worst-case workload aimed at a specific
//! weakness of the paper's filter design (DESIGN.md §12 threat model):
//!
//! * [`AttackKind::Poison`] — *counter poisoning*: demand loads trigger
//!   next-line prefetches whose targets the attacker conflict-evicts before
//!   use, sweeping the address space so the resulting bad-eviction feedback
//!   drives the whole history table toward "bad" and the filter starts
//!   vetoing the victim's good prefetches.
//! * [`AttackKind::AliasFlood`] — *hash aliasing*: the plain XOR-fold index
//!   hash is public and linear, so the attacker constructs an unbounded
//!   family of distinct lines that all fold onto a small band of table
//!   indices and keeps the counters there pinned bad. Defeated by the
//!   salted hash (the crafted collisions scatter under an unknown key).
//! * [`AttackKind::PhaseShift`] — *regime oscillation*: alternates a
//!   calibrated all-good prefetch regime (sequential streaming) with an
//!   all-bad one (sparse jumps) over the same region, so the filter's
//!   training always lags the current phase.
//! * [`AttackKind::Interleave`] — *multi-tenant interference*: context-
//!   switches the victim workload with a pollution-heavy aggressor program
//!   rebased into its own tenant address region, so the aggressor's
//!   eviction feedback lands in the shared table the victim indexes.
//!   Defeated by per-tenant partitioning / tag-mixing.
//!
//! All attack traffic lives in tenant 1's address region (bit
//! [`TENANT_ADDR_SHIFT`]), so per-tenant attribution charges it to the
//! attacker and the hardened table configurations can isolate it. Streams
//! are pure functions of `(spec, workload, seed)` — attacks replay
//! bit-identically under a pinned seed.

use crate::suite::Workload;
use ppf_cpu::{Inst, InstStream, Op};
use ppf_types::{json_struct, json_unit_enum, TENANT_ADDR_SHIFT};

/// The attacker's tenant ID: all adversarial traffic is emitted in this
/// tenant's address region (the victim workload stays tenant 0).
pub const ATTACK_TENANT: u8 = 1;

/// Base byte address of the attacker's region (tenant 1).
const ATTACK_BASE: u64 = 1 << TENANT_ADDR_SHIFT;

/// Line size the attack address arithmetic is calibrated for (the paper
/// machine's 32-byte lines; the attacks still run, merely less surgically,
/// under other geometries).
const LINE: u64 = 32;

/// L1 bytes the conflict-evictor offsets assume (8KB direct-mapped).
const L1_BYTES: u64 = 8 * 1024;

/// Poison sweep footprint: 8192 lines = 256KiB, covering every L1 set many
/// times over and ~8K distinct filter indices per pass.
const POISON_LINES: u64 = 8192;

/// Number of table indices the aliasing flood targets (a band wide enough
/// to collide with any victim working set under the unsalted fold).
const FLOOD_TARGETS: u64 = 1024;

/// Consecutive flood iterations aimed at one index before advancing.
const FLOOD_DWELL: u64 = 4;

/// Instructions per phase-shift half-period (good regime, then bad).
const PHASE_HALF: u64 = 3000;

/// Phase-shift region footprint in bytes (1MiB: larger than the L2 share
/// the attacker can hold, so bad-phase jumps always miss).
const PHASE_FOOT: u64 = 1 << 20;

/// Context-switch quantum of the interleave attack, in instructions.
const INTERLEAVE_QUANTUM: u64 = 1000;

/// In-window duty cycle: out of every [`DUTY_PERIOD`] instructions, this
/// many are attack traffic; the rest advance the victim workload so its
/// under-attack behaviour stays measurable.
const DUTY_ATTACK: u64 = 3;
const DUTY_PERIOD: u64 = 4;

/// Which adversarial campaign to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// Counter poisoning via prefetch-then-evict conflict sets.
    Poison,
    /// Aliasing flood against the table's index hash.
    AliasFlood,
    /// Alternating calibrated good/bad prefetch regimes.
    PhaseShift,
    /// Context-switch interleaving with a pollution-heavy co-tenant.
    Interleave,
}

json_unit_enum!(AttackKind {
    Poison,
    AliasFlood,
    PhaseShift,
    Interleave
});

impl AttackKind {
    /// All attacks, in declaration order.
    pub const ALL: [AttackKind; 4] = [
        AttackKind::Poison,
        AttackKind::AliasFlood,
        AttackKind::PhaseShift,
        AttackKind::Interleave,
    ];

    /// Short CLI/report name.
    pub fn name(self) -> &'static str {
        match self {
            AttackKind::Poison => "poison",
            AttackKind::AliasFlood => "alias-flood",
            AttackKind::PhaseShift => "phase-shift",
            AttackKind::Interleave => "interleave",
        }
    }

    /// Parse a CLI/report name.
    pub fn from_name(name: &str) -> Option<AttackKind> {
        AttackKind::ALL.iter().copied().find(|a| a.name() == name)
    }

    /// The tenant the attack's traffic is charged to.
    pub fn attacking_tenant(self) -> u8 {
        ATTACK_TENANT
    }
}

impl std::fmt::Display for AttackKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An adversarial campaign: which attack runs and over which instruction
/// window (0-based indices over emitted instructions; attack traffic is
/// mixed in for `start <= n < stop`, the victim runs alone outside it so
/// post-attack recovery is measurable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdversarySpec {
    /// The attack to mount.
    pub attack: AttackKind,
    /// First instruction index under attack.
    pub start: u64,
    /// First instruction index after the attack stops.
    pub stop: u64,
}

json_struct!(AdversarySpec {
    attack,
    start,
    stop,
});

impl AdversarySpec {
    /// A campaign over an explicit instruction window.
    pub fn window(attack: AttackKind, start: u64, stop: u64) -> Self {
        AdversarySpec {
            attack,
            start,
            stop,
        }
    }

    /// The default trimmed campaign used by CI drills and the attack-matrix
    /// figures: attack-free lead-in, a sustained attack, then a recovery
    /// tail (sized for runs of ~10⁵ instructions).
    pub fn campaign(attack: AttackKind) -> Self {
        AdversarySpec::window(attack, 8_000, 40_000)
    }

    /// Stable identity string for checkpoint keys and report labels,
    /// e.g. `alias-flood@8000..40000`.
    pub fn describe(&self) -> String {
        format!("{}@{}..{}", self.attack.name(), self.start, self.stop)
    }
}

/// Rebase a stream into another address region: every PC and memory
/// address is offset by a fixed amount. Used to move the interleave
/// aggressor into its own tenant region.
struct Rebase<S> {
    inner: S,
    offset: u64,
}

impl<S: InstStream> InstStream for Rebase<S> {
    fn next_inst(&mut self) -> Inst {
        let mut i = self.inner.next_inst();
        i.pc = i.pc.wrapping_add(self.offset);
        i.op = match i.op {
            Op::Load { addr } => Op::Load {
                addr: addr.wrapping_add(self.offset),
            },
            Op::Store { addr } => Op::Store {
                addr: addr.wrapping_add(self.offset),
            },
            Op::SoftPrefetch { addr } => Op::SoftPrefetch {
                addr: addr.wrapping_add(self.offset),
            },
            Op::Branch { taken, target } => Op::Branch {
                taken,
                target: target.wrapping_add(self.offset),
            },
            other => other,
        };
        i
    }
}

/// An [`InstStream`] that runs a victim workload and mounts an
/// [`AdversarySpec`] campaign against it.
pub struct AdversaryStream {
    base: Box<dyn InstStream>,
    /// The interleave attack's co-tenant program (rebased); `None` for the
    /// single-stream attacks.
    aggressor: Option<Box<dyn InstStream>>,
    spec: AdversarySpec,
    emitted: u64,
    /// Completed attack iterations (one iteration = [`ATTACK_STEPS`]
    /// emitted attack instructions).
    iter: u64,
    /// Step within the current attack iteration.
    step: u64,
    /// Per-phase positions of the phase-shift attack.
    good_pos: u64,
    bad_pos: u64,
}

/// Instructions per poison / alias-flood attack iteration
/// (trigger load, spacer, conflict evictor).
const ATTACK_STEPS: u64 = 3;

impl AdversaryStream {
    /// Mount `spec` against `workload` (the victim, tenant 0). The
    /// interleave aggressor is a fixed pollution-heavy program (mcf's
    /// pointer chasing) rebased into the attacker's tenant region with a
    /// decorrelated seed.
    pub fn new(spec: AdversarySpec, workload: Workload, seed: u64) -> Self {
        let aggressor: Option<Box<dyn InstStream>> = match spec.attack {
            AttackKind::Interleave => Some(Box::new(Rebase {
                inner: Workload::Mcf.stream(seed ^ 0xA66E_5500),
                offset: ATTACK_BASE,
            })),
            _ => None,
        };
        AdversaryStream {
            base: Box::new(workload.stream(seed)),
            aggressor,
            spec,
            emitted: 0,
            iter: 0,
            step: 0,
            good_pos: 0,
            bad_pos: 0,
        }
    }

    /// The line (address / 32) the aliasing flood aims at index `t` with
    /// disambiguator `h`: under the *unsalted* XOR-fold every such line
    /// hashes to exactly `t`, for any `h` — the linearity the salted hash
    /// destroys. The construction keeps the tenant bit (line bit
    /// `TENANT_ADDR_SHIFT - 5`) set and folds it back out via the low half.
    fn flood_line(t: u64, h: u64) -> u64 {
        let region = ATTACK_BASE / LINE; // line-address tenant bit
        let r16 = (region >> 32) & 0xffff;
        let h = h & 0xffff;
        ((t ^ h ^ r16) & 0xffff) | (h << 16) | (region & 0xffff_0000_0000)
    }

    /// One instruction of the poison campaign: load a trigger line (NSP
    /// prefetches its successor), wait a step, then load the line that
    /// conflict-evicts the unreferenced prefetch in a direct-mapped L1.
    fn poison_inst(&mut self) -> Inst {
        let line = (self.iter * 2) % POISON_LINES;
        let trigger = ATTACK_BASE + line * LINE;
        let pc = ATTACK_BASE + 0x100 + self.step * 4;
        match self.step {
            0 => Inst::new(pc, Op::Load { addr: trigger }),
            1 => Inst::new(pc, Op::IntAlu),
            // Same L1 set as the prefetched `trigger + LINE`, different line.
            _ => Inst::new(
                pc,
                Op::Load {
                    addr: trigger + LINE + L1_BYTES,
                },
            ),
        }
    }

    /// One instruction of the aliasing flood: like the poison iteration,
    /// but the prefetched-then-evicted lines are crafted collision sets
    /// (see [`Self::flood_line`]), so all the bad feedback concentrates on
    /// [`FLOOD_TARGETS`] table indices.
    fn flood_inst(&mut self) -> Inst {
        let t = (self.iter / FLOOD_DWELL) % FLOOD_TARGETS;
        let h = 1 + (self.iter % 0xffff);
        let target = Self::flood_line(t, h);
        let pc = ATTACK_BASE + 0x2000 + self.step * 4;
        match self.step {
            // Demand-load the predecessor so NSP prefetches the crafted line.
            0 => Inst::new(
                pc,
                Op::Load {
                    addr: (target - 1) * LINE,
                },
            ),
            1 => Inst::new(pc, Op::IntAlu),
            // Conflict-evict the crafted line before any use.
            _ => Inst::new(
                pc,
                Op::Load {
                    addr: (target + L1_BYTES / LINE) * LINE,
                },
            ),
        }
    }

    /// One instruction of the phase shifter: half a period of sequential
    /// streaming (every next-line prefetch is referenced → trains good),
    /// half a period of sparse serial jumps over the same region (every
    /// next-line prefetch dies unreferenced → trains bad).
    fn phase_inst(&mut self, k: u64) -> Inst {
        let region = ATTACK_BASE + 0x0100_0000;
        let good = (k / PHASE_HALF).is_multiple_of(2);
        if good {
            let addr = region + (self.good_pos * LINE) % PHASE_FOOT;
            self.good_pos += 1;
            Inst::new(ATTACK_BASE + 0x3000, Op::Load { addr })
        } else {
            // Stride of 129 lines: coprime with the 256-set L1, so the
            // jumps sweep every set and steadily evict their own
            // unreferenced next-line prefetches.
            let addr = region + (self.bad_pos * 129 * LINE) % PHASE_FOOT;
            self.bad_pos += 1;
            Inst::with_dep(ATTACK_BASE + 0x3004, Op::Load { addr }, 1)
        }
    }
}

impl InstStream for AdversaryStream {
    fn next_inst(&mut self) -> Inst {
        let n = self.emitted;
        self.emitted += 1;
        if n < self.spec.start || n >= self.spec.stop {
            return self.base.next_inst();
        }
        let k = n - self.spec.start;
        match self.spec.attack {
            AttackKind::Interleave => {
                if (k / INTERLEAVE_QUANTUM).is_multiple_of(2) {
                    self.base.next_inst()
                } else {
                    self.aggressor
                        .as_mut()
                        .expect("interleave has an aggressor")
                        .next_inst()
                }
            }
            attack => {
                // Duty-cycled: the victim keeps running under attack.
                if k % DUTY_PERIOD >= DUTY_ATTACK {
                    return self.base.next_inst();
                }
                let inst = match attack {
                    AttackKind::Poison => self.poison_inst(),
                    AttackKind::AliasFlood => self.flood_inst(),
                    AttackKind::PhaseShift => self.phase_inst(k),
                    AttackKind::Interleave => unreachable!("handled above"),
                };
                self.step += 1;
                if self.step == ATTACK_STEPS {
                    self.step = 0;
                    self.iter += 1;
                }
                inst
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppf_types::{tenant_of_addr, FromJson, ToJson};

    /// The plain fold the flood construction targets (mirror of
    /// `ppf_filter::hash::fold16`; duplicated here so the workload crate
    /// stays independent of the filter crate).
    fn fold16(v: u64) -> u64 {
        (v ^ (v >> 16) ^ (v >> 32) ^ (v >> 48)) & 0xffff
    }

    fn drain(stream: &mut dyn InstStream, n: usize) -> Vec<Inst> {
        (0..n).map(|_| stream.next_inst()).collect()
    }

    #[test]
    fn names_round_trip() {
        for a in AttackKind::ALL {
            assert_eq!(AttackKind::from_name(a.name()), Some(a));
        }
        assert_eq!(AttackKind::from_name("nosuch"), None);
    }

    #[test]
    fn spec_json_round_trips() {
        let spec = AdversarySpec::window(AttackKind::AliasFlood, 100, 2000);
        let back = AdversarySpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
        assert_eq!(spec.describe(), "alias-flood@100..2000");
    }

    #[test]
    fn streams_are_deterministic() {
        for attack in AttackKind::ALL {
            let spec = AdversarySpec::window(attack, 50, 5_000);
            let mut a = AdversaryStream::new(spec, Workload::Em3d, 7);
            let mut b = AdversaryStream::new(spec, Workload::Em3d, 7);
            for _ in 0..8_000 {
                assert_eq!(a.next_inst(), b.next_inst(), "{attack} diverged");
            }
        }
    }

    #[test]
    fn victim_runs_alone_outside_the_window() {
        let spec = AdversarySpec::window(AttackKind::Poison, 200, 400);
        let mut clean = Workload::Gzip.stream(3);
        let mut attacked = AdversaryStream::new(spec, Workload::Gzip, 3);
        for _ in 0..200 {
            assert_eq!(clean.next_inst(), attacked.next_inst());
        }
        // In-window instructions mix in attack traffic...
        let in_window = drain(&mut attacked, 200);
        assert!(in_window.iter().any(|i| {
            matches!(i.op, Op::Load { addr } if tenant_of_addr(addr) == ATTACK_TENANT)
        }));
        // ...and afterwards the victim stream resumes exactly where its
        // own instruction count left off.
        let after = attacked.next_inst();
        let mut replay = Workload::Gzip.stream(3);
        let victim_served = 200
            + in_window
                .iter()
                .filter(|i| match i.op {
                    Op::Load { addr } | Op::Store { addr } | Op::SoftPrefetch { addr } => {
                        tenant_of_addr(addr) == 0
                    }
                    _ => tenant_of_addr(i.pc) == 0,
                })
                .count();
        for _ in 0..victim_served {
            replay.next_inst();
        }
        assert_eq!(after, replay.next_inst());
    }

    #[test]
    fn flood_lines_collide_under_the_plain_fold_only() {
        let t = 0x2a5;
        let lines: Vec<u64> = (1..64).map(|h| AdversaryStream::flood_line(t, h)).collect();
        for &l in &lines {
            assert_eq!(fold16(l), t, "crafted line {l:#x} misses index {t:#x}");
            assert_eq!(
                tenant_of_addr(l * LINE),
                ATTACK_TENANT,
                "flood traffic must stay in the attacker's region"
            );
        }
        // All distinct lines (a real flood, not one line repeated).
        let mut dedup = lines.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), lines.len());
    }

    #[test]
    fn attack_traffic_is_in_the_attacker_region() {
        for attack in [
            AttackKind::Poison,
            AttackKind::AliasFlood,
            AttackKind::PhaseShift,
        ] {
            let spec = AdversarySpec::window(attack, 0, 4_000);
            let mut s = AdversaryStream::new(spec, Workload::Em3d, 1);
            let insts = drain(&mut s, 4_000);
            let (mut attacker, mut victim) = (0usize, 0usize);
            for i in &insts {
                if let Op::Load { addr } | Op::Store { addr } = i.op {
                    match tenant_of_addr(addr) {
                        0 => victim += 1,
                        t if t == ATTACK_TENANT => attacker += 1,
                        t => panic!("unexpected tenant {t}"),
                    }
                }
            }
            assert!(attacker > 1_000, "{attack}: attacker loads = {attacker}");
            assert!(victim > 0, "{attack}: victim must keep running");
        }
    }

    #[test]
    fn interleave_context_switches_by_quantum() {
        let spec = AdversarySpec::window(AttackKind::Interleave, 0, 4 * INTERLEAVE_QUANTUM);
        let mut s = AdversaryStream::new(spec, Workload::Gzip, 5);
        let insts = drain(&mut s, (4 * INTERLEAVE_QUANTUM) as usize);
        for (q, chunk) in insts.chunks(INTERLEAVE_QUANTUM as usize).enumerate() {
            let expect = if q % 2 == 0 { 0 } else { ATTACK_TENANT };
            // PCs carry the tenant region too (the aggressor is fully
            // rebased), so every instruction in the quantum is attributable.
            for i in chunk {
                assert_eq!(
                    tenant_of_addr(i.pc),
                    expect,
                    "quantum {q} leaked the wrong tenant"
                );
            }
        }
    }

    #[test]
    fn phase_shift_alternates_regimes() {
        let spec = AdversarySpec::window(AttackKind::PhaseShift, 0, 4 * PHASE_HALF);
        let mut s = AdversaryStream::new(spec, Workload::Em3d, 2);
        // Collect the attacker's loads from each half-period.
        let all = drain(&mut s, (2 * PHASE_HALF) as usize);
        let halves: Vec<Vec<u64>> = all
            .chunks(PHASE_HALF as usize)
            .map(|c| {
                c.iter()
                    .filter_map(|i| match i.op {
                        Op::Load { addr } if tenant_of_addr(addr) == ATTACK_TENANT => Some(addr),
                        _ => None,
                    })
                    .collect()
            })
            .collect();
        // Good phase: consecutive attacker loads advance by one line.
        let good_sequential = halves[0].windows(2).filter(|w| w[1] == w[0] + LINE).count();
        assert!(
            good_sequential * 10 > halves[0].len() * 8,
            "good phase must stream sequentially"
        );
        // Bad phase: no two consecutive loads are line-sequential.
        let bad_sequential = halves[1].windows(2).filter(|w| w[1] == w[0] + LINE).count();
        assert_eq!(bad_sequential, 0, "bad phase must jump");
    }
}
