//! Deterministic synthetic workload models for the paper's ten benchmarks.
//!
//! The paper evaluates Alpha binaries of bh, em3d, perimeter (Olden), ijpeg,
//! fpppp, gcc, wave5 (SPEC95) and gap, gzip, mcf (SPEC2000). Those binaries
//! and SimpleScalar are not reproducible here, so each benchmark is modelled
//! as a *mixture of address patterns* with the program's characteristic
//! shape — pointer chasing for the Olden programs and mcf, strided floating
//! point for wave5/fpppp, blocked 2D for ijpeg, streaming for gzip, a
//! low-predictability mix for gcc — calibrated so the prefetch-off L1/L2
//! miss rates land near Table 2 of the paper (verified by integration tests
//! in `ppf-sim`).
//!
//! What matters for reproducing the paper's figures is not instruction
//! semantics but the *predictability and reuse structure* of the miss
//! stream the prefetchers and the pollution filter see; that is exactly
//! what these models control:
//!
//! * pattern kind → which prefetches NSP/SDP generate and whether they are
//!   good (strided/streaming) or bad (pointer chasing, irregular);
//! * footprint sizes and mixture weights → L1/L2 miss rates (Table 2);
//! * serial dependencies on pointer loads → load-use latency sensitivity;
//! * branch site predictability → front-end behaviour per benchmark.
//!
//! Everything is a pure function of `(Workload, seed)` via
//! [`ppf_types::SplitMix64`].

#![warn(missing_docs)]

pub mod adversary;
pub mod fault;
pub mod model;
pub mod patterns;
pub mod suite;
pub mod trace;

pub use adversary::{AdversarySpec, AdversaryStream, AttackKind, ATTACK_TENANT};
pub use fault::{FaultMode, FaultSpec, FaultStream};
pub use model::{MixStream, WorkloadSpec};
pub use patterns::{PatternKind, PatternSpec, SwPrefetchSpec};
pub use suite::Workload;
