//! Fault injection for exercising the fault-tolerant experiment engine.
//!
//! A [`FaultStream`] wraps any [`InstStream`] and behaves identically until
//! the configured instruction index, then misbehaves in a controlled way:
//!
//! * [`FaultMode::PanicAt`] panics inside `next_inst` — the "crashing cell"
//!   that the grid runner's `catch_unwind` isolation must contain;
//! * [`FaultMode::HangAt`] stops yielding the wrapped stream and emits an
//!   endless chain of serially-dependent cold-line loads (page stride, so
//!   no prefetcher or cache helps). Paired with a pathologically slow
//!   memory config this wedges the pipeline — the "hung cell" that the
//!   simulator watchdog's forward-progress detector must abort.
//!
//! These streams exist for tests and CI fault drills; the production
//! workload suite never constructs them.

use ppf_cpu::{Inst, InstStream, Op};

/// What the injected fault does when it trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Panic inside `next_inst` at the trip point.
    PanicAt,
    /// From the trip point on, emit serially-dependent cold-line loads
    /// forever instead of the wrapped stream.
    HangAt,
}

/// A fault to inject into a run: the mode and the instruction index
/// (0-based, counted over emitted instructions) at which it trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Fault behaviour at the trip point.
    pub mode: FaultMode,
    /// Instruction index at which the fault trips.
    pub at: u64,
}

impl FaultSpec {
    /// Panic when the `at`-th instruction is requested.
    pub fn panic_at(at: u64) -> Self {
        FaultSpec {
            mode: FaultMode::PanicAt,
            at,
        }
    }

    /// Degenerate into dependent cold loads from the `at`-th instruction.
    pub fn hang_at(at: u64) -> Self {
        FaultSpec {
            mode: FaultMode::HangAt,
            at,
        }
    }
}

/// Base address of the hang-mode load walk — far above every workload
/// model's footprint so the lines are guaranteed cold.
const HANG_BASE: u64 = 0x4000_0000;

/// Stride of the hang-mode load walk (a page, so NSP/stride prefetchers
/// never cover the next access).
const HANG_STRIDE: u64 = 4096;

/// An [`InstStream`] wrapper that injects a [`FaultSpec`].
pub struct FaultStream<S> {
    inner: S,
    spec: FaultSpec,
    emitted: u64,
}

impl<S> FaultStream<S> {
    /// Wrap `inner`, injecting `spec`.
    pub fn new(inner: S, spec: FaultSpec) -> Self {
        FaultStream {
            inner,
            spec,
            emitted: 0,
        }
    }
}

impl<S: InstStream> InstStream for FaultStream<S> {
    fn next_inst(&mut self) -> Inst {
        let n = self.emitted;
        self.emitted += 1;
        if n < self.spec.at {
            return self.inner.next_inst();
        }
        match self.spec.mode {
            FaultMode::PanicAt => panic!("injected fault: panic at instruction {n}"),
            FaultMode::HangAt => {
                let step = n - self.spec.at;
                let addr = HANG_BASE + step * HANG_STRIDE;
                // dep=1: each load consumes the previous load's result, so
                // the chain serializes on full memory latency.
                Inst::with_dep(HANG_BASE + step * 4, Op::Load { addr }, 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    #[test]
    fn passes_through_until_trip_point() {
        let mut clean = Workload::Gzip.stream(9);
        let mut faulty = FaultStream::new(Workload::Gzip.stream(9), FaultSpec::hang_at(100));
        for _ in 0..100 {
            assert_eq!(clean.next_inst(), faulty.next_inst());
        }
        // From the trip point the streams diverge into the load walk.
        let first = faulty.next_inst();
        assert_eq!(first.op, Op::Load { addr: HANG_BASE });
        assert_eq!(first.dep, 1);
    }

    #[test]
    fn hang_mode_emits_dependent_page_stride_loads() {
        let mut s = FaultStream::new(Workload::Mcf.stream(1), FaultSpec::hang_at(0));
        for k in 0..8u64 {
            let i = s.next_inst();
            assert_eq!(
                i.op,
                Op::Load {
                    addr: HANG_BASE + k * HANG_STRIDE
                }
            );
            assert_eq!(i.dep, 1, "loads must serialize");
        }
    }

    #[test]
    #[should_panic(expected = "injected fault: panic at instruction 3")]
    fn panic_mode_panics_at_the_trip_point() {
        let mut s = FaultStream::new(Workload::Bh.stream(2), FaultSpec::panic_at(3));
        for _ in 0..4 {
            s.next_inst();
        }
    }
}
