//! The ten benchmark models (Table 2 of the paper).
//!
//! Each model is a pattern mixture whose *shape* matches the program family
//! and whose footprints/weights are calibrated toward Table 2's prefetch-off
//! miss rates (verified by `ppf-sim`'s calibration tests):
//!
//! | benchmark | suite    | character                         | L1 miss | L2 miss |
//! |-----------|----------|-----------------------------------|---------|---------|
//! | bh        | Olden    | octree walk + body array sweep    | 4.64%   | 0.26%   |
//! | em3d      | Olden    | irregular graph over bipartite lists | 21.61% | 0.01% |
//! | perimeter | Olden    | quadtree perimeter walk           | 4.78%   | 27.09%  |
//! | ijpeg     | SPEC95   | blocked 2D image compression      | 5.65%   | 2.35%   |
//! | fpppp     | SPEC95   | dense FP, huge basic blocks       | 8.07%   | 0.03%   |
//! | gcc       | SPEC95   | irregular, branchy symbol mangling | 5.51%  | 2.21%   |
//! | wave5     | SPEC95   | strided FP over large grids       | 13.87%  | 2.09%   |
//! | gap       | SPEC2000 | interpreter over big vectors      | 4.09%   | 22.47%  |
//! | gzip      | SPEC2000 | streaming with dictionary window  | 5.97%   | 31.76%  |
//! | mcf       | SPEC2000 | network-simplex pointer chasing   | 6.48%   | 24.26%  |
//!
//! ## Calibration arithmetic
//!
//! With a "hot" L1-resident pattern (stack/locals, miss ≈ 0), an L2-resident
//! "mid" pattern (per-access L1 miss rate `m`), and a "cold" pattern over a
//! region far larger than the L2 (L1 and L2 miss ≈ 1):
//!
//! * L1 miss rate ≈ `w_mid·m + w_cold`
//! * L2 *local* miss rate ≈ `w_cold / (w_mid·m + w_cold)`
//!
//! so `w_cold = L1t·L2t` and `w_mid = (L1t − w_cold)/m`. The mid pattern's
//! kind carries the benchmark's prefetchability; the cold pattern carries
//! its L2-missing character.

use crate::model::{MixStream, WorkloadSpec};
use crate::patterns::{PatternKind, PatternSpec, SwPrefetchSpec};

/// Disjoint region bases for the pattern mixtures.
const HOT_BASE: u64 = 0x1000_0000;
const MID_BASE: u64 = 0x2000_0000;
const AUX_BASE: u64 = 0x3000_0000;
const COLD_BASE: u64 = 0x4000_0000;

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// The benchmark programs of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Olden Barnes-Hut (2048 bodies).
    Bh,
    /// Olden em3d (100 nodes, arity 10, 10K iters).
    Em3d,
    /// Olden perimeter (12 levels).
    Perimeter,
    /// SPEC95 ijpeg (penguin.ppm).
    Ijpeg,
    /// SPEC95 fpppp (natoms.in).
    Fpppp,
    /// SPEC95 gcc (cp-decl.i).
    Gcc,
    /// SPEC95 wave5 (wave5.in).
    Wave5,
    /// SPEC2000 gap (ref.in).
    Gap,
    /// SPEC2000 gzip (input.graphic).
    Gzip,
    /// SPEC2000 mcf (inp.in).
    Mcf,
}

impl Workload {
    /// All ten benchmarks, in the paper's Table 2 order.
    pub const ALL: [Workload; 10] = [
        Workload::Bh,
        Workload::Em3d,
        Workload::Perimeter,
        Workload::Ijpeg,
        Workload::Fpppp,
        Workload::Gcc,
        Workload::Wave5,
        Workload::Gap,
        Workload::Gzip,
        Workload::Mcf,
    ];

    /// Benchmark name as in Table 2.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Bh => "bh",
            Workload::Em3d => "em3d",
            Workload::Perimeter => "perimeter",
            Workload::Ijpeg => "ijpeg",
            Workload::Fpppp => "fpppp",
            Workload::Gcc => "gcc",
            Workload::Wave5 => "wave5",
            Workload::Gap => "gap",
            Workload::Gzip => "gzip",
            Workload::Mcf => "mcf",
        }
    }

    /// Parse a Table 2 benchmark name.
    pub fn from_name(name: &str) -> Option<Workload> {
        Workload::ALL.iter().copied().find(|w| w.name() == name)
    }

    /// The instruction stream for this benchmark with the given seed.
    pub fn stream(self, seed: u64) -> MixStream {
        MixStream::new(self.spec(), seed)
    }

    /// The benchmark's mixture specification.
    pub fn spec(self) -> WorkloadSpec {
        match self {
            Workload::Bh => bh(),
            Workload::Em3d => em3d(),
            Workload::Perimeter => perimeter(),
            Workload::Ijpeg => ijpeg(),
            Workload::Fpppp => fpppp(),
            Workload::Gcc => gcc(),
            Workload::Wave5 => wave5(),
            Workload::Gap => gap(),
            Workload::Gzip => gzip(),
            Workload::Mcf => mcf(),
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The L1-resident "hot" pattern (stack and locals) taking the weight the
/// characteristic patterns leave over.
fn hot(weight: f64) -> PatternSpec {
    PatternSpec {
        store_frac: 0.35,
        pc_base: 0x1_0000,
        n_pcs: 24,
        ..PatternSpec::new(
            "stack",
            PatternKind::Strided { stride: 8 },
            HOT_BASE,
            4 * KB,
            weight,
        )
    }
}

fn bh() -> WorkloadSpec {
    // Octree walk (pointer chase) + body-array sweep; both fit the L2.
    let tree = PatternSpec {
        pc_base: 0x1_4300,
        n_pcs: 16,
        serial_dep: true,
        store_frac: 0.05,
        ..PatternSpec::new(
            "octree",
            PatternKind::PointerChase {
                node_bytes: 64,
                fields: 2,
                run: 2,
            },
            MID_BASE,
            128 * KB,
            0.0322,
        )
    };
    let bodies = PatternSpec {
        pc_base: 0x1_8600,
        n_pcs: 12,
        store_frac: 0.25,
        sw_prefetch: Some(SwPrefetchSpec {
            lead_bytes: 128,
            every: 6,
        }),
        ..PatternSpec::new(
            "bodies",
            PatternKind::Strided { stride: 16 },
            AUX_BASE,
            64 * KB,
            0.0277,
        )
    };
    let cold = PatternSpec {
        pc_base: 0x1_c900,
        serial_dep: true,
        ..PatternSpec::new(
            "cold-cells",
            PatternKind::PointerChase {
                node_bytes: 64,
                fields: 1,
                run: 2,
            },
            COLD_BASE,
            64 * MB,
            0.0001,
        )
    };
    WorkloadSpec {
        name: "bh",
        patterns: vec![hot(1.0 - 0.0322 - 0.0277 - 0.0001), tree, bodies, cold],
        frac_mem: 0.38,
        frac_branch: 0.10,
        frac_fp: 0.45,
        branch_predictability: 0.85,
        dep_p: 0.50,
        code_kb: 16,
        cold_code_frac: 0.05,
        expect_l1_miss: 0.0464,
        expect_l2_miss: 0.0026,
    }
}

fn em3d() -> WorkloadSpec {
    // Irregular graph traversal; whole graph fits the L2 easily, so the L1
    // thrashes (21.6%) while the L2 almost never misses.
    let graph = PatternSpec {
        pc_base: 0x1_4300,
        n_pcs: 24,
        serial_dep: true,
        store_frac: 0.15,
        ..PatternSpec::new(
            "graph",
            PatternKind::PointerChase {
                node_bytes: 32,
                fields: 1,
                run: 8,
            },
            MID_BASE,
            128 * KB,
            0.144,
        )
    };
    WorkloadSpec {
        name: "em3d",
        patterns: vec![hot(1.0 - 0.144), graph],
        frac_mem: 0.42,
        frac_branch: 0.12,
        frac_fp: 0.30,
        branch_predictability: 0.90,
        dep_p: 0.60,
        code_kb: 16,
        cold_code_frac: 0.04,
        expect_l1_miss: 0.2161,
        expect_l2_miss: 0.0001,
    }
}

fn perimeter() -> WorkloadSpec {
    // Quadtree walk with a working set well past the L2.
    let quadtree = PatternSpec {
        pc_base: 0x1_4300,
        n_pcs: 16,
        serial_dep: true,
        store_frac: 0.05,
        ..PatternSpec::new(
            "quadtree",
            PatternKind::PointerChase {
                node_bytes: 64,
                fields: 2,
                run: 2,
            },
            MID_BASE,
            256 * KB,
            0.0409,
        )
    };
    let cold = PatternSpec {
        pc_base: 0x1_c900,
        serial_dep: true,
        ..PatternSpec::new(
            "deep-tree",
            PatternKind::PointerChase {
                node_bytes: 64,
                fields: 1,
                run: 2,
            },
            COLD_BASE,
            64 * MB,
            0.0132,
        )
    };
    WorkloadSpec {
        name: "perimeter",
        patterns: vec![hot(1.0 - 0.0409 - 0.0132), quadtree, cold],
        frac_mem: 0.40,
        frac_branch: 0.16,
        frac_fp: 0.02,
        branch_predictability: 0.80,
        dep_p: 0.60,
        code_kb: 16,
        cold_code_frac: 0.05,
        expect_l1_miss: 0.0478,
        expect_l2_miss: 0.2709,
    }
}

fn ijpeg() -> WorkloadSpec {
    // Blocked 2D traversal of image planes.
    let pixels = PatternSpec {
        pc_base: 0x1_4300,
        n_pcs: 16,
        store_frac: 0.30,
        sw_prefetch: Some(SwPrefetchSpec {
            lead_bytes: 128,
            every: 6,
        }),
        ..PatternSpec::new(
            "pixels",
            PatternKind::Blocked2d {
                row_bytes: 4096,
                block_w: 256,
                block_h: 4,
                elem: 8,
            },
            MID_BASE,
            256 * KB,
            0.151,
        )
    };
    let cold = PatternSpec {
        pc_base: 0x1_c900,
        ..PatternSpec::new(
            "fresh-image",
            PatternKind::Stream {
                advance: 32,
                window: 8 * KB,
                reread_p: 0.0,
            },
            COLD_BASE,
            64 * MB,
            0.0014,
        )
    };
    WorkloadSpec {
        name: "ijpeg",
        patterns: vec![hot(1.0 - 0.151 - 0.0014), pixels, cold],
        frac_mem: 0.40,
        frac_branch: 0.10,
        frac_fp: 0.10,
        branch_predictability: 0.92,
        dep_p: 0.35,
        code_kb: 32,
        cold_code_frac: 0.06,
        expect_l1_miss: 0.0565,
        expect_l2_miss: 0.0235,
    }
}

fn fpppp() -> WorkloadSpec {
    // Dense FP over a few mid-size arrays; essentially no L2 misses.
    let arrays = PatternSpec {
        pc_base: 0x1_4300,
        n_pcs: 32,
        store_frac: 0.20,
        sw_prefetch: Some(SwPrefetchSpec {
            lead_bytes: 64,
            every: 6,
        }),
        ..PatternSpec::new(
            "fp-arrays",
            PatternKind::MultiStream {
                stride: 8,
                streams: 4,
            },
            MID_BASE,
            64 * KB,
            0.212,
        )
    };
    WorkloadSpec {
        name: "fpppp",
        patterns: vec![hot(1.0 - 0.212), arrays],
        frac_mem: 0.40,
        frac_branch: 0.04,
        frac_fp: 0.65,
        branch_predictability: 0.95,
        dep_p: 0.50,
        code_kb: 64,
        cold_code_frac: 0.15,
        expect_l1_miss: 0.0807,
        expect_l2_miss: 0.0003,
    }
}

fn gcc() -> WorkloadSpec {
    // Irregular everything: uniform pointer soup, many PCs, poor branches.
    let symtab = PatternSpec {
        pc_base: 0x1_4300,
        n_pcs: 128,
        store_frac: 0.25,
        ..PatternSpec::new("symtab", PatternKind::Uniform, MID_BASE, 96 * KB, 0.0375)
    };
    let cold = PatternSpec {
        pc_base: 0x1_c900,
        n_pcs: 64,
        ..PatternSpec::new("cold-rtl", PatternKind::Uniform, COLD_BASE, 64 * MB, 0.0012)
    };
    WorkloadSpec {
        name: "gcc",
        patterns: vec![hot(1.0 - 0.0375 - 0.0012), symtab, cold],
        frac_mem: 0.38,
        frac_branch: 0.22,
        frac_fp: 0.01,
        branch_predictability: 0.60,
        dep_p: 0.60,
        code_kb: 64,
        cold_code_frac: 0.2,
        expect_l1_miss: 0.0551,
        expect_l2_miss: 0.0221,
    }
}

fn wave5() -> WorkloadSpec {
    // Large strided FP sweeps.
    let grid = PatternSpec {
        pc_base: 0x1_4300,
        n_pcs: 24,
        store_frac: 0.25,
        sw_prefetch: Some(SwPrefetchSpec {
            lead_bytes: 128,
            every: 6,
        }),
        ..PatternSpec::new(
            "grid",
            PatternKind::MultiStream {
                stride: 16,
                streams: 6,
            },
            MID_BASE,
            256 * KB,
            0.178,
        )
    };
    let cold = PatternSpec {
        pc_base: 0x1_c900,
        sw_prefetch: Some(SwPrefetchSpec {
            lead_bytes: 32,
            every: 2,
        }),
        ..PatternSpec::new(
            "big-grid",
            PatternKind::Strided { stride: 32 },
            COLD_BASE,
            64 * MB,
            0.0031,
        )
    };
    WorkloadSpec {
        name: "wave5",
        patterns: vec![hot(1.0 - 0.178 - 0.0031), grid, cold],
        frac_mem: 0.40,
        frac_branch: 0.06,
        frac_fp: 0.60,
        branch_predictability: 0.93,
        dep_p: 0.40,
        code_kb: 32,
        cold_code_frac: 0.05,
        expect_l1_miss: 0.1387,
        expect_l2_miss: 0.0209,
    }
}

fn gap() -> WorkloadSpec {
    // Interpreter: strided vector ops over an L2-resident heap, plus cold
    // pointer chasing through a big arena.
    let vectors = PatternSpec {
        pc_base: 0x1_4300,
        n_pcs: 32,
        store_frac: 0.25,
        sw_prefetch: Some(SwPrefetchSpec {
            lead_bytes: 64,
            every: 6,
        }),
        ..PatternSpec::new(
            "vectors",
            PatternKind::MultiStream {
                stride: 8,
                streams: 4,
            },
            MID_BASE,
            128 * KB,
            0.0745,
        )
    };
    let cold = PatternSpec {
        pc_base: 0x1_c900,
        serial_dep: true,
        ..PatternSpec::new(
            "arena",
            PatternKind::PointerChase {
                node_bytes: 64,
                fields: 1,
                run: 4,
            },
            COLD_BASE,
            64 * MB,
            0.0093,
        )
    };
    WorkloadSpec {
        name: "gap",
        patterns: vec![hot(1.0 - 0.0745 - 0.0093), vectors, cold],
        frac_mem: 0.38,
        frac_branch: 0.16,
        frac_fp: 0.02,
        branch_predictability: 0.75,
        dep_p: 0.55,
        code_kb: 64,
        cold_code_frac: 0.1,
        expect_l1_miss: 0.0409,
        expect_l2_miss: 0.2247,
    }
}

fn gzip() -> WorkloadSpec {
    // Forward compression stream (cold) + dictionary window (L2-resident).
    let window = PatternSpec {
        pc_base: 0x1_4300,
        n_pcs: 20,
        store_frac: 0.15,
        ..PatternSpec::new(
            "window",
            PatternKind::BurstUniform { stride: 8, run: 12 },
            AUX_BASE,
            64 * KB,
            0.0458,
        )
    };
    let stream = PatternSpec {
        pc_base: 0x1_c900,
        store_frac: 0.10,
        sw_prefetch: Some(SwPrefetchSpec {
            lead_bytes: 128,
            every: 4,
        }),
        ..PatternSpec::new(
            "input",
            PatternKind::Stream {
                advance: 32,
                window: 4 * KB,
                reread_p: 0.0,
            },
            COLD_BASE,
            64 * MB,
            0.0193,
        )
    };
    WorkloadSpec {
        name: "gzip",
        patterns: vec![hot(1.0 - 0.0458 - 0.0193), window, stream],
        frac_mem: 0.40,
        frac_branch: 0.18,
        frac_fp: 0.0,
        branch_predictability: 0.78,
        dep_p: 0.50,
        code_kb: 16,
        cold_code_frac: 0.05,
        expect_l1_miss: 0.0597,
        expect_l2_miss: 0.3176,
    }
}

fn mcf() -> WorkloadSpec {
    // Network simplex: pointer chasing over an L2-resident node set and a
    // far larger cold arc arena.
    let nodes = PatternSpec {
        pc_base: 0x1_4300,
        n_pcs: 20,
        serial_dep: true,
        store_frac: 0.15,
        ..PatternSpec::new(
            "nodes",
            PatternKind::PointerChase {
                node_bytes: 64,
                fields: 2,
                run: 4,
            },
            MID_BASE,
            256 * KB,
            0.0591,
        )
    };
    let arcs = PatternSpec {
        pc_base: 0x1_c900,
        serial_dep: true,
        ..PatternSpec::new(
            "arcs",
            PatternKind::PointerChase {
                node_bytes: 64,
                fields: 1,
                run: 4,
            },
            COLD_BASE,
            64 * MB,
            0.0161,
        )
    };
    WorkloadSpec {
        name: "mcf",
        patterns: vec![hot(1.0 - 0.0591 - 0.0161), nodes, arcs],
        frac_mem: 0.40,
        frac_branch: 0.17,
        frac_fp: 0.0,
        branch_predictability: 0.70,
        dep_p: 0.60,
        code_kb: 16,
        cold_code_frac: 0.04,
        expect_l1_miss: 0.0648,
        expect_l2_miss: 0.2426,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppf_cpu::{InstStream, Op};

    #[test]
    fn all_specs_validate() {
        for w in Workload::ALL {
            w.spec().validate().unwrap_or_else(|e| panic!("{}: {e}", w));
        }
    }

    #[test]
    fn names_round_trip() {
        for w in Workload::ALL {
            assert_eq!(Workload::from_name(w.name()), Some(w));
        }
        assert_eq!(Workload::from_name("nosuch"), None);
    }

    #[test]
    fn table2_targets_recorded() {
        assert!((Workload::Em3d.spec().expect_l1_miss - 0.2161).abs() < 1e-9);
        assert!((Workload::Gzip.spec().expect_l2_miss - 0.3176).abs() < 1e-9);
        assert!((Workload::Mcf.spec().expect_l2_miss - 0.2426).abs() < 1e-9);
    }

    #[test]
    fn streams_are_deterministic() {
        for w in [Workload::Bh, Workload::Gcc, Workload::Mcf] {
            let mut a = w.stream(11);
            let mut b = w.stream(11);
            for _ in 0..500 {
                assert_eq!(a.next_inst(), b.next_inst());
            }
        }
    }

    #[test]
    fn strided_benchmarks_emit_software_prefetches() {
        for w in [Workload::Wave5, Workload::Fpppp, Workload::Ijpeg] {
            let mut s = w.stream(3);
            let n = (0..50_000)
                .filter(|_| matches!(s.next_inst().op, Op::SoftPrefetch { .. }))
                .count();
            assert!(n > 100, "{w}: {n} software prefetches");
        }
    }

    #[test]
    fn pointer_benchmarks_emit_no_software_prefetches() {
        for w in [Workload::Em3d, Workload::Perimeter, Workload::Mcf] {
            let mut s = w.stream(3);
            let n = (0..20_000)
                .filter(|_| matches!(s.next_inst().op, Op::SoftPrefetch { .. }))
                .count();
            assert_eq!(n, 0, "{w}");
        }
    }

    #[test]
    fn mem_fraction_near_spec() {
        for w in Workload::ALL {
            let spec = w.spec();
            let mut s = w.stream(5);
            let n = 40_000;
            let mem = (0..n)
                .filter(|_| matches!(s.next_inst().op, Op::Load { .. } | Op::Store { .. }))
                .count();
            let frac = mem as f64 / n as f64;
            // Software prefetches dilute the stream slightly; allow 5 pts.
            assert!(
                (frac - spec.frac_mem).abs() < 0.05,
                "{w}: mem fraction {frac} vs {}",
                spec.frac_mem
            );
        }
    }

    #[test]
    fn gcc_branches_are_least_predictable() {
        // Sanity: the spec encodes gcc as the branchiest, least predictable.
        let gcc = Workload::Gcc.spec();
        for w in Workload::ALL {
            if w == Workload::Gcc {
                continue;
            }
            let s = w.spec();
            assert!(gcc.frac_branch >= s.frac_branch, "{w}");
            assert!(gcc.branch_predictability <= s.branch_predictability, "{w}");
        }
    }
}
