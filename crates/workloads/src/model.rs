//! The workload mixture model and its instruction stream.
//!
//! A [`WorkloadSpec`] is a complete synthetic program description: an
//! instruction mix (memory / branch / FP fractions), a set of weighted
//! address patterns, branch-site predictability, and dependency behaviour.
//! [`MixStream`] turns a spec plus a seed into the endless deterministic
//! instruction stream the core consumes.
//!
//! ## How instructions are produced
//!
//! Each `next_inst` draw picks an instruction class by the mix fractions.
//! Memory instructions select a pattern by weight and take its next access;
//! pointer-chase patterns attach a serial dependency on the pattern's
//! previous load (that is what makes mcf/em3d latency-bound). Pattern
//! accesses that are due a compiler prefetch enqueue an `Op::SoftPrefetch`
//! immediately after the triggering access. Branches come from a set of
//! per-workload branch sites, each deterministically predictable (loop
//! back-edge style) or data-dependent (coin flip), in proportion to the
//! spec's `branch_predictability`.

use crate::patterns::{PatternSpec, PatternState};
use ppf_cpu::{Inst, InstStream, Op};
use ppf_types::{Pc, SplitMix64};
use std::collections::VecDeque;

/// Number of distinct branch sites per workload.
const BRANCH_SITES: u64 = 64;
/// Cap on dependency distance (beyond the ROB it cannot stall anyway).
const MAX_DEP: u64 = 120;

/// A complete synthetic program description.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Benchmark name as in Table 2.
    pub name: &'static str,
    /// Weighted address patterns (weights need not sum to 1; they are
    /// normalized over the memory-access stream).
    pub patterns: Vec<PatternSpec>,
    /// Fraction of instructions that are loads/stores.
    pub frac_mem: f64,
    /// Fraction of instructions that are conditional branches.
    pub frac_branch: f64,
    /// Fraction of the remaining (compute) instructions that are FP.
    pub frac_fp: f64,
    /// Probability a branch site behaves predictably (loop-style).
    pub branch_predictability: f64,
    /// Probability a compute instruction depends on a recent producer.
    pub dep_p: f64,
    /// Static code footprint in KB. Compute instructions mostly loop in a
    /// hot 4KB region; a `cold_code_frac` fraction walks the full
    /// footprint, which is what exercises the L1 instruction cache (gcc
    /// and fpppp are the famous I-side stressors).
    pub code_kb: u64,
    /// Fraction of compute instructions fetched from the cold code walk.
    pub cold_code_frac: f64,
    /// Table 2 target L1 miss rate with prefetching off (documentation and
    /// calibration-test target).
    pub expect_l1_miss: f64,
    /// Table 2 target L2 miss rate with prefetching off.
    pub expect_l2_miss: f64,
}

impl WorkloadSpec {
    /// Validate mixture sanity (fractions in range, weights positive,
    /// pattern regions disjoint).
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.frac_mem)
            || !(0.0..=1.0).contains(&self.frac_branch)
            || self.frac_mem + self.frac_branch > 1.0
        {
            return Err(format!("{}: bad instruction mix", self.name));
        }
        if self.patterns.is_empty() {
            return Err(format!("{}: no patterns", self.name));
        }
        let mut regions: Vec<(u64, u64)> = self
            .patterns
            .iter()
            .map(|p| (p.base, p.base + p.footprint))
            .collect();
        regions.sort_unstable();
        for w in regions.windows(2) {
            if w[0].1 > w[1].0 {
                return Err(format!("{}: overlapping pattern regions", self.name));
            }
        }
        if self.patterns.iter().any(|p| p.weight <= 0.0) {
            return Err(format!("{}: non-positive pattern weight", self.name));
        }
        Ok(())
    }
}

/// Per-site branch behaviour, fixed at stream construction.
#[derive(Debug, Clone, Copy)]
struct BranchSite {
    pc: Pc,
    target: Pc,
    /// Predictable sites are taken with high, stable probability;
    /// unpredictable sites flip coins.
    predictable: bool,
}

/// The endless instruction stream for one workload instance.
#[derive(Clone)]
pub struct MixStream {
    spec: WorkloadSpec,
    patterns: Vec<PatternState>,
    /// Cumulative pattern weights for O(#patterns) weighted selection.
    cum_weights: Vec<f64>,
    weight_total: f64,
    rng: SplitMix64,
    branch_sites: Vec<BranchSite>,
    /// Queued instructions (software prefetches follow their trigger).
    pending: VecDeque<Inst>,
    /// Global instruction counter (for dependency distances).
    seq: u64,
    /// Per-pattern seq of the pattern's previous access.
    last_access_seq: Vec<u64>,
    /// Hot-region PC rotor for compute instructions.
    alu_pc: Pc,
    /// Cold-code walk rotor (covers `code_kb`).
    cold_pc: Pc,
}

impl MixStream {
    /// Build the stream for `spec` with the given seed.
    pub fn new(spec: WorkloadSpec, seed: u64) -> Self {
        spec.validate().expect("invalid workload spec");
        let mut rng = SplitMix64::new(seed ^ 0x9e37_79b9);
        let patterns: Vec<PatternState> = spec
            .patterns
            .iter()
            .cloned()
            .map(PatternState::new)
            .collect();
        let mut cum = Vec::with_capacity(patterns.len());
        let mut total = 0.0;
        for p in &spec.patterns {
            total += p.weight;
            cum.push(total);
        }
        let mut site_rng = rng.split();
        // Region bases are staggered modulo the 8KB I-cache so the small
        // hot PC groups do not all alias onto set 0 (a synthetic-layout
        // artifact; real linkers spread code arbitrarily).
        let branch_sites = (0..BRANCH_SITES)
            .map(|i| BranchSite {
                pc: 0x8_0e00 + i * 4,
                target: 0x9_0000 + i * 16,
                predictable: site_rng.chance(spec.branch_predictability),
            })
            .collect();
        let n = patterns.len();
        MixStream {
            spec,
            patterns,
            cum_weights: cum,
            weight_total: total,
            rng,
            branch_sites,
            pending: VecDeque::new(),
            seq: 0,
            last_access_seq: vec![u64::MAX; n],
            alu_pc: 0x2_1000,
            cold_pc: 0x40_0000,
        }
    }

    /// The spec this stream was built from.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    fn pick_pattern(&mut self) -> usize {
        let x = self.rng.f64() * self.weight_total;
        // Tiny vectors: linear scan beats binary search.
        self.cum_weights
            .iter()
            .position(|&c| x < c)
            .unwrap_or(self.cum_weights.len() - 1)
    }

    fn gen_mem(&mut self) -> Inst {
        let idx = self.pick_pattern();
        let access = self.patterns[idx].next_access(&mut self.rng);
        // Serial dependency on this pattern's previous access (pointer
        // chasing): distance in instructions, capped at the ROB horizon.
        let dep = if self.patterns[idx].serial_dep() {
            match self.last_access_seq[idx] {
                u64::MAX => 0,
                last => (self.seq - last).min(MAX_DEP) as u8,
            }
        } else {
            0
        };
        self.last_access_seq[idx] = self.seq;
        if let Some(pf_addr) = access.prefetch {
            // The compiler schedules the prefetch right after the access
            // that made the lookahead address computable.
            self.pending.push_back(Inst::new(
                access.pc + 0x400, // the prefetch instruction's own PC
                Op::SoftPrefetch { addr: pf_addr },
            ));
        }
        let op = if access.is_store {
            Op::Store { addr: access.addr }
        } else {
            Op::Load { addr: access.addr }
        };
        Inst::with_dep(access.pc, op, dep)
    }

    fn gen_branch(&mut self) -> Inst {
        let site = *self.rng.pick(&self.branch_sites);
        let taken = if site.predictable {
            // Loop back-edge: taken ~15 times out of 16.
            !self.rng.chance(1.0 / 16.0)
        } else {
            self.rng.chance(0.5)
        };
        Inst::new(
            site.pc,
            Op::Branch {
                taken,
                target: site.target,
            },
        )
    }

    fn gen_compute(&mut self) -> Inst {
        let pc = if self.rng.chance(self.spec.cold_code_frac) {
            // Sequential walk over the full code footprint: the I-cache
            // sees a new line every 8 instructions of this stream.
            let span = (self.spec.code_kb.max(4) * 1024).next_power_of_two();
            self.cold_pc = 0x40_0000 + ((self.cold_pc + 4) & (span - 1));
            self.cold_pc
        } else {
            // Hot inner loops: a 4KB region that lives in the I-cache
            // (sets 128-255 of the 8KB direct-mapped array).
            self.alu_pc = 0x2_1000 + ((self.alu_pc + 4) & 0xfff);
            self.alu_pc
        };
        let op = if self.rng.chance(self.spec.frac_fp) {
            Op::FpAlu
        } else {
            Op::IntAlu
        };
        let dep = if self.rng.chance(self.spec.dep_p) {
            self.rng.range(1, 2) as u8
        } else {
            0
        };
        Inst::with_dep(pc, op, dep)
    }
}

impl InstStream for MixStream {
    fn clone_box(&self) -> Option<Box<dyn InstStream>> {
        Some(Box::new(self.clone()))
    }

    fn next_inst(&mut self) -> Inst {
        let inst = if let Some(p) = self.pending.pop_front() {
            p
        } else {
            let x = self.rng.f64();
            if x < self.spec.frac_mem {
                self.gen_mem()
            } else if x < self.spec.frac_mem + self.spec.frac_branch {
                self.gen_branch()
            } else {
                self.gen_compute()
            }
        };
        self.seq += 1;
        inst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::PatternKind;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "test",
            patterns: vec![
                PatternSpec {
                    pc_base: 0x1000,
                    ..PatternSpec::new("hot", PatternKind::Strided { stride: 8 }, 0, 4096, 0.7)
                },
                PatternSpec {
                    pc_base: 0x3000,
                    serial_dep: true,
                    ..PatternSpec::new(
                        "chase",
                        PatternKind::PointerChase {
                            node_bytes: 64,
                            fields: 1,
                            run: 1,
                        },
                        1 << 32,
                        1 << 16,
                        0.3,
                    )
                },
            ],
            frac_mem: 0.4,
            frac_branch: 0.15,
            frac_fp: 0.2,
            branch_predictability: 0.8,
            dep_p: 0.4,
            code_kb: 16,
            cold_code_frac: 0.05,
            expect_l1_miss: 0.05,
            expect_l2_miss: 0.0,
        }
    }

    #[test]
    fn mix_fractions_roughly_respected() {
        let mut s = MixStream::new(spec(), 1);
        let n = 50_000;
        let mut mem = 0;
        let mut br = 0;
        for _ in 0..n {
            match s.next_inst().op {
                Op::Load { .. } | Op::Store { .. } => mem += 1,
                Op::Branch { .. } => br += 1,
                _ => {}
            }
        }
        let fm = mem as f64 / n as f64;
        let fb = br as f64 / n as f64;
        assert!((fm - 0.4).abs() < 0.03, "mem fraction {fm}");
        assert!((fb - 0.15).abs() < 0.02, "branch fraction {fb}");
    }

    #[test]
    fn pattern_weights_respected() {
        let mut s = MixStream::new(spec(), 1);
        let mut hot = 0u64;
        let mut chase = 0u64;
        for _ in 0..50_000 {
            if let Op::Load { addr } | Op::Store { addr } = s.next_inst().op {
                if addr < 1 << 20 {
                    hot += 1;
                } else {
                    chase += 1;
                }
            }
        }
        let frac = hot as f64 / (hot + chase) as f64;
        assert!((frac - 0.7).abs() < 0.05, "hot fraction {frac}");
    }

    #[test]
    fn chase_loads_carry_serial_deps() {
        let mut s = MixStream::new(spec(), 1);
        let mut dep_count = 0;
        let mut chase_count = 0;
        for _ in 0..20_000 {
            let inst = s.next_inst();
            if let Op::Load { addr } | Op::Store { addr } = inst.op {
                if addr >= 1 << 32 {
                    chase_count += 1;
                    if inst.dep > 0 {
                        dep_count += 1;
                    }
                }
            }
        }
        assert!(chase_count > 1000);
        // All but the first chase access depend on a predecessor.
        assert!(dep_count >= chase_count - 1, "{dep_count}/{chase_count}");
    }

    #[test]
    fn determinism() {
        let mut a = MixStream::new(spec(), 7);
        let mut b = MixStream::new(spec(), 7);
        for _ in 0..1000 {
            assert_eq!(a.next_inst(), b.next_inst());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = MixStream::new(spec(), 1);
        let mut b = MixStream::new(spec(), 2);
        let same = (0..200).filter(|_| a.next_inst() == b.next_inst()).count();
        assert!(same < 100, "streams should diverge, same={same}");
    }

    #[test]
    fn software_prefetches_emitted_when_configured() {
        let mut sp = spec();
        sp.patterns[0].sw_prefetch = Some(crate::patterns::SwPrefetchSpec {
            lead_bytes: 256,
            every: 2,
        });
        let mut s = MixStream::new(sp, 1);
        let mut prefetches = 0;
        for _ in 0..20_000 {
            if matches!(s.next_inst().op, Op::SoftPrefetch { .. }) {
                prefetches += 1;
            }
        }
        assert!(prefetches > 1000, "{prefetches}");
    }

    #[test]
    fn branch_sites_have_stable_behavior() {
        // With 0.8 predictability, overall taken-rate should be far from
        // 50% (predictable sites are ~94% taken).
        let mut s = MixStream::new(spec(), 3);
        let mut taken = 0u64;
        let mut total = 0u64;
        for _ in 0..50_000 {
            if let Op::Branch { taken: t, .. } = s.next_inst().op {
                total += 1;
                if t {
                    taken += 1;
                }
            }
        }
        let rate = taken as f64 / total as f64;
        assert!(rate > 0.7, "taken rate {rate}");
    }

    #[test]
    fn validate_catches_overlap() {
        let mut sp = spec();
        sp.patterns[1].base = 100; // overlaps pattern 0
        assert!(sp.validate().is_err());
    }

    #[test]
    fn validate_catches_bad_mix() {
        let mut sp = spec();
        sp.frac_mem = 0.9;
        sp.frac_branch = 0.3;
        assert!(sp.validate().is_err());
    }
}
