//! Property-based tests over the prefetch generators: structural sanity of
//! every candidate they emit, under arbitrary access streams.

use ppf_prefetch::{
    AccessEvent, ComposedPrefetcher, CorrelationPrefetcher, NextSequencePrefetcher, Prefetcher,
    ShadowDirectoryPrefetcher, StridePrefetcher,
};
use ppf_types::{LineAddr, PrefetchRequest, PrefetchSource};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Access {
    pc: u64,
    line: u64,
    l1_hit: bool,
    nsp_tagged: bool,
    l2_hit: bool,
}

fn access() -> impl Strategy<Value = Access> {
    (
        0u64..64,
        0u64..4096,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(pc, line, l1_hit, nsp_tagged, l2_hit)| Access {
            pc: 0x1000 + pc * 4,
            line,
            l1_hit,
            nsp_tagged: nsp_tagged && l1_hit,
            l2_hit,
        })
}

fn event(a: &Access) -> AccessEvent {
    AccessEvent {
        pc: a.pc,
        addr: a.line * 32 + (a.pc % 4) * 8,
        line: LineAddr(a.line),
        l1_hit: a.l1_hit,
        nsp_tagged_hit: a.nsp_tagged,
        l2_accessed: !a.l1_hit,
        l2_hit: a.l2_hit,
        is_store: false,
    }
}

fn drive(p: &mut dyn Prefetcher, accesses: &[Access]) -> Vec<(Access, Vec<PrefetchRequest>)> {
    let mut log = Vec::new();
    let mut out = Vec::new();
    for a in accesses {
        out.clear();
        p.on_access(&event(a), &mut out);
        log.push((a.clone(), out.clone()));
    }
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn nsp_emits_only_forward_neighbours(accesses in prop::collection::vec(access(), 1..200)) {
        let mut p = NextSequencePrefetcher::with_degree(2);
        for (a, reqs) in drive(&mut p, &accesses) {
            for r in reqs {
                let delta = r.line.0.wrapping_sub(a.line);
                prop_assert!((1..=2).contains(&delta), "NSP emitted line {delta} away");
                prop_assert_eq!(r.trigger_pc, a.pc);
                prop_assert_eq!(r.source, PrefetchSource::Nsp);
            }
        }
    }

    #[test]
    fn nsp_silent_on_untagged_hits(accesses in prop::collection::vec(access(), 1..200)) {
        let mut p = NextSequencePrefetcher::new();
        for (a, reqs) in drive(&mut p, &accesses) {
            if a.l1_hit && !a.nsp_tagged {
                prop_assert!(reqs.is_empty());
            }
        }
    }

    #[test]
    fn sdp_never_prefetches_the_trigger_line(accesses in prop::collection::vec(access(), 1..300)) {
        let mut p = ShadowDirectoryPrefetcher::new(1024);
        for (a, reqs) in drive(&mut p, &accesses) {
            for r in reqs {
                prop_assert_ne!(r.line, LineAddr(a.line), "self-shadow emitted");
                prop_assert_eq!(r.source, PrefetchSource::Sdp);
            }
        }
    }

    #[test]
    fn sdp_only_prefetches_observed_lines(accesses in prop::collection::vec(access(), 1..300)) {
        // Every shadow the SDP emits must be a line that actually missed
        // at some earlier point in the stream (shadows are learned, not
        // synthesized).
        let mut p = ShadowDirectoryPrefetcher::new(1024);
        let mut seen_misses = std::collections::HashSet::new();
        for (a, reqs) in drive(&mut p, &accesses) {
            for r in &reqs {
                prop_assert!(
                    seen_misses.contains(&r.line.0),
                    "shadow {:?} never missed before", r.line
                );
            }
            if !a.l1_hit && !a.l2_hit {
                seen_misses.insert(a.line);
            }
        }
    }

    #[test]
    fn correlation_only_prefetches_observed_miss_successors(
        accesses in prop::collection::vec(access(), 1..300),
    ) {
        let mut p = CorrelationPrefetcher::new(256).with_degree(2);
        let mut seen_misses = std::collections::HashSet::new();
        for (a, reqs) in drive(&mut p, &accesses) {
            for r in &reqs {
                prop_assert!(seen_misses.contains(&r.line.0));
            }
            if !a.l1_hit {
                seen_misses.insert(a.line);
            }
        }
    }

    #[test]
    fn stride_targets_are_always_off_the_trigger_line(
        accesses in prop::collection::vec(access(), 1..300),
    ) {
        let mut p = StridePrefetcher::paper_sized();
        for (a, reqs) in drive(&mut p, &accesses) {
            for r in reqs {
                prop_assert_ne!(r.line, LineAddr(a.line));
                prop_assert_eq!(r.source, PrefetchSource::Stride);
            }
        }
    }

    #[test]
    fn composition_has_no_same_event_duplicates(
        accesses in prop::collection::vec(access(), 1..200),
    ) {
        let mut c = ComposedPrefetcher::new(vec![
            Box::new(NextSequencePrefetcher::with_degree(2)),
            Box::new(ShadowDirectoryPrefetcher::new(256)),
            Box::new(CorrelationPrefetcher::new(256)),
        ]);
        let mut out = Vec::new();
        for a in &accesses {
            out.clear();
            c.on_access(&event(a), &mut out);
            let mut lines: Vec<u64> = out.iter().map(|r| r.line.0).collect();
            lines.sort_unstable();
            let before = lines.len();
            lines.dedup();
            prop_assert_eq!(lines.len(), before, "duplicate line within one event");
        }
    }

    #[test]
    fn generators_are_deterministic(accesses in prop::collection::vec(access(), 1..150)) {
        let run = |accesses: &[Access]| {
            let mut p = ShadowDirectoryPrefetcher::new(512);
            drive(&mut p, accesses)
                .into_iter()
                .map(|(_, reqs)| reqs)
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(&accesses), run(&accesses));
    }
}
