//! Software prefetch plumbing.
//!
//! Compiler-inserted prefetch instructions (gcc `-O4` on Alpha uses loads
//! to `$r31`) are identified in the LSQ and "sent to the pollution filter
//! directly" (§4, Figure 3). In this simulator they appear as
//! `Op::SoftPrefetch` instructions in the workload stream; the core calls
//! [`request_for`] to turn one into a [`PrefetchRequest`] whose trigger PC
//! is the prefetch instruction's own PC (§4.2: "for prefetches enabled by a
//! software prefetch instruction, the PC is identical to the PC of the
//! software prefetch instruction").

use ppf_types::{Addr, LineAddr, Pc, PrefetchRequest, PrefetchSource};

/// Build the prefetch request for a software prefetch instruction at `pc`
/// targeting byte address `addr`.
#[inline]
pub fn request_for(pc: Pc, addr: Addr, line_bytes: u32) -> PrefetchRequest {
    PrefetchRequest {
        line: LineAddr::of(addr, line_bytes),
        trigger_pc: pc,
        source: PrefetchSource::Software,
        tenant: 0,
        // The compiler inserted the prefetch right where it is needed:
        // depth 0, the least speculative request the machine issues.
        depth: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_line_granular_request() {
        let r = request_for(0x1234, 100, 32);
        assert_eq!(r.line, LineAddr(3)); // 100 / 32
        assert_eq!(r.trigger_pc, 0x1234);
        assert_eq!(r.source, PrefetchSource::Software);
    }

    #[test]
    fn same_line_addresses_collapse() {
        assert_eq!(request_for(0, 64, 32).line, request_for(0, 95, 32).line);
        assert_ne!(request_for(0, 64, 32).line, request_for(0, 96, 32).line);
    }
}
