//! Reference-Prediction-Table stride prefetcher (Chen & Baer, *Effective
//! Hardware-Based Data Prefetching for High Performance Processors*, 1995).
//!
//! Not part of the paper's prefetcher mix — the paper cites it as the
//! family of "more sophisticated hardware-based schemes" — but the ablation
//! benches use it to show the pollution filter composes with a third,
//! differently-shaped generator.
//!
//! Classic RPT: a PC-indexed table of `{last_addr, stride, state}` entries
//! with the four-state automaton *initial → transient → steady ⇄ no-pred*.
//! Prefetches are issued only from the *steady* state.

use crate::{AccessEvent, Prefetcher};
use ppf_types::{Addr, LineAddr, PrefetchRequest, PrefetchSource};

/// RPT entry automaton state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Initial,
    Transient,
    Steady,
    NoPred,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    pc_tag: u64,
    last_addr: Addr,
    stride: i64,
    state: State,
    valid: bool,
}

const INVALID: Entry = Entry {
    pc_tag: 0,
    last_addr: 0,
    stride: 0,
    state: State::Initial,
    valid: false,
};

/// PC-indexed reference prediction table.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    entries: Box<[Entry]>,
    mask: u64,
    line_bytes: u32,
    /// Lookahead: prefetch `addr + degree * stride`.
    degree: i64,
}

impl StridePrefetcher {
    /// An RPT of `entries` slots (power of two) for `line_bytes`-byte lines.
    pub fn new(entries: usize, line_bytes: u32) -> Self {
        assert!(entries.is_power_of_two());
        StridePrefetcher {
            entries: vec![INVALID; entries].into_boxed_slice(),
            mask: (entries - 1) as u64,
            line_bytes,
            degree: 1,
        }
    }

    /// Typical 256-entry RPT for the paper's 32-byte lines.
    pub fn paper_sized() -> Self {
        StridePrefetcher::new(256, 32)
    }

    /// Set the lookahead degree (>= 1).
    pub fn with_degree(mut self, degree: i64) -> Self {
        assert!(degree >= 1);
        self.degree = degree;
        self
    }

    /// Table size.
    pub fn entries(&self) -> usize {
        self.entries.len()
    }

    #[inline]
    fn slot(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }
}

impl Prefetcher for StridePrefetcher {
    fn clone_box(&self) -> Option<Box<dyn Prefetcher>> {
        Some(Box::new(self.clone()))
    }

    fn name(&self) -> &'static str {
        "stride"
    }

    fn source(&self) -> PrefetchSource {
        PrefetchSource::Stride
    }

    fn on_access(&mut self, ev: &AccessEvent, out: &mut Vec<PrefetchRequest>) {
        let slot = self.slot(ev.pc);
        let e = &mut self.entries[slot];
        if !e.valid || e.pc_tag != ev.pc {
            *e = Entry {
                pc_tag: ev.pc,
                last_addr: ev.addr,
                stride: 0,
                state: State::Initial,
                valid: true,
            };
            return;
        }
        let delta = ev.addr.wrapping_sub(e.last_addr) as i64;
        let matched = delta == e.stride && delta != 0;
        // Chen & Baer state transitions.
        e.state = match (e.state, matched) {
            (State::Initial, true) => State::Steady,
            (State::Initial, false) => State::Transient,
            (State::Transient, true) => State::Steady,
            (State::Transient, false) => State::NoPred,
            (State::Steady, true) => State::Steady,
            (State::Steady, false) => State::Initial,
            (State::NoPred, true) => State::Transient,
            (State::NoPred, false) => State::NoPred,
        };
        if !matched {
            e.stride = delta;
        }
        e.last_addr = ev.addr;
        if e.state == State::Steady {
            let target = ev.addr.wrapping_add((e.stride * self.degree) as u64);
            let target_line = LineAddr::of(target, self.line_bytes);
            // Same-line strides don't need a prefetch.
            if target_line != ev.line {
                out.push(PrefetchRequest {
                    line: target_line,
                    trigger_pc: ev.pc,
                    source: PrefetchSource::Stride,
                    tenant: 0,
                    depth: self.degree.min(u8::MAX as i64) as u8,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::event;

    fn access(p: &mut StridePrefetcher, pc: u64, addr: u64) -> Vec<LineAddr> {
        let mut out = Vec::new();
        let mut ev = event(pc, addr / 32);
        ev.addr = addr;
        p.on_access(&ev, &mut out);
        out.iter().map(|r| r.line).collect()
    }

    #[test]
    fn constant_stride_reaches_steady_and_prefetches() {
        let mut p = StridePrefetcher::paper_sized();
        // Stride of 64 bytes (2 lines): addresses 0, 64, 128, ...
        assert!(access(&mut p, 0x100, 0).is_empty()); // allocate
        assert!(access(&mut p, 0x100, 64).is_empty()); // learn stride (transient path)
        let got = access(&mut p, 0x100, 128); // stride confirmed -> steady
        assert_eq!(got, vec![LineAddr::of(192, 32)]);
        let got = access(&mut p, 0x100, 192);
        assert_eq!(got, vec![LineAddr::of(256, 32)]);
    }

    #[test]
    fn irregular_pattern_goes_quiet() {
        let mut p = StridePrefetcher::paper_sized();
        access(&mut p, 0x100, 0);
        access(&mut p, 0x100, 1000);
        access(&mut p, 0x100, 13);
        access(&mut p, 0x100, 500_000);
        // NoPred: nothing issued even as deltas keep changing.
        assert!(access(&mut p, 0x100, 7).is_empty());
        assert!(access(&mut p, 0x100, 99_999).is_empty());
    }

    #[test]
    fn sub_line_stride_suppressed() {
        let mut p = StridePrefetcher::paper_sized();
        // 8-byte stride stays within a 32-byte line most accesses: target
        // line == current line must not emit a request.
        access(&mut p, 0x100, 0);
        access(&mut p, 0x100, 8);
        let got = access(&mut p, 0x100, 16);
        assert!(got.is_empty(), "target 24 is in the same line");
    }

    #[test]
    fn different_pcs_use_different_entries() {
        let mut p = StridePrefetcher::paper_sized();
        access(&mut p, 0x100, 0);
        access(&mut p, 0x104, 77); // different PC: own entry
        access(&mut p, 0x100, 64);
        let got = access(&mut p, 0x100, 128);
        assert_eq!(got.len(), 1, "pc 0x104's access must not disturb 0x100");
    }

    #[test]
    fn negative_stride_works() {
        let mut p = StridePrefetcher::paper_sized();
        access(&mut p, 0x100, 10_000);
        access(&mut p, 0x100, 10_000 - 64);
        let got = access(&mut p, 0x100, 10_000 - 128);
        assert_eq!(got, vec![LineAddr::of(10_000 - 192, 32)]);
    }

    #[test]
    fn steady_broken_then_relearned() {
        let mut p = StridePrefetcher::paper_sized();
        access(&mut p, 0x100, 0);
        access(&mut p, 0x100, 64);
        assert!(!access(&mut p, 0x100, 128).is_empty());
        // Break the pattern.
        assert!(access(&mut p, 0x100, 5000).is_empty(), "steady -> initial");
        // One matching delta from initial goes straight back to steady.
        access(&mut p, 0x100, 5064);
        let got = access(&mut p, 0x100, 5128);
        assert!(!got.is_empty());
    }

    #[test]
    fn pc_aliasing_retags() {
        let mut p = StridePrefetcher::new(4, 32);
        access(&mut p, 0x100, 0);
        access(&mut p, 0x100, 64);
        access(&mut p, 0x110, 5); // aliases slot (0x100>>2)&3 == (0x110>>2)&3
        let got = access(&mut p, 0x100, 128);
        assert!(got.is_empty(), "retagged entry forgot the stream");
    }

    #[test]
    fn degree_extends_lookahead() {
        let mut p = StridePrefetcher::new(256, 32).with_degree(4);
        access(&mut p, 0x100, 0);
        access(&mut p, 0x100, 64);
        let got = access(&mut p, 0x100, 128);
        assert_eq!(got, vec![LineAddr::of(128 + 4 * 64, 32)]);
    }
}
