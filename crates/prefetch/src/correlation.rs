//! Correlation-based (Markov) prefetching.
//!
//! The paper cites Charney & Reeves, *Generalized Correlation Based
//! Hardware Prefetching* (1995) as one of the aggressive prefetcher
//! families its filter must tame: "correlation-based prefetching keeps
//! prior L1 cache miss addresses and triggers prefetches by correlating
//! subsequent misses to the history" (§1.1). It is not part of the
//! paper's evaluated mix; this implementation backs the prefetcher-mix
//! ablations in `ppf-bench` (a third differently-shaped generator next to
//! NSP's spatial guess and SDP's L2-side successor).
//!
//! Structure: a direct-mapped correlation table keyed by L1 *miss* line;
//! each entry remembers up to [`WAYS`] successor miss lines in MRU order.
//! On a miss to `X`, the entry for the *previous* miss learns `X` as a
//! successor, and `X`'s own successors are emitted as prefetch candidates
//! (most-recent first, up to the configured degree).

use crate::{AccessEvent, Prefetcher};
use ppf_types::{LineAddr, PrefetchRequest, PrefetchSource};

/// Successors remembered per entry.
pub const WAYS: usize = 2;

#[derive(Debug, Clone, Copy)]
struct Entry {
    tag: LineAddr,
    /// Successor miss lines, MRU first. `None` slots are unused.
    next: [Option<LineAddr>; WAYS],
    valid: bool,
}

const INVALID: Entry = Entry {
    tag: LineAddr(0),
    next: [None; WAYS],
    valid: false,
};

/// Miss-correlation prefetcher.
#[derive(Debug, Clone)]
pub struct CorrelationPrefetcher {
    entries: Box<[Entry]>,
    mask: u64,
    last_miss: Option<LineAddr>,
    /// Successors emitted per trigger (1..=WAYS).
    degree: usize,
}

impl CorrelationPrefetcher {
    /// A correlation table with `entries` slots (power of two), emitting
    /// one successor per trigger.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two());
        CorrelationPrefetcher {
            entries: vec![INVALID; entries].into_boxed_slice(),
            mask: (entries - 1) as u64,
            last_miss: None,
            degree: 1,
        }
    }

    /// Emit up to `degree` remembered successors per trigger.
    pub fn with_degree(mut self, degree: usize) -> Self {
        assert!((1..=WAYS).contains(&degree));
        self.degree = degree;
        self
    }

    /// Table size.
    pub fn entries(&self) -> usize {
        self.entries.len()
    }

    #[inline]
    fn slot(&self, line: LineAddr) -> usize {
        (line.0 & self.mask) as usize
    }

    /// Record `succ` as the most recent successor of `prev`.
    fn learn(&mut self, prev: LineAddr, succ: LineAddr) {
        let slot = self.slot(prev);
        let e = &mut self.entries[slot];
        if !e.valid || e.tag != prev {
            *e = Entry {
                tag: prev,
                next: [None; WAYS],
                valid: true,
            };
        }
        // MRU insert with de-duplication.
        if e.next[0] == Some(succ) {
            return;
        }
        let mut shifted = Some(succ);
        for n in e.next.iter_mut() {
            let out = *n;
            *n = shifted;
            if out == Some(succ) {
                break; // it moved to the front; keep the tail intact
            }
            shifted = out;
        }
    }
}

impl Prefetcher for CorrelationPrefetcher {
    fn clone_box(&self) -> Option<Box<dyn Prefetcher>> {
        Some(Box::new(self.clone()))
    }

    fn name(&self) -> &'static str {
        "correlation"
    }

    fn source(&self) -> PrefetchSource {
        PrefetchSource::Stride // shares the "extension" stats slot
    }

    fn on_access(&mut self, ev: &AccessEvent, out: &mut Vec<PrefetchRequest>) {
        // Correlation tables watch the L1 miss stream.
        if ev.l1_hit {
            return;
        }
        if let Some(prev) = self.last_miss {
            if prev != ev.line {
                self.learn(prev, ev.line);
            }
        }
        self.last_miss = Some(ev.line);
        let slot = self.slot(ev.line);
        let e = &self.entries[slot];
        if e.valid && e.tag == ev.line {
            for (d, succ) in e.next.iter().flatten().take(self.degree).enumerate() {
                out.push(PrefetchRequest {
                    line: *succ,
                    trigger_pc: ev.pc,
                    source: PrefetchSource::Stride,
                    tenant: 0,
                    depth: (d + 1).min(u8::MAX as usize) as u8,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{event, miss_event};

    fn run(p: &mut CorrelationPrefetcher, line: u64) -> Vec<LineAddr> {
        let mut out = Vec::new();
        p.on_access(&miss_event(0x100, line, true), &mut out);
        out.iter().map(|r| r.line).collect()
    }

    #[test]
    fn learns_miss_successors() {
        let mut p = CorrelationPrefetcher::new(256);
        assert!(run(&mut p, 10).is_empty());
        assert!(run(&mut p, 50).is_empty()); // learn 10 -> 50
        assert!(run(&mut p, 90).is_empty()); // learn 50 -> 90
        assert_eq!(run(&mut p, 10), vec![LineAddr(50)]);
        assert_eq!(run(&mut p, 50), vec![LineAddr(90)]);
    }

    #[test]
    fn hits_are_invisible() {
        let mut p = CorrelationPrefetcher::new(256);
        run(&mut p, 10);
        let mut out = Vec::new();
        p.on_access(&event(0x100, 50), &mut out); // L1 hit
        assert!(out.is_empty());
        // The hit did not become 10's successor.
        assert!(run(&mut p, 10).is_empty());
    }

    #[test]
    fn mru_keeps_two_successors() {
        let mut p = CorrelationPrefetcher::new(256).with_degree(2);
        run(&mut p, 10);
        run(&mut p, 50); // 10 -> 50
        run(&mut p, 10);
        run(&mut p, 90); // 10 -> 90 (MRU), 50 demoted
        let got = run(&mut p, 10);
        assert_eq!(got, vec![LineAddr(90), LineAddr(50)]);
    }

    #[test]
    fn repeated_successor_moves_to_front_without_duplication() {
        let mut p = CorrelationPrefetcher::new(256).with_degree(2);
        run(&mut p, 10);
        run(&mut p, 50);
        run(&mut p, 10);
        run(&mut p, 90);
        run(&mut p, 10);
        run(&mut p, 50); // 50 back to MRU
        let got = run(&mut p, 10);
        assert_eq!(got, vec![LineAddr(50), LineAddr(90)]);
    }

    #[test]
    fn degree_one_emits_only_mru() {
        let mut p = CorrelationPrefetcher::new(256);
        run(&mut p, 10);
        run(&mut p, 50);
        run(&mut p, 10);
        run(&mut p, 90);
        assert_eq!(run(&mut p, 10), vec![LineAddr(90)]);
    }

    #[test]
    fn aliasing_retags() {
        let mut p = CorrelationPrefetcher::new(16);
        run(&mut p, 1);
        run(&mut p, 50); // 1 -> 50
        run(&mut p, 17); // aliases slot 1: retag
        assert!(run(&mut p, 1).is_empty());
    }

    #[test]
    fn self_successor_not_learned() {
        let mut p = CorrelationPrefetcher::new(256);
        run(&mut p, 10);
        run(&mut p, 10);
        assert!(run(&mut p, 10).is_empty());
    }
}
