//! Shadow-Directory Prefetching (SDP).
//!
//! From §3 of the paper: "the SDP maintains a shadow line address in each L2
//! cache line for prefetching purposes along with its resident address. The
//! shadow line is the next line missed after the currently resident line was
//! last accessed. A confirmation bit is added to each L2 cache line
//! indicating if the prefetched line was ever used since it was prefetched
//! last time." (Pomerene et al., U.S. Patent 4,807,110.)
//!
//! The shadow directory here is a direct-mapped side table sized like the
//! L2 (one entry per L2 line), rather than bits physically inside the L2
//! array — behaviourally identical and it keeps `ppf-mem` generic.
//!
//! Protocol implemented:
//!
//! 1. On an L2 *miss* to line `X`, the entry of the *previously accessed*
//!    L2 line gets `shadow := X` (learning the miss-successor relation).
//!    A newly learned shadow starts confirmed so it gets one chance.
//! 2. On any L2 access to line `X` whose entry holds a confirmed shadow
//!    `S`, a prefetch for `S` is emitted and the confirmation bit cleared.
//! 3. When a later L2 access actually references a line we shadow-
//!    prefetched, the issuing entry's confirmation bit is set again
//!    (tracked through a small outstanding ring, like the real hardware's
//!    in-flight confirmation path).

use crate::{AccessEvent, Prefetcher};
use ppf_types::{LineAddr, PrefetchRequest, PrefetchSource};

#[derive(Debug, Clone, Copy)]
struct Entry {
    /// The L2 line this entry currently describes.
    tag: LineAddr,
    /// Learned successor (shadow) line.
    shadow: Option<LineAddr>,
    /// Was the last shadow prefetch from this entry used?
    confirmed: bool,
    valid: bool,
}

const INVALID: Entry = Entry {
    tag: LineAddr(0),
    shadow: None,
    confirmed: false,
    valid: false,
};

/// Outstanding shadow prefetches awaiting confirmation.
const PENDING_RING: usize = 64;

/// Free-slot sentinel in `pending_target`. Line addresses are byte
/// addresses shifted right by the line-offset bits, so `u64::MAX` can
/// never name a real line.
const NO_TARGET: u64 = u64::MAX;

/// The shadow-directory prefetcher.
#[derive(Debug, Clone)]
pub struct ShadowDirectoryPrefetcher {
    entries: Box<[Entry]>,
    mask: u64,
    last_l2_line: Option<LineAddr>,
    /// Ring of outstanding prefetch targets, struct-of-arrays so the
    /// per-access confirmation probe is a flat compare loop over `u64`s:
    /// `pending_target[i]` is the prefetched line (`NO_TARGET` = free or
    /// already confirmed) and `pending_slot[i]` the directory slot that
    /// issued it.
    pending_target: [u64; PENDING_RING],
    pending_slot: [u32; PENDING_RING],
    pending_next: usize,
    /// Conservative presence filter over `pending` targets: the bit
    /// `hash(line) % 256` is set for every (possibly stale) outstanding
    /// target (256 bits so the 64-deep ring does not saturate it). A clear
    /// bit proves the line is not outstanding, so the per-access
    /// confirmation probe can skip the ring scan; a stale set bit merely
    /// costs one scan. Never changes behaviour.
    pending_sig: [u64; 4],
}

impl ShadowDirectoryPrefetcher {
    /// A directory with `entries` slots — size it like the L2 line count
    /// (the paper's 512KB L2 with 32-byte lines has 16384 lines).
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two());
        ShadowDirectoryPrefetcher {
            entries: vec![INVALID; entries].into_boxed_slice(),
            mask: (entries - 1) as u64,
            last_l2_line: None,
            pending_target: [NO_TARGET; PENDING_RING],
            pending_slot: [0; PENDING_RING],
            pending_next: 0,
            pending_sig: [0; 4],
        }
    }

    /// The presence-filter (word, bit) for `line` (see `pending_sig`).
    #[inline]
    fn sig_slot(line: LineAddr) -> (usize, u64) {
        let h = line.0.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 56;
        ((h >> 6) as usize, 1 << (h & 63))
    }

    /// Directory sized for the paper's L2 (16384 lines).
    pub fn paper_default() -> Self {
        ShadowDirectoryPrefetcher::new(16384)
    }

    /// Directory entry count.
    pub fn entries(&self) -> usize {
        self.entries.len()
    }

    #[inline]
    fn slot_of(&self, line: LineAddr) -> usize {
        (line.0 & self.mask) as usize
    }

    /// Get (allocating/retagging if needed) the slot index for `line`.
    fn lookup_mut(&mut self, line: LineAddr) -> usize {
        let slot = self.slot_of(line);
        let e = &mut self.entries[slot];
        if !e.valid || e.tag != line {
            *e = Entry {
                tag: line,
                shadow: None,
                confirmed: false,
                valid: true,
            };
        }
        slot
    }

    fn push_pending(&mut self, target: LineAddr, slot: usize) {
        // Rotating overwrite: if the ring is full the oldest outstanding
        // prefetch silently loses its confirmation chance, like a hardware
        // structure of bounded size would.
        self.pending_target[self.pending_next] = target.0;
        self.pending_slot[self.pending_next] = slot as u32;
        self.pending_next = (self.pending_next + 1) % PENDING_RING;
        let (w, b) = Self::sig_slot(target);
        self.pending_sig[w] |= b;
    }

    /// If `line` matches an outstanding shadow prefetch, confirm its issuer.
    fn confirm_if_pending(&mut self, line: LineAddr) {
        let (w, b) = Self::sig_slot(line);
        if self.pending_sig[w] & b == 0 {
            return; // provably not outstanding
        }
        let mut removed = false;
        for i in 0..PENDING_RING {
            if self.pending_target[i] == line.0 {
                let e = &mut self.entries[self.pending_slot[i] as usize];
                if e.valid && e.shadow == Some(line) {
                    e.confirmed = true;
                }
                self.pending_target[i] = NO_TARGET;
                removed = true;
            }
        }
        if removed {
            // Re-derive the filter so cleared slots stop costing scans.
            let mut sig = [0u64; 4];
            for &t in self.pending_target.iter().filter(|&&t| t != NO_TARGET) {
                let (w, b) = Self::sig_slot(LineAddr(t));
                sig[w] |= b;
            }
            self.pending_sig = sig;
        }
    }
}

impl Prefetcher for ShadowDirectoryPrefetcher {
    fn clone_box(&self) -> Option<Box<dyn Prefetcher>> {
        Some(Box::new(self.clone()))
    }

    fn name(&self) -> &'static str {
        "sdp"
    }

    fn source(&self) -> PrefetchSource {
        PrefetchSource::Sdp
    }

    fn on_access(&mut self, ev: &AccessEvent, out: &mut Vec<PrefetchRequest>) {
        // Confirmation watches *all* demand accesses: a successful shadow
        // prefetch makes its target hit in the L1, so the "prefetched line
        // was used" signal (the per-line confirmation bit of the patent)
        // must be taken from L1-level use, not from L2 traffic.
        self.confirm_if_pending(ev.line);
        // Learning and triggering watch the L2 access stream only.
        if !ev.l2_accessed {
            return;
        }

        // Learn: this miss is the successor of the previously accessed line.
        // A shadow that has proven useful (confirmed, or issued and still
        // awaiting its confirmation) is kept — the patent's confirmation
        // bit exists precisely so one interleaved unrelated miss does not
        // wipe a working successor edge.
        if !ev.l2_hit {
            if let Some(prev) = self.last_l2_line {
                if prev != ev.line {
                    let slot = self.lookup_mut(prev);
                    let in_flight = self
                        .pending_target
                        .iter()
                        .zip(&self.pending_slot)
                        .any(|(&t, &s)| t != NO_TARGET && s as usize == slot);
                    let e = &mut self.entries[slot];
                    if e.shadow != Some(ev.line) && !e.confirmed && !in_flight {
                        e.shadow = Some(ev.line);
                        e.confirmed = true; // fresh shadow gets one chance
                    }
                }
            }
        }

        // Trigger: a confirmed shadow for the accessed line is prefetched.
        let slot = self.lookup_mut(ev.line);
        let e = &mut self.entries[slot];
        if e.confirmed {
            if let Some(shadow) = e.shadow {
                e.confirmed = false; // must be re-confirmed by use
                out.push(PrefetchRequest {
                    line: shadow,
                    trigger_pc: ev.pc,
                    source: PrefetchSource::Sdp,
                    tenant: 0,
                    depth: 1,
                });
                self.push_pending(shadow, slot);
            }
        }

        self.last_l2_line = Some(ev.line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::miss_event;

    fn run(p: &mut ShadowDirectoryPrefetcher, pc: u64, line: u64, l2_hit: bool) -> Vec<LineAddr> {
        let mut out = Vec::new();
        p.on_access(&miss_event(pc, line, l2_hit), &mut out);
        out.iter().map(|r| r.line).collect()
    }

    #[test]
    fn learns_miss_successor_and_prefetches_on_revisit() {
        let mut p = ShadowDirectoryPrefetcher::new(1024);
        // Access A (miss), then B (miss): A's shadow becomes B.
        assert!(run(&mut p, 0x100, 10, false).is_empty());
        assert!(run(&mut p, 0x104, 50, false).is_empty());
        // Revisit A: shadow B is confirmed-fresh, so prefetch B.
        let got = run(&mut p, 0x100, 10, false);
        assert_eq!(got, vec![LineAddr(50)]);
    }

    #[test]
    fn unconfirmed_shadow_not_reissued() {
        let mut p = ShadowDirectoryPrefetcher::new(1024);
        run(&mut p, 0x100, 10, false);
        run(&mut p, 0x104, 50, false);
        assert_eq!(run(&mut p, 0x100, 10, false), vec![LineAddr(50)]);
        // Without the prefetch being "used" (line 50 accessed), a further
        // revisit must stay quiet: the confirmation bit is down. Visit some
        // other line in between so the A->50 edge isn't relearned.
        run(&mut p, 0x108, 90, true);
        assert!(run(&mut p, 0x100, 10, true).is_empty());
    }

    #[test]
    fn use_of_prefetched_line_reconfirms() {
        let mut p = ShadowDirectoryPrefetcher::new(1024);
        run(&mut p, 0x100, 10, false);
        run(&mut p, 0x104, 50, false);
        assert_eq!(run(&mut p, 0x100, 10, false), vec![LineAddr(50)]);
        // The program actually touches line 50 (L2 access): confirm.
        run(&mut p, 0x104, 50, true);
        // Intervening access so the shadow isn't just relearned.
        run(&mut p, 0x108, 90, true);
        // Revisit A: confirmed again, prefetch reissued.
        assert_eq!(run(&mut p, 0x100, 10, true), vec![LineAddr(50)]);
    }

    #[test]
    fn confirmed_shadow_resists_one_interloper() {
        let mut p = ShadowDirectoryPrefetcher::new(1024);
        run(&mut p, 0x100, 10, false);
        run(&mut p, 0x104, 50, false); // shadow(10) = 50, confirmed-fresh
                                       // Trigger the shadow prefetch (confirmation is consumed, and the
                                       // prefetch becomes in-flight)...
        assert_eq!(run(&mut p, 0x100, 10, true), vec![LineAddr(50)]);
        // ...then an unrelated miss follows another access to 10. The
        // in-flight protection keeps the edge from being overwritten.
        run(&mut p, 0x108, 70, false);
        // The prefetched line is used: the edge re-confirms...
        run(&mut p, 0x104, 50, true);
        // ...so the next visit to 10 prefetches 50 again — the useful edge
        // survived the interloper.
        let got = run(&mut p, 0x100, 10, true);
        assert_eq!(got, vec![LineAddr(50)], "confirmed shadow kept");
    }

    #[test]
    fn failed_shadow_is_replaced_by_new_successor() {
        let mut p = ShadowDirectoryPrefetcher::new(1024);
        run(&mut p, 0x100, 10, false);
        run(&mut p, 0x104, 50, false); // shadow(10) = 50, confirmed-fresh
                                       // Issue the shadow prefetch (consumes the confirmation)...
        assert_eq!(run(&mut p, 0x100, 10, true), vec![LineAddr(50)]);
        // ...and 50 is never used. Rotate the pending ring with other
        // issued prefetches so the entry stops being in-flight-protected:
        // learn a long miss chain, then trigger each edge once.
        for i in 0..70 {
            run(&mut p, 0x10c, 200 + i, false);
        }
        for i in 0..70 {
            run(&mut p, 0x10c, 200 + i, true);
        }
        // A new miss-successor is observed after an access to 10: with the
        // old shadow unconfirmed and not in flight, it is replaced.
        run(&mut p, 0x100, 10, true);
        run(&mut p, 0x108, 70, false);
        let got = run(&mut p, 0x100, 10, true);
        assert_eq!(got, vec![LineAddr(70)], "failed shadow replaced");
    }

    #[test]
    fn l1_only_traffic_is_invisible() {
        let mut p = ShadowDirectoryPrefetcher::new(1024);
        let mut out = Vec::new();
        p.on_access(&crate::test_util::event(0x100, 10), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn l2_hits_do_not_learn_successors() {
        let mut p = ShadowDirectoryPrefetcher::new(1024);
        run(&mut p, 0x100, 10, false);
        run(&mut p, 0x104, 50, true); // hit: not a miss-successor
        assert!(run(&mut p, 0x100, 10, true).is_empty(), "no shadow learned");
    }

    #[test]
    fn directory_aliasing_retags() {
        let mut p = ShadowDirectoryPrefetcher::new(16);
        run(&mut p, 0x100, 1, false);
        run(&mut p, 0x104, 50, false); // entry[1].shadow = 50
                                       // Line 17 aliases with line 1 in a 16-entry directory: retag wipes
                                       // the old shadow.
        run(&mut p, 0x108, 17, false);
        assert!(
            run(&mut p, 0x100, 1, false).is_empty(),
            "retagged entry lost shadow"
        );
    }

    #[test]
    fn self_successor_not_learned() {
        let mut p = ShadowDirectoryPrefetcher::new(1024);
        run(&mut p, 0x100, 10, false);
        // Same line missing again (e.g. evicted quickly) must not set
        // shadow(A) = A.
        assert!(run(&mut p, 0x100, 10, false).is_empty());
        assert!(run(&mut p, 0x100, 10, false).is_empty());
    }

    #[test]
    fn paper_default_matches_l2_lines() {
        assert_eq!(ShadowDirectoryPrefetcher::paper_default().entries(), 16384);
    }
}
