//! Prefetch generators.
//!
//! The paper evaluates two aggressive hardware prefetchers plus
//! compiler-inserted software prefetches (§3):
//!
//! * [`nsp::NextSequencePrefetcher`] — tagged next-line prefetching
//!   (Smith, *Cache Memories*, 1982): prefetch line *n+1* on a miss to *n*
//!   or on the first hit to a prefetched (tagged) line.
//! * [`sdp::ShadowDirectoryPrefetcher`] — shadow-directory prefetching
//!   (Pomerene et al., U.S. Patent 4,807,110): each L2 line remembers the
//!   *next line missed after it was last accessed* plus a confirmation bit.
//! * [`stride::StridePrefetcher`] — a reference-prediction-table stride
//!   prefetcher (Chen & Baer, 1995). Not part of the paper's mix; used by
//!   the ablation benches.
//! * [`correlation::CorrelationPrefetcher`] — Markov miss-correlation
//!   prefetching (Charney & Reeves, 1995; the paper's reference \[2\]).
//!   Ablations only.
//! * [`software`] — helpers for the software prefetch instructions the
//!   workload streams carry (identified in the LSQ, Figure 3).
//!
//! All hardware generators implement [`Prefetcher`]: the simulator feeds
//! them one [`AccessEvent`] per demand access and collects candidate
//! [`PrefetchRequest`]s, which then pass through the pollution filter.

#![warn(missing_docs)]

pub mod compose;
pub mod correlation;
pub mod nsp;
pub mod sdp;
pub mod software;
pub mod stride;

use ppf_types::{Addr, LineAddr, Pc, PrefetchRequest, PrefetchSource};

pub use compose::ComposedPrefetcher;
pub use correlation::CorrelationPrefetcher;
pub use nsp::NextSequencePrefetcher;
pub use sdp::ShadowDirectoryPrefetcher;
pub use stride::StridePrefetcher;

/// What a demand access did, as seen by the prefetch generators.
///
/// Built by the simulator from the hierarchy's
/// [`ppf_mem::hierarchy::AccessResult`]; hardware prefetchers are "triggered
/// by L1 or L2 cache accesses" (§4) so this carries both levels' outcomes.
#[derive(Debug, Clone, Copy)]
pub struct AccessEvent {
    /// PC of the memory instruction.
    pub pc: Pc,
    /// Byte address referenced (stride detection needs sub-line resolution).
    pub addr: Addr,
    /// The referenced cache line.
    pub line: LineAddr,
    /// L1 hit?
    pub l1_hit: bool,
    /// The L1 hit landed on a line whose NSP tag bit was set (and consumed).
    pub nsp_tagged_hit: bool,
    /// Whether the access continued to the L2 (i.e. L1 missed and the
    /// prefetch buffer, if any, missed too).
    pub l2_accessed: bool,
    /// L2 hit? Meaningful only when `l2_accessed`.
    pub l2_hit: bool,
    /// Store (vs load)?
    pub is_store: bool,
}

/// A hardware prefetch generator.
///
/// `Send` because the grid runner moves warmed-up simulators (which own
/// their generators) between worker threads when sharing warm-up snapshots.
pub trait Prefetcher: Send {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// The provenance tag attached to this generator's requests.
    fn source(&self) -> PrefetchSource;

    /// Observe one demand access; append any candidate prefetches to `out`.
    /// Implementations must not clear `out` (generators are chained).
    fn on_access(&mut self, ev: &AccessEvent, out: &mut Vec<PrefetchRequest>);

    /// A boxed deep copy of this generator at its current training state,
    /// or `None` when it is not duplicable (the default). Generators that
    /// opt in make their machine snapshottable, letting the scheduler
    /// share warm-up work across grid cells.
    fn clone_box(&self) -> Option<Box<dyn Prefetcher>> {
        None
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;

    /// Event builder with quiet defaults (L1 hit, load).
    pub fn event(pc: Pc, line: u64) -> AccessEvent {
        AccessEvent {
            pc,
            addr: line * 32,
            line: LineAddr(line),
            l1_hit: true,
            nsp_tagged_hit: false,
            l2_accessed: false,
            l2_hit: false,
            is_store: false,
        }
    }

    pub fn miss_event(pc: Pc, line: u64, l2_hit: bool) -> AccessEvent {
        AccessEvent {
            l1_hit: false,
            l2_accessed: true,
            l2_hit,
            ..event(pc, line)
        }
    }
}
