//! Next-Sequence Prefetching (NSP) — tagged next-line prefetch.
//!
//! From §3 of the paper: "the NSP employs a tag bit associated with each
//! cache line. When a cache line is prefetched, its corresponding tag bit is
//! set. The next adjacent cache line is automatically prefetched when a
//! memory access either misses the L1 or hits a tagged cache line."
//!
//! The tag bit itself lives in the L1 line metadata (`ppf-mem` sets it on
//! prefetch fills and reports its consumption in
//! [`AccessEvent::nsp_tagged_hit`]), so this generator is stateless — it is
//! purely a trigger rule. That mirrors the hardware, where NSP is a wire
//! from the L1 miss/tag-hit logic to the prefetch generator.

use crate::{AccessEvent, Prefetcher};
use ppf_types::{PrefetchRequest, PrefetchSource};

/// The tagged next-line prefetcher.
#[derive(Debug, Default, Clone)]
pub struct NextSequencePrefetcher {
    /// Prefetch degree: how many sequential lines to request per trigger.
    /// The paper's NSP uses degree 1; the ablation benches sweep it.
    pub degree: u32,
}

impl NextSequencePrefetcher {
    /// Degree-1 NSP, as in the paper.
    pub fn new() -> Self {
        NextSequencePrefetcher { degree: 1 }
    }

    /// NSP with a custom prefetch degree (>= 1).
    pub fn with_degree(degree: u32) -> Self {
        assert!(degree >= 1);
        NextSequencePrefetcher { degree }
    }
}

impl Prefetcher for NextSequencePrefetcher {
    fn clone_box(&self) -> Option<Box<dyn Prefetcher>> {
        Some(Box::new(self.clone()))
    }

    fn name(&self) -> &'static str {
        "nsp"
    }

    fn source(&self) -> PrefetchSource {
        PrefetchSource::Nsp
    }

    fn on_access(&mut self, ev: &AccessEvent, out: &mut Vec<PrefetchRequest>) {
        let triggered = !ev.l1_hit || ev.nsp_tagged_hit;
        if !triggered {
            return;
        }
        for d in 1..=self.degree as i64 {
            out.push(PrefetchRequest {
                line: ev.line.offset(d),
                trigger_pc: ev.pc,
                source: PrefetchSource::Nsp,
                tenant: 0,
                depth: d.min(u8::MAX as i64) as u8,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{event, miss_event};
    use ppf_types::LineAddr;

    #[test]
    fn miss_triggers_next_line() {
        let mut p = NextSequencePrefetcher::new();
        let mut out = Vec::new();
        p.on_access(&miss_event(0x100, 10, true), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, LineAddr(11));
        assert_eq!(out[0].trigger_pc, 0x100);
        assert_eq!(out[0].source, PrefetchSource::Nsp);
    }

    #[test]
    fn plain_hit_is_quiet() {
        let mut p = NextSequencePrefetcher::new();
        let mut out = Vec::new();
        p.on_access(&event(0x100, 10), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn tagged_hit_triggers() {
        let mut p = NextSequencePrefetcher::new();
        let mut out = Vec::new();
        let mut ev = event(0x100, 20);
        ev.nsp_tagged_hit = true;
        p.on_access(&ev, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, LineAddr(21));
    }

    #[test]
    fn degree_n_emits_n_lines() {
        let mut p = NextSequencePrefetcher::with_degree(3);
        let mut out = Vec::new();
        p.on_access(&miss_event(0x100, 5, false), &mut out);
        let lines: Vec<_> = out.iter().map(|r| r.line).collect();
        assert_eq!(lines, vec![LineAddr(6), LineAddr(7), LineAddr(8)]);
    }

    #[test]
    fn appends_rather_than_clearing() {
        let mut p = NextSequencePrefetcher::new();
        let mut out = vec![PrefetchRequest {
            line: LineAddr(1),
            trigger_pc: 0,
            source: PrefetchSource::Sdp,
            tenant: 0,
            depth: 1,
        }];
        p.on_access(&miss_event(0x100, 10, true), &mut out);
        assert_eq!(out.len(), 2, "existing requests preserved");
    }
}
