//! Run reports and the text-table helpers shared by the `figures` binary,
//! the benches, and the integration tests.

use ppf_types::SimStats;

/// The result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Experiment label ("no-filter", "PA", "PC@8KB", ...).
    pub label: String,
    /// Workload name.
    pub workload: String,
    /// Stream seed.
    pub seed: u64,
    /// All counters.
    pub stats: SimStats,
}

ppf_types::json_struct!(SimReport {
    label,
    workload,
    seed,
    stats,
});

impl SimReport {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }

    /// A human-readable multi-line summary of the run (the block the
    /// examples print).
    pub fn summary(&self) -> String {
        let s = &self.stats;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} / {} — {} instructions in {} cycles (IPC {:.3})",
            self.label,
            self.workload,
            s.instructions,
            s.cycles,
            s.ipc()
        );
        let _ = writeln!(
            out,
            "  L1: {:.2}% miss ({} accesses), L2: {:.2}% miss",
            100.0 * s.l1.miss_rate(),
            s.l1.demand_accesses,
            100.0 * s.l2.miss_rate()
        );
        let _ = writeln!(
            out,
            "  prefetches: {} proposed, {} filtered, {} issued -> {} good / {} bad",
            s.prefetches_proposed.total(),
            s.prefetches_filtered.total(),
            s.prefetches_issued.total(),
            s.good_total(),
            s.bad_total()
        );
        let _ = writeln!(
            out,
            "  contention: {} demand port retries, {} bus-busy cycles, {} mispredicts",
            s.demand_port_retries, s.bus_busy_cycles, s.branch_mispredicts
        );
        // Present only when the run classified misses (DiagnosticsConfig).
        if s.l1.miss_class.total() > 0 || s.l2.miss_class.total() > 0 {
            let l1 = &s.l1.miss_class;
            let l2 = &s.l2.miss_class;
            let _ = writeln!(
                out,
                "  miss classes (compulsory/capacity/conflict): L1 {}/{}/{}, L2 {}/{}/{}",
                l1.compulsory, l1.capacity, l1.conflict, l2.compulsory, l2.capacity, l2.conflict
            );
        }
        out
    }

    /// The prefetch funnel as a rendered text block: one line per stage in
    /// flow order, for the diagnostics the `figures calibrate` subcommand
    /// and the examples print.
    pub fn funnel_block(&self) -> String {
        let mut out = String::new();
        for (stage, count) in self.stats.funnel_stages() {
            let _ = writeln!(out, "  {stage:<18} {count}");
        }
        out
    }
}

use std::fmt::Write as _;

/// Geometric mean of positive values (the usual summary for IPC ratios).
/// Returns 0 for an empty slice; ignores non-positive entries.
pub fn geomean(values: &[f64]) -> f64 {
    let logs: Vec<f64> = values
        .iter()
        .copied()
        .filter(|v| *v > 0.0)
        .map(f64::ln)
        .collect();
    if logs.is_empty() {
        0.0
    } else {
        (logs.iter().sum::<f64>() / logs.len() as f64).exp()
    }
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// A simple aligned text table (the paper's figures are bar charts; the
/// harness prints the same data as rows).
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                // Left-align the first column, right-align the rest.
                if i == 0 {
                    line.push_str(&format!("{:<width$}", cell, width = widths[i]));
                } else {
                    line.push_str(&format!("{:>width$}", cell, width = widths[i]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Format a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Format a float with three decimals.
pub fn f3(x: f64) -> String {
    if x.is_infinite() {
        "inf".to_string()
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        // Non-positive entries are ignored rather than poisoning the mean.
        assert!((geomean(&[0.0, 4.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn mean_basic() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["bench", "ipc"]);
        t.row(vec!["mcf", "0.512"]);
        t.row(vec!["wave5", "1.023"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("bench"));
        assert!(lines[2].starts_with("mcf"));
        // Right-aligned numeric column: both rows end at same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic]
    fn table_rejects_ragged_rows() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn summary_mentions_the_key_numbers() {
        let mut stats = SimStats {
            instructions: 1000,
            cycles: 500,
            ..Default::default()
        };
        stats.l1.demand_accesses = 400;
        stats.l1.demand_misses = 40;
        let r = SimReport {
            label: "PA".into(),
            workload: "mcf".into(),
            seed: 1,
            stats,
        };
        let s = r.summary();
        assert!(s.contains("PA / mcf"));
        assert!(s.contains("IPC 2.000"));
        assert!(s.contains("10.00% miss"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.0821), "8.2%");
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f3(f64::INFINITY), "inf");
    }
}
