//! Experiment grids for every table and figure in the paper, plus a
//! parallel sweep runner.
//!
//! Each `figN_*` function returns the grid of [`RunSpec`]s whose reports
//! regenerate that figure's rows; the `figures` binary and the Criterion
//! benches share these definitions so the paper index in DESIGN.md has a
//! single source of truth. Grid cells are independent pure functions of
//! `(config, workload, seed)`, so [`run_grid`] fans them out across threads
//! with the work-stealing scheduler in [`crate::schedule`]: dispatch is
//! ordered by predicted cell cost (longest first), idle workers steal from
//! busy ones, and cells sharing an identical warm-up prefix reuse one
//! warmed simulator snapshot instead of each warming up from scratch.
//! Output order always matches input order regardless of schedule.
//!
//! The runner is fault tolerant: each cell executes under
//! [`std::panic::catch_unwind`], a failed cell is retried once to
//! distinguish deterministic from transient failure, and
//! [`run_grid_outcomes`] reports per-cell [`CellOutcome`]s so one bad cell
//! cannot take down a 300-cell sweep. The panicking [`run_grid`] /
//! [`run_grid_seeds`] wrappers keep the original all-green semantics.

use crate::report::SimReport;
use crate::schedule::CostModel;
use crate::simulator::{Simulator, WatchdogConfig};
use ppf_cpu::InstStream;
use ppf_types::telemetry::{JsonlSink, TelemetryConfig};
use ppf_types::{
    json_struct, FilterKind, PpfError, PrefetchConfig, SplitMix64, SystemConfig, ToJson,
};
use ppf_workloads::{AdversarySpec, AdversaryStream, AttackKind, FaultSpec, FaultStream, Workload};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Default per-run instruction budget for full experiments. The paper runs
/// 300M instructions per benchmark; the models reach steady state orders of
/// magnitude sooner, and all reported metrics are rates/ratios.
pub const DEFAULT_INSTRUCTIONS: u64 = 1_000_000;

/// Default warm-up budget: caches, predictors and the filter's history
/// table reach steady state before measurement begins, standing in for the
/// paper's 300M-instruction runs.
pub const DEFAULT_WARMUP: u64 = 600_000;

/// Default stream seed (any fixed value; results are seed-stable).
pub const DEFAULT_SEED: u64 = 42;

/// One grid cell: a fully specified simulation run.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Configuration label for the report ("PA", "no-filter@32KB", ...).
    pub label: String,
    /// Machine configuration.
    pub config: SystemConfig,
    /// Benchmark.
    pub workload: Workload,
    /// Stream seed.
    pub seed: u64,
    /// Instructions to retire (measured, after warm-up).
    pub n_instructions: u64,
    /// Warm-up instructions before statistics reset.
    pub warmup: u64,
    /// Watchdog bounds for this cell (cycle ceiling, stall window).
    pub watchdog: WatchdogConfig,
    /// Fault to inject into the instruction stream (tests and CI fault
    /// drills only; `None` everywhere else).
    pub fault: Option<FaultSpec>,
    /// Adversarial campaign mounted against this cell's workload
    /// (attack-matrix figures, CI attack drills; `None` everywhere else).
    pub adversary: Option<AdversarySpec>,
    /// Interval-telemetry stream for this cell (`None` everywhere except
    /// explicitly instrumented runs — telemetry is off by default).
    pub telemetry: Option<TelemetrySpec>,
}

/// Where a cell's interval-telemetry stream goes: the sampling config plus
/// a destination *directory*. The filename is derived from the cell's final
/// `(label, workload, seed)` inside [`RunSpec::run_checked`], after seed
/// fan-out has assigned the real seed — a pre-computed path would collide
/// across fanned seeds.
#[derive(Debug, Clone)]
pub struct TelemetrySpec {
    /// Sampling configuration (interval length; must be enabled).
    pub config: TelemetryConfig,
    /// Directory receiving `<label>-<workload>-<seed>.jsonl` streams.
    pub dir: PathBuf,
}

impl RunSpec {
    /// A spec with default seed and instruction budget.
    pub fn new(label: impl Into<String>, config: SystemConfig, workload: Workload) -> Self {
        RunSpec {
            label: label.into(),
            config,
            workload,
            seed: DEFAULT_SEED,
            n_instructions: DEFAULT_INSTRUCTIONS,
            warmup: DEFAULT_WARMUP,
            watchdog: WatchdogConfig::default(),
            fault: None,
            adversary: None,
            telemetry: None,
        }
    }

    /// Override the instruction budget; warm-up scales along (60% of the
    /// measured budget, capped at the default so small test grids stay
    /// fast while full runs get a fully warm L2 and history table).
    pub fn instructions(mut self, n: u64) -> Self {
        self.n_instructions = n;
        self.warmup = (n * 6 / 10).min(DEFAULT_WARMUP);
        self
    }

    /// Inject `fault` into this cell's instruction stream.
    pub fn with_fault(mut self, fault: FaultSpec) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Mount `adversary`'s attack campaign against this cell's workload.
    pub fn with_adversary(mut self, adversary: AdversarySpec) -> Self {
        self.adversary = Some(adversary);
        self
    }

    /// Override the watchdog bounds for this cell.
    pub fn with_watchdog(mut self, watchdog: WatchdogConfig) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Stream this cell's interval telemetry into `dir` (one JSONL file per
    /// cell, named after the final label/workload/seed).
    pub fn with_telemetry(mut self, config: TelemetryConfig, dir: impl Into<PathBuf>) -> Self {
        self.telemetry = Some(TelemetrySpec {
            config,
            dir: dir.into(),
        });
        self
    }

    /// Where this cell's telemetry stream lands, if telemetry is attached.
    /// Non-alphanumeric label characters are flattened to `_` so sweep
    /// labels like `no-filter@32KB` stay filesystem-safe.
    pub fn telemetry_path(&self) -> Option<PathBuf> {
        let t = self.telemetry.as_ref()?;
        let safe: String = self
            .label
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        Some(t.dir.join(format!(
            "{safe}-{}-{}.jsonl",
            self.workload.name(),
            self.seed
        )))
    }

    /// This cell's identity, as used in error context frames.
    fn identity(&self) -> String {
        format!(
            "cell {}/{} seed {}",
            self.label,
            self.workload.name(),
            self.seed
        )
    }

    /// Build, configure and warm up this cell's simulator — everything
    /// that happens *before* measurement begins. Split from
    /// [`RunSpec::finish`] so the grid scheduler can snapshot the warmed
    /// machine and share it across cells with an identical warm prefix
    /// (see [`RunSpec::warm_key`]).
    fn warmed_sim(&self) -> Result<Simulator, PpfError> {
        // Composition order matters: the fault wrapper sits outermost so a
        // fault drill trips at the same emitted-instruction index whether
        // or not an adversary is also mixed in.
        let stream: Box<dyn InstStream> = match (self.adversary, self.fault) {
            (Some(adv), Some(fault)) => Box::new(FaultStream::new(
                AdversaryStream::new(adv, self.workload, self.seed),
                fault,
            )),
            (Some(adv), None) => Box::new(AdversaryStream::new(adv, self.workload, self.seed)),
            (None, Some(fault)) => {
                Box::new(FaultStream::new(self.workload.stream(self.seed), fault))
            }
            (None, None) => Box::new(self.workload.stream(self.seed)),
        };
        let sim = Simulator::with_seed(self.config.clone(), stream, self.seed)
            .map_err(|e| e.context(self.identity()))?;
        let mut sim = sim
            .labeled(self.label.clone(), self.workload.name())
            .with_watchdog(self.watchdog);
        if let Some(t) = &self.telemetry {
            sim = sim
                .with_telemetry(&t.config)
                .map_err(|e| e.context(self.identity()))?;
        }
        sim.warmup_checked(self.warmup)?;
        Ok(sim)
    }

    /// Run the measured phase on an already-warm simulator (own or a
    /// shared snapshot — the re-label covers a donor cell's label).
    fn finish(&self, sim: Simulator) -> Result<SimReport, PpfError> {
        let mut sim = sim.labeled(self.label.clone(), self.workload.name());
        let report = sim.run_checked(self.n_instructions)?;
        if let Some(t) = &self.telemetry {
            let path = self.telemetry_path().expect("telemetry is set");
            std::fs::create_dir_all(&t.dir).map_err(|e| {
                PpfError::io(e.to_string())
                    .context(format!("creating telemetry dir {}", t.dir.display()))
                    .context(self.identity())
            })?;
            JsonlSink::new(path)
                .write(&sim.take_telemetry_records())
                .map_err(|e| e.context(self.identity()))?;
        }
        Ok(report)
    }

    /// Execute this cell, surfacing failures (invalid config, watchdog
    /// trip, funnel violation) as structured errors.
    pub fn run_checked(&self) -> Result<SimReport, PpfError> {
        self.finish(self.warmed_sim()?)
    }

    /// The warm-prefix identity of this cell, or `None` when its warm-up
    /// cannot be shared. Two cells with the same key execute an *identical*
    /// warm-up (same config, workload, seed, warm-up budget and watchdog
    /// bounds — the seed matters because streams are seeded), so one cell's
    /// post-warm-up snapshot is a valid starting point for the other.
    /// Fault, adversary and telemetry cells never share (wrappers are not
    /// duplicable and faults are positional).
    fn warm_key(&self) -> Option<u64> {
        if self.fault.is_some() || self.adversary.is_some() || self.telemetry.is_some() {
            return None;
        }
        let mut h = crate::schedule::FNV_OFFSET;
        for part in [
            self.config.to_json_string(),
            self.workload.name().to_string(),
            self.seed.to_string(),
            self.warmup.to_string(),
            self.watchdog.max_cpi.to_string(),
            self.watchdog.stall_window.to_string(),
        ] {
            h = crate::schedule::fnv1a(h, part.as_bytes());
            h = crate::schedule::fnv1a(h, &[0]);
        }
        Some(h)
    }

    /// Execute this cell, panicking on failure with the rendered
    /// structured error (see [`RunSpec::run_checked`]).
    pub fn run(&self) -> SimReport {
        self.run_checked().unwrap_or_else(|e| panic!("{e}"))
    }
}

/// One failed grid cell: its identity, the structured error, and how many
/// attempts were made (2 = the retry also failed, so the failure is
/// deterministic in this machine).
#[derive(Debug, Clone, PartialEq)]
pub struct CellFailure {
    /// Configuration label of the failed cell.
    pub label: String,
    /// Workload name of the failed cell.
    pub workload: String,
    /// Stream seed of the failed cell.
    pub seed: u64,
    /// The error from the last attempt.
    pub error: PpfError,
    /// Attempts made (first run + retries).
    pub attempts: u32,
    /// When the cell was under adversarial attack: the attacking tenant,
    /// so partial-failure reports name who was hammering the machine.
    pub attacking_tenant: Option<u8>,
}

json_struct!(CellFailure {
    label,
    workload,
    seed,
    error,
    attempts,
    attacking_tenant,
});

/// The outcome of one panic-isolated grid cell. The report is boxed so a
/// mostly-failed outcome vector stays small (`SimStats` is ~650 bytes).
#[derive(Debug, Clone)]
pub enum CellOutcome {
    /// The cell completed and produced a report.
    Ok(Box<SimReport>),
    /// The cell failed every attempt; the rest of the grid survives.
    Failed(CellFailure),
}

impl CellOutcome {
    /// The report, if the cell succeeded.
    pub fn report(&self) -> Option<&SimReport> {
        match self {
            CellOutcome::Ok(r) => Some(r),
            CellOutcome::Failed(_) => None,
        }
    }

    /// The failure, if the cell failed.
    pub fn failure(&self) -> Option<&CellFailure> {
        match self {
            CellOutcome::Ok(_) => None,
            CellOutcome::Failed(f) => Some(f),
        }
    }

    /// Did the cell succeed?
    pub fn is_ok(&self) -> bool {
        matches!(self, CellOutcome::Ok(_))
    }
}

/// Attempts per cell: the first run plus one retry, to distinguish
/// deterministic failures from transient ones (OOM pressure, signals).
const MAX_ATTEMPTS: u32 = 2;

/// Best-effort text from a `catch_unwind` payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Shared warm-up snapshots for the current grid run. Groups cells by
/// [`RunSpec::warm_key`]; the first cell of a group to warm up donates a
/// snapshot of its warmed machine, later cells clone it (the last one
/// takes it) and skip straight to the measured phase. Results are
/// bit-identical either way — a snapshot *is* the state the warm-up
/// produces — so sharing only removes duplicate work.
struct SnapshotCache {
    groups: Mutex<std::collections::HashMap<u64, SnapGroup>>,
    reuses: std::sync::atomic::AtomicU64,
}

/// One warm-prefix group: how many member cells have not yet been served,
/// and the donated snapshot once a member finished warming up.
struct SnapGroup {
    remaining: usize,
    snap: Option<Simulator>,
}

impl SnapshotCache {
    /// Build the cache for one grid: only warm keys shared by ≥ 2 cells
    /// form groups (a group of one could never reuse its snapshot).
    fn new(specs: &[RunSpec]) -> Self {
        let mut counts: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for spec in specs {
            if let Some(key) = spec.warm_key() {
                *counts.entry(key).or_insert(0) += 1;
            }
        }
        let groups = counts
            .into_iter()
            .filter(|&(_, n)| n >= 2)
            .map(|(key, n)| {
                (
                    key,
                    SnapGroup {
                        remaining: n,
                        snap: None,
                    },
                )
            })
            .collect();
        SnapshotCache {
            groups: Mutex::new(groups),
            reuses: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Warm-up snapshots donated to sibling cells so far.
    fn reuses(&self) -> u64 {
        self.reuses.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Run `spec`, reusing a group sibling's warm snapshot when one is
    /// available and donating ours otherwise.
    fn run(&self, spec: &RunSpec) -> Result<SimReport, PpfError> {
        let Some(key) = spec.warm_key() else {
            return spec.run_checked();
        };
        // Fast path: a sibling already warmed up — clone its snapshot (the
        // group's last consumer takes it, skipping the final clone).
        let warmed = {
            let mut groups = lock_clean(&self.groups);
            groups.get_mut(&key).and_then(|g| {
                g.remaining = g.remaining.saturating_sub(1);
                if g.remaining == 0 {
                    g.snap.take()
                } else {
                    g.snap.as_ref().and_then(Simulator::try_snapshot)
                }
            })
        };
        if let Some(sim) = warmed {
            self.reuses
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return spec.finish(sim);
        }
        // Slow path: warm up ourselves; donate a snapshot if siblings are
        // still waiting and nobody beat us to it. (Two siblings racing
        // through warm-up both run correctly — the loser just wastes the
        // donation.)
        let sim = spec.warmed_sim()?;
        {
            let mut groups = lock_clean(&self.groups);
            if let Some(g) = groups.get_mut(&key) {
                if g.remaining > 0 && g.snap.is_none() {
                    g.snap = sim.try_snapshot();
                }
            }
        }
        spec.finish(sim)
    }
}

/// Build the [`CellFailure`] for `spec`'s terminal attempt.
fn cell_failure(spec: &RunSpec, error: PpfError, attempts: u32) -> CellFailure {
    CellFailure {
        label: spec.label.clone(),
        workload: spec.workload.name().to_string(),
        seed: spec.seed,
        error,
        attempts,
        attacking_tenant: spec.adversary.map(|a| a.attack.attacking_tenant()),
    }
}

/// Lock a mutex, recovering from poisoning. Worker panics are contained by
/// `catch_unwind`, but a panic that escapes anyway (e.g. from a panic
/// payload's `Drop`) must not cascade into aborting every surviving cell.
fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The `s`-th fanned seed derived from `base`.
///
/// `s = 0` is `base` itself, so single-seed grids are bit-identical to
/// [`run_grid`]; later seeds are successive [`SplitMix64`] draws, which are
/// pairwise distinct across any realistic set of base seeds — unlike the
/// old `base + 1_000·s` scheme, which collided whenever two cells' base
/// seeds differed by a small multiple of 1000.
pub fn fanned_seed(base: u64, s: u32) -> u64 {
    let mut rng = SplitMix64::new(base);
    let mut derived = base;
    for _ in 0..s {
        derived = rng.next_u64();
    }
    derived
}

/// The seed-major (cell × seed) product grid: all cells at fanned seed 0,
/// then all at fanned seed 1, … Shared by [`run_grid_seeds_outcomes`] and
/// the checkpointing layer in `ppf-bench`, which must key cells exactly as
/// the runner executes them.
pub fn fan_seeds(specs: &[RunSpec], seeds: u32) -> Vec<RunSpec> {
    let mut fanned = Vec::with_capacity(specs.len() * seeds as usize);
    for s in 0..seeds {
        for spec in specs {
            let mut cell = spec.clone();
            cell.seed = fanned_seed(spec.seed, s);
            fanned.push(cell);
        }
    }
    fanned
}

/// Collapse a seed-major fanned outcome vector (`seeds × n` entries, see
/// [`fan_seeds`]) back to one outcome per cell: statistics merge across
/// seeds (sums of counters — derived rates then behave as
/// instruction-weighted averages); a cell with any failed seed is
/// `Failed`, keeping the first seed's failure.
pub fn merge_seed_outcomes(outcomes: Vec<CellOutcome>, n: usize, seeds: u32) -> Vec<CellOutcome> {
    assert_eq!(outcomes.len(), n * seeds as usize);
    let mut merged: Vec<CellOutcome> = outcomes[..n].to_vec();
    for s in 1..seeds as usize {
        for (i, slot) in merged.iter_mut().enumerate() {
            let next = &outcomes[s * n + i];
            match (&mut *slot, next) {
                (CellOutcome::Ok(m), CellOutcome::Ok(r)) => m.stats.merge(&r.stats),
                (CellOutcome::Failed(_), _) => {}
                (CellOutcome::Ok(_), CellOutcome::Failed(f)) => {
                    *slot = CellOutcome::Failed(f.clone());
                }
            }
        }
    }
    merged
}

/// Run every cell under `seeds` different workload seeds and merge the
/// per-cell statistics (sums of counters — derived rates and ratios then
/// behave as instruction-weighted averages). Seed 1 reduces to
/// [`run_grid`]. Output order matches input order. Panics if any cell
/// fails both attempts; [`run_grid_seeds_outcomes`] is the fault-tolerant
/// form.
pub fn run_grid_seeds(specs: Vec<RunSpec>, seeds: u32) -> Vec<SimReport> {
    unwrap_outcomes(run_grid_seeds_outcomes(specs, seeds))
}

/// Fault-tolerant form of [`run_grid_seeds`]: per-cell outcomes instead of
/// a panic on the first failure.
pub fn run_grid_seeds_outcomes(specs: Vec<RunSpec>, seeds: u32) -> Vec<CellOutcome> {
    assert!(seeds >= 1);
    if seeds == 1 {
        return run_grid_outcomes(specs);
    }
    // Fan the whole (cell × seed) product through one parallel pool.
    let n = specs.len();
    let fanned = fan_seeds(&specs, seeds);
    merge_seed_outcomes(run_grid_outcomes(fanned), n, seeds)
}

fn unwrap_outcomes(outcomes: Vec<CellOutcome>) -> Vec<SimReport> {
    outcomes
        .into_iter()
        .map(|o| match o {
            CellOutcome::Ok(r) => *r,
            CellOutcome::Failed(f) => panic!("{}", f.error),
        })
        .collect()
}

/// Run every cell, in parallel, preserving input order in the output.
/// Panics if any cell fails both attempts; [`run_grid_outcomes`] is the
/// fault-tolerant form.
pub fn run_grid(specs: Vec<RunSpec>) -> Vec<SimReport> {
    unwrap_outcomes(run_grid_outcomes(specs))
}

/// Run every cell, in parallel, under panic isolation with bounded retry;
/// preserves input order. One bad cell yields one `Failed` outcome and
/// every other cell still completes.
pub fn run_grid_outcomes(specs: Vec<RunSpec>) -> Vec<CellOutcome> {
    run_grid_outcomes_observed(specs, |_, _| {})
}

/// As [`run_grid_outcomes`], invoking `observe(index, &outcome)` as each
/// cell finishes (from the worker that ran it) — the checkpoint layer's
/// streaming-write hook, so completed cells survive a crash mid-sweep.
pub fn run_grid_outcomes_observed<F>(specs: Vec<RunSpec>, observe: F) -> Vec<CellOutcome>
where
    F: Fn(usize, &CellOutcome) + Sync,
{
    run_grid_outcomes_traced(specs, &CostModel::default(), observe).0
}

/// Execution trace of one grid run: scheduling evidence for tests plus the
/// per-cell timing observations the checkpoint layer feeds back into the
/// persisted [`CostModel`].
#[derive(Debug, Default)]
pub struct GridTrace {
    /// Cell indices in the order execution started (retried cells appear
    /// once per attempt).
    pub start_order: Vec<usize>,
    /// Tasks taken from another worker's deque.
    pub steals: u64,
    /// Retry re-enqueues (satellite fix: retries go to the back of the
    /// scheduler, never inline on the same worker).
    pub retries: u64,
    /// Wall time of each cell's final attempt, in microseconds.
    pub cell_micros: Vec<u64>,
    /// Each cell's content-hash key ([`crate::schedule::cell_key`]),
    /// computed once for cost prediction and returned so callers can
    /// record timings without re-hashing.
    pub keys: Vec<String>,
    /// Warm-up snapshots shared between same-warm-prefix cells.
    pub snapshot_reuses: u64,
}

/// The full-control grid runner: work-stealing dispatch ordered by
/// `model`'s cost predictions (longest cells start first), shared warm-up
/// snapshots, panic isolation with scheduler-level retry, and a
/// [`GridTrace`] of what actually happened. Output order always matches
/// input order regardless of schedule.
pub fn run_grid_outcomes_traced<F>(
    specs: Vec<RunSpec>,
    model: &CostModel,
    observe: F,
) -> (Vec<CellOutcome>, GridTrace)
where
    F: Fn(usize, &CellOutcome) + Sync,
{
    let n = specs.len();
    if n == 0 {
        return (Vec::new(), GridTrace::default());
    }
    let keys: Vec<String> = specs.iter().map(crate::schedule::cell_key).collect();
    let costs: Vec<u64> = specs
        .iter()
        .zip(&keys)
        .map(|(spec, key)| {
            model.predict(
                key,
                spec.warmup + spec.n_instructions,
                config_weight(&spec.config),
            )
        })
        .collect();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    let cache = SnapshotCache::new(&specs);
    let (outcomes, trace) = crate::schedule::run_scheduled(n, workers, &costs, |job, attempt| {
        let spec = &specs[job];
        let error = match catch_unwind(AssertUnwindSafe(|| cache.run(spec))) {
            Ok(Ok(report)) => {
                let outcome = CellOutcome::Ok(Box::new(report));
                observe(job, &outcome);
                return crate::schedule::Attempt::Done(outcome);
            }
            Ok(Err(e)) => e,
            Err(payload) => PpfError::cell_panic(panic_message(&*payload)).context(spec.identity()),
        };
        if attempt + 1 < MAX_ATTEMPTS {
            return crate::schedule::Attempt::Retry;
        }
        let outcome = CellOutcome::Failed(cell_failure(spec, error, attempt + 1));
        observe(job, &outcome);
        crate::schedule::Attempt::Done(outcome)
    });
    let grid_trace = GridTrace {
        start_order: trace.start_order,
        steals: trace.steals,
        retries: trace.retries,
        cell_micros: trace.cell_micros,
        keys,
        snapshot_reuses: cache.reuses(),
    };
    (outcomes, grid_trace)
}

/// Static relative cost weight of a configuration (100 = baseline
/// no-prefetch machine). Used by the cost model's heuristic tier when no
/// recorded wall-time exists for a cell: prefetching, filtering, miss
/// classification and adversarial streams all add per-instruction work.
fn config_weight(config: &SystemConfig) -> u64 {
    let p = &config.prefetch;
    let mut weight: u64 = 100;
    if p.nsp || p.sdp || p.stride || p.correlation || p.software {
        weight += 40;
    }
    if config.filter.kind != FilterKind::None {
        weight += 15;
    }
    if config.diag.classify_misses {
        weight += 25;
    }
    weight
}

fn all_workloads(label: &str, config: SystemConfig, n: u64) -> Vec<RunSpec> {
    Workload::ALL
        .iter()
        .map(|&w| RunSpec::new(label, config.clone(), w).instructions(n))
        .collect()
}

/// Table 2: prefetch-off miss-rate characterization of the ten benchmarks.
pub fn table2(n: u64) -> Vec<RunSpec> {
    let mut cfg = SystemConfig::paper_default();
    cfg.prefetch = PrefetchConfig::disabled();
    all_workloads("prefetch-off", cfg, n)
}

/// `figures calibrate`: Table 2's prefetch-off grid with shadow-tag miss
/// classification enabled, for the per-workload drift report against the
/// paper's measurements.
pub fn calibration(n: u64) -> Vec<RunSpec> {
    let mut cfg = SystemConfig::paper_default().with_miss_classification();
    cfg.prefetch = PrefetchConfig::disabled();
    all_workloads("calibrate", cfg, n)
}

/// Figures 1 & 2: good/bad prefetch split and L1 traffic split on the
/// default machine, no filtering.
pub fn fig1_2(n: u64) -> Vec<RunSpec> {
    all_workloads("no-filter", SystemConfig::paper_default(), n)
}

/// The none/PA/PC filter comparison on a given base machine
/// (Figures 4–6 at 8KB, Figures 7–9 at 32KB).
fn filter_comparison(base: SystemConfig, n: u64) -> Vec<RunSpec> {
    let mut grid = Vec::new();
    for (label, kind) in [
        ("no-filter", FilterKind::None),
        ("PA", FilterKind::Pa),
        ("PC", FilterKind::Pc),
    ] {
        grid.extend(all_workloads(label, base.clone().with_filter(kind), n));
    }
    grid
}

/// Figures 4–6: prefetch counts, bad/good ratio, and IPC with the 8KB L1.
pub fn fig4_5_6(n: u64) -> Vec<RunSpec> {
    filter_comparison(SystemConfig::paper_default(), n)
}

/// Figures 7–9: the same comparison with the 32KB (4-cycle) L1.
pub fn fig7_8_9(n: u64) -> Vec<RunSpec> {
    filter_comparison(SystemConfig::paper_default().with_l1_32k(), n)
}

/// History-table sizes swept in §5.3.
pub const TABLE_SIZES: [usize; 5] = [1024, 2048, 4096, 8192, 16384];

/// Figures 10–12: PA-filter history-table size sweep.
pub fn fig10_11_12(n: u64) -> Vec<RunSpec> {
    let mut grid = Vec::new();
    for entries in TABLE_SIZES {
        let cfg = SystemConfig::paper_default()
            .with_filter(FilterKind::Pa)
            .with_table_entries(entries);
        grid.extend(all_workloads(&format!("{entries}-entry"), cfg, n));
    }
    grid
}

/// L1 port counts swept in §5.4.
pub const PORT_COUNTS: [usize; 3] = [3, 4, 5];

/// Figures 13–14: L1 port sweep with the PA filter.
pub fn fig13_14(n: u64) -> Vec<RunSpec> {
    let mut grid = Vec::new();
    for ports in PORT_COUNTS {
        let cfg = SystemConfig::paper_default()
            .with_filter(FilterKind::Pa)
            .with_l1_ports(ports);
        grid.extend(all_workloads(&format!("{ports}-port"), cfg, n));
    }
    grid
}

/// Figures 15–16: PA/PC filters with and without the dedicated 16-entry
/// prefetch buffer.
pub fn fig15_16(n: u64) -> Vec<RunSpec> {
    let mut grid = Vec::new();
    for (label, kind, buffer) in [
        ("PA", FilterKind::Pa, false),
        ("PA+buffer", FilterKind::Pa, true),
        ("PC", FilterKind::Pc, false),
        ("PC+buffer", FilterKind::Pc, true),
    ] {
        let mut cfg = SystemConfig::paper_default().with_filter(kind);
        if buffer {
            cfg = cfg.with_prefetch_buffer();
        }
        grid.extend(all_workloads(label, cfg, n));
    }
    grid
}

/// The equal-bit-budget filter family head-to-head (DESIGN.md §15): every
/// filter kind — none, PA, PC, the 2-bit Hybrid tournament, and the hashed
/// perceptron — on the default machine over all ten workloads. Every
/// filtering cell inherits the same `table_entries × counter_bits` storage
/// budget from the paper-default config; the perceptron spends it on
/// signed feature weights instead of unsigned counters, so the comparison
/// isolates the prediction structure, not the silicon area.
pub fn filter_family(n: u64) -> Vec<RunSpec> {
    let mut grid = Vec::new();
    for kind in [
        FilterKind::None,
        FilterKind::Pa,
        FilterKind::Pc,
        FilterKind::Hybrid,
        FilterKind::Perceptron,
    ] {
        let label = if kind == FilterKind::None {
            "no-filter"
        } else {
            kind.label()
        };
        grid.extend(all_workloads(
            label,
            SystemConfig::paper_default().with_filter(kind),
            n,
        ));
    }
    grid
}

/// §5.2.1's per-prefetcher analysis: NSP-only and SDP-only machines, each
/// without and with the PA filter.
pub fn nsp_sdp_solo(n: u64) -> Vec<RunSpec> {
    let mut grid = Vec::new();
    for (name, nsp, sdp) in [("NSP", true, false), ("SDP", false, true)] {
        for (flabel, kind) in [("no-filter", FilterKind::None), ("PA", FilterKind::Pa)] {
            let mut cfg = SystemConfig::paper_default().with_filter(kind);
            cfg.prefetch.nsp = nsp;
            cfg.prefetch.sdp = sdp;
            cfg.prefetch.software = false;
            grid.extend(all_workloads(&format!("{name}/{flabel}"), cfg, n));
        }
    }
    grid
}

/// §5.2.1's "1KB history table vs more cache" comparison: the default 8KB
/// machine without filter, with the PA filter, and a 16KB no-filter machine.
pub fn cache_vs_table(n: u64) -> Vec<RunSpec> {
    let mut grid = all_workloads("8KB/no-filter", SystemConfig::paper_default(), n);
    grid.extend(all_workloads(
        "8KB+PA-1KB",
        SystemConfig::paper_default().with_filter(FilterKind::Pa),
        n,
    ));
    grid.extend(all_workloads(
        "16KB/no-filter",
        SystemConfig::paper_default().with_l1_16k(),
        n,
    ));
    grid
}

/// The pinned nonzero hash salt used by every hardened configuration (the
/// value is arbitrary; pinning it keeps hardened runs reproducible).
pub const HARDENING_SALT: u64 = 0x5eed_cafe_f00d_d00d;

/// The filter hardening levels compared in the attack matrix:
/// `(label, hash_salt, tenant_partitions)`.
pub const HARDENINGS: [(&str, u64, usize); 4] = [
    ("unhardened", 0, 1),
    ("salted", HARDENING_SALT, 1),
    ("partitioned", 0, 4),
    ("hardened", HARDENING_SALT, 4),
];

/// The adversarial attack-vs-hardening matrix (DESIGN.md §12): every
/// [`AttackKind`] × hardening level × {PA, PC, Hybrid, Perceptron} on
/// em3d, plus one clean (attack-free) cell per configuration as the
/// recovery baseline. Attack windows scale with the budget: the campaign
/// opens after an eighth of the measured run and closes at the midpoint,
/// leaving half the run to observe recovery.
pub fn attack_matrix(n: u64) -> Vec<RunSpec> {
    let mut grid = Vec::new();
    for kind in [
        FilterKind::Pa,
        FilterKind::Pc,
        FilterKind::Hybrid,
        FilterKind::Perceptron,
    ] {
        for (hardening, salt, partitions) in HARDENINGS {
            let cfg = SystemConfig::paper_default()
                .with_filter(kind)
                .with_hash_salt(salt)
                .with_tenant_partitions(partitions);
            let base = format!("{}/{hardening}", kind.label());
            grid.push(
                RunSpec::new(format!("{base}/clean"), cfg.clone(), Workload::Em3d).instructions(n),
            );
            for attack in AttackKind::ALL {
                let spec = RunSpec::new(format!("{base}/{attack}"), cfg.clone(), Workload::Em3d)
                    .instructions(n);
                let window =
                    AdversarySpec::window(attack, spec.warmup + n / 8, spec.warmup + n / 2);
                grid.push(spec.with_adversary(window));
            }
        }
    }
    grid
}

/// Ablation grids (extensions beyond the paper; DESIGN.md §7). Each
/// returns labelled cells over all ten workloads; the first label is the
/// baseline the summary compares against.
pub mod ablations {
    use super::*;

    /// Saturating-counter width: 1/2/3 bits (paper: 2), PA filter.
    pub fn counter_width(n: u64) -> Vec<RunSpec> {
        let mut grid = Vec::new();
        for bits in [2u8, 1, 3] {
            let mut cfg = SystemConfig::paper_default().with_filter(FilterKind::Pa);
            cfg.filter.counter_bits = bits;
            grid.extend(all_workloads(&format!("{bits}-bit"), cfg, n));
        }
        grid
    }

    /// Shared history table (paper) vs one table per prefetch source at
    /// the same total budget.
    pub fn split_tables(n: u64) -> Vec<RunSpec> {
        let mut grid = Vec::new();
        for (label, split) in [("shared", false), ("split", true)] {
            for kind in [FilterKind::Pa, FilterKind::Pc] {
                let mut cfg = SystemConfig::paper_default().with_filter(kind);
                cfg.filter.split_by_source = split;
                grid.extend(all_workloads(&format!("{}/{label}", kind.label()), cfg, n));
            }
        }
        grid
    }

    /// Misprediction recovery on (default) vs off (the strict, absorbing
    /// reading of the paper).
    pub fn recovery(n: u64) -> Vec<RunSpec> {
        let mut grid = Vec::new();
        for (label, window) in [("recovery", 400u64), ("strict", 0)] {
            let mut cfg = SystemConfig::paper_default().with_filter(FilterKind::Pa);
            cfg.filter.recovery_window = window;
            grid.extend(all_workloads(label, cfg, n));
        }
        grid
    }

    /// Adaptive engagement (§5.2.1 "advanced features") vs always-on.
    pub fn adaptive(n: u64) -> Vec<RunSpec> {
        let mut grid = all_workloads(
            "always-on",
            SystemConfig::paper_default().with_filter(FilterKind::Pa),
            n,
        );
        let mut cfg = SystemConfig::paper_default().with_filter(FilterKind::Pa);
        cfg.filter.adaptive_accuracy_threshold = Some(0.5);
        grid.extend(all_workloads("adaptive@0.5", cfg, n));
        grid
    }

    /// L1 associativity: the paper's direct-mapped L1 vs 2- and 4-way at
    /// the same capacity (no filter — isolates the conflict-miss effect).
    pub fn associativity(n: u64) -> Vec<RunSpec> {
        let mut grid = Vec::new();
        for ways in [1usize, 2, 4] {
            let mut cfg = SystemConfig::paper_default();
            cfg.l1.ways = ways;
            grid.extend(all_workloads(&format!("{ways}-way"), cfg, n));
        }
        grid
    }

    /// A small victim cache as the alternative conflict-miss fix, compared
    /// with the pollution filter (and their combination).
    pub fn victim_cache(n: u64) -> Vec<RunSpec> {
        let mut grid = all_workloads("baseline", SystemConfig::paper_default(), n);
        grid.extend(all_workloads(
            "victim8",
            SystemConfig::paper_default().with_victim_cache(8),
            n,
        ));
        grid.extend(all_workloads(
            "PA",
            SystemConfig::paper_default().with_filter(FilterKind::Pa),
            n,
        ));
        grid.extend(all_workloads(
            "PA+victim8",
            SystemConfig::paper_default()
                .with_filter(FilterKind::Pa)
                .with_victim_cache(8),
            n,
        ));
        grid
    }

    /// Indexing scheme: the paper's PA and PC filters vs the tournament
    /// hybrid extension (same total counter budget).
    pub fn hybrid(n: u64) -> Vec<RunSpec> {
        let mut grid = Vec::new();
        for kind in [FilterKind::Pa, FilterKind::Pc, FilterKind::Hybrid] {
            grid.extend(all_workloads(
                kind.label(),
                SystemConfig::paper_default().with_filter(kind),
                n,
            ));
        }
        grid
    }

    /// Counter initialization (§5.3's "assumed good" choice) vs the
    /// alternatives.
    pub fn counter_init(n: u64) -> Vec<RunSpec> {
        use ppf_types::CounterInit;
        let mut grid = Vec::new();
        for (label, init) in [
            ("weakly-good", CounterInit::WeaklyGood),
            ("strongly-good", CounterInit::StronglyGood),
            ("weakly-bad", CounterInit::WeaklyBad),
        ] {
            let mut cfg = SystemConfig::paper_default().with_filter(FilterKind::Pa);
            cfg.filter.counter_init = init;
            grid.extend(all_workloads(label, cfg, n));
        }
        grid
    }

    /// NSP aggressiveness: degree 1 (paper) vs 4.
    pub fn nsp_degree(n: u64) -> Vec<RunSpec> {
        let mut grid = Vec::new();
        for degree in [1u32, 4] {
            let mut cfg = SystemConfig::paper_default();
            cfg.prefetch.nsp_degree = degree;
            grid.extend(all_workloads(&format!("degree-{degree}"), cfg, n));
        }
        grid
    }

    /// DRAM banking: the paper's unlimited-concurrency memory vs 4 and 8
    /// line-interleaved banks.
    pub fn dram_banks(n: u64) -> Vec<RunSpec> {
        let mut grid = all_workloads("unbanked", SystemConfig::paper_default(), n);
        for banks in [4usize, 8] {
            let mut cfg = SystemConfig::paper_default();
            cfg.mem.banks = banks;
            grid.extend(all_workloads(&format!("{banks}-bank"), cfg, n));
        }
        grid
    }

    /// Prefetcher mix: the paper's NSP+SDP+SW vs adding the stride RPT and
    /// the Markov correlation prefetcher.
    pub fn prefetcher_mix(n: u64) -> Vec<RunSpec> {
        let mut grid = all_workloads("paper-mix", SystemConfig::paper_default(), n);
        let mut stride = SystemConfig::paper_default();
        stride.prefetch.stride = true;
        grid.extend(all_workloads("+stride", stride, n));
        let mut corr = SystemConfig::paper_default();
        corr.prefetch.correlation = true;
        grid.extend(all_workloads("+correlation", corr, n));
        grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: u64 = 5_000; // tiny budget: these tests exercise plumbing

    #[test]
    fn grids_have_expected_shapes() {
        assert_eq!(table2(N).len(), 10);
        assert_eq!(calibration(N).len(), 10);
        assert_eq!(fig1_2(N).len(), 10);
        assert_eq!(fig4_5_6(N).len(), 30);
        assert_eq!(fig7_8_9(N).len(), 30);
        assert_eq!(fig10_11_12(N).len(), 50);
        assert_eq!(fig13_14(N).len(), 30);
        assert_eq!(fig15_16(N).len(), 40);
        assert_eq!(nsp_sdp_solo(N).len(), 40);
        assert_eq!(cache_vs_table(N).len(), 30);
        assert_eq!(filter_family(N).len(), 50);
    }

    #[test]
    fn filter_family_covers_every_kind_at_one_budget() {
        let grid = filter_family(N);
        let entries = SystemConfig::paper_default().filter.table_entries;
        for spec in &grid {
            spec.config.validate().expect("filter-family config valid");
            assert_eq!(spec.config.filter.table_entries, entries);
        }
        let perceptron = grid
            .iter()
            .filter(|s| s.config.filter.kind == FilterKind::Perceptron)
            .count();
        assert_eq!(perceptron, 10, "one perceptron cell per workload");
    }

    #[test]
    fn ablation_grids_validate_and_have_shape() {
        for (grid, cells) in [
            (ablations::counter_width(N), 30),
            (ablations::counter_init(N), 30),
            (ablations::split_tables(N), 40),
            (ablations::recovery(N), 20),
            (ablations::adaptive(N), 20),
            (ablations::associativity(N), 30),
            (ablations::victim_cache(N), 40),
            (ablations::nsp_degree(N), 20),
            (ablations::dram_banks(N), 30),
            (ablations::hybrid(N), 30),
            (ablations::prefetcher_mix(N), 30),
        ] {
            assert_eq!(grid.len(), cells);
            for spec in &grid {
                spec.config.validate().expect("ablation config valid");
            }
        }
    }

    #[test]
    fn grid_configs_validate() {
        for spec in fig4_5_6(N)
            .into_iter()
            .chain(fig7_8_9(N))
            .chain(fig10_11_12(N))
            .chain(fig13_14(N))
            .chain(fig15_16(N))
        {
            spec.config.validate().expect("grid config valid");
        }
    }

    #[test]
    fn run_grid_preserves_order_and_labels() {
        let specs: Vec<RunSpec> = fig1_2(N).into_iter().take(4).collect();
        let expected: Vec<(String, String)> = specs
            .iter()
            .map(|s| (s.label.clone(), s.workload.name().to_string()))
            .collect();
        let reports = run_grid(specs);
        let got: Vec<(String, String)> = reports
            .iter()
            .map(|r| (r.label.clone(), r.workload.clone()))
            .collect();
        assert_eq!(got, expected);
        assert!(reports.iter().all(|r| r.stats.instructions >= N));
    }

    #[test]
    fn run_checked_streams_telemetry_to_dir() {
        let dir = std::env::temp_dir().join("ppf-experiments-telemetry-test");
        std::fs::remove_dir_all(&dir).ok();
        let spec = RunSpec::new(
            "PA@4KB",
            SystemConfig::paper_default().with_filter(FilterKind::Pa),
            Workload::Em3d,
        )
        .instructions(N)
        .with_telemetry(TelemetryConfig::every(1_000), &dir);
        let path = spec.telemetry_path().expect("telemetry attached");
        assert!(
            path.file_name()
                .unwrap()
                .to_str()
                .unwrap()
                .starts_with("PA_4KB-em3d-"),
            "label is sanitized: {path:?}"
        );
        let report = spec.run_checked().expect("cell runs");
        let records = JsonlSink::new(&path).read().expect("stream written");
        assert!(!records.is_empty());
        assert!(records.iter().map(|r| r.instructions).sum::<u64>() <= report.stats.instructions);
        // Telemetry must not perturb the simulation itself.
        let mut plain = spec.clone();
        plain.telemetry = None;
        assert_eq!(plain.run_checked().unwrap().stats, report.stats);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_grid_matches_sequential() {
        let specs: Vec<RunSpec> = fig1_2(N).into_iter().take(3).collect();
        let seq: Vec<SimReport> = specs.iter().map(RunSpec::run).collect();
        let par = run_grid(specs);
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.stats, b.stats, "parallelism must not change results");
        }
    }

    #[test]
    fn empty_grid() {
        assert!(run_grid(Vec::new()).is_empty());
    }

    #[test]
    fn seed_averaging_merges_counters() {
        let specs: Vec<RunSpec> = fig1_2(N).into_iter().take(2).collect();
        let single = run_grid(specs.clone());
        let averaged = run_grid_seeds(specs, 3);
        assert_eq!(averaged.len(), single.len());
        for (a, s) in averaged.iter().zip(single.iter()) {
            assert_eq!(a.label, s.label);
            // Each of the 3 seed runs retires at least N instructions
            // (retirement overshoot varies per seed, so compare to N).
            assert!(a.stats.instructions >= 3 * N);
            // Rates stay in the same ballpark across seeds.
            assert!((a.stats.l1.miss_rate() - s.stats.l1.miss_rate()).abs() < 0.05);
        }
    }

    #[test]
    fn warm_snapshot_run_is_bit_identical_to_fresh_run() {
        // A cell finished from another identically-warmed cell's snapshot
        // must produce the exact report a fresh end-to-end run produces —
        // the core invariant that makes warm-up sharing a pure dedup.
        let spec =
            RunSpec::new("snap", SystemConfig::paper_default(), Workload::Mcf).instructions(20_000);
        let fresh = spec.run_checked().expect("fresh run");
        let donor = spec.warmed_sim().expect("warm-up");
        let snap = donor.try_snapshot().expect("paper config is duplicable");
        let via_snapshot = spec.finish(snap).expect("snapshot run");
        assert_eq!(fresh, via_snapshot);
        // The donor machine itself is unperturbed by having been copied.
        assert_eq!(fresh, spec.finish(donor).expect("donor run"));
    }

    #[test]
    fn warm_keys_group_only_identical_warm_prefixes() {
        let base = RunSpec::new("a", SystemConfig::paper_default(), Workload::Mcf).instructions(N);
        let same_prefix =
            RunSpec::new("b", SystemConfig::paper_default(), Workload::Mcf).instructions(N);
        assert_eq!(base.warm_key(), same_prefix.warm_key());
        let other_seed = {
            let mut s = base.clone();
            s.seed += 1;
            s
        };
        assert_ne!(base.warm_key(), other_seed.warm_key(), "streams are seeded");
        let other_workload =
            RunSpec::new("a", SystemConfig::paper_default(), Workload::Gcc).instructions(N);
        assert_ne!(base.warm_key(), other_workload.warm_key());
        assert!(
            base.clone()
                .with_fault(FaultSpec::panic_at(1))
                .warm_key()
                .is_none(),
            "fault cells never share warm-ups"
        );
    }

    #[test]
    fn snapshot_cache_shares_warmups_and_preserves_results() {
        // Three cells, two sharing a warm prefix (labels differ, machine
        // identical). Run sequentially through the cache so reuse counts
        // are deterministic.
        let a = RunSpec::new("a", SystemConfig::paper_default(), Workload::Mcf).instructions(N);
        let b = RunSpec::new("b", SystemConfig::paper_default(), Workload::Mcf).instructions(N);
        let c = RunSpec::new("c", SystemConfig::paper_default(), Workload::Gcc).instructions(N);
        let specs = vec![a.clone(), b.clone(), c.clone()];
        let cache = SnapshotCache::new(&specs);
        let ra = cache.run(&a).expect("a");
        let rb = cache.run(&b).expect("b");
        let rc = cache.run(&c).expect("c");
        assert_eq!(cache.reuses(), 1, "b reuses a's warm-up; c is alone");
        assert_eq!(ra, a.run_checked().unwrap());
        assert_eq!(rb, b.run_checked().unwrap());
        assert_eq!(rc, c.run_checked().unwrap());
        assert_eq!(ra.label, "a");
        assert_eq!(rb.label, "b", "reused snapshot is re-labeled");
    }

    #[test]
    fn traced_grid_reports_in_input_order_with_keys_and_timings() {
        let specs: Vec<RunSpec> = fig1_2(N).into_iter().take(4).collect();
        let expected: Vec<String> = specs
            .iter()
            .map(|s| format!("{}/{}", s.label, s.workload.name()))
            .collect();
        let (outcomes, trace) =
            run_grid_outcomes_traced(specs.clone(), &CostModel::default(), |_, _| {});
        let got: Vec<String> = outcomes
            .iter()
            .map(|o| {
                let r = o.report().expect("all cells pass");
                format!("{}/{}", r.label, r.workload)
            })
            .collect();
        assert_eq!(got, expected, "output order is input order");
        assert_eq!(trace.start_order.len(), 4);
        assert_eq!(trace.keys.len(), 4);
        assert_eq!(trace.cell_micros.len(), 4);
        assert!(trace.cell_micros.iter().all(|&m| m > 0));
        assert_eq!(trace.retries, 0);
        // Keys match the checkpoint layer's content-hash identity.
        for (spec, key) in specs.iter().zip(&trace.keys) {
            assert_eq!(key, &crate::schedule::cell_key(spec));
        }
    }

    #[test]
    fn cost_model_orders_traced_dispatch() {
        // Record wall-times that invert the input order; with one cell per
        // worker... we can't pin workers, so use the single-worker-visible
        // property instead: predictions drive the cost-descending deal,
        // which the scheduler trace exposes via start positions. Seed the
        // model so cell 0 is predicted cheapest and cell 3 costliest, then
        // check 3 starts no later than 0.
        let specs: Vec<RunSpec> = fig1_2(N).into_iter().take(4).collect();
        let mut model = CostModel::new();
        for (i, spec) in specs.iter().enumerate() {
            model.record(&crate::schedule::cell_key(spec), N, (i as u64 + 1) * 1000);
        }
        let (_, trace) = run_grid_outcomes_traced(specs, &model, |_, _| {});
        let pos = |cell: usize| {
            trace
                .start_order
                .iter()
                .position(|&c| c == cell)
                .expect("cell started")
        };
        assert!(
            pos(3) <= pos(0),
            "costliest cell must not start after the cheapest (order {:?})",
            trace.start_order
        );
    }

    #[test]
    fn config_weight_ranks_feature_cost() {
        let baseline = {
            let mut c = SystemConfig::paper_default();
            c.prefetch = PrefetchConfig {
                nsp: false,
                sdp: false,
                stride: false,
                correlation: false,
                software: false,
                ..c.prefetch
            };
            c.filter.kind = FilterKind::None;
            c
        };
        let full = SystemConfig::paper_default();
        assert!(config_weight(&full) > config_weight(&baseline));
        let mut classified = full.clone();
        classified.diag.classify_misses = true;
        assert!(config_weight(&classified) > config_weight(&full));
    }
}
