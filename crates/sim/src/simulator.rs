//! The machine of Figure 3: core + L1/L2 + prefetchers + pollution filter.
//!
//! Per-cycle schedule (one [`Simulator::run`] loop iteration):
//!
//! 1. The core retires, issues and fetches. Demand memory ops arbitrate for
//!    L1 ports through [`MemSystem::try_access`]; software prefetches are
//!    identified at issue and routed to the filter via
//!    [`MemSystem::software_prefetch`].
//! 2. The prefetch queue drains through whatever L1 ports demand traffic
//!    left free this cycle ([`MemSystem::drain_prefetch_queue`]) — the port
//!    competition at the heart of §5.4.
//!
//! Every prefetch candidate flows: generator → duplicate squash → pollution
//! filter → prefetch queue → port arbitration → L1 fill with provenance.
//! Every L1 eviction of a prefetched line (and the end-of-run drain) flows
//! back into the filter's history table and the good/bad census.

use ppf_cpu::{Core, InstStream, MemoryPort};
use ppf_filter::PollutionFilter;
use ppf_mem::cache::Evicted;
use ppf_mem::hierarchy::{AccessKind, Hierarchy};
use ppf_mem::ports::PortArbiter;
use ppf_mem::queue::{PrefetchQueue, PushOutcome};
use ppf_prefetch::{
    software, AccessEvent, ComposedPrefetcher, CorrelationPrefetcher, NextSequencePrefetcher,
    Prefetcher, ShadowDirectoryPrefetcher, StridePrefetcher,
};
use ppf_types::telemetry::{IntervalRecord, IntervalSampler, TelemetryConfig};
use ppf_types::{
    tenant_of_addr, Addr, Cycle, LineAddr, Pc, PpfError, PrefetchOrigin, PrefetchRequest,
    PrefetchSource, SimStats, SystemConfig,
};

use crate::report::SimReport;

/// Hard ceiling on cycles per retired instruction before the run is
/// declared wedged (indicates a simulator bug, not a slow workload).
const MAX_CPI: u64 = 10_000;

/// Default forward-progress stall window: cycles the core may go without
/// retiring a single instruction before the run is declared wedged. Far
/// above any real memory round-trip in this machine, far below the cycle
/// ceiling, so a fully stalled pipeline is caught early.
const STALL_WINDOW: u64 = 1_000_000;

/// Which cycle kernel drives the machine.
///
/// Both kernels execute the identical per-cycle schedule (alternating-
/// priority prefetch drain, core tick, telemetry close, watchdog checks);
/// the skip-ahead kernel additionally consults the event calendar after a
/// provably quiescent cycle and jumps `now` over the stretch of identical
/// no-op cycles that would follow. The stepping kernel is kept as the
/// executable reference the cycle-identity drill pins the skip-ahead
/// kernel against (DESIGN.md §14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Advance every structure every cycle (reference kernel).
    Stepping,
    /// Event-driven: jump idle stretches via `next_event_cycle` (default).
    #[default]
    SkipAhead,
}

/// Watchdog bounds for a simulation run: a cycle ceiling derived from the
/// instruction budget and a no-retire stall detector. Both abort a wedged
/// cell with a structured [`PpfError`] carrying a pipeline snapshot instead
/// of hanging the worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Cycle ceiling per instruction of budget: a run of `n` instructions
    /// may take at most `n * max_cpi` cycles ([`PpfErrorKind::WatchdogTimeout`]
    /// otherwise).
    ///
    /// [`PpfErrorKind::WatchdogTimeout`]: ppf_types::PpfErrorKind::WatchdogTimeout
    pub max_cpi: u64,
    /// Maximum cycles without a single retirement before the run is
    /// declared stalled ([`PpfErrorKind::ForwardProgressStall`]).
    ///
    /// [`PpfErrorKind::ForwardProgressStall`]: ppf_types::PpfErrorKind::ForwardProgressStall
    pub stall_window: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            max_cpi: MAX_CPI,
            stall_window: STALL_WINDOW,
        }
    }
}

/// One interaction between the simulator and the pollution filter, in
/// program order — the event stream the differential oracle (`ppf-oracle`)
/// replays against its untimed reference filter. Recording is off by
/// default ([`MemSystem::enable_filter_tap`]) and purely observational: the
/// tap wraps the filter calls without changing any decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterTapEvent {
    /// A `should_prefetch` lookup and the decision the real filter made.
    Lookup {
        /// Prefetch target line.
        line: LineAddr,
        /// Trigger PC.
        pc: Pc,
        /// Generating prefetcher.
        source: PrefetchSource,
        /// Cycle of the lookup.
        now: Cycle,
        /// Tenant the request is charged to (selects salt/partition).
        tenant: u8,
        /// Prefetch depth (lookahead distance) of the request.
        depth: u8,
        /// The real filter's admit/drop decision.
        admitted: bool,
    },
    /// Eviction-time training (`on_eviction`) of a prefetched line.
    Evict {
        /// Prefetched line being evicted (or drained / classified).
        line: LineAddr,
        /// Trigger PC from the line's provenance.
        pc: Pc,
        /// Generating prefetcher from the line's provenance.
        source: PrefetchSource,
        /// Tenant from the line's provenance.
        tenant: u8,
        /// Prefetch depth from the line's provenance.
        depth: u8,
        /// The line's RIB: was it referenced during residency?
        referenced: bool,
    },
    /// Misprediction-recovery probe (`on_demand_miss`).
    DemandMiss {
        /// The missing line.
        line: LineAddr,
        /// Cycle of the miss.
        now: Cycle,
    },
}

/// The memory-side half of the machine (everything below the LSQ).
pub struct MemSystem {
    hierarchy: Hierarchy,
    l1_ports: PortArbiter,
    queue: PrefetchQueue,
    filter: PollutionFilter,
    hw: ComposedPrefetcher,
    software_enabled: bool,
    line_bytes: u32,
    /// Scratch buffer for generator output (reused; hot path stays
    /// allocation-free after warm-up).
    scratch: Vec<PrefetchRequest>,
    /// Last cycle a demand port conflict was counted (one count per cycle).
    last_conflict_cycle: Cycle,
    /// Last instruction line fetched (fetch-group de-duplication).
    last_fetch_line: Option<LineAddr>,
    /// Memory-side statistics (merged with core stats in the report).
    pub stats: SimStats,
    /// When enabled, every filter interaction in program order (see
    /// [`FilterTapEvent`]).
    tap: Option<Vec<FilterTapEvent>>,
}

impl MemSystem {
    /// Build the memory system for `cfg`.
    pub fn new(cfg: &SystemConfig, seed: u64) -> Self {
        let mut generators: Vec<Box<dyn Prefetcher>> = Vec::new();
        if cfg.prefetch.nsp {
            generators.push(Box::new(NextSequencePrefetcher::with_degree(
                cfg.prefetch.nsp_degree.max(1),
            )));
        }
        if cfg.prefetch.sdp {
            generators.push(Box::new(ShadowDirectoryPrefetcher::new(
                cfg.l2.lines().next_power_of_two(),
            )));
        }
        if cfg.prefetch.stride {
            generators.push(Box::new(StridePrefetcher::new(256, cfg.l1.line_bytes)));
        }
        if cfg.prefetch.correlation {
            generators.push(Box::new(CorrelationPrefetcher::new(4096)));
        }
        MemSystem {
            hierarchy: Hierarchy::new(cfg, seed),
            l1_ports: PortArbiter::new(cfg.l1.ports),
            queue: PrefetchQueue::new(cfg.prefetch.queue_len),
            filter: PollutionFilter::new(&cfg.filter),
            hw: ComposedPrefetcher::new(generators),
            software_enabled: cfg.prefetch.software,
            line_bytes: cfg.l1.line_bytes,
            scratch: Vec::with_capacity(8),
            last_conflict_cycle: u64::MAX,
            last_fetch_line: None,
            stats: SimStats::default(),
            tap: None,
        }
    }

    /// A deep copy of the memory system at its current state (caches,
    /// filter tables, prefetcher training state), or `None` when any
    /// composed hardware prefetcher is not duplicable.
    fn try_clone(&self) -> Option<Self> {
        Some(MemSystem {
            hierarchy: self.hierarchy.clone(),
            l1_ports: self.l1_ports.clone(),
            queue: self.queue.clone(),
            filter: self.filter.clone(),
            hw: self.hw.try_clone()?,
            software_enabled: self.software_enabled,
            line_bytes: self.line_bytes,
            scratch: Vec::with_capacity(8),
            last_conflict_cycle: self.last_conflict_cycle,
            last_fetch_line: self.last_fetch_line,
            stats: self.stats.clone(),
            tap: self.tap.clone(),
        })
    }

    /// Start recording every filter interaction (differential testing).
    pub fn enable_filter_tap(&mut self) {
        self.tap = Some(Vec::new());
    }

    /// Take the recorded filter events, leaving the tap enabled and empty.
    /// Empty if the tap was never enabled.
    pub fn take_filter_tap(&mut self) -> Vec<FilterTapEvent> {
        match &mut self.tap {
            Some(tap) => std::mem::take(tap),
            None => Vec::new(),
        }
    }

    /// Filter lookup, recorded through the tap when enabled. All simulator
    /// paths go through these wrappers rather than the filter directly so
    /// the tap sees the complete stream.
    fn filter_lookup(&mut self, req: &PrefetchRequest, now: Cycle) -> bool {
        let admitted = self.filter.should_prefetch(req, now);
        if let Some(tap) = &mut self.tap {
            tap.push(FilterTapEvent::Lookup {
                line: req.line,
                pc: req.trigger_pc,
                source: req.source,
                now,
                tenant: req.tenant,
                depth: req.depth,
                admitted,
            });
        }
        admitted
    }

    /// Eviction-time filter training, recorded through the tap when enabled.
    fn filter_evict(&mut self, origin: &PrefetchOrigin, referenced: bool) {
        self.filter.on_eviction(origin, referenced);
        if let Some(tap) = &mut self.tap {
            tap.push(FilterTapEvent::Evict {
                line: origin.line,
                pc: origin.trigger_pc,
                source: origin.source,
                tenant: origin.tenant,
                depth: origin.depth,
                referenced,
            });
        }
    }

    /// Misprediction-recovery probe, recorded through the tap when enabled.
    fn filter_demand_miss(&mut self, line: LineAddr, now: Cycle) {
        self.filter.on_demand_miss(line, now);
        if let Some(tap) = &mut self.tap {
            tap.push(FilterTapEvent::DemandMiss { line, now });
        }
    }

    /// Immutable view of the pollution filter (for diagnostics).
    pub fn filter(&self) -> &PollutionFilter {
        &self.filter
    }

    /// Prefetches sitting in the queue right now — the funnel's in-flight
    /// residue, needed to balance the conservation invariant mid-run.
    pub fn queue_backlog(&self) -> u64 {
        self.queue.len() as u64
    }

    /// Check the prefetch-funnel conservation invariant against the current
    /// queue backlog: every proposed candidate is accounted for exactly once
    /// (duplicate-squashed, filter-rejected, overflow-dropped, issued, or
    /// still queued).
    pub fn check_funnel(&self) -> Result<(), PpfError> {
        self.stats.check_funnel_conservation(self.queue_backlog())
    }

    /// Mutable view of the pollution filter (to enable tracing).
    pub fn filter_mut(&mut self) -> &mut PollutionFilter {
        &mut self.filter
    }

    /// Fills still in flight at `now` — the interval-telemetry MSHR gauge.
    pub fn mshr_live(&self, now: Cycle) -> usize {
        self.hierarchy.mshr_live(now)
    }

    /// Per-tenant prefetch-outcome and interference counters from the L1
    /// (DESIGN.md §12 — who caused what).
    pub fn tenant_attribution(&self) -> &ppf_mem::TenantAttribution {
        self.hierarchy.l1.tenant_attribution()
    }

    /// Record the good/bad outcome of an evicted prefetched line and train
    /// the filter — the PIB/RIB feedback path of §4.
    fn feedback_eviction(&mut self, ev: &Evicted) {
        if let Some((origin, referenced)) = ev.prefetch {
            if referenced {
                self.stats.prefetch_good.bump(origin.source);
            } else {
                self.stats.prefetch_bad.bump(origin.source);
            }
            self.filter_evict(&origin, referenced);
        }
    }

    /// Offer a candidate prefetch: duplicate squash → filter → queue.
    fn submit_prefetch(&mut self, req: PrefetchRequest, now: Cycle) {
        self.stats.prefetches_proposed.bump(req.source);
        if self.hierarchy.prefetch_target_resident(req.line) || self.queue.contains(req.line) {
            self.stats.prefetches_duplicate.bump(req.source);
            return;
        }
        if !self.filter_lookup(&req, now) {
            self.stats.prefetches_filtered.bump(req.source);
            return;
        }
        match self.queue.push(req) {
            PushOutcome::Enqueued => {}
            PushOutcome::Duplicate => self.stats.prefetches_duplicate.bump(req.source),
            PushOutcome::Overflow => self.stats.prefetches_queue_overflow.bump(req.source),
        }
    }

    /// Pop prefetches into free L1 ports for cycle `now` (sharing the ports
    /// with the core's demand traffic under alternating priority).
    pub fn drain_prefetch_queue(&mut self, now: Cycle) {
        loop {
            let Some(front) = self.queue.front() else {
                return;
            };
            // Squash duplicates for free ("no penalty", §5.1) before
            // spending a port on them.
            if self.hierarchy.prefetch_target_resident(front.line) {
                let req = self.queue.pop().expect("front exists");
                self.stats.prefetches_duplicate.bump(req.source);
                continue;
            }
            if !self.l1_ports.try_acquire(now) {
                // Every request still queued is blocked on ports this
                // cycle: count one retry per blocked request, so the
                // counter measures prefetch-side queuing delay rather
                // than merely how often the drain gave up.
                self.stats.prefetch_port_retries += self.queue.len() as u64;
                return;
            }
            let req = self.queue.pop().expect("front exists");
            let issue = self.hierarchy.issue_prefetch(&req, now, &mut self.stats);
            if issue.duplicate {
                // Unreachable today (the resident check above is the same
                // predicate `issue_prefetch` re-evaluates, with nothing in
                // between), but kept as a structural guarantee: if the two
                // checks ever diverge, a duplicate must still cost nothing
                // (§5.1) — so return the port grant before squashing.
                self.l1_ports.release(now);
                self.stats.prefetches_duplicate.bump(req.source);
                continue;
            }
            self.stats.prefetches_issued.bump(req.source);
            // The line allocated in the L1 (or the dedicated buffer): the
            // funnel's "filled" stage. Issued-but-resident targets were
            // squashed above, so issued == filled in this machine — the
            // diagnostics make that equality checkable instead of assumed.
            self.stats.prefetches_filled.bump(req.source);
            if let Some(ev) = issue.l1_evicted {
                self.feedback_eviction(&ev);
            }
            if let Some(bev) = issue.buffer_evicted {
                self.stats.prefetch_bad.bump(bev.origin.source);
                self.filter_evict(&bev.origin, bev.referenced);
            }
        }
    }

    /// Drop every pending queued prefetch (used at the warm-up/measurement
    /// boundary so the funnel counters start balanced).
    pub fn flush_prefetch_queue(&mut self) {
        self.queue.clear();
    }

    /// The memory side's entry in the skip-ahead kernel's event calendar:
    /// the prefetch queue wants a port next cycle whenever it is non-empty,
    /// and the hierarchy's passive structures (MSHR fills, bus, DRAM banks)
    /// contribute their next completion as conservative wake-ups.
    pub fn next_event_cycle(&self, now: Cycle) -> Option<Cycle> {
        match (
            self.queue.next_event_cycle(now),
            self.hierarchy.next_event_cycle(now),
        ) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// End-of-run census: classify lines still resident in the L1 and the
    /// prefetch buffer so Figure 1's totals cover *all* prefetches.
    pub fn drain_final(&mut self) {
        for ev in self.hierarchy.drain_l1() {
            self.feedback_eviction(&ev);
        }
        for ev in self.hierarchy.drain_victim() {
            self.feedback_eviction(&ev);
        }
        for bev in self.hierarchy.drain_buffer() {
            self.stats.prefetch_bad.bump(bev.origin.source);
            self.filter_evict(&bev.origin, bev.referenced);
        }
    }
}

impl MemoryPort for MemSystem {
    fn try_access(&mut self, pc: Pc, addr: Addr, is_store: bool, now: Cycle) -> Option<Cycle> {
        if !self.l1_ports.try_acquire(now) {
            self.stats.demand_port_retries += 1;
            if self.last_conflict_cycle != now {
                self.last_conflict_cycle = now;
                self.stats.l1_port_conflict_cycles += 1;
            }
            return None;
        }
        let line = LineAddr::of(addr, self.line_bytes);
        let kind = if is_store {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        let res = self
            .hierarchy
            .demand_access(line, kind, now, &mut self.stats);
        if !res.l1_hit && res.from_buffer.is_none() {
            // Misprediction recovery: this miss may be a prefetch the
            // filter wrongly rejected (see ppf-filter's recovery module).
            self.filter_demand_miss(line, now);
        }
        if let Some(ev) = res.l1_evicted {
            self.feedback_eviction(&ev);
        }
        if let Some(origin) = res.from_buffer {
            // A demand hit in the dedicated prefetch buffer is by
            // definition a good prefetch; train the filter accordingly.
            self.stats.prefetch_good.bump(origin.source);
            self.filter_evict(&origin, true);
        }
        if let Some(record) = res.from_victim {
            // A prefetched line recovered from the victim cache was
            // referenced after all: classify good (it re-enters the L1 as
            // a demand line, so this is its final classification).
            if let Some((origin, _)) = record.prefetch {
                self.stats.prefetch_good.bump(origin.source);
                self.filter_evict(&origin, true);
            }
        }
        // Trigger the hardware prefetchers on this access.
        let event = AccessEvent {
            pc,
            addr,
            line,
            l1_hit: res.l1_hit,
            nsp_tagged_hit: res.l1_probe.map(|p| p.nsp_tagged).unwrap_or(false),
            l2_accessed: res.l2_hit.is_some(),
            l2_hit: res.l2_hit.unwrap_or(false),
            is_store,
        };
        // Tenant assignment happens exactly here: every prefetch a demand
        // access triggers is charged to the tenant whose address region the
        // access touched, before the request enters the filter funnel.
        let tenant = tenant_of_addr(addr);
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        self.hw.on_access(&event, &mut scratch);
        for mut req in scratch.drain(..) {
            req.tenant = tenant;
            self.submit_prefetch(req, now);
        }
        self.scratch = scratch;
        Some(res.complete_at)
    }

    fn fetch_access(&mut self, pc: Pc, now: Cycle) -> Cycle {
        let line = LineAddr::of(pc, self.line_bytes);
        // Sequential fetch touches the same line several times per group;
        // only the first lookup per line is architecturally interesting.
        if self.last_fetch_line == Some(line) {
            return now;
        }
        self.last_fetch_line = Some(line);
        self.hierarchy.inst_access(line, now, &mut self.stats)
    }

    fn software_prefetch(&mut self, pc: Pc, addr: Addr, now: Cycle) {
        if !self.software_enabled {
            return;
        }
        let mut req = software::request_for(pc, addr, self.line_bytes);
        req.tenant = tenant_of_addr(addr);
        self.submit_prefetch(req, now);
    }
}

/// One simulated machine plus its workload stream.
pub struct Simulator {
    core: Core,
    mem: MemSystem,
    stream: Box<dyn InstStream>,
    cfg: SystemConfig,
    label: String,
    workload_name: String,
    seed: u64,
    now: Cycle,
    /// Cycle at the last stats reset (IPC is measured from here).
    cycle_base: Cycle,
    core_stats: SimStats,
    watchdog: WatchdogConfig,
    kernel: KernelMode,
    /// Interval telemetry; `None` (the default) is the provably-free-off
    /// state — the per-cycle loop pays one `is_some()` branch and nothing
    /// else.
    telemetry: Option<IntervalSampler>,
}

impl Simulator {
    /// Build a simulator for `cfg` running `stream`. Fails if the config is
    /// structurally invalid.
    pub fn new(cfg: SystemConfig, stream: impl InstStream + 'static) -> Result<Self, PpfError> {
        Self::with_seed(cfg, Box::new(stream), 0)
    }

    /// Build with an explicit seed (feeds random replacement, if selected).
    pub fn with_seed(
        cfg: SystemConfig,
        stream: Box<dyn InstStream>,
        seed: u64,
    ) -> Result<Self, PpfError> {
        cfg.validate()?;
        Ok(Simulator {
            core: Core::new(&cfg.core),
            mem: MemSystem::new(&cfg, seed),
            stream,
            label: String::new(),
            workload_name: String::new(),
            seed,
            cfg,
            now: 0,
            cycle_base: 0,
            core_stats: SimStats::default(),
            watchdog: WatchdogConfig::default(),
            kernel: KernelMode::default(),
            telemetry: None,
        })
    }

    /// Replace the watchdog bounds (builder form; the default is
    /// [`WatchdogConfig::default`]).
    pub fn with_watchdog(mut self, watchdog: WatchdogConfig) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Select the cycle kernel (builder form; the default is
    /// [`KernelMode::SkipAhead`]). The stepping kernel exists as the
    /// executable reference for the cycle-identity drill.
    pub fn with_kernel(mut self, kernel: KernelMode) -> Self {
        self.kernel = kernel;
        self
    }

    /// The active cycle kernel.
    pub fn kernel(&self) -> KernelMode {
        self.kernel
    }

    /// Enable interval telemetry (builder form). A disabled `cfg` leaves
    /// the simulator exactly as constructed: no sampler is allocated and
    /// runs stay cycle-identical to a telemetry-free build. Fails on a
    /// structurally invalid config (enabled with a zero interval).
    pub fn with_telemetry(mut self, cfg: &TelemetryConfig) -> Result<Self, PpfError> {
        cfg.validate()?;
        self.telemetry = IntervalSampler::new(cfg);
        if let Some(t) = &mut self.telemetry {
            t.reset(self.now);
        }
        Ok(self)
    }

    /// The run identity used in error context frames: label, workload, seed.
    fn run_identity(&self) -> String {
        let label = if self.label.is_empty() {
            "?"
        } else {
            &self.label
        };
        let workload = if self.workload_name.is_empty() {
            "?"
        } else {
            &self.workload_name
        };
        format!("run {label}/{workload} seed {}", self.seed)
    }

    /// Drive the machine until `target` cumulative instructions have
    /// retired, under watchdog supervision. The watchdog checks are
    /// read-only observers of the per-cycle loop, so a run that stays
    /// within bounds is cycle-for-cycle identical to an unsupervised one.
    ///
    /// Under [`KernelMode::SkipAhead`], a cycle whose core tick was
    /// provably a no-op ([`TickOutcome::quiescent`]) with an empty prefetch
    /// queue jumps `now` to the event calendar's minimum — the earliest
    /// cycle any structure can act — clamped by the jump barriers: the
    /// telemetry interval close (the sampler must run exactly at its due
    /// cycle), the watchdog stall deadline, and the cycle ceiling. Every
    /// skipped cycle would have executed the identical no-op schedule, so
    /// the two kernels are cycle-identical by construction (DESIGN.md §14).
    fn drive(&mut self, target: u64, phase: &'static str) -> Result<(), PpfError> {
        let budget = target.saturating_sub(self.core_stats.instructions);
        let deadline = self.now + budget.max(1).saturating_mul(self.watchdog.max_cpi);
        let mut last_retired = self.core_stats.instructions;
        let mut last_retire_cycle = self.now;
        while self.core_stats.instructions < target {
            self.now += 1;
            // The prefetch queue and the LSQ share the universal L1 ports
            // (Figure 3). Arbitration alternates priority each cycle so
            // prefetch traffic genuinely competes with demand accesses —
            // the contention the paper's filter exists to relieve (§5.4):
            // even cycles drain before the core's demand traffic claims
            // ports (prefetch priority), odd cycles after (demand
            // priority). Exactly one drain per cycle either way.
            let prefetch_priority = self.now.is_multiple_of(2);
            if prefetch_priority {
                self.mem.drain_prefetch_queue(self.now);
            }
            let tick = self.core.tick(
                self.now,
                &mut *self.stream,
                &mut self.mem,
                &mut self.core_stats,
            );
            if !prefetch_priority {
                self.mem.drain_prefetch_queue(self.now);
            }
            // Interval telemetry: a read-only observer, like the watchdog
            // below. Telemetry-off runs pay exactly this one branch.
            if self.telemetry.is_some() {
                self.telemetry_sample();
            }
            if self.core_stats.instructions > last_retired {
                last_retired = self.core_stats.instructions;
                last_retire_cycle = self.now;
            } else if self.now - last_retire_cycle >= self.watchdog.stall_window {
                return Err(PpfError::forward_progress_stall(format!(
                    "no instruction retired for {} cycles during {phase}: \
                     {}/{} instructions at cycle {} (last retirement at cycle {}, \
                     prefetch queue backlog {})",
                    self.watchdog.stall_window,
                    self.core_stats.instructions,
                    target,
                    self.now,
                    last_retire_cycle,
                    self.mem.queue_backlog(),
                ))
                .context(self.run_identity()));
            }
            if self.now >= deadline {
                return Err(PpfError::watchdog_timeout(format!(
                    "cycle ceiling exceeded during {phase}: {}/{} instructions \
                     after {} cycles (budget {} insts x max CPI {}, last \
                     retirement at cycle {}, prefetch queue backlog {})",
                    self.core_stats.instructions,
                    target,
                    self.now - self.cycle_base,
                    budget.max(1),
                    self.watchdog.max_cpi,
                    last_retire_cycle,
                    self.mem.queue_backlog(),
                ))
                .context(self.run_identity()));
            }
            // Skip-ahead: a quiescent tick with an empty prefetch queue
            // proves every cycle until the next calendar event repeats the
            // same no-op schedule (the queue only refills from core
            // activity, and an empty-queue drain does nothing under either
            // parity). Jump to one cycle before the event; the `+= 1` at
            // the top of the loop lands exactly on it.
            if self.kernel == KernelMode::SkipAhead
                && tick.quiescent()
                && self.mem.queue_backlog() == 0
            {
                if let Some(next) = self.next_wakeup(last_retire_cycle, deadline) {
                    self.now = next - 1;
                }
            }
        }
        Ok(())
    }

    /// The event calendar's minimum over every structure, clamped by the
    /// jump barriers, from a quiescent cycle `self.now`. `None` when the
    /// minimum is the very next cycle (plain stepping; nothing to skip).
    ///
    /// Barriers are cycles the loop body must *execute*, not merely reach:
    /// the telemetry interval close (`IntervalSampler::sample` derives the
    /// interval index from being called exactly at its due cycle), the
    /// watchdog's stall deadline and the cycle ceiling (both must fire at
    /// the same cycle, with the same message, as under stepping). A fully
    /// wedged core (no calendar entry at all) degrades to jumping straight
    /// to the nearest barrier.
    fn next_wakeup(&self, last_retire_cycle: Cycle, deadline: Cycle) -> Option<Cycle> {
        let mut next = self
            .core
            .next_event_cycle(self.now)
            .unwrap_or(Cycle::MAX)
            .min(deadline);
        if let Some(m) = self.mem.next_event_cycle(self.now) {
            next = next.min(m);
        }
        next = next.min(last_retire_cycle.saturating_add(self.watchdog.stall_window));
        if let Some(t) = &self.telemetry {
            next = next.min(t.next_due());
        }
        (next > self.now + 1).then_some(next)
    }

    /// Run `n` instructions as cache/predictor/filter warm-up, then zero
    /// all statistics. Steady-state measurement after warm-up is the
    /// standard methodology for short simulations standing in for the
    /// paper's 300M-instruction runs (compulsory misses would otherwise
    /// dominate the L2 numbers).
    pub fn warmup(&mut self, n: u64) {
        self.warmup_checked(n).unwrap_or_else(|e| panic!("{e}"));
    }

    /// [`Simulator::warmup`] with the watchdog error surfaced instead of
    /// panicking — the form the fault-tolerant grid runner uses.
    pub fn warmup_checked(&mut self, n: u64) -> Result<(), PpfError> {
        let target = self.core_stats.instructions + n;
        self.drive(target, "warmup")?;
        self.core_stats = SimStats::default();
        self.mem.stats = SimStats::default();
        // Requests enqueued before the reset would otherwise surface as
        // issued-but-never-proposed and break funnel conservation; warm-up
        // ends with an empty queue so measurement starts balanced.
        self.mem.flush_prefetch_queue();
        self.cycle_base = self.now;
        // Telemetry intervals are measured from the same origin as the
        // stats (warm-up records are dropped, interval 0 starts here).
        if let Some(t) = &mut self.telemetry {
            t.reset(self.now);
        }
        Ok(())
    }

    /// Close the telemetry interval ending at `self.now` if one is due.
    /// Only called when a sampler exists; the `next_due` guard makes the
    /// common (mid-interval) case a single comparison.
    fn telemetry_sample(&mut self) {
        let sampler = self.telemetry.as_mut().expect("guarded by is_some");
        if self.now < sampler.next_due() {
            return;
        }
        let fraction_good = self.mem.filter().fraction_good();
        let mshr_live = self.mem.mshr_live(self.now) as u64;
        let queue_backlog = self.mem.queue_backlog();
        let sampler = self.telemetry.as_mut().expect("guarded by is_some");
        sampler.set_gauges(fraction_good, mshr_live, queue_backlog);
        sampler.sample(self.now, self.core_stats.instructions, &self.mem.stats);
    }

    /// Interval records collected so far (empty when telemetry is off).
    pub fn telemetry_records(&self) -> &[IntervalRecord] {
        self.telemetry.as_ref().map_or(&[], |t| t.records())
    }

    /// Take ownership of the collected interval records (empty when
    /// telemetry is off).
    pub fn take_telemetry_records(&mut self) -> Vec<IntervalRecord> {
        self.telemetry
            .as_mut()
            .map_or_else(Vec::new, |t| t.take_records())
    }

    /// Attach report labels (experiment + workload names).
    pub fn labeled(mut self, label: impl Into<String>, workload: impl Into<String>) -> Self {
        self.label = label.into();
        self.workload_name = workload.into();
        self
    }

    /// A deep copy of the whole machine at its current state — core,
    /// caches, filter tables, prefetcher training state and stream
    /// position — or `None` when the stream or a prefetcher is not
    /// duplicable, or when telemetry is attached (samplers are per-run).
    /// The grid scheduler uses this to share one warm-up across cells
    /// whose warm prefix is identical.
    pub fn try_snapshot(&self) -> Option<Self> {
        if self.telemetry.is_some() {
            return None;
        }
        Some(Simulator {
            core: self.core.clone(),
            mem: self.mem.try_clone()?,
            stream: self.stream.clone_box()?,
            cfg: self.cfg.clone(),
            label: self.label.clone(),
            workload_name: self.workload_name.clone(),
            seed: self.seed,
            now: self.now,
            cycle_base: self.cycle_base,
            core_stats: self.core_stats.clone(),
            watchdog: self.watchdog,
            kernel: self.kernel,
            telemetry: None,
        })
    }

    /// The machine configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The memory-side half of the machine (diagnostics: filter state,
    /// queue occupancy).
    pub fn mem_system(&self) -> &MemSystem {
        &self.mem
    }

    /// Mutable access to the memory system (diagnostics: enable filter
    /// tracing before a run).
    pub fn mem_system_mut(&mut self) -> &mut MemSystem {
        &mut self.mem
    }

    /// Run until `n_instructions` have retired (cumulative across calls);
    /// returns the report including the end-of-run prefetch census.
    ///
    /// # Panics
    ///
    /// Panics if the watchdog trips (cycle ceiling or forward-progress
    /// stall — a simulator bug, surfaced loudly rather than looping
    /// forever) or, in debug builds, on a funnel-conservation violation.
    /// The panic message is the rendered [`PpfError`], including the run
    /// label, workload and seed. Use [`Simulator::run_checked`] to get the
    /// structured error instead.
    pub fn run(&mut self, n_instructions: u64) -> SimReport {
        self.run_checked(n_instructions)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Simulator::run`] with watchdog and funnel failures surfaced as
    /// structured errors instead of panics — the form the fault-tolerant
    /// grid runner uses.
    pub fn run_checked(&mut self, n_instructions: u64) -> Result<SimReport, PpfError> {
        let target = self.core_stats.instructions + n_instructions;
        self.drive(target, "run")?;
        self.mem.drain_final();
        // Funnel conservation: every proposed prefetch must be accounted
        // for. Debug builds (and the opt-level=2 test profile) pay the
        // check; release sweeps do not.
        if cfg!(debug_assertions) {
            self.mem
                .check_funnel()
                .map_err(|e| e.context(self.run_identity()))?;
        }
        // Core and memory stats touch disjoint counters; merging adds the
        // memory side into the core-side snapshot.
        let mut stats = self.core_stats.clone();
        stats.merge(&self.mem.stats);
        stats.instructions = self.core_stats.instructions;
        stats.cycles = self.now - self.cycle_base;
        Ok(SimReport {
            label: self.label.clone(),
            workload: self.workload_name.clone(),
            seed: self.seed,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppf_types::FilterKind;
    use ppf_workloads::Workload;

    const N: u64 = 60_000;

    fn run(cfg: SystemConfig, w: Workload) -> SimReport {
        let mut sim = Simulator::with_seed(cfg, Box::new(w.stream(42)), 42).expect("valid config");
        sim.run(N)
    }

    #[test]
    fn baseline_machine_runs_and_reports() {
        let r = run(SystemConfig::paper_default(), Workload::Em3d);
        assert!(r.stats.instructions >= N);
        assert!(r.stats.cycles > 0);
        let ipc = r.stats.ipc();
        assert!(ipc > 0.05 && ipc < 8.0, "ipc={ipc}");
        assert!(r.stats.l1.demand_accesses > 0);
    }

    #[test]
    fn prefetchers_generate_traffic() {
        let r = run(SystemConfig::paper_default(), Workload::Wave5);
        assert!(
            r.stats.prefetches_proposed.total() > 100,
            "{:?}",
            r.stats.prefetches_proposed
        );
        assert!(r.stats.prefetches_issued.total() > 100);
        // Census covers every issued prefetch (good + bad = classified).
        let classified = r.stats.good_total() + r.stats.bad_total();
        assert!(classified > 0);
    }

    #[test]
    fn census_conservation() {
        // Every issued prefetch is eventually classified good or bad
        // (evicted during the run or drained at the end) — except the few
        // squashed at issue as late duplicates.
        let r = run(SystemConfig::paper_default(), Workload::Mcf);
        let issued = r.stats.prefetches_issued.total();
        let classified = r.stats.good_total() + r.stats.bad_total();
        assert!(
            classified <= issued,
            "classified {classified} > issued {issued}"
        );
        let coverage = classified as f64 / issued as f64;
        assert!(coverage > 0.95, "census coverage {coverage}");
    }

    #[test]
    fn filter_reduces_bad_prefetches_on_pointer_chase() {
        // Longer run than the other tests: the history table only starts
        // rejecting once most line addresses have been trained at least
        // twice (em3d's footprint is 4096 lines).
        let n = 400_000;
        let run = |cfg: SystemConfig| {
            Simulator::with_seed(cfg, Box::new(Workload::Em3d.stream(42)), 42)
                .expect("valid config")
                .run(n)
        };
        let base = run(SystemConfig::paper_default());
        let pa = run(SystemConfig::paper_default().with_filter(FilterKind::Pa));
        assert!(base.stats.bad_total() > 0);
        assert!(
            (pa.stats.bad_total() as f64) < 0.5 * base.stats.bad_total() as f64,
            "PA filter must kill most bad prefetches: {} vs {}",
            pa.stats.bad_total(),
            base.stats.bad_total()
        );
        assert!(pa.stats.prefetches_filtered.total() > 0);
    }

    #[test]
    fn prefetch_off_machine_issues_nothing() {
        let mut cfg = SystemConfig::paper_default();
        cfg.prefetch = ppf_types::PrefetchConfig::disabled();
        let r = run(cfg, Workload::Gzip);
        assert_eq!(r.stats.prefetches_proposed.total(), 0);
        assert_eq!(r.stats.prefetches_issued.total(), 0);
        assert_eq!(r.stats.good_total() + r.stats.bad_total(), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(SystemConfig::paper_default(), Workload::Gcc);
        let b = run(SystemConfig::paper_default(), Workload::Gcc);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn buffer_machine_uses_buffer() {
        let cfg = SystemConfig::paper_default().with_prefetch_buffer();
        let r = run(cfg, Workload::Wave5);
        assert!(
            r.stats.buffer_hits > 0 || r.stats.buffer_bad_evictions > 0,
            "buffer must see traffic"
        );
    }

    #[test]
    fn funnel_conserves_every_candidate() {
        for kind in [FilterKind::None, FilterKind::Pa, FilterKind::Pc] {
            let mut sim = Simulator::with_seed(
                SystemConfig::paper_default().with_filter(kind),
                Box::new(Workload::Mcf.stream(42)),
                42,
            )
            .unwrap();
            sim.warmup(30_000);
            sim.run(N);
            sim.mem_system().check_funnel().expect("funnel conserved");
        }
    }

    #[test]
    fn miss_classification_totals_match_misses() {
        let cfg = SystemConfig::paper_default().with_miss_classification();
        let r = run(cfg, Workload::Mcf);
        assert_eq!(r.stats.l1.miss_class.total(), r.stats.l1.demand_misses);
        assert_eq!(r.stats.l2.miss_class.total(), r.stats.l2.demand_misses);
        assert!(
            r.stats.l1.miss_class.conflict > 0,
            "the paper's direct-mapped L1 must show conflict misses: {:?}",
            r.stats.l1.miss_class
        );
        // Classification must not change what the machine does: counters
        // other than the class split match a diagnostics-off run.
        let base = run(SystemConfig::paper_default(), Workload::Mcf);
        assert_eq!(base.stats.l1.demand_misses, r.stats.l1.demand_misses);
        assert_eq!(base.stats.cycles, r.stats.cycles);
    }

    #[test]
    fn telemetry_off_is_cycle_identical() {
        // The free-when-off contract: a run built through `with_telemetry`
        // with a disabled config produces bit-identical stats to a run
        // that never heard of telemetry.
        let plain = run(SystemConfig::paper_default(), Workload::Em3d);
        let mut sim = Simulator::with_seed(
            SystemConfig::paper_default(),
            Box::new(Workload::Em3d.stream(42)),
            42,
        )
        .unwrap()
        .with_telemetry(&TelemetryConfig::default())
        .unwrap();
        let off = sim.run(N);
        assert_eq!(off.stats, plain.stats);
        assert!(sim.telemetry_records().is_empty());
        assert!(sim.take_telemetry_records().is_empty());
    }

    #[test]
    fn telemetry_on_does_not_change_stats() {
        let plain = run(SystemConfig::paper_default(), Workload::Mcf);
        let mut sim = Simulator::with_seed(
            SystemConfig::paper_default(),
            Box::new(Workload::Mcf.stream(42)),
            42,
        )
        .unwrap()
        .with_telemetry(&TelemetryConfig::every(1_000))
        .unwrap();
        let on = sim.run(N);
        assert_eq!(on.stats, plain.stats, "telemetry must be a pure observer");
        let records = sim.telemetry_records();
        assert!(!records.is_empty());
        // Intervals tile the measured run: contiguous, instruction-complete.
        let covered: u64 = records.iter().map(|r| r.instructions).sum();
        assert!(covered <= on.stats.instructions);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.interval, i as u64);
            assert_eq!(r.start_cycle, i as u64 * 1_000);
            assert_eq!(r.end_cycle, (i as u64 + 1) * 1_000);
        }
    }

    #[test]
    fn telemetry_restarts_at_warmup_boundary() {
        let mut sim = Simulator::with_seed(
            SystemConfig::paper_default(),
            Box::new(Workload::Wave5.stream(42)),
            42,
        )
        .unwrap()
        .with_telemetry(&TelemetryConfig::every(500))
        .unwrap();
        sim.warmup(20_000);
        assert!(
            sim.telemetry_records().is_empty(),
            "warm-up records are dropped at the measurement boundary"
        );
        sim.run(30_000);
        let records = sim.telemetry_records();
        assert!(!records.is_empty());
        assert_eq!(records[0].interval, 0);
        assert_eq!(records[0].start_cycle, 0);
    }

    #[test]
    fn telemetry_rejects_invalid_config() {
        let sim = Simulator::with_seed(
            SystemConfig::paper_default(),
            Box::new(Workload::Gzip.stream(1)),
            1,
        )
        .unwrap();
        let cfg = TelemetryConfig {
            enabled: true,
            interval_cycles: 0,
        };
        assert!(sim.with_telemetry(&cfg).is_err());
    }

    #[test]
    fn run_is_resumable() {
        let mut sim = Simulator::with_seed(
            SystemConfig::paper_default(),
            Box::new(Workload::Bh.stream(7)),
            7,
        )
        .unwrap();
        let r1 = sim.run(10_000);
        let r2 = sim.run(10_000);
        assert!(r2.stats.instructions >= 2 * 10_000);
        assert!(r2.stats.cycles > r1.stats.cycles);
    }
}
