//! The assembled PPF simulator.
//!
//! Wires the out-of-order core (`ppf-cpu`), the two-level memory hierarchy
//! (`ppf-mem`), the hardware prefetchers (`ppf-prefetch`) and the pollution
//! filter (`ppf-filter`) into the machine of Figure 3 of the paper, driven
//! by a workload instruction stream (`ppf-workloads`).
//!
//! * [`simulator::Simulator`] — one machine instance; `run(n)` executes `n`
//!   instructions and produces a [`report::SimReport`].
//! * [`experiments`] — named experiment grids for every figure/table of the
//!   paper, and a thread-parallel sweep runner (each grid cell is an
//!   independent pure function of its config and seed).
//! * [`report`] — the run report plus text-table helpers shared by the
//!   `figures` binary and the benches.

#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod schedule;
pub mod simulator;

pub use experiments::{
    fanned_seed, run_grid, run_grid_outcomes, run_grid_seeds, run_grid_seeds_outcomes, CellFailure,
    CellOutcome, RunSpec, TelemetrySpec,
};
pub use report::SimReport;
pub use schedule::{cell_key, CostModel};
pub use simulator::{FilterTapEvent, KernelMode, Simulator, WatchdogConfig};
