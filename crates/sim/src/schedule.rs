//! Work-stealing grid scheduler with a persisted cost model.
//!
//! The flat Mutex work queue the grid runner used through PR 7 dispatched
//! cells in arbitrary order, so a 300-cell sweep regularly ended with one
//! worker grinding through a slow straggler while the rest sat idle. This
//! module replaces it with the classic deque scheme: each worker owns a
//! double-ended queue, jobs are distributed cost-descending round-robin so
//! the predicted-longest cells start first, a worker pops its own front,
//! falls back to the shared injector, and finally steals from the *back*
//! of a victim's deque (the cheap end — stolen work is the work the owner
//! would reach last).
//!
//! Dispatch order is driven by [`CostModel`]: exact per-cell wall times
//! recorded by previous runs (persisted as `TIMINGS.json` beside the
//! checkpoint directory), falling back to a calibrated micros-per-
//! instruction mean, falling back to a static config-feature heuristic.
//! The cost model only affects *order*; results are position-addressed,
//! so any schedule produces byte-identical output.
//!
//! Retries are re-enqueued at the back of the injector instead of being
//! re-run inline on the same worker (the pre-PR-8 behaviour), so one
//! poisoned cell cannot starve a worker's local deque.

use crate::experiments::RunSpec;
use ppf_types::{json_struct, FromJson, PpfError, ToJson};
use std::collections::{HashMap, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// FNV-1a 64-bit over `bytes`, continuing from `h`.
pub fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a offset basis (the standard 64-bit seed).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The content-hash key of one cell: label, config JSON, workload, seed
/// and instruction budgets. Any change to any of these yields a different
/// key. The checkpoint layer uses it as the on-disk filename, the memo
/// table and the cost model as lookup keys, and the shard partitioner as
/// the stable identity a cell keeps across machines.
pub fn cell_key(spec: &RunSpec) -> String {
    let mut h = FNV_OFFSET;
    // Attack-free cells keep their pre-adversary keys (empty part), so
    // existing checkpoint directories stay valid.
    let adversary = spec.adversary.map(|a| a.describe()).unwrap_or_default();
    for part in [
        spec.label.as_str(),
        &spec.config.to_json_string(),
        spec.workload.name(),
        &spec.seed.to_string(),
        &spec.n_instructions.to_string(),
        &spec.warmup.to_string(),
        &adversary,
    ] {
        h = fnv1a(h, part.as_bytes());
        // Field separator so ("ab","c") and ("a","bc") cannot collide.
        h = fnv1a(h, &[0]);
    }
    format!("{h:016x}")
}

/// Schema version of the persisted cost model. A bump discards old files
/// (predictions are advisory, so silently starting cold is correct).
const COST_MODEL_VERSION: u64 = 1;

/// One recorded cell wall-time.
#[derive(Debug, Clone, PartialEq)]
pub struct CostEntry {
    /// The cell's content-hash key ([`cell_key`]).
    pub key: String,
    /// Total instructions the cell executed (warm-up + measured).
    pub insts: u64,
    /// Recorded wall time in microseconds.
    pub micros: u64,
}

json_struct!(CostEntry { key, insts, micros });

/// The persisted form of a [`CostModel`].
#[derive(Debug, Clone, PartialEq)]
pub struct CostModelDoc {
    /// Schema version ([`CostModelDoc`] files with another version are
    /// ignored).
    pub version: u64,
    /// Recorded cell wall-times.
    pub entries: Vec<CostEntry>,
}

json_struct!(CostModelDoc { version, entries });

/// Predicted-cost oracle for grid cells: exact recorded wall times by cell
/// key, with a calibrated micros-per-instruction fallback for cells never
/// seen before, and a pure config-feature heuristic when no history exists
/// at all. Predictions only order dispatch; they never change results.
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    exact: HashMap<String, u64>,
    total_micros: u64,
    total_insts: u64,
}

impl CostModel {
    /// An empty model (heuristic-only predictions).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of exact per-cell observations.
    pub fn len(&self) -> usize {
        self.exact.len()
    }

    /// True when no observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty()
    }

    /// Record one observed cell wall-time (replacing any previous
    /// observation for the same key).
    pub fn record(&mut self, key: &str, insts: u64, micros: u64) {
        if self.exact.insert(key.to_string(), micros).is_none() {
            self.total_micros = self.total_micros.saturating_add(micros);
            self.total_insts = self.total_insts.saturating_add(insts);
        }
    }

    /// Predicted cost (microseconds-shaped, but only the *ordering*
    /// matters) of a cell with key `key` running `insts` instructions on a
    /// configuration of relative weight `weight` (100 = baseline; see
    /// `experiments::spec_cost`).
    pub fn predict(&self, key: &str, insts: u64, weight: u64) -> u64 {
        if let Some(&micros) = self.exact.get(key) {
            return micros;
        }
        if self.total_insts > 0 {
            let per_inst_scaled = self.total_micros.saturating_mul(weight);
            return insts
                .saturating_mul(per_inst_scaled / self.total_insts.max(1) / 100)
                .max(1);
        }
        insts.saturating_mul(weight) / 100
    }

    /// The persistable document form.
    pub fn to_doc(&self) -> CostModelDoc {
        let mut entries: Vec<CostEntry> = self
            .exact
            .iter()
            .map(|(key, &micros)| CostEntry {
                key: key.clone(),
                // Per-key instruction counts are not kept (only the totals
                // matter for the fallback rate), so entries carry the mean.
                insts: self.total_insts / self.exact.len().max(1) as u64,
                micros,
            })
            .collect();
        entries.sort_by(|a, b| a.key.cmp(&b.key));
        CostModelDoc {
            version: COST_MODEL_VERSION,
            entries,
        }
    }

    /// Rebuild a model from its document form. Version skew yields an
    /// empty model: cost history is advisory, never load-bearing.
    pub fn from_doc(doc: &CostModelDoc) -> Self {
        let mut model = CostModel::new();
        if doc.version != COST_MODEL_VERSION {
            return model;
        }
        for e in &doc.entries {
            model.record(&e.key, e.insts, e.micros);
        }
        model
    }

    /// Load a model persisted by [`CostModel::save`]. A missing or
    /// unparseable file yields an empty model (never an error — the model
    /// is an ordering hint, not state).
    pub fn load(path: &Path) -> Self {
        match std::fs::read_to_string(path) {
            Ok(text) => CostModelDoc::from_json_str(&text)
                .map(|doc| Self::from_doc(&doc))
                .unwrap_or_default(),
            Err(_) => CostModel::new(),
        }
    }

    /// Persist the model atomically (tmp + rename).
    pub fn save(&self, path: &Path) -> Result<(), PpfError> {
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, self.to_doc().to_json_pretty())
            .and_then(|()| std::fs::rename(&tmp, path))
            .map_err(|e| PpfError::io(e.to_string()).context(format!("writing {}", path.display())))
    }
}

/// The result of one scheduled job execution attempt.
#[derive(Debug)]
pub enum Attempt<R> {
    /// The job finished (successfully or with a terminal failure); `R` is
    /// its result.
    Done(R),
    /// The attempt failed and the job should be re-enqueued at the back of
    /// the scheduler with an incremented attempt counter.
    Retry,
}

/// Execution trace of one scheduled run, for tests and telemetry.
#[derive(Debug, Default)]
pub struct Trace {
    /// Job indices in the order execution *started* (a retried job appears
    /// once per attempt).
    pub start_order: Vec<usize>,
    /// Tasks taken from another worker's deque.
    pub steals: u64,
    /// Retry re-enqueues.
    pub retries: u64,
    /// Wall time of each job's final attempt, in microseconds.
    pub cell_micros: Vec<u64>,
}

/// One schedulable unit: a job index plus its 0-based attempt counter.
#[derive(Debug, Clone, Copy)]
struct Task {
    job: usize,
    attempt: u32,
}

/// Run `n` jobs over `workers` threads with work stealing. `costs[i]` is
/// job `i`'s predicted cost (ordering only); `exec(job, attempt)` runs one
/// attempt and decides completion vs retry. Results are returned in job
/// order regardless of schedule. `exec` must eventually return
/// [`Attempt::Done`] for every job (the grid runner bounds attempts
/// itself).
pub fn run_scheduled<R, F>(n: usize, workers: usize, costs: &[u64], exec: F) -> (Vec<R>, Trace)
where
    R: Send,
    F: Fn(usize, u32) -> Attempt<R> + Sync,
{
    assert_eq!(costs.len(), n, "one cost per job");
    let workers = workers.clamp(1, n.max(1));
    if n == 0 {
        return (Vec::new(), Trace::default());
    }

    // Cost-descending dispatch order (stable: equal costs keep input
    // order), dealt round-robin so every worker starts with its share of
    // the heavy cells at the *front* of its deque.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(costs[i]));
    let deques: Vec<Mutex<VecDeque<Task>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (pos, &job) in order.iter().enumerate() {
        lock(&deques[pos % workers]).push_back(Task { job, attempt: 0 });
    }

    // Retries land at the back of the shared injector: every worker drains
    // it after its own deque, so a flaky job migrates away from the worker
    // (and the local queue) it poisoned.
    let injector: Mutex<VecDeque<Task>> = Mutex::new(VecDeque::new());
    // Jobs not yet Done. Workers may only exit when this reaches zero:
    // an empty queue is not termination while a peer still runs a job
    // that might Retry into the injector.
    let outstanding = AtomicUsize::new(n);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    let start_order: Mutex<Vec<usize>> = Mutex::new(Vec::with_capacity(n));
    let cell_micros: Mutex<Vec<u64>> = Mutex::new(vec![0; n]);
    let steals = AtomicU64::new(0);
    let retries = AtomicU64::new(0);

    let worker_loop = |me: usize| loop {
        let task = lock(&deques[me])
            .pop_front()
            .or_else(|| lock(&injector).pop_front())
            .or_else(|| {
                // Steal from the back of the first non-empty victim,
                // scanning ring-wise so contention spreads out.
                for off in 1..workers {
                    let victim = (me + off) % workers;
                    if let Some(t) = lock(&deques[victim]).pop_back() {
                        steals.fetch_add(1, Ordering::Relaxed);
                        return Some(t);
                    }
                }
                None
            });
        let Some(task) = task else {
            if outstanding.load(Ordering::Acquire) == 0 {
                return;
            }
            std::thread::yield_now();
            continue;
        };
        lock(&start_order).push(task.job);
        let t0 = std::time::Instant::now();
        match exec(task.job, task.attempt) {
            Attempt::Done(r) => {
                let micros = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                lock(&cell_micros)[task.job] = micros;
                lock(&results)[task.job] = Some(r);
                outstanding.fetch_sub(1, Ordering::Release);
            }
            Attempt::Retry => {
                retries.fetch_add(1, Ordering::Relaxed);
                lock(&injector).push_back(Task {
                    job: task.job,
                    attempt: task.attempt + 1,
                });
            }
        }
    };

    if workers == 1 {
        worker_loop(0);
    } else {
        std::thread::scope(|scope| {
            for me in 0..workers {
                scope.spawn(move || worker_loop(me));
            }
        });
    }

    let results = results
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .into_iter()
        .map(|r| r.expect("every job completed"))
        .collect();
    let trace = Trace {
        start_order: start_order
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
        steals: steals.into_inner(),
        retries: retries.into_inner(),
        cell_micros: cell_micros
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    };
    (results, trace)
}

/// Lock a mutex, recovering from poisoning (worker panics are contained
/// upstream by `catch_unwind`; a stray poison must not cascade).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn single_worker_starts_costliest_first() {
        let costs = [1u64, 9, 5, 7];
        let (results, trace) = run_scheduled(4, 1, &costs, |job, _| Attempt::Done(job));
        assert_eq!(results, vec![0, 1, 2, 3], "results stay in job order");
        assert_eq!(trace.start_order, vec![1, 3, 2, 0], "dispatch is cost-desc");
        assert_eq!(trace.steals, 0);
        assert_eq!(trace.retries, 0);
        assert_eq!(trace.cell_micros.len(), 4);
    }

    #[test]
    fn uniform_costs_keep_fifo_order() {
        // The FIFO baseline the cost model improves on: with no cost
        // signal the sort is stable, so dispatch degenerates to input
        // order — and with a skewed grid (see above) it provably does not.
        let costs = [3u64; 5];
        let (_, trace) = run_scheduled(5, 1, &costs, |job, _| Attempt::Done(job));
        assert_eq!(trace.start_order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn retry_re_enqueues_at_the_back() {
        // Job 0 fails its first attempt. The retry must go to the back of
        // the scheduler (injector), NOT re-run inline: with one worker the
        // observable order is 0,1,2,0 — the old inline-retry runner would
        // produce 0,0,1,2.
        let costs = [1u64; 3];
        let (results, trace) = run_scheduled(3, 1, &costs, |job, attempt| {
            if job == 0 && attempt == 0 {
                Attempt::Retry
            } else {
                Attempt::Done((job, attempt))
            }
        });
        assert_eq!(trace.start_order, vec![0, 1, 2, 0]);
        assert_eq!(trace.retries, 1);
        assert_eq!(results, vec![(0, 1), (1, 0), (2, 0)]);
    }

    #[test]
    fn skewed_costs_trigger_stealing() {
        // Worker 0 gets the one heavy job first (cost-desc round-robin);
        // worker 1 finishes its light share and must steal the rest of
        // worker 0's deque for the run to finish promptly.
        let costs = [1000u64, 1, 1, 1, 1, 1];
        let heavy_done = AtomicU32::new(0);
        let (results, trace) = run_scheduled(6, 2, &costs, |job, _| {
            if job == 0 {
                std::thread::sleep(std::time::Duration::from_millis(60));
                heavy_done.store(1, Ordering::SeqCst);
            } else {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            Attempt::Done(job)
        });
        assert_eq!(results, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(trace.start_order.len(), 6);
        assert!(
            trace.steals >= 1,
            "light worker must steal from the heavy one ({} steals)",
            trace.steals
        );
    }

    #[test]
    fn zero_jobs_and_worker_clamp() {
        let (results, trace) = run_scheduled::<usize, _>(0, 8, &[], |_, _| unreachable!());
        assert!(results.is_empty());
        assert!(trace.start_order.is_empty());
        // More workers than jobs is clamped (no idle spawn storm).
        let (r, _) = run_scheduled(2, 64, &[1, 1], |job, _| Attempt::Done(job));
        assert_eq!(r, vec![0, 1]);
    }

    #[test]
    fn cost_model_prediction_tiers() {
        let mut m = CostModel::new();
        assert!(m.is_empty());
        // Heuristic tier: pure insts × weight.
        assert_eq!(m.predict("k0", 1000, 100), 1000);
        assert_eq!(m.predict("k0", 1000, 140), 1400);
        // Calibrated tier: 2 micros/inst mean from one observation.
        m.record("k1", 1000, 2000);
        assert_eq!(m.len(), 1);
        assert_eq!(m.predict("k2", 500, 100), 1000);
        // Exact tier beats both.
        assert_eq!(m.predict("k1", 500, 100), 2000);
        // Re-recording a key replaces, not double-counts.
        m.record("k1", 1000, 4000);
        assert_eq!(m.predict("k1", 1, 100), 4000);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn cost_model_persistence_round_trips() {
        let dir = std::env::temp_dir().join(format!("ppf-costmodel-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("TIMINGS.json");
        let mut m = CostModel::new();
        m.record("aaaa", 10_000, 123_456);
        m.record("bbbb", 20_000, 654_321);
        m.save(&path).unwrap();
        let back = CostModel::load(&path);
        assert_eq!(back.len(), 2);
        for key in ["aaaa", "bbbb"] {
            assert_eq!(back.predict(key, 1, 100), m.predict(key, 1, 100));
        }
        // Calibrated fallback survives the round trip (totals rebuilt).
        assert_eq!(back.predict("cccc", 100, 100), m.predict("cccc", 100, 100));
        // Version skew loads as empty, not as an error.
        let doc = CostModelDoc {
            version: COST_MODEL_VERSION + 1,
            entries: m.to_doc().entries,
        };
        std::fs::write(&path, doc.to_json_pretty()).unwrap();
        assert!(CostModel::load(&path).is_empty());
        // Missing and corrupt files load as empty too.
        assert!(CostModel::load(&dir.join("absent.json")).is_empty());
        std::fs::write(&path, "{ not json").unwrap();
        assert!(CostModel::load(&path).is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
