//! Interval telemetry: time-resolved metrics for the trained filter.
//!
//! End-of-run aggregates in [`SimStats`](crate::SimStats) hide exactly the
//! transient the paper's mechanism lives or dies by — the §4 history table
//! starts weakly-good and converges only after PIB/RIB evictions feed back,
//! so the interesting signal (how fast `fraction_good` leaves its init, how
//! large the bad-prefetch burst is before the counters train) is a *curve*,
//! not a number. This module provides the zero-dependency plumbing for that
//! curve:
//!
//! * [`TelemetryConfig`] — off by default; when enabled the simulator ticks
//!   an [`IntervalSampler`] every `interval_cycles` cycles.
//! * [`Registry`] — a flat registry of named counters and gauges. The
//!   simulator registers instantaneous values (filter `fraction_good`, live
//!   MSHR entries, prefetch-queue backlog) that cannot be derived from the
//!   cumulative [`SimStats`](crate::SimStats) counters.
//! * [`IntervalSampler`] — differences successive `SimStats` snapshots into
//!   per-interval [`IntervalRecord`]s (IPC, L1 miss rate, per-source
//!   prefetch issued/filtered/dropped, bus occupancy, …).
//! * [`JsonlSink`] — writes records as JSON lines with the same atomic
//!   write discipline (`.tmp` sibling + rename) as the checkpoint layer, so
//!   telemetry streams can live alongside checkpoint directories without a
//!   crash ever leaving a half-written file.
//!
//! The subsystem is free when disabled by construction: the simulator holds
//! an `Option<IntervalSampler>` that is `None` unless telemetry was
//! explicitly enabled, every hook is a read-only observer behind one
//! predictable `is_some()` branch, and nothing here ever writes to
//! `SimStats` — so a telemetry-off run is cycle-for-cycle identical to a
//! pre-telemetry build (asserted by `tests/telemetry.rs`).

use crate::json_struct;
use crate::stats::{PerSource, SimStats};
use crate::{Cycle, PpfError};
use std::path::{Path, PathBuf};

/// Default sampling interval: long enough that a 1M-instruction run emits
/// a few hundred records, short enough to resolve the filter's warm-up.
pub const DEFAULT_INTERVAL_CYCLES: u64 = 10_000;

/// Interval-telemetry configuration. Disabled by default; a disabled config
/// constructs no sampler at all, so the simulator's per-cycle cost is one
/// `Option::is_some` branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Collect interval records?
    pub enabled: bool,
    /// Cycles per sampling interval (must be nonzero when enabled).
    pub interval_cycles: u64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: false,
            interval_cycles: DEFAULT_INTERVAL_CYCLES,
        }
    }
}

impl TelemetryConfig {
    /// An enabled config sampling every `interval_cycles` cycles.
    pub fn every(interval_cycles: u64) -> Self {
        TelemetryConfig {
            enabled: true,
            interval_cycles,
        }
    }

    /// Structural validation (an enabled zero-cycle interval would sample
    /// forever without advancing).
    pub fn validate(&self) -> Result<(), PpfError> {
        if self.enabled && self.interval_cycles == 0 {
            return Err(PpfError::config_invalid(
                "telemetry interval_cycles must be nonzero when enabled",
            ));
        }
        Ok(())
    }
}

json_struct!(TelemetryConfig {
    enabled,
    interval_cycles,
});

/// Handle to a registered counter (monotonic, `u64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge (instantaneous, `f64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// A flat, allocation-light registry of named metrics. Registration returns
/// an index handle; updates are plain array stores, so setting a gauge on
/// the sampling path costs the same as bumping a `SimStats` counter.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, f64)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register a monotonic counter, initialized to zero.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        self.counters.push((name, 0));
        CounterId(self.counters.len() - 1)
    }

    /// Register an instantaneous gauge, initialized to zero.
    pub fn gauge(&mut self, name: &'static str) -> GaugeId {
        self.gauges.push((name, 0.0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Add `n` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].1 += n;
    }

    /// Set a gauge to `value`.
    #[inline]
    pub fn set(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.0].1 = value;
    }

    /// Current counter value.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1
    }

    /// Current gauge value.
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0].1
    }

    /// Look a gauge up by name (diagnostics; the hot path uses handles).
    pub fn gauge_by_name(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// Look a counter up by name (diagnostics; the hot path uses handles).
    pub fn counter_by_name(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }
}

/// One sampled interval: deltas of the cumulative funnel counters plus the
/// instantaneous gauges, in measurement-relative cycles (cycle 0 is the
/// last statistics reset, i.e. the warm-up boundary).
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalRecord {
    /// Interval index (0-based).
    pub interval: u64,
    /// First cycle of the interval, relative to the measurement origin.
    pub start_cycle: u64,
    /// One past the last cycle of the interval.
    pub end_cycle: u64,
    /// Instructions retired during the interval.
    pub instructions: u64,
    /// Instructions per cycle over the interval.
    pub ipc: f64,
    /// L1 demand miss rate over the interval (0 when no demand accesses).
    pub l1_miss_rate: f64,
    /// Prefetches issued to the L1 this interval, per source.
    pub prefetch_issued: PerSource,
    /// Prefetches rejected by the pollution filter this interval.
    pub prefetch_filtered: PerSource,
    /// Prefetches dropped on queue overflow this interval.
    pub prefetch_dropped: PerSource,
    /// Prefetched lines classified good (referenced) this interval.
    pub prefetch_good: u64,
    /// Prefetched lines classified bad (evicted unreferenced) this interval.
    pub prefetch_bad: u64,
    /// Filter history-table fraction predicting "good" at sample time — the
    /// convergence gauge (starts at 1.0 under the weakly-good init).
    pub fraction_good: f64,
    /// Fraction of interval cycles the memory bus was busy.
    pub bus_occupancy: f64,
    /// MSHR entries in flight at sample time.
    pub mshr_live: u64,
    /// Prefetch-queue backlog at sample time.
    pub queue_backlog: u64,
}

json_struct!(IntervalRecord {
    interval,
    start_cycle,
    end_cycle,
    instructions,
    ipc,
    l1_miss_rate,
    prefetch_issued,
    prefetch_filtered,
    prefetch_dropped,
    prefetch_good,
    prefetch_bad,
    fraction_good,
    bus_occupancy,
    mshr_live,
    queue_backlog,
});

/// Cumulative-counter snapshot differencing successive samples.
#[derive(Debug, Clone, Copy, Default)]
struct Snapshot {
    instructions: u64,
    l1_accesses: u64,
    l1_misses: u64,
    issued: PerSource,
    filtered: PerSource,
    dropped: PerSource,
    good: u64,
    bad: u64,
    bus_busy: u64,
}

impl Snapshot {
    fn take(instructions: u64, stats: &SimStats) -> Self {
        Snapshot {
            instructions,
            l1_accesses: stats.l1.demand_accesses,
            l1_misses: stats.l1.demand_misses,
            issued: stats.prefetches_issued,
            filtered: stats.prefetches_filtered,
            dropped: stats.prefetches_queue_overflow,
            good: stats.prefetch_good.total(),
            bad: stats.prefetch_bad.total(),
            bus_busy: stats.bus_busy_cycles,
        }
    }
}

/// The interval sampler the simulator ticks from its per-cycle loop.
///
/// Read-only with respect to the machine: it observes `SimStats` and the
/// gauges the simulator pushes, and never feeds anything back — the
/// structural argument for "telemetry cannot change simulation results".
#[derive(Debug, Clone)]
pub struct IntervalSampler {
    interval: u64,
    /// Cycle of the current measurement origin (last statistics reset).
    origin: Cycle,
    /// Absolute cycle at which the next sample is due.
    next_due: Cycle,
    prev: Snapshot,
    registry: Registry,
    g_fraction_good: GaugeId,
    g_mshr_live: GaugeId,
    g_queue_backlog: GaugeId,
    records: Vec<IntervalRecord>,
}

impl IntervalSampler {
    /// A sampler for `cfg`, or `None` when telemetry is disabled (the
    /// provably-free-when-off representation: no sampler, no work).
    pub fn new(cfg: &TelemetryConfig) -> Option<Self> {
        if !cfg.enabled {
            return None;
        }
        assert!(cfg.interval_cycles > 0, "telemetry interval must be > 0");
        let mut registry = Registry::new();
        let g_fraction_good = registry.gauge("filter_fraction_good");
        let g_mshr_live = registry.gauge("mshr_live");
        let g_queue_backlog = registry.gauge("queue_backlog");
        Some(IntervalSampler {
            interval: cfg.interval_cycles,
            origin: 0,
            next_due: cfg.interval_cycles,
            prev: Snapshot::default(),
            registry,
            g_fraction_good,
            g_mshr_live,
            g_queue_backlog,
            records: Vec::new(),
        })
    }

    /// Cycles per interval.
    pub fn interval_cycles(&self) -> u64 {
        self.interval
    }

    /// Absolute cycle at which the next sample is due — the simulator's
    /// cheap per-cycle guard (`now < next_due()` skips everything else).
    #[inline]
    pub fn next_due(&self) -> Cycle {
        self.next_due
    }

    /// Restart sampling at `origin` (the warm-up/measurement boundary):
    /// drops warm-up records so intervals line up with the measured
    /// `SimStats`, whose counters were just reset to zero.
    pub fn reset(&mut self, origin: Cycle) {
        self.origin = origin;
        self.next_due = origin + self.interval;
        self.prev = Snapshot::default();
        self.records.clear();
    }

    /// Push the instantaneous gauges for the upcoming sample.
    #[inline]
    pub fn set_gauges(&mut self, fraction_good: f64, mshr_live: u64, queue_backlog: u64) {
        self.registry.set(self.g_fraction_good, fraction_good);
        self.registry.set(self.g_mshr_live, mshr_live as f64);
        self.registry
            .set(self.g_queue_backlog, queue_backlog as f64);
    }

    /// The metric registry (shared with any extra instrumentation).
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// Close the interval ending at `now` and append its record.
    /// `instructions` is the cumulative retired-instruction count since the
    /// measurement origin (it lives in the driving core's stats struct,
    /// separate from the memory-side `stats`).
    pub fn sample(&mut self, now: Cycle, instructions: u64, stats: &SimStats) {
        let cur = Snapshot::take(instructions, stats);
        let interval = (now - self.origin) / self.interval - 1;
        let d_insts = cur.instructions - self.prev.instructions;
        let d_acc = cur.l1_accesses - self.prev.l1_accesses;
        let d_miss = cur.l1_misses - self.prev.l1_misses;
        let d_bus = cur.bus_busy.saturating_sub(self.prev.bus_busy);
        self.records.push(IntervalRecord {
            interval,
            start_cycle: now - self.origin - self.interval,
            end_cycle: now - self.origin,
            instructions: d_insts,
            ipc: d_insts as f64 / self.interval as f64,
            l1_miss_rate: if d_acc == 0 {
                0.0
            } else {
                d_miss as f64 / d_acc as f64
            },
            prefetch_issued: cur.issued.delta(&self.prev.issued),
            prefetch_filtered: cur.filtered.delta(&self.prev.filtered),
            prefetch_dropped: cur.dropped.delta(&self.prev.dropped),
            prefetch_good: cur.good - self.prev.good,
            prefetch_bad: cur.bad - self.prev.bad,
            fraction_good: self.registry.gauge_value(self.g_fraction_good),
            bus_occupancy: (d_bus.min(self.interval)) as f64 / self.interval as f64,
            mshr_live: self.registry.gauge_value(self.g_mshr_live) as u64,
            queue_backlog: self.registry.gauge_value(self.g_queue_backlog) as u64,
        });
        self.prev = cur;
        self.next_due += self.interval;
    }

    /// Records collected since the last reset.
    pub fn records(&self) -> &[IntervalRecord] {
        &self.records
    }

    /// Take ownership of the collected records.
    pub fn take_records(&mut self) -> Vec<IntervalRecord> {
        std::mem::take(&mut self.records)
    }
}

/// Serialize records as JSON lines (one compact record per line).
pub fn to_jsonl(records: &[IntervalRecord]) -> String {
    use crate::json::ToJson;
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_json_string());
        out.push('\n');
    }
    out
}

/// Parse a JSON-lines stream produced by [`to_jsonl`]. Blank lines are
/// ignored; any malformed line fails the whole parse with the line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<IntervalRecord>, PpfError> {
    use crate::json::FromJson;
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec = IntervalRecord::from_json_str(line).map_err(|e| {
            PpfError::checkpoint_corrupt(e).context(format!("telemetry JSONL line {}", i + 1))
        })?;
        out.push(rec);
    }
    Ok(out)
}

/// An atomic-write JSON-lines sink: the whole stream is written to a
/// `.tmp` sibling and renamed into place, the same crash-safety discipline
/// as the checkpoint layer (a reader never observes a torn file, and a
/// telemetry directory can sit next to — or inside — a checkpoint
/// directory without interference).
#[derive(Debug, Clone)]
pub struct JsonlSink {
    path: PathBuf,
}

impl JsonlSink {
    /// A sink writing to `path` (conventionally `<dir>/<cell>.jsonl`).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        JsonlSink { path: path.into() }
    }

    /// Destination path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Atomically replace the file at the sink's path with `records`.
    pub fn write(&self, records: &[IntervalRecord]) -> Result<(), PpfError> {
        let tmp = self.path.with_extension("jsonl.tmp");
        std::fs::write(&tmp, to_jsonl(records))
            .and_then(|()| std::fs::rename(&tmp, &self.path))
            .map_err(|e| {
                PpfError::io(e.to_string()).context(format!("writing {}", self.path.display()))
            })
    }

    /// Read the stream back (for `bench timeline --json` and tests).
    pub fn read(&self) -> Result<Vec<IntervalRecord>, PpfError> {
        let text = std::fs::read_to_string(&self.path).map_err(|e| {
            PpfError::io(e.to_string()).context(format!("reading {}", self.path.display()))
        })?;
        parse_jsonl(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{FromJson, ToJson};

    fn record(i: u64) -> IntervalRecord {
        let mut issued = PerSource::default();
        issued.by_source[0] = 10 + i;
        IntervalRecord {
            interval: i,
            start_cycle: i * 1000,
            end_cycle: (i + 1) * 1000,
            instructions: 1500,
            ipc: 1.5,
            l1_miss_rate: 0.125,
            prefetch_issued: issued,
            prefetch_filtered: PerSource::default(),
            prefetch_dropped: PerSource::default(),
            prefetch_good: 7,
            prefetch_bad: 3,
            fraction_good: 0.875,
            bus_occupancy: 0.25,
            mshr_live: 4,
            queue_backlog: 2,
        }
    }

    #[test]
    fn config_is_off_by_default_and_builds_no_sampler() {
        let cfg = TelemetryConfig::default();
        assert!(!cfg.enabled);
        assert!(IntervalSampler::new(&cfg).is_none());
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn enabled_zero_interval_is_invalid() {
        let cfg = TelemetryConfig {
            enabled: true,
            interval_cycles: 0,
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn config_json_round_trips() {
        let cfg = TelemetryConfig::every(2500);
        let back = TelemetryConfig::from_json_str(&cfg.to_json_string()).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn registry_counters_and_gauges() {
        let mut reg = Registry::new();
        let c = reg.counter("events");
        let g = reg.gauge("level");
        reg.add(c, 3);
        reg.add(c, 4);
        reg.set(g, 0.5);
        assert_eq!(reg.counter_value(c), 7);
        assert_eq!(reg.gauge_value(g), 0.5);
        assert_eq!(reg.counter_by_name("events"), Some(7));
        assert_eq!(reg.gauge_by_name("level"), Some(0.5));
        assert_eq!(reg.gauge_by_name("missing"), None);
    }

    #[test]
    fn sampler_differences_cumulative_counters() {
        let mut s = IntervalSampler::new(&TelemetryConfig::every(100)).unwrap();
        let mut stats = SimStats::default();
        stats.l1.demand_accesses = 80;
        stats.l1.demand_misses = 8;
        stats.bus_busy_cycles = 40;
        s.set_gauges(1.0, 2, 1);
        s.sample(100, 150, &stats);
        stats.l1.demand_accesses = 200;
        stats.l1.demand_misses = 38;
        stats.bus_busy_cycles = 90;
        s.set_gauges(0.75, 5, 0);
        s.sample(200, 260, &stats);
        let r = s.records();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].interval, 0);
        assert_eq!(r[0].instructions, 150);
        assert_eq!(r[0].ipc, 1.5);
        assert_eq!(r[0].l1_miss_rate, 0.1);
        assert_eq!(r[1].interval, 1);
        assert_eq!((r[1].start_cycle, r[1].end_cycle), (100, 200));
        assert_eq!(r[1].instructions, 110);
        assert_eq!(r[1].l1_miss_rate, 0.25);
        assert_eq!(r[1].bus_occupancy, 0.5);
        assert_eq!(r[1].fraction_good, 0.75);
        assert_eq!(r[1].mshr_live, 5);
    }

    #[test]
    fn sampler_reset_drops_warmup_records() {
        let mut s = IntervalSampler::new(&TelemetryConfig::every(50)).unwrap();
        let stats = SimStats::default();
        s.sample(50, 10, &stats);
        assert_eq!(s.records().len(), 1);
        s.reset(75);
        assert!(s.records().is_empty());
        assert_eq!(s.next_due(), 125);
        s.sample(125, 5, &stats);
        assert_eq!(s.records()[0].interval, 0);
        assert_eq!(s.records()[0].start_cycle, 0);
        assert_eq!(s.records()[0].end_cycle, 50);
    }

    #[test]
    fn jsonl_round_trips() {
        let records: Vec<IntervalRecord> = (0..5).map(record).collect();
        let text = to_jsonl(&records);
        assert_eq!(text.lines().count(), 5);
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn jsonl_rejects_malformed_lines() {
        let mut text = to_jsonl(&[record(0)]);
        text.push_str("{not json\n");
        let err = parse_jsonl(&text).unwrap_err();
        assert_eq!(err.kind(), crate::PpfErrorKind::CheckpointCorrupt);
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn sink_writes_atomically_and_reads_back() {
        let dir = std::env::temp_dir().join("ppf-telemetry-sink-test");
        std::fs::create_dir_all(&dir).unwrap();
        let sink = JsonlSink::new(dir.join("cell.jsonl"));
        let records: Vec<IntervalRecord> = (0..3).map(record).collect();
        sink.write(&records).unwrap();
        assert!(!sink.path().with_extension("jsonl.tmp").exists());
        assert_eq!(sink.read().unwrap(), records);
        std::fs::remove_dir_all(&dir).ok();
    }
}
