//! Dependency-free JSON serialization for configs, stats, and reports.
//!
//! The build environment cannot fetch `serde`/`serde_json`, so the workspace
//! carries its own small JSON layer: a [`JsonValue`] tree, a recursive-descent
//! parser, a compact and a pretty writer, and the [`ToJson`]/[`FromJson`]
//! traits every serializable type implements. The [`json_struct!`] and
//! [`json_unit_enum!`](crate::json_unit_enum) macros generate the mechanical
//! field-by-field impls, mirroring what `#[derive(Serialize, Deserialize)]`
//! used to produce — same field names, so previously emitted JSON artifacts
//! stay readable.

use std::fmt;

/// Errors from parsing or decoding JSON; the payload describes the problem.
pub type JsonError = String;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer (the common case for counters).
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A number with a fractional part or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value as u64 if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            JsonValue::UInt(v) => Some(v),
            JsonValue::Int(v) if v >= 0 => Some(v as u64),
            JsonValue::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// Numeric value as i64 if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            JsonValue::UInt(v) if v <= i64::MAX as u64 => Some(v as i64),
            JsonValue::Int(v) => Some(v),
            JsonValue::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            _ => None,
        }
    }

    /// Numeric value as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            JsonValue::UInt(v) => Some(v as f64),
            JsonValue::Int(v) => Some(v as f64),
            JsonValue::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            JsonValue::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// String value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parse a JSON document. Rejects trailing non-whitespace.
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Render with two-space indentation and newlines.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(v) => out.push_str(&v.to_string()),
            JsonValue::Int(v) => out.push_str(&v.to_string()),
            JsonValue::Float(f) => {
                if f.is_finite() {
                    let s = format!("{f}");
                    out.push_str(&s);
                    // Keep floats recognisable as floats on re-parse.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if let Some(level) = indent {
                        newline_indent(out, level + 1);
                        item.write(out, Some(level + 1));
                    } else {
                        item.write(out, None);
                    }
                }
                if let Some(level) = indent {
                    newline_indent(out, level);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if let Some(level) = indent {
                        newline_indent(out, level + 1);
                        write_escaped(out, k);
                        out.push_str(": ");
                        v.write(out, Some(level + 1));
                    } else {
                        write_escaped(out, k);
                        out.push(':');
                        v.write(out, None);
                    }
                }
                if let Some(level) = indent {
                    newline_indent(out, level);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for JsonValue {
    /// Compact (single-line) rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None);
        f.write_str(&out)
    }
}

fn newline_indent(out: &mut String, level: usize) {
    out.push('\n');
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        match self.peek() {
            None => Err("unexpected end of input".into()),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(JsonValue::Null)
                } else {
                    Err(format!("invalid literal at byte {}", self.pos))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(JsonValue::Bool(true))
                } else {
                    Err(format!("invalid literal at byte {}", self.pos))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(JsonValue::Bool(false))
                } else {
                    Err(format!("invalid literal at byte {}", self.pos))
                }
            }
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our payloads;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!("bad escape '\\{}'", other as char));
                        }
                    }
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        if is_float {
            text.parse::<f64>()
                .map(JsonValue::Float)
                .map_err(|_| format!("invalid number '{text}'"))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(JsonValue::UInt(u))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(JsonValue::Int(i))
        } else {
            text.parse::<f64>()
                .map(JsonValue::Float)
                .map_err(|_| format!("invalid number '{text}'"))
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Types that can render themselves as JSON.
pub trait ToJson {
    /// Convert to a JSON tree.
    fn to_json(&self) -> JsonValue;

    /// Compact single-line JSON text.
    fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Indented multi-line JSON text.
    fn to_json_pretty(&self) -> String {
        self.to_json().pretty()
    }
}

/// Types that can reconstruct themselves from JSON.
pub trait FromJson: Sized {
    /// Decode from a JSON tree.
    fn from_json(v: &JsonValue) -> Result<Self, JsonError>;

    /// Parse and decode in one step.
    fn from_json_str(s: &str) -> Result<Self, JsonError> {
        Self::from_json(&JsonValue::parse(s)?)
    }
}

macro_rules! impl_json_uint {
    ($($ty:ty),+) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> JsonValue {
                JsonValue::UInt(*self as u64)
            }
        }
        impl FromJson for $ty {
            fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
                let raw = v.as_u64().ok_or_else(|| format!(
                    "expected unsigned integer, got {v}"
                ))?;
                <$ty>::try_from(raw).map_err(|_| format!(
                    "integer {raw} out of range for {}", stringify!($ty)
                ))
            }
        }
    )+};
}
impl_json_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_json_int {
    ($($ty:ty),+) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> JsonValue {
                let v = *self as i64;
                if v >= 0 {
                    JsonValue::UInt(v as u64)
                } else {
                    JsonValue::Int(v)
                }
            }
        }
        impl FromJson for $ty {
            fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
                let raw = v.as_i64().ok_or_else(|| format!(
                    "expected integer, got {v}"
                ))?;
                <$ty>::try_from(raw).map_err(|_| format!(
                    "integer {raw} out of range for {}", stringify!($ty)
                ))
            }
        }
    )+};
}
impl_json_int!(i8, i16, i32, i64);

impl ToJson for bool {
    fn to_json(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        v.as_bool().ok_or_else(|| format!("expected bool, got {v}"))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> JsonValue {
        JsonValue::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        v.as_f64()
            .ok_or_else(|| format!("expected number, got {v}"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("expected string, got {v}"))
    }
}

impl ToJson for &str {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str((*self).to_string())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> JsonValue {
        match self {
            Some(v) => v.to_json(),
            None => JsonValue::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        match v {
            JsonValue::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        match v {
            JsonValue::Array(items) => items.iter().map(T::from_json).collect(),
            other => Err(format!("expected array, got {other}")),
        }
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson + Default + Copy, const N: usize> FromJson for [T; N] {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        match v {
            JsonValue::Array(items) => {
                if items.len() != N {
                    return Err(format!("expected array of length {N}, got {}", items.len()));
                }
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_json(item)?;
                }
                Ok(out)
            }
            other => Err(format!("expected array, got {other}")),
        }
    }
}

/// Generate [`ToJson`]/[`FromJson`] for a struct with named public fields.
/// Field names become JSON keys, matching serde's derive output.
#[macro_export]
macro_rules! json_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::JsonValue {
                $crate::json::JsonValue::Object(vec![
                    $((
                        stringify!($field).to_string(),
                        $crate::json::ToJson::to_json(&self.$field),
                    )),+
                ])
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(
                v: &$crate::json::JsonValue,
            ) -> Result<Self, $crate::json::JsonError> {
                Ok(Self {
                    $($field: $crate::json::FromJson::from_json(
                        v.get(stringify!($field)).ok_or_else(|| format!(
                            "missing field `{}` in {}",
                            stringify!($field),
                            stringify!($ty)
                        ))?,
                    )?),+
                })
            }
        }
    };
}

/// Generate [`ToJson`]/[`FromJson`] for a fieldless enum, encoding variants
/// as their name strings (serde's default unit-variant encoding).
#[macro_export]
macro_rules! json_unit_enum {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::JsonValue {
                $crate::json::JsonValue::Str(
                    match self {
                        $($ty::$variant => stringify!($variant)),+
                    }
                    .to_string(),
                )
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(
                v: &$crate::json::JsonValue,
            ) -> Result<Self, $crate::json::JsonError> {
                match v.as_str() {
                    $(Some(stringify!($variant)) => Ok($ty::$variant),)+
                    Some(other) => Err(format!(
                        "unknown {} variant `{other}`",
                        stringify!($ty)
                    )),
                    None => Err(format!(
                        "expected string for {}, got {v}",
                        stringify!($ty)
                    )),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse(" 42 ").unwrap(), JsonValue::UInt(42));
        assert_eq!(JsonValue::parse("-7").unwrap(), JsonValue::Int(-7));
        assert_eq!(JsonValue::parse("2.5").unwrap(), JsonValue::Float(2.5));
        assert_eq!(
            JsonValue::parse("\"hi\\nthere\"").unwrap(),
            JsonValue::Str("hi\nthere".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = JsonValue::parse(r#"{"a": [1, 2, {"b": false}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        match v.get("a").unwrap() {
            JsonValue::Array(items) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[2].get("b").unwrap().as_bool(), Some(false));
            }
            other => panic!("expected array, got {other}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("").is_err());
        assert!(JsonValue::parse("nul").is_err());
        assert!(JsonValue::parse("{\"a\": 1,}").is_err());
        assert!(JsonValue::parse("[1, 2] trailing").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
    }

    #[test]
    fn compact_round_trips() {
        let src = r#"{"name":"mcf","counts":[1,2,3],"rate":0.25,"flag":true,"opt":null}"#;
        let v = JsonValue::parse(src).unwrap();
        let re = JsonValue::parse(&v.to_string()).unwrap();
        assert_eq!(v, re);
    }

    #[test]
    fn pretty_round_trips_and_indents() {
        let v = JsonValue::parse(r#"{"a": {"b": [1, 2]}}"#).unwrap();
        let pretty = v.pretty();
        assert!(pretty.contains("\n  \"a\""));
        assert_eq!(JsonValue::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn float_output_stays_a_float() {
        let s = JsonValue::Float(3.0).to_string();
        assert_eq!(s, "3.0");
        assert_eq!(JsonValue::parse(&s).unwrap(), JsonValue::Float(3.0));
    }

    #[test]
    fn string_escaping_round_trips() {
        let nasty = "quote\" backslash\\ newline\n tab\t ctrl\u{1} done";
        let json = nasty.to_json().to_string();
        let back = String::from_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(back, nasty);
    }

    #[test]
    fn primitive_decode_errors_are_typed() {
        assert!(u8::from_json(&JsonValue::UInt(300)).is_err());
        assert!(u64::from_json(&JsonValue::Str("x".into())).is_err());
        assert!(bool::from_json(&JsonValue::UInt(1)).is_err());
        assert!(<[u64; 4]>::from_json(&JsonValue::Array(vec![JsonValue::UInt(1)])).is_err());
    }

    #[test]
    fn option_maps_to_null() {
        assert_eq!(None::<f64>.to_json(), JsonValue::Null);
        assert_eq!(Some(1.5f64).to_json(), JsonValue::Float(1.5));
        assert_eq!(Option::<f64>::from_json(&JsonValue::Null).unwrap(), None);
        assert_eq!(
            Option::<f64>::from_json(&JsonValue::Float(0.5)).unwrap(),
            Some(0.5)
        );
    }
}
