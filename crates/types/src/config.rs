//! System configuration, mirroring Table 1 of the paper.
//!
//! [`SystemConfig::paper_default`] reproduces the paper's default machine: an
//! 8-wide out-of-order core with a 128-entry ROB and 64-entry LSQ, an 8KB
//! direct-mapped 1-cycle L1 with 3 universal ports, a 512KB 4-way 15-cycle
//! L2, 150-cycle main memory behind a 64-byte bus, a 64-entry prefetch queue
//! and a 4096-entry (1KB) pollution-filter history table.
//!
//! The named constructors (`with_l1_32k`, `with_l1_ports`, ...) produce the
//! exact variant machines evaluated in §5.2.2–§5.5.

use crate::error::PpfError;
use crate::{json_struct, json_unit_enum};

/// Branch-prediction front-end parameters (Table 1: bimodal 2048 entries,
/// BTB 4-way × 4096 sets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchConfig {
    /// Entries in the bimodal 2-bit-counter table. Power of two.
    pub bimodal_entries: usize,
    /// BTB sets. Power of two.
    pub btb_sets: usize,
    /// BTB associativity.
    pub btb_ways: usize,
    /// Cycles of fetch redirect penalty on a mispredict, charged after the
    /// branch resolves.
    pub mispredict_penalty: u64,
}

impl Default for BranchConfig {
    fn default() -> Self {
        BranchConfig {
            bimodal_entries: 2048,
            btb_sets: 4096,
            btb_ways: 4,
            mispredict_penalty: 7,
        }
    }
}

/// Out-of-order core parameters (Table 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreConfig {
    /// Instructions fetched/dispatched per cycle.
    pub fetch_width: usize,
    /// Instructions issued per cycle (Table 1: 8).
    pub issue_width: usize,
    /// Instructions retired per cycle (Table 1: 8).
    pub retire_width: usize,
    /// Reorder-buffer entries (Table 1: 128).
    pub rob_entries: usize,
    /// Load/store-queue entries (Table 1: 64).
    pub lsq_entries: usize,
    /// Integer ALU count.
    pub int_alus: usize,
    /// Floating-point unit count.
    pub fp_alus: usize,
    /// Integer op latency in cycles.
    pub int_latency: u64,
    /// Floating-point op latency in cycles.
    pub fp_latency: u64,
    /// Branch predictor configuration.
    pub branch: BranchConfig,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            fetch_width: 8,
            issue_width: 8,
            retire_width: 8,
            rob_entries: 128,
            lsq_entries: 64,
            int_alus: 8,
            fp_alus: 4,
            int_latency: 1,
            fp_latency: 4,
            branch: BranchConfig::default(),
        }
    }
}

/// One cache level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes (Table 1: 32 for both levels).
    pub line_bytes: u32,
    /// Associativity; 1 = direct-mapped.
    pub ways: usize,
    /// Access latency in core cycles.
    pub hit_latency: u64,
    /// Number of universal (read/write) ports. The prefetch queue competes
    /// with demand accesses for these.
    pub ports: usize,
}

impl CacheConfig {
    /// Number of sets implied by size/line/ways.
    pub fn sets(&self) -> usize {
        let lines = self.size_bytes / self.line_bytes as usize;
        lines / self.ways
    }

    /// Total number of lines.
    pub fn lines(&self) -> usize {
        self.size_bytes / self.line_bytes as usize
    }

    /// Validate structural constraints (power-of-two geometry, nonzero).
    pub fn validate(&self) -> Result<(), PpfError> {
        if !self.line_bytes.is_power_of_two() {
            return Err(PpfError::config_invalid(format!(
                "line_bytes {} not a power of two",
                self.line_bytes
            )));
        }
        if self.ways == 0 || self.ports == 0 {
            return Err(PpfError::config_invalid("ways and ports must be nonzero"));
        }
        if !self
            .size_bytes
            .is_multiple_of(self.line_bytes as usize * self.ways)
        {
            return Err(PpfError::config_invalid(
                "size must be divisible by line_bytes * ways",
            ));
        }
        if !self.sets().is_power_of_two() {
            return Err(PpfError::config_invalid(format!(
                "set count {} not a power of two",
                self.sets()
            )));
        }
        Ok(())
    }
}

/// Main-memory and bus parameters (Table 1: 150 cycles, 64-byte bus).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemConfig {
    /// Leadoff latency in core cycles.
    pub latency: u64,
    /// Bus width in bytes; a transfer of `n` bytes occupies the bus for
    /// `ceil(n / bus_bytes)` bus slots.
    pub bus_bytes: u32,
    /// Core cycles per bus slot.
    pub bus_cycle: u64,
    /// DRAM banks (power of two). `0` = the paper's model: unlimited
    /// concurrency behind the bus. With banks, each access occupies its
    /// bank (line-interleaved) for `bank_busy` cycles — an ablation knob
    /// for memory-level-parallelism limits.
    pub banks: usize,
    /// Cycles a bank stays busy per access (only with `banks > 0`).
    pub bank_busy: u64,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            latency: 150,
            bus_bytes: 64,
            bus_cycle: 1,
            banks: 0,
            bank_busy: 40,
        }
    }
}

impl MemConfig {
    /// Validate structural constraints (nonzero bus geometry, coherent
    /// bank model).
    pub fn validate(&self) -> Result<(), PpfError> {
        if self.bus_bytes == 0 || self.bus_cycle == 0 {
            return Err(PpfError::config_invalid(
                "bus_bytes and bus_cycle must be nonzero",
            ));
        }
        if self.banks > 0 {
            if !self.banks.is_power_of_two() {
                return Err(PpfError::config_invalid(format!(
                    "bank count {} not a power of two",
                    self.banks
                )));
            }
            if self.bank_busy == 0 {
                // A zero busy time makes every bank always free, silently
                // disabling the serialization the MLP ablation measures.
                return Err(PpfError::config_invalid(format!(
                    "bank_busy must be nonzero with {} banks configured \
                     (bank_busy == 0 disables bank serialization; use \
                     banks == 0 for unlimited concurrency)",
                    self.banks
                )));
            }
        }
        Ok(())
    }
}

/// Which prefetch generators are active.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefetchConfig {
    /// Next-sequence (tagged next-line) hardware prefetcher.
    pub nsp: bool,
    /// NSP prefetch degree: sequential lines fetched per trigger. The
    /// paper's NSP is the classic tagged next-line scheme (degree 1);
    /// higher degrees are used by the aggressiveness ablation bench.
    pub nsp_degree: u32,
    /// Shadow-directory hardware prefetcher.
    pub sdp: bool,
    /// Stride (RPT) prefetcher — extension, off by default.
    pub stride: bool,
    /// Markov miss-correlation prefetcher (Charney & Reeves) — extension,
    /// off by default; shares the stride stats slot.
    pub correlation: bool,
    /// Honor software prefetch instructions from the workload.
    pub software: bool,
    /// Prefetch queue length (Table 1: 64).
    pub queue_len: usize,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig {
            nsp: true,
            nsp_degree: 1,
            sdp: true,
            stride: false,
            correlation: false,
            software: true,
            queue_len: 64,
        }
    }
}

impl PrefetchConfig {
    /// A configuration with every generator disabled (used for Table 2's
    /// prefetch-off miss-rate characterization).
    pub fn disabled() -> Self {
        PrefetchConfig {
            nsp: false,
            nsp_degree: 1,
            sdp: false,
            stride: false,
            correlation: false,
            software: false,
            queue_len: 64,
        }
    }

    /// True if any generator is active.
    pub fn any_enabled(&self) -> bool {
        self.nsp || self.sdp || self.stride || self.correlation || self.software
    }
}

/// Pollution-filter indexing scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FilterKind {
    /// No filtering: every prefetch is issued (the paper's baseline).
    None,
    /// Per-Address: history table indexed by prefetched line address (§4.1).
    Pa,
    /// Program-Counter: indexed by the trigger instruction's PC (§4.2).
    Pc,
    /// Tournament hybrid (extension): PA and PC tables side by side, with a
    /// PC-indexed chooser picking per trigger site — the natural follow-up
    /// to the paper's observation that PA and PC trade wins per benchmark.
    Hybrid,
    /// Hashed perceptron (extension, DESIGN.md §15): one small signed
    /// weight table per feature (trigger PC, line address, page offset,
    /// prefetch depth, global accuracy), summed against a threshold. The
    /// same storage budget as a counter table of `table_entries` ×
    /// `counter_bits` bits, trained on the same PIB/RIB eviction feedback.
    Perceptron,
}

impl FilterKind {
    /// Short label used in reports ("none" / "PA" / "PC").
    pub fn label(self) -> &'static str {
        match self {
            FilterKind::None => "none",
            FilterKind::Pa => "PA",
            FilterKind::Pc => "PC",
            FilterKind::Hybrid => "hybrid",
            FilterKind::Perceptron => "perceptron",
        }
    }
}

/// Initial state of the history table's counters — §5.3's "all prefetches
/// first mapped to the history table are assumed to be good and issued" is
/// the `WeaklyGood` choice; the alternatives quantify it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterInit {
    /// Counters start just above the threshold (the paper's choice):
    /// unseen prefetches are issued, and one bad outcome flips the entry.
    WeaklyGood,
    /// Counters start saturated good: unseen prefetches are issued and an
    /// entry needs two consecutive bad outcomes to flip.
    StronglyGood,
    /// Counters start just below the threshold: unseen prefetches are
    /// *rejected* until recovery or aliasing proves them useful.
    WeaklyBad,
}

/// Pollution-filter configuration (Table 1: 4K-entry, 1KB history table).
#[derive(Debug, Clone, PartialEq)]
pub struct FilterConfig {
    /// Indexing scheme.
    pub kind: FilterKind,
    /// History-table entries. Power of two. 4096 entries × 2 bits = 1KB.
    pub table_entries: usize,
    /// Saturating-counter width in bits (paper: 2).
    pub counter_bits: u8,
    /// Initial counter state (paper: weakly good).
    pub counter_init: CounterInit,
    /// Adaptive engagement (§5.2.1 "advanced features"): filter only when the
    /// observed prefetch accuracy over a sliding window falls below this
    /// threshold. `None` (the paper's main configuration) filters always.
    pub adaptive_accuracy_threshold: Option<f64>,
    /// Window length (evictions) for the adaptive accuracy estimate.
    pub adaptive_window: u32,
    /// Freshness window (in core cycles) for misprediction recovery: a
    /// demand miss must arrive within this long after the rejection to
    /// count as "the prefetch would have been referenced before eviction".
    /// `0` disables recovery — the strict, absorbing reading of the paper,
    /// kept as an ablation. See `ppf-filter`'s `recovery` module.
    pub recovery_window: u64,
    /// Give each prefetch source (NSP/SDP/stride/software) its own history
    /// table, splitting the same total storage budget four ways. An
    /// extension ablation (DESIGN.md §7): one source's mispredictions then
    /// cannot poison another source's counters for the same line/PC.
    pub split_by_source: bool,
    /// Keyed hash salt for the PA/PC index functions (DESIGN.md §12). `0`
    /// (the default) keeps the paper's plain XOR-fold hash bit-for-bit; any
    /// other value scrambles each 16-bit address half through a salt-derived
    /// affine permutation before folding, so an attacker who can compute the
    /// public hash cannot construct address sets that collide into a chosen
    /// table index. The salt is fixed per run (deterministic given the
    /// config), mirroring a per-boot hardware key register.
    pub hash_salt: u64,
    /// Split every history table into this many equal per-tenant partitions
    /// (DESIGN.md §12). `1` (the default) is the shared table of the paper;
    /// with `P > 1` a request from tenant `t` can only read and train the
    /// `t % P` partition, so one tenant's eviction feedback cannot saturate
    /// another tenant's counters. Power of two, at most [`MAX_TENANTS`].
    ///
    /// [`MAX_TENANTS`]: crate::prefetch::MAX_TENANTS
    pub tenant_partitions: usize,
}

impl Default for FilterConfig {
    fn default() -> Self {
        FilterConfig {
            kind: FilterKind::None,
            table_entries: 4096,
            counter_bits: 2,
            counter_init: CounterInit::WeaklyGood,
            adaptive_accuracy_threshold: None,
            adaptive_window: 1024,
            recovery_window: 400,
            split_by_source: false,
            hash_salt: 0,
            tenant_partitions: 1,
        }
    }
}

/// Victim cache between L1 and L2 (Jouppi) — ablation hardware for the
/// direct-mapped L1's conflict misses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VictimConfig {
    /// When true, L1 evictions pass through a small victim cache.
    pub enabled: bool,
    /// Fully-associative entries (Jouppi's sweet spot: 4-16).
    pub entries: usize,
}

impl Default for VictimConfig {
    fn default() -> Self {
        VictimConfig {
            enabled: false,
            entries: 8,
        }
    }
}

/// Dedicated fully-associative prefetch buffer (§5.5; Chen et al.).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferConfig {
    /// When true, prefetches fill the buffer instead of the L1.
    pub enabled: bool,
    /// Buffer entries (paper: 16, fully associative).
    pub entries: usize,
}

impl Default for BufferConfig {
    fn default() -> Self {
        BufferConfig {
            enabled: false,
            entries: 16,
        }
    }
}

/// Diagnostics passes — simulator-side instrumentation with no effect on
/// timing or on any architectural counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiagnosticsConfig {
    /// Classify every L1/L2 demand miss as compulsory/capacity/conflict by
    /// running shadow infinite-tag and fully-associative-tag directories
    /// alongside the real caches. Costs memory and time proportional to the
    /// touched-line count, so it is off by default and enabled by the
    /// calibration tooling (`figures calibrate`).
    pub classify_misses: bool,
}

/// Complete machine description — Table 1 of the paper plus the filter and
/// prefetch-buffer options.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Core pipeline parameters.
    pub core: CoreConfig,
    /// L1 data cache.
    pub l1: CacheConfig,
    /// L1 instruction cache (Table 1: "L1 I/D 8KB"). Instruction misses
    /// fetch through the same unified L2 and compete for its port.
    pub l1i: CacheConfig,
    /// Unified L2 cache.
    pub l2: CacheConfig,
    /// Main memory and bus.
    pub mem: MemConfig,
    /// Prefetch generators.
    pub prefetch: PrefetchConfig,
    /// Pollution filter.
    pub filter: FilterConfig,
    /// Optional dedicated prefetch buffer.
    pub buffer: BufferConfig,
    /// Optional victim cache (ablation).
    pub victim: VictimConfig,
    /// Diagnostics instrumentation (miss classification).
    pub diag: DiagnosticsConfig,
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl SystemConfig {
    /// The paper's default machine (Table 1): 8KB direct-mapped 1-cycle L1
    /// with 3 ports, 512KB 4-way 15-cycle single-ported L2, 150-cycle memory.
    pub fn paper_default() -> Self {
        SystemConfig {
            core: CoreConfig::default(),
            l1: CacheConfig {
                size_bytes: 8 * 1024,
                line_bytes: 32,
                ways: 1,
                hit_latency: 1,
                ports: 3,
            },
            l1i: CacheConfig {
                size_bytes: 8 * 1024,
                line_bytes: 32,
                ways: 1,
                hit_latency: 1,
                ports: 1,
            },
            l2: CacheConfig {
                size_bytes: 512 * 1024,
                line_bytes: 32,
                ways: 4,
                hit_latency: 15,
                ports: 1,
            },
            mem: MemConfig::default(),
            prefetch: PrefetchConfig::default(),
            filter: FilterConfig::default(),
            buffer: BufferConfig::default(),
            victim: VictimConfig::default(),
            diag: DiagnosticsConfig::default(),
        }
    }

    /// Enable the compulsory/capacity/conflict miss-classification pass.
    pub fn with_miss_classification(mut self) -> Self {
        self.diag.classify_misses = true;
        self
    }

    /// §5.2.2: 32KB L1 variant. The larger array is slower — 4-cycle hits.
    pub fn with_l1_32k(mut self) -> Self {
        self.l1.size_bytes = 32 * 1024;
        self.l1.hit_latency = 4;
        self
    }

    /// §5.2.1 comparison point: a 16KB L1 (2-cycle) with no filter.
    pub fn with_l1_16k(mut self) -> Self {
        self.l1.size_bytes = 16 * 1024;
        self.l1.hit_latency = 2;
        self
    }

    /// §5.4: vary the universal L1 port count. The paper charges 2-cycle hits
    /// for 4 ports and 3-cycle hits for 5 ports on the 8KB array.
    pub fn with_l1_ports(mut self, ports: usize) -> Self {
        self.l1.ports = ports;
        self.l1.hit_latency = match ports {
            0..=3 => 1,
            4 => 2,
            _ => 3,
        };
        self
    }

    /// Select the pollution-filter indexing scheme.
    pub fn with_filter(mut self, kind: FilterKind) -> Self {
        self.filter.kind = kind;
        self
    }

    /// §5.3: vary the history-table length.
    pub fn with_table_entries(mut self, entries: usize) -> Self {
        self.filter.table_entries = entries;
        self
    }

    /// Hardening (DESIGN.md §12): key the PA/PC hash with `salt`
    /// (`0` restores the plain, attacker-predictable hash).
    pub fn with_hash_salt(mut self, salt: u64) -> Self {
        self.filter.hash_salt = salt;
        self
    }

    /// Hardening (DESIGN.md §12): partition every history table into
    /// `partitions` per-tenant regions (`1` restores the shared table).
    pub fn with_tenant_partitions(mut self, partitions: usize) -> Self {
        self.filter.tenant_partitions = partitions;
        self
    }

    /// §5.5: enable the dedicated 16-entry prefetch buffer.
    pub fn with_prefetch_buffer(mut self) -> Self {
        self.buffer.enabled = true;
        self
    }

    /// Ablation: put a small victim cache between L1 and L2.
    pub fn with_victim_cache(mut self, entries: usize) -> Self {
        self.victim.enabled = true;
        self.victim.entries = entries;
        self
    }

    /// Validate all structural constraints.
    pub fn validate(&self) -> Result<(), PpfError> {
        self.l1.validate().map_err(|e| e.context("l1"))?;
        self.l1i.validate().map_err(|e| e.context("l1i"))?;
        self.l2.validate().map_err(|e| e.context("l2"))?;
        self.mem.validate().map_err(|e| e.context("mem"))?;
        if self.l1.line_bytes != self.l2.line_bytes {
            // Simplification shared with the paper's setup: both levels use
            // 32-byte lines, so no sub-line fill logic is modelled.
            return Err(PpfError::config_invalid("L1 and L2 line sizes must match"));
        }
        if !self.filter.table_entries.is_power_of_two() {
            return Err(PpfError::config_invalid(format!(
                "filter table entries {} not a power of two",
                self.filter.table_entries
            )));
        }
        if self.filter.counter_bits == 0 || self.filter.counter_bits > 8 {
            return Err(PpfError::config_invalid("counter_bits must be in 1..=8"));
        }
        if !self.core.branch.bimodal_entries.is_power_of_two()
            || !self.core.branch.btb_sets.is_power_of_two()
        {
            return Err(PpfError::config_invalid(
                "branch predictor tables must be powers of two",
            ));
        }
        if self.core.issue_width == 0 || self.core.rob_entries == 0 || self.core.lsq_entries == 0 {
            return Err(PpfError::config_invalid(
                "core widths/windows must be nonzero",
            ));
        }
        if self.filter.kind == FilterKind::Hybrid && self.filter.split_by_source {
            return Err(PpfError::config_invalid(
                "hybrid filter and split-by-source are mutually exclusive",
            ));
        }
        if self.filter.kind == FilterKind::Perceptron && self.filter.split_by_source {
            // The perceptron already separates evidence by feature; a
            // four-way table split would quarter every feature table.
            return Err(PpfError::config_invalid(
                "perceptron filter and split-by-source are mutually exclusive",
            ));
        }
        if !self.filter.tenant_partitions.is_power_of_two()
            || self.filter.tenant_partitions > crate::prefetch::MAX_TENANTS
        {
            return Err(PpfError::config_invalid(format!(
                "tenant_partitions {} must be a power of two in 1..={}",
                self.filter.tenant_partitions,
                crate::prefetch::MAX_TENANTS
            )));
        }
        if self.filter.tenant_partitions > 1
            && self.filter.table_entries < 4 * self.filter.tenant_partitions
        {
            // Each partition must keep at least a handful of counters, or
            // the partitioned filter degenerates into a single shared bit.
            return Err(PpfError::config_invalid(format!(
                "table_entries {} too small for {} tenant partitions",
                self.filter.table_entries, self.filter.tenant_partitions
            )));
        }
        if self.buffer.enabled && self.buffer.entries == 0 {
            return Err(PpfError::config_invalid(
                "prefetch buffer enabled with zero entries",
            ));
        }
        if self.victim.enabled && self.victim.entries == 0 {
            return Err(PpfError::config_invalid(
                "victim cache enabled with zero entries",
            ));
        }
        if self.prefetch.queue_len == 0 {
            return Err(PpfError::config_invalid(
                "prefetch queue length must be nonzero",
            ));
        }
        Ok(())
    }
}

json_struct!(BranchConfig {
    bimodal_entries,
    btb_sets,
    btb_ways,
    mispredict_penalty,
});

json_struct!(CoreConfig {
    fetch_width,
    issue_width,
    retire_width,
    rob_entries,
    lsq_entries,
    int_alus,
    fp_alus,
    int_latency,
    fp_latency,
    branch,
});

json_struct!(CacheConfig {
    size_bytes,
    line_bytes,
    ways,
    hit_latency,
    ports,
});

json_struct!(MemConfig {
    latency,
    bus_bytes,
    bus_cycle,
    banks,
    bank_busy,
});

json_struct!(PrefetchConfig {
    nsp,
    nsp_degree,
    sdp,
    stride,
    correlation,
    software,
    queue_len,
});

json_unit_enum!(FilterKind {
    None,
    Pa,
    Pc,
    Hybrid,
    Perceptron
});

json_unit_enum!(CounterInit {
    WeaklyGood,
    StronglyGood,
    WeaklyBad,
});

json_struct!(FilterConfig {
    kind,
    table_entries,
    counter_bits,
    counter_init,
    adaptive_accuracy_threshold,
    adaptive_window,
    recovery_window,
    split_by_source,
    hash_salt,
    tenant_partitions,
});

json_struct!(VictimConfig { enabled, entries });

json_struct!(BufferConfig { enabled, entries });

json_struct!(DiagnosticsConfig { classify_misses });

json_struct!(SystemConfig {
    core,
    l1,
    l1i,
    l2,
    mem,
    prefetch,
    filter,
    buffer,
    victim,
    diag,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table1() {
        let c = SystemConfig::paper_default();
        assert_eq!(c.core.issue_width, 8);
        assert_eq!(c.core.rob_entries, 128);
        assert_eq!(c.core.lsq_entries, 64);
        assert_eq!(c.core.branch.bimodal_entries, 2048);
        assert_eq!(c.core.branch.btb_sets, 4096);
        assert_eq!(c.core.branch.btb_ways, 4);
        assert_eq!(c.l1.size_bytes, 8 * 1024);
        assert_eq!(c.l1.line_bytes, 32);
        assert_eq!(c.l1.ways, 1);
        assert_eq!(c.l1.hit_latency, 1);
        assert_eq!(c.l1.ports, 3);
        assert_eq!(c.l2.size_bytes, 512 * 1024);
        assert_eq!(c.l2.ways, 4);
        assert_eq!(c.l2.hit_latency, 15);
        assert_eq!(c.l2.ports, 1);
        assert_eq!(c.mem.latency, 150);
        assert_eq!(c.mem.bus_bytes, 64);
        assert_eq!(c.prefetch.queue_len, 64);
        assert_eq!(c.filter.table_entries, 4096);
        assert_eq!(c.filter.counter_bits, 2);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn history_table_is_1kb() {
        let c = SystemConfig::paper_default();
        let bits = c.filter.table_entries * c.filter.counter_bits as usize;
        assert_eq!(bits / 8, 1024); // 1KB, as Table 1 states
    }

    #[test]
    fn l1_geometry() {
        let c = SystemConfig::paper_default();
        assert_eq!(c.l1.sets(), 256); // 8KB / 32B, direct-mapped
        assert_eq!(c.l1.lines(), 256);
        assert_eq!(c.l2.sets(), 4096); // 512KB / 32B / 4 ways
        assert_eq!(c.l2.lines(), 16384);
    }

    #[test]
    fn variants_follow_section_5() {
        let c = SystemConfig::paper_default().with_l1_32k();
        assert_eq!(c.l1.size_bytes, 32 * 1024);
        assert_eq!(c.l1.hit_latency, 4);
        assert!(c.validate().is_ok());

        let c = SystemConfig::paper_default().with_l1_ports(4);
        assert_eq!(c.l1.ports, 4);
        assert_eq!(c.l1.hit_latency, 2);
        let c = SystemConfig::paper_default().with_l1_ports(5);
        assert_eq!(c.l1.hit_latency, 3);

        let c = SystemConfig::paper_default().with_prefetch_buffer();
        assert!(c.buffer.enabled);
        assert_eq!(c.buffer.entries, 16);

        let c = SystemConfig::paper_default().with_l1_16k();
        assert_eq!(c.l1.size_bytes, 16 * 1024);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_geometry() {
        let mut c = SystemConfig::paper_default();
        c.l1.line_bytes = 48;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::paper_default();
        c.filter.table_entries = 1000;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::paper_default();
        c.l1.size_bytes = 8 * 1024 + 32; // 257 sets: not a power of two
        assert!(c.validate().is_err());

        let mut c = SystemConfig::paper_default();
        c.l2.line_bytes = 64;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::paper_default();
        c.filter.counter_bits = 0;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::paper_default();
        c.prefetch.queue_len = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_degenerate_bank_model() {
        // banks > 0 with bank_busy == 0 silently disables the bank
        // serialization the MLP ablation exists to measure — the config
        // layer must reject it before a MainMemory is ever built.
        let mut c = SystemConfig::paper_default();
        c.mem.banks = 4;
        c.mem.bank_busy = 0;
        let err = c.validate().expect_err("degenerate bank model accepted");
        assert_eq!(err.kind(), crate::PpfErrorKind::ConfigInvalid);
        assert!(err.to_string().contains("bank_busy"), "{err}");

        let mut c = SystemConfig::paper_default();
        c.mem.banks = 3;
        assert!(c.validate().is_err(), "non-power-of-two banks");

        let mut c = SystemConfig::paper_default();
        c.mem.bus_cycle = 0;
        assert!(c.validate().is_err(), "zero bus cycle");

        // banks == 0 (unlimited concurrency) stays valid whatever
        // bank_busy says — the field is simply unused.
        let mut c = SystemConfig::paper_default();
        c.mem.banks = 0;
        c.mem.bank_busy = 0;
        assert!(c.validate().is_ok());
        let mut c = SystemConfig::paper_default();
        c.mem.banks = 4;
        c.mem.bank_busy = 40;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_bounds_tenant_partitions() {
        let mut c = SystemConfig::paper_default();
        c.filter.tenant_partitions = 3;
        assert!(c.validate().is_err(), "non-power-of-two partitions");
        let mut c = SystemConfig::paper_default();
        c.filter.tenant_partitions = 8;
        assert!(c.validate().is_err(), "more partitions than tenants");
        let mut c = SystemConfig::paper_default().with_tenant_partitions(4);
        c.filter.table_entries = 8;
        assert!(c.validate().is_err(), "partitions starve the table");
        let c = SystemConfig::paper_default()
            .with_hash_salt(0xDEAD_BEEF)
            .with_tenant_partitions(4);
        assert!(c.validate().is_ok());
        assert_eq!(c.filter.hash_salt, 0xDEAD_BEEF);
        assert_eq!(c.filter.tenant_partitions, 4);
    }

    #[test]
    fn prefetch_disabled_helper() {
        let p = PrefetchConfig::disabled();
        assert!(!p.any_enabled());
        assert!(PrefetchConfig::default().any_enabled());
    }

    #[test]
    fn filter_kind_labels() {
        assert_eq!(FilterKind::None.label(), "none");
        assert_eq!(FilterKind::Pa.label(), "PA");
        assert_eq!(FilterKind::Pc.label(), "PC");
        assert_eq!(FilterKind::Hybrid.label(), "hybrid");
        assert_eq!(FilterKind::Perceptron.label(), "perceptron");
    }

    #[test]
    fn perceptron_rejects_split_by_source() {
        let mut c = SystemConfig::paper_default().with_filter(FilterKind::Perceptron);
        assert!(c.validate().is_ok());
        c.filter.split_by_source = true;
        assert!(c.validate().is_err());
    }

    #[test]
    fn json_round_trip() {
        use crate::json::{FromJson, ToJson};
        let c = SystemConfig::paper_default()
            .with_l1_32k()
            .with_filter(FilterKind::Pa)
            .with_miss_classification();
        let json = c.to_json_string();
        let back = SystemConfig::from_json_str(&json).unwrap();
        assert_eq!(back, c);
        // Pretty output parses to the same config.
        let back2 = SystemConfig::from_json_str(&c.to_json_pretty()).unwrap();
        assert_eq!(back2, c);
    }

    #[test]
    fn diagnostics_default_off() {
        let c = SystemConfig::paper_default();
        assert!(!c.diag.classify_misses);
        assert!(c.with_miss_classification().diag.classify_misses);
    }
}
