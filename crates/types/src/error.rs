//! Structured errors for the whole workspace.
//!
//! Every fallible layer of the experiment engine — config validation, cell
//! execution, the simulator watchdog, checkpoint I/O — reports a [`PpfError`]:
//! a machine-readable [`PpfErrorKind`] plus a human message and a chain of
//! context frames (innermost first) added as the error propagates outward.
//! Errors serialize through the in-repo JSON layer so grid runners and the
//! `figures` checkpoint appendix can persist and reload them losslessly.

use crate::json_unit_enum;
use std::fmt;

/// The failure taxonomy of the experiment engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PpfErrorKind {
    /// A [`SystemConfig`](crate::SystemConfig) violates a structural
    /// constraint (geometry, zero widths, incompatible options).
    ConfigInvalid,
    /// The prefetch-funnel conservation invariant failed: a proposed
    /// candidate is unaccounted for by the downstream stage counters.
    FunnelViolation,
    /// A grid cell panicked; the payload message is preserved.
    CellPanic,
    /// A run exceeded its cycle ceiling (instruction budget × worst-case
    /// CPI) without retiring its instruction target.
    WatchdogTimeout,
    /// The core stopped retiring instructions entirely for longer than the
    /// watchdog's stall window — a wedged pipeline, caught before it hangs
    /// the worker pool.
    ForwardProgressStall,
    /// A checkpoint file exists but cannot be parsed back into a report.
    CheckpointCorrupt,
    /// An instruction stream cannot be represented in the compact binary
    /// trace format (e.g. a PC beyond the record's 34-bit range).
    TraceEncoding,
    /// An operating-system I/O failure (checkpoint directory, report dump).
    Io,
    /// Sharded-sweep fragments or manifests that cannot be merged: schema
    /// version skew, mismatched sweep parameters, or overlapping coverage.
    ShardMismatch,
}

impl PpfErrorKind {
    /// Stable kebab-case label (used in rendered messages and logs).
    pub fn label(self) -> &'static str {
        match self {
            PpfErrorKind::ConfigInvalid => "config-invalid",
            PpfErrorKind::FunnelViolation => "funnel-violation",
            PpfErrorKind::CellPanic => "cell-panic",
            PpfErrorKind::WatchdogTimeout => "watchdog-timeout",
            PpfErrorKind::ForwardProgressStall => "forward-progress-stall",
            PpfErrorKind::CheckpointCorrupt => "checkpoint-corrupt",
            PpfErrorKind::TraceEncoding => "trace-encoding",
            PpfErrorKind::Io => "io",
            PpfErrorKind::ShardMismatch => "shard-mismatch",
        }
    }
}

json_unit_enum!(PpfErrorKind {
    ConfigInvalid,
    FunnelViolation,
    CellPanic,
    WatchdogTimeout,
    ForwardProgressStall,
    CheckpointCorrupt,
    TraceEncoding,
    Io,
    ShardMismatch,
});

/// A structured error: taxonomy kind, root-cause message, and a context
/// chain describing where the failure surfaced (innermost frame first).
#[derive(Debug, Clone, PartialEq)]
pub struct PpfError {
    /// Failure class.
    pub kind: PpfErrorKind,
    /// Root-cause description.
    pub message: String,
    /// Context frames, innermost first ("cell PA/mcf seed 42", ...).
    pub context: Vec<String>,
}

impl PpfError {
    /// A new error with an empty context chain.
    pub fn new(kind: PpfErrorKind, message: impl Into<String>) -> Self {
        PpfError {
            kind,
            message: message.into(),
            context: Vec::new(),
        }
    }

    /// Convenience constructor for [`PpfErrorKind::ConfigInvalid`].
    pub fn config_invalid(message: impl Into<String>) -> Self {
        Self::new(PpfErrorKind::ConfigInvalid, message)
    }

    /// Convenience constructor for [`PpfErrorKind::FunnelViolation`].
    pub fn funnel_violation(message: impl Into<String>) -> Self {
        Self::new(PpfErrorKind::FunnelViolation, message)
    }

    /// Convenience constructor for [`PpfErrorKind::CellPanic`].
    pub fn cell_panic(message: impl Into<String>) -> Self {
        Self::new(PpfErrorKind::CellPanic, message)
    }

    /// Convenience constructor for [`PpfErrorKind::WatchdogTimeout`].
    pub fn watchdog_timeout(message: impl Into<String>) -> Self {
        Self::new(PpfErrorKind::WatchdogTimeout, message)
    }

    /// Convenience constructor for [`PpfErrorKind::ForwardProgressStall`].
    pub fn forward_progress_stall(message: impl Into<String>) -> Self {
        Self::new(PpfErrorKind::ForwardProgressStall, message)
    }

    /// Convenience constructor for [`PpfErrorKind::CheckpointCorrupt`].
    pub fn checkpoint_corrupt(message: impl Into<String>) -> Self {
        Self::new(PpfErrorKind::CheckpointCorrupt, message)
    }

    /// Convenience constructor for [`PpfErrorKind::TraceEncoding`].
    pub fn trace_encoding(message: impl Into<String>) -> Self {
        Self::new(PpfErrorKind::TraceEncoding, message)
    }

    /// Convenience constructor for [`PpfErrorKind::Io`].
    pub fn io(message: impl Into<String>) -> Self {
        Self::new(PpfErrorKind::Io, message)
    }

    /// Convenience constructor for [`PpfErrorKind::ShardMismatch`].
    pub fn shard_mismatch(message: impl Into<String>) -> Self {
        Self::new(PpfErrorKind::ShardMismatch, message)
    }

    /// Append a context frame (outer layers call this as the error
    /// propagates, so the chain reads innermost → outermost).
    pub fn context(mut self, frame: impl Into<String>) -> Self {
        self.context.push(frame.into());
        self
    }

    /// The failure class.
    pub fn kind(&self) -> PpfErrorKind {
        self.kind
    }
}

impl fmt::Display for PpfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.label(), self.message)?;
        for frame in &self.context {
            write!(f, "; in {frame}")?;
        }
        Ok(())
    }
}

impl std::error::Error for PpfError {}

impl From<std::io::Error> for PpfError {
    fn from(e: std::io::Error) -> Self {
        PpfError::io(e.to_string())
    }
}

crate::json_struct!(PpfError {
    kind,
    message,
    context,
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{FromJson, ToJson};

    #[test]
    fn display_includes_kind_message_and_context() {
        let e = PpfError::watchdog_timeout("no retirement for 1000 cycles")
            .context("cell PA/mcf seed 42")
            .context("experiment fig4");
        let s = e.to_string();
        assert!(s.starts_with("watchdog-timeout: no retirement"), "{s}");
        assert!(s.contains("in cell PA/mcf seed 42"), "{s}");
        assert!(s.contains("in experiment fig4"), "{s}");
    }

    #[test]
    fn kind_labels_are_kebab_case() {
        assert_eq!(PpfErrorKind::ConfigInvalid.label(), "config-invalid");
        assert_eq!(PpfErrorKind::CellPanic.label(), "cell-panic");
        assert_eq!(
            PpfErrorKind::ForwardProgressStall.label(),
            "forward-progress-stall"
        );
        assert_eq!(
            PpfErrorKind::CheckpointCorrupt.label(),
            "checkpoint-corrupt"
        );
        assert_eq!(PpfErrorKind::TraceEncoding.label(), "trace-encoding");
        assert_eq!(PpfErrorKind::ShardMismatch.label(), "shard-mismatch");
    }

    #[test]
    fn json_round_trip() {
        let e = PpfError::cell_panic("injected fault")
            .context("cell no-filter/gzip seed 7")
            .context("grid fig1");
        let back = PpfError::from_json_str(&e.to_json_string()).unwrap();
        assert_eq!(back, e);
        // Pretty output parses to the same error.
        let back2 = PpfError::from_json_str(&e.to_json_pretty()).unwrap();
        assert_eq!(back2, e);
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: PpfError = io.into();
        assert_eq!(e.kind(), PpfErrorKind::Io);
        assert!(e.message.contains("gone"));
    }

    #[test]
    fn error_trait_object_compatible() {
        let e: Box<dyn std::error::Error> = Box::new(PpfError::io("disk on fire"));
        assert!(e.to_string().contains("disk on fire"));
    }
}
