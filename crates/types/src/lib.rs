//! Shared vocabulary for the prefetch-pollution-filter (PPF) simulator.
//!
//! This crate holds the types every other crate in the workspace agrees on:
//! addresses and cycles ([`addr`]), system configuration ([`config`]),
//! statistics counters ([`stats`]), prefetch provenance ([`prefetch`]) and a
//! small deterministic RNG ([`rng`]) so that simulation results are a pure
//! function of `(config, workload, seed)`.
//!
//! It deliberately has no dependency on the rest of the workspace and only a
//! `serde` dependency for config/report serialization.

#![warn(missing_docs)]

pub mod addr;
pub mod config;
pub mod prefetch;
pub mod rng;
pub mod stats;

pub use addr::{Addr, Cycle, LineAddr, Pc};
pub use config::{
    BranchConfig, BufferConfig, CacheConfig, CoreConfig, CounterInit, FilterConfig, FilterKind,
    MemConfig, PrefetchConfig, SystemConfig, VictimConfig,
};
pub use prefetch::{PrefetchOrigin, PrefetchRequest, PrefetchSource};
pub use rng::SplitMix64;
pub use stats::SimStats;
