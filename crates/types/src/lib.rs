//! Shared vocabulary for the prefetch-pollution-filter (PPF) simulator.
//!
//! This crate holds the types every other crate in the workspace agrees on:
//! addresses and cycles ([`addr`]), system configuration ([`config`]),
//! statistics counters ([`stats`]), prefetch provenance ([`prefetch`]) and a
//! small deterministic RNG ([`rng`]) so that simulation results are a pure
//! function of `(config, workload, seed)`.
//!
//! It deliberately has no dependency on the rest of the workspace and no
//! external dependencies at all: config/report serialization uses the
//! in-repo [`json`] module (the build environment has no crates.io mirror).

#![warn(missing_docs)]

pub mod addr;
pub mod config;
pub mod error;
pub mod json;
pub mod prefetch;
pub mod rng;
pub mod stats;
pub mod telemetry;

pub use addr::{Addr, Cycle, LineAddr, Pc};
pub use config::{
    BranchConfig, BufferConfig, CacheConfig, CoreConfig, CounterInit, DiagnosticsConfig,
    FilterConfig, FilterKind, MemConfig, PrefetchConfig, SystemConfig, VictimConfig,
};
pub use error::{PpfError, PpfErrorKind};
pub use json::{FromJson, JsonError, JsonValue, ToJson};
pub use prefetch::{
    tenant_of_addr, PrefetchOrigin, PrefetchRequest, PrefetchSource, MAX_PREFETCH_DEPTH,
    MAX_TENANTS, TENANT_ADDR_SHIFT,
};
pub use rng::SplitMix64;
pub use stats::{CacheStats, MissClass, PerSource, SimStats};
pub use telemetry::{IntervalRecord, IntervalSampler, JsonlSink, Registry, TelemetryConfig};
