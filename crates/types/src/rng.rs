//! Deterministic, splittable pseudo-random number generation.
//!
//! The simulator core must be a pure function of `(config, workload, seed)`,
//! so it does not use the `rand` crate (whose algorithms may change across
//! versions). Instead workloads draw from this small SplitMix64 generator —
//! the well-known Steele/Lea/Flood mixer — which is fast, has a single `u64`
//! of state, and supports *splitting*: deriving independent child streams so
//! each workload phase gets its own reproducible sequence.

/// SplitMix64 PRNG (Steele, Lea & Flood, "Fast splittable pseudorandom
/// number generators", OOPSLA 2014).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SplitMix64 {
    /// Create a generator from a seed. Equal seeds give equal streams.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }

    /// Derive an independent child generator. The parent advances by one
    /// step, so repeated splits give distinct children.
    #[inline]
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64 {
            state: mix64(self.next_u64()),
        }
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses the widening-multiply technique (Lemire) — no division, and bias
    /// is at most 2^-64 per draw, far below anything a cache simulation can
    /// observe.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0) is meaningless");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to \[0,1\]).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Pick a uniformly random element of a non-empty slice.
    #[inline]
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(12345);
        let mut b = SplitMix64::new(12345);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_children_are_independent_of_parent_continuation() {
        let mut parent = SplitMix64::new(99);
        let mut child = parent.split();
        // Child stream must not equal the parent's continuation.
        let c: Vec<u64> = (0..16).map(|_| child.next_u64()).collect();
        let p: Vec<u64> = (0..16).map(|_| parent.next_u64()).collect();
        assert_ne!(c, p);
    }

    #[test]
    fn repeated_splits_differ() {
        let mut parent = SplitMix64::new(7);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SplitMix64::new(42);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = SplitMix64::new(1234);
        let mut buckets = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            buckets[rng.below(8) as usize] += 1;
        }
        let expect = n / 8;
        for &b in &buckets {
            // 5% tolerance — generous for n=80k per-bucket ~10k.
            assert!((b as i64 - expect as i64).unsigned_abs() < expect as u64 / 20);
        }
    }

    #[test]
    fn range_is_inclusive() {
        let mut rng = SplitMix64::new(5);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            let v = rng.range(3, 6);
            assert!((3..=6).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 6;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SplitMix64::new(8);
        for _ in 0..1000 {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SplitMix64::new(11);
        for _ in 0..100 {
            assert!(!rng.chance(0.0));
            assert!(rng.chance(1.1)); // clamping behaviour: p>=1 always true
        }
    }

    #[test]
    fn chance_is_calibrated() {
        let mut rng = SplitMix64::new(21);
        let hits = (0..100_000).filter(|_| rng.chance(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn pick_covers_all_elements() {
        let mut rng = SplitMix64::new(3);
        let items = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..300 {
            let v = *rng.pick(&items);
            seen[(v / 10 - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
