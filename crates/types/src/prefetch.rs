//! Prefetch requests and provenance.
//!
//! Every in-flight prefetch carries *where it came from*: the line it
//! targets, the PC of the instruction that triggered it, and which generator
//! produced it. The pollution filter needs the line address (PA-based
//! indexing) and the trigger PC (PC-based indexing) both at issue time (table
//! lookup) and at eviction time (table update), so the provenance travels
//! with the cache line as [`PrefetchOrigin`] — the software analogue of the
//! "separate data path" for the PC that §4.2 of the paper describes.

use crate::addr::{LineAddr, Pc};
use crate::json_unit_enum;

/// Which generator produced a prefetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrefetchSource {
    /// Next-Sequence Prefetching: tagged next-line prefetch (Smith, 1982).
    Nsp,
    /// Shadow-Directory Prefetching (Pomerene et al., 1989).
    Sdp,
    /// Reference-prediction-table stride prefetcher (Chen & Baer, 1995).
    /// Extension beyond the paper, used in ablations.
    Stride,
    /// Compiler-inserted software prefetch instruction, identified in the LSQ.
    Software,
}

impl PrefetchSource {
    /// Stable index for per-source statistics arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            PrefetchSource::Nsp => 0,
            PrefetchSource::Sdp => 1,
            PrefetchSource::Stride => 2,
            PrefetchSource::Software => 3,
        }
    }

    /// Number of distinct sources (length of per-source stats arrays).
    pub const COUNT: usize = 4;

    /// All sources, in `index()` order.
    pub const ALL: [PrefetchSource; Self::COUNT] = [
        PrefetchSource::Nsp,
        PrefetchSource::Sdp,
        PrefetchSource::Stride,
        PrefetchSource::Software,
    ];

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            PrefetchSource::Nsp => "nsp",
            PrefetchSource::Sdp => "sdp",
            PrefetchSource::Stride => "stride",
            PrefetchSource::Software => "software",
        }
    }
}

json_unit_enum!(PrefetchSource {
    Nsp,
    Sdp,
    Stride,
    Software
});

/// A candidate prefetch emitted by a generator, before filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchRequest {
    /// Target cache line.
    pub line: LineAddr,
    /// PC of the triggering instruction (the software prefetch instruction
    /// itself, or the memory instruction that tripped a hardware prefetcher).
    pub trigger_pc: Pc,
    /// Generator that produced the request.
    pub source: PrefetchSource,
}

impl PrefetchRequest {
    /// Provenance record to attach to the cache line once the prefetch fills.
    #[inline]
    pub fn origin(&self) -> PrefetchOrigin {
        PrefetchOrigin {
            line: self.line,
            trigger_pc: self.trigger_pc,
            source: self.source,
        }
    }
}

/// Provenance stored with a prefetched cache line for eviction-time feedback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchOrigin {
    /// The line that was prefetched (PA-based filter index).
    pub line: LineAddr,
    /// The triggering PC (PC-based filter index).
    pub trigger_pc: Pc,
    /// Generator that produced the prefetch.
    pub source: PrefetchSource,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_indices_are_dense_and_distinct() {
        let mut seen = [false; PrefetchSource::COUNT];
        for s in PrefetchSource::ALL {
            assert!(!seen[s.index()], "duplicate index for {:?}", s);
            seen[s.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn all_is_in_index_order() {
        for (i, s) in PrefetchSource::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn origin_copies_request_fields() {
        let req = PrefetchRequest {
            line: LineAddr(77),
            trigger_pc: 0x4000,
            source: PrefetchSource::Sdp,
        };
        let o = req.origin();
        assert_eq!(o.line, req.line);
        assert_eq!(o.trigger_pc, req.trigger_pc);
        assert_eq!(o.source, req.source);
    }

    #[test]
    fn names_are_unique() {
        let names: Vec<_> = PrefetchSource::ALL.iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
