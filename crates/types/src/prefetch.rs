//! Prefetch requests and provenance.
//!
//! Every in-flight prefetch carries *where it came from*: the line it
//! targets, the PC of the instruction that triggered it, and which generator
//! produced it. The pollution filter needs the line address (PA-based
//! indexing) and the trigger PC (PC-based indexing) both at issue time (table
//! lookup) and at eviction time (table update), so the provenance travels
//! with the cache line as [`PrefetchOrigin`] — the software analogue of the
//! "separate data path" for the PC that §4.2 of the paper describes.

use crate::addr::{Addr, LineAddr, Pc};
use crate::json_unit_enum;

/// Maximum number of distinct tenants the machine distinguishes. Sized for
/// the adversarial multi-program experiments (victim + aggressor, with two
/// spare IDs); per-tenant attribution arrays are indexed `0..MAX_TENANTS`.
pub const MAX_TENANTS: usize = 4;

/// Bit position, in a *byte* address, of the tenant ID field. The
/// multi-program interleave workloads place each tenant in its own
/// address-space region by offsetting every address (and PC) of tenant `t`
/// by `t << TENANT_ADDR_SHIFT`; everything below that bit is ordinary
/// workload footprint. Single-program workloads never set these bits, so
/// they are all tenant 0 and behave exactly as before.
pub const TENANT_ADDR_SHIFT: u32 = 41;

/// Saturation bound for [`PrefetchRequest::depth`] when it feeds a filter
/// feature table: depths beyond this are indistinguishable ("very deep").
pub const MAX_PREFETCH_DEPTH: u8 = 15;

/// The tenant ID encoded in a byte address (0 for every pre-existing
/// workload). This is the *only* place a tenant is ever derived; from here
/// it is threaded explicitly through [`PrefetchRequest`] →
/// [`PrefetchOrigin`] → cache-line provenance → eviction feedback.
#[inline]
pub fn tenant_of_addr(addr: Addr) -> u8 {
    ((addr >> TENANT_ADDR_SHIFT) as usize & (MAX_TENANTS - 1)) as u8
}

/// Which generator produced a prefetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrefetchSource {
    /// Next-Sequence Prefetching: tagged next-line prefetch (Smith, 1982).
    Nsp,
    /// Shadow-Directory Prefetching (Pomerene et al., 1989).
    Sdp,
    /// Reference-prediction-table stride prefetcher (Chen & Baer, 1995).
    /// Extension beyond the paper, used in ablations.
    Stride,
    /// Compiler-inserted software prefetch instruction, identified in the LSQ.
    Software,
}

impl PrefetchSource {
    /// Stable index for per-source statistics arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            PrefetchSource::Nsp => 0,
            PrefetchSource::Sdp => 1,
            PrefetchSource::Stride => 2,
            PrefetchSource::Software => 3,
        }
    }

    /// Number of distinct sources (length of per-source stats arrays).
    pub const COUNT: usize = 4;

    /// All sources, in `index()` order.
    pub const ALL: [PrefetchSource; Self::COUNT] = [
        PrefetchSource::Nsp,
        PrefetchSource::Sdp,
        PrefetchSource::Stride,
        PrefetchSource::Software,
    ];

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            PrefetchSource::Nsp => "nsp",
            PrefetchSource::Sdp => "sdp",
            PrefetchSource::Stride => "stride",
            PrefetchSource::Software => "software",
        }
    }
}

json_unit_enum!(PrefetchSource {
    Nsp,
    Sdp,
    Stride,
    Software
});

/// A candidate prefetch emitted by a generator, before filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchRequest {
    /// Target cache line.
    pub line: LineAddr,
    /// PC of the triggering instruction (the software prefetch instruction
    /// itself, or the memory instruction that tripped a hardware prefetcher).
    pub trigger_pc: Pc,
    /// Generator that produced the request.
    pub source: PrefetchSource,
    /// Tenant whose demand traffic triggered the request (0 outside the
    /// multi-program experiments). Assigned once at the memory-system
    /// boundary from the triggering access's address region, then carried
    /// unchanged through filtering, queueing and the cache-line provenance
    /// so eviction feedback is charged to the tenant that caused it.
    pub tenant: u8,
    /// Prefetch depth: how far ahead of the triggering access this request
    /// reaches, in generator steps (degree-`d` NSP emits depths `1..=d`,
    /// SDP's shadow step is depth 1, software prefetches are depth 0).
    /// Deeper requests are more speculative; the perceptron filter uses the
    /// depth as a confidence feature (DESIGN.md §15). Clamped to
    /// [`MAX_PREFETCH_DEPTH`] when used as a feature.
    pub depth: u8,
}

impl PrefetchRequest {
    /// Provenance record to attach to the cache line once the prefetch fills.
    #[inline]
    pub fn origin(&self) -> PrefetchOrigin {
        PrefetchOrigin {
            line: self.line,
            trigger_pc: self.trigger_pc,
            source: self.source,
            tenant: self.tenant,
            depth: self.depth,
        }
    }
}

/// Provenance stored with a prefetched cache line for eviction-time feedback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchOrigin {
    /// The line that was prefetched (PA-based filter index).
    pub line: LineAddr,
    /// The triggering PC (PC-based filter index).
    pub trigger_pc: Pc,
    /// Generator that produced the prefetch.
    pub source: PrefetchSource,
    /// Tenant the prefetch is charged to (see [`PrefetchRequest::tenant`]).
    pub tenant: u8,
    /// Prefetch depth at issue (see [`PrefetchRequest::depth`]).
    pub depth: u8,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_indices_are_dense_and_distinct() {
        let mut seen = [false; PrefetchSource::COUNT];
        for s in PrefetchSource::ALL {
            assert!(!seen[s.index()], "duplicate index for {:?}", s);
            seen[s.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn all_is_in_index_order() {
        for (i, s) in PrefetchSource::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn origin_copies_request_fields() {
        let req = PrefetchRequest {
            line: LineAddr(77),
            trigger_pc: 0x4000,
            source: PrefetchSource::Sdp,
            tenant: 2,
            depth: 3,
        };
        let o = req.origin();
        assert_eq!(o.line, req.line);
        assert_eq!(o.trigger_pc, req.trigger_pc);
        assert_eq!(o.source, req.source);
        assert_eq!(o.tenant, req.tenant);
        assert_eq!(o.depth, req.depth);
    }

    #[test]
    fn tenant_derivation_matches_region_layout() {
        assert_eq!(tenant_of_addr(0), 0);
        assert_eq!(tenant_of_addr(0x3000_0000), 0, "ordinary workload region");
        for t in 0..MAX_TENANTS as u64 {
            let base = t << TENANT_ADDR_SHIFT;
            assert_eq!(tenant_of_addr(base), t as u8);
            assert_eq!(tenant_of_addr(base + 0x1234_5678), t as u8);
        }
        // IDs wrap modulo MAX_TENANTS rather than escaping the arrays.
        assert!((tenant_of_addr(u64::MAX) as usize) < MAX_TENANTS);
    }

    #[test]
    fn names_are_unique() {
        let names: Vec<_> = PrefetchSource::ALL.iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
