//! Addresses, program counters and cycle counts.
//!
//! The simulator works on byte addresses ([`Addr`]) but caches, prefetchers
//! and the pollution filter all operate on *cache-line* granularity, so the
//! line-number newtype [`LineAddr`] appears throughout the workspace. Keeping
//! it a distinct type prevents the classic off-by-a-shift bug of mixing byte
//! addresses and line numbers.

use crate::json::{FromJson, JsonError, JsonValue, ToJson};

/// A byte address in the simulated (flat, 64-bit) address space.
pub type Addr = u64;

/// A program-counter value. Instructions are 4 bytes (Alpha-style), so PCs
/// advance in steps of 4.
pub type Pc = u64;

/// A core-clock cycle count.
pub type Cycle = u64;

/// Size of one instruction in bytes; PCs advance by this much.
pub const INST_BYTES: u64 = 4;

/// A cache-line number: a byte address with the line-offset bits stripped.
///
/// `LineAddr` is produced by [`LineAddr::of`] given a line size and can be
/// converted back to the line's base byte address with
/// [`LineAddr::base_addr`]. The paper's *PA-based* filter indexes its history
/// table with exactly this value ("address with cache line offset bit
/// stripped", §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LineAddr(pub u64);

impl ToJson for LineAddr {
    fn to_json(&self) -> JsonValue {
        JsonValue::UInt(self.0)
    }
}

impl FromJson for LineAddr {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        u64::from_json(v).map(LineAddr)
    }
}

impl LineAddr {
    /// The line containing byte address `addr` for `line_bytes`-byte lines.
    ///
    /// `line_bytes` must be a power of two (asserted in debug builds).
    #[inline]
    pub fn of(addr: Addr, line_bytes: u32) -> Self {
        debug_assert!(line_bytes.is_power_of_two(), "line size must be 2^k");
        LineAddr(addr >> line_bytes.trailing_zeros())
    }

    /// Base byte address of this line.
    #[inline]
    pub fn base_addr(self, line_bytes: u32) -> Addr {
        self.0 << line_bytes.trailing_zeros()
    }

    /// The immediately following line (what NSP prefetches).
    #[inline]
    pub fn next(self) -> Self {
        LineAddr(self.0.wrapping_add(1))
    }

    /// The immediately preceding line.
    #[inline]
    pub fn prev(self) -> Self {
        LineAddr(self.0.wrapping_sub(1))
    }

    /// Offset this line number by a signed count of lines.
    #[inline]
    pub fn offset(self, delta: i64) -> Self {
        LineAddr(self.0.wrapping_add(delta as u64))
    }
}

impl std::fmt::Display for LineAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_of_strips_offset_bits() {
        assert_eq!(LineAddr::of(0, 32), LineAddr(0));
        assert_eq!(LineAddr::of(31, 32), LineAddr(0));
        assert_eq!(LineAddr::of(32, 32), LineAddr(1));
        assert_eq!(LineAddr::of(0x1234, 64), LineAddr(0x1234 >> 6));
    }

    #[test]
    fn base_addr_round_trips() {
        for &lb in &[16u32, 32, 64, 128] {
            for addr in [0u64, 5, 1000, 0xdead_beef] {
                let line = LineAddr::of(addr, lb);
                assert!(line.base_addr(lb) <= addr);
                assert!(addr < line.base_addr(lb) + lb as u64);
            }
        }
    }

    #[test]
    fn next_prev_are_inverses() {
        let l = LineAddr(42);
        assert_eq!(l.next().prev(), l);
        assert_eq!(l.prev().next(), l);
        assert_eq!(l.next(), LineAddr(43));
    }

    #[test]
    fn offset_matches_repeated_next() {
        let l = LineAddr(100);
        assert_eq!(l.offset(3), l.next().next().next());
        assert_eq!(l.offset(-1), l.prev());
        assert_eq!(l.offset(0), l);
    }

    #[test]
    fn wrapping_at_extremes() {
        assert_eq!(LineAddr(u64::MAX).next(), LineAddr(0));
        assert_eq!(LineAddr(0).prev(), LineAddr(u64::MAX));
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(format!("{}", LineAddr(255)), "L0xff");
    }
}
