//! Simulation statistics.
//!
//! A single flat [`SimStats`] struct is threaded through the simulator; every
//! component increments plain `u64` counters (no locks, no maps — the
//! hot-path hygiene rule from the workspace design notes). Derived metrics
//! (IPC, miss rates, the paper's good/bad prefetch census) are computed on
//! demand by accessor methods so the raw counters stay unambiguous.

use crate::error::PpfError;
use crate::json_struct;
use crate::prefetch::PrefetchSource;

/// Per-prefetch-source counters, indexed by [`PrefetchSource::index`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerSource {
    /// Counter array, one slot per [`PrefetchSource`].
    pub by_source: [u64; PrefetchSource::COUNT],
}

impl PerSource {
    /// Increment the counter for `source`.
    #[inline]
    pub fn bump(&mut self, source: PrefetchSource) {
        self.by_source[source.index()] += 1;
    }

    /// Counter value for `source`.
    #[inline]
    pub fn get(&self, source: PrefetchSource) -> u64 {
        self.by_source[source.index()]
    }

    /// Sum over all sources.
    #[inline]
    pub fn total(&self) -> u64 {
        self.by_source.iter().sum()
    }

    /// Element-wise accumulate.
    pub fn merge(&mut self, other: &PerSource) {
        for (a, b) in self.by_source.iter_mut().zip(other.by_source.iter()) {
            *a += b;
        }
    }

    /// Element-wise difference against an `earlier` snapshot of the same
    /// monotonic counters (interval telemetry's per-sample delta).
    pub fn delta(&self, earlier: &PerSource) -> PerSource {
        let mut out = PerSource::default();
        for (slot, (now, then)) in out
            .by_source
            .iter_mut()
            .zip(self.by_source.iter().zip(earlier.by_source.iter()))
        {
            *slot = now - then;
        }
        out
    }
}

json_struct!(PerSource { by_source });

/// Demand misses of one cache level split by cause — the classic "three Cs"
/// taxonomy (Hill). Populated only when
/// [`DiagnosticsConfig::classify_misses`](crate::config::DiagnosticsConfig)
/// is on; all-zero otherwise.
///
/// * **compulsory** — the line was never referenced before (an infinite
///   cache would still miss).
/// * **capacity** — a fully-associative cache of the same capacity would
///   also miss (the working set simply does not fit).
/// * **conflict** — only the real set-indexed cache misses (set conflicts
///   under limited associativity).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MissClass {
    /// First-ever reference to the line (cold miss).
    pub compulsory: u64,
    /// Miss that a fully-associative same-size cache would share.
    pub capacity: u64,
    /// Miss caused purely by set conflicts.
    pub conflict: u64,
}

impl MissClass {
    /// Total classified misses.
    #[inline]
    pub fn total(&self) -> u64 {
        self.compulsory + self.capacity + self.conflict
    }

    /// Fraction of classified misses that are compulsory; 0 when empty.
    pub fn compulsory_frac(&self) -> f64 {
        self.frac(self.compulsory)
    }

    /// Fraction of classified misses that are capacity; 0 when empty.
    pub fn capacity_frac(&self) -> f64 {
        self.frac(self.capacity)
    }

    /// Fraction of classified misses that are conflict; 0 when empty.
    pub fn conflict_frac(&self) -> f64 {
        self.frac(self.conflict)
    }

    fn frac(&self, part: u64) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            part as f64 / total as f64
        }
    }

    /// Element-wise accumulate.
    pub fn merge(&mut self, o: &MissClass) {
        self.compulsory += o.compulsory;
        self.capacity += o.capacity;
        self.conflict += o.conflict;
    }
}

json_struct!(MissClass {
    compulsory,
    capacity,
    conflict,
});

/// Counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand (load/store) accesses.
    pub demand_accesses: u64,
    /// Demand accesses that hit.
    pub demand_hits: u64,
    /// Demand accesses that missed.
    pub demand_misses: u64,
    /// Lines filled by prefetches (prefetch traffic into this level).
    pub prefetch_fills: u64,
    /// Demand hits that landed on a still-unreferenced prefetched line
    /// (the moment RIB transitions 0 -> 1).
    pub prefetch_first_use: u64,
    /// Evictions of any line.
    pub evictions: u64,
    /// Evictions of dirty lines (writebacks).
    pub writebacks: u64,
    /// Demand misses split compulsory/capacity/conflict (diagnostics pass;
    /// all-zero unless miss classification is enabled in the config).
    pub miss_class: MissClass,
}

impl CacheStats {
    /// Demand miss rate in \[0,1\]; 0 when no accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.demand_accesses == 0 {
            0.0
        } else {
            self.demand_misses as f64 / self.demand_accesses as f64
        }
    }

    /// Element-wise accumulate.
    pub fn merge(&mut self, o: &CacheStats) {
        self.demand_accesses += o.demand_accesses;
        self.demand_hits += o.demand_hits;
        self.demand_misses += o.demand_misses;
        self.prefetch_fills += o.prefetch_fills;
        self.prefetch_first_use += o.prefetch_first_use;
        self.evictions += o.evictions;
        self.writebacks += o.writebacks;
        self.miss_class.merge(&o.miss_class);
    }
}

json_struct!(CacheStats {
    demand_accesses,
    demand_hits,
    demand_misses,
    prefetch_fills,
    prefetch_first_use,
    evictions,
    writebacks,
    miss_class,
});

/// All counters for one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Retired instructions.
    pub instructions: u64,
    /// Elapsed core cycles.
    pub cycles: u64,
    /// Retired loads.
    pub loads: u64,
    /// Retired stores.
    pub stores: u64,
    /// Retired branches.
    pub branches: u64,
    /// Mispredicted branches.
    pub branch_mispredicts: u64,

    /// L1 data cache counters.
    pub l1: CacheStats,
    /// L1 instruction cache counters (demand = fetch-group lookups).
    pub l1i: CacheStats,
    /// L2 unified cache counters.
    pub l2: CacheStats,

    /// Prefetches proposed by each generator (before duplicate squash and
    /// before the pollution filter).
    pub prefetches_proposed: PerSource,
    /// Duplicates squashed (target already in cache / queue / in flight).
    pub prefetches_duplicate: PerSource,
    /// Prefetches rejected by the pollution filter.
    pub prefetches_filtered: PerSource,
    /// Prefetches dropped because the prefetch queue was full.
    pub prefetches_queue_overflow: PerSource,
    /// Prefetches actually issued to the L1 (or prefetch buffer).
    pub prefetches_issued: PerSource,
    /// Issued prefetches whose line actually filled the L1 (or the
    /// dedicated prefetch buffer). Issued-but-not-filled prefetches found
    /// their line already resident by fill time.
    pub prefetches_filled: PerSource,

    /// Good prefetches: prefetched lines referenced before eviction
    /// (RIB = 1 at replacement, or referenced lines drained at end of run).
    pub prefetch_good: PerSource,
    /// Bad prefetches: prefetched lines evicted without any reference.
    pub prefetch_bad: PerSource,

    /// Cycles on which at least one demand access had to wait because all L1
    /// ports were taken.
    pub l1_port_conflict_cycles: u64,
    /// Demand accesses delayed by port contention (each retry counts once).
    pub demand_port_retries: u64,
    /// Prefetch-queue pops delayed by port contention.
    pub prefetch_port_retries: u64,

    /// Bytes moved over the L2<->memory bus.
    pub bus_bytes: u64,
    /// Core cycles the bus spent busy.
    pub bus_busy_cycles: u64,

    /// Prefetch-buffer hits (only with the §5.5 dedicated buffer).
    pub buffer_hits: u64,
    /// Prefetch-buffer evictions of never-referenced lines.
    pub buffer_bad_evictions: u64,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Total good prefetches over all sources.
    pub fn good_total(&self) -> u64 {
        self.prefetch_good.total()
    }

    /// Total bad prefetches over all sources.
    pub fn bad_total(&self) -> u64 {
        self.prefetch_bad.total()
    }

    /// The paper's bad/good prefetch ratio (Figures 5, 8, 13, 15).
    /// Returns 0 when there are no good prefetches and no bad ones; returns
    /// `f64::INFINITY` when good = 0 but bad > 0.
    pub fn bad_good_ratio(&self) -> f64 {
        let good = self.good_total();
        let bad = self.bad_total();
        if bad == 0 {
            0.0
        } else if good == 0 {
            f64::INFINITY
        } else {
            bad as f64 / good as f64
        }
    }

    /// Fraction of issued prefetches that were good, in \[0,1\].
    pub fn prefetch_accuracy(&self) -> f64 {
        let done = self.good_total() + self.bad_total();
        if done == 0 {
            0.0
        } else {
            self.good_total() as f64 / done as f64
        }
    }

    /// L1 traffic from prefetches relative to demand traffic (Figure 2's
    /// "prefetch access to normal access ratio").
    pub fn prefetch_traffic_ratio(&self) -> f64 {
        if self.l1.demand_accesses == 0 {
            0.0
        } else {
            self.prefetches_issued.total() as f64 / self.l1.demand_accesses as f64
        }
    }

    /// Total prefetches that survived duplicate squash and reached the filter.
    pub fn prefetches_considered(&self) -> u64 {
        self.prefetches_issued.total()
            + self.prefetches_filtered.total()
            + self.prefetches_queue_overflow.total()
    }

    /// The prefetch-funnel conservation invariant: every generated candidate
    /// is accounted for by exactly one downstream outcome —
    ///
    /// ```text
    /// proposed = duplicate-squashed + filter-rejected + overflow-dropped
    ///          + port-issued + still-queued
    /// ```
    ///
    /// `queue_backlog` is the number of candidates sitting in the prefetch
    /// queue at the moment of the check (0 after a final drain). Returns
    /// `Ok(())` or a [`PpfError::funnel_violation`] describing the imbalance.
    pub fn check_funnel_conservation(&self, queue_backlog: u64) -> Result<(), PpfError> {
        let proposed = self.prefetches_proposed.total();
        let accounted = self.prefetches_duplicate.total()
            + self.prefetches_filtered.total()
            + self.prefetches_queue_overflow.total()
            + self.prefetches_issued.total()
            + queue_backlog;
        if proposed == accounted {
            Ok(())
        } else {
            Err(PpfError::funnel_violation(format!(
                "prefetch funnel leak: proposed {} != accounted {} \
                 (duplicate {} + filtered {} + overflow {} + issued {} + queued {})",
                proposed,
                accounted,
                self.prefetches_duplicate.total(),
                self.prefetches_filtered.total(),
                self.prefetches_queue_overflow.total(),
                self.prefetches_issued.total(),
                queue_backlog,
            )))
        }
    }

    /// Funnel stage counts in flow order, for reports: `(stage name, count)`.
    pub fn funnel_stages(&self) -> [(&'static str, u64); 8] {
        [
            ("proposed", self.prefetches_proposed.total()),
            ("duplicate-squashed", self.prefetches_duplicate.total()),
            ("filter-rejected", self.prefetches_filtered.total()),
            ("overflow-dropped", self.prefetches_queue_overflow.total()),
            ("issued", self.prefetches_issued.total()),
            ("filled", self.prefetches_filled.total()),
            ("referenced", self.good_total()),
            ("polluted", self.bad_total()),
        ]
    }

    /// Element-wise accumulate (used when aggregating sweep shards).
    pub fn merge(&mut self, o: &SimStats) {
        self.instructions += o.instructions;
        self.cycles += o.cycles;
        self.loads += o.loads;
        self.stores += o.stores;
        self.branches += o.branches;
        self.branch_mispredicts += o.branch_mispredicts;
        self.l1.merge(&o.l1);
        self.l1i.merge(&o.l1i);
        self.l2.merge(&o.l2);
        self.prefetches_proposed.merge(&o.prefetches_proposed);
        self.prefetches_duplicate.merge(&o.prefetches_duplicate);
        self.prefetches_filtered.merge(&o.prefetches_filtered);
        self.prefetches_queue_overflow
            .merge(&o.prefetches_queue_overflow);
        self.prefetches_issued.merge(&o.prefetches_issued);
        self.prefetches_filled.merge(&o.prefetches_filled);
        self.prefetch_good.merge(&o.prefetch_good);
        self.prefetch_bad.merge(&o.prefetch_bad);
        self.l1_port_conflict_cycles += o.l1_port_conflict_cycles;
        self.demand_port_retries += o.demand_port_retries;
        self.prefetch_port_retries += o.prefetch_port_retries;
        self.bus_bytes += o.bus_bytes;
        self.bus_busy_cycles += o.bus_busy_cycles;
        self.buffer_hits += o.buffer_hits;
        self.buffer_bad_evictions += o.buffer_bad_evictions;
    }
}

json_struct!(SimStats {
    instructions,
    cycles,
    loads,
    stores,
    branches,
    branch_mispredicts,
    l1,
    l1i,
    l2,
    prefetches_proposed,
    prefetches_duplicate,
    prefetches_filtered,
    prefetches_queue_overflow,
    prefetches_issued,
    prefetches_filled,
    prefetch_good,
    prefetch_bad,
    l1_port_conflict_cycles,
    demand_port_retries,
    prefetch_port_retries,
    bus_bytes,
    bus_busy_cycles,
    buffer_hits,
    buffer_bad_evictions,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_source_bump_and_total() {
        let mut p = PerSource::default();
        p.bump(PrefetchSource::Nsp);
        p.bump(PrefetchSource::Nsp);
        p.bump(PrefetchSource::Software);
        assert_eq!(p.get(PrefetchSource::Nsp), 2);
        assert_eq!(p.get(PrefetchSource::Sdp), 0);
        assert_eq!(p.get(PrefetchSource::Software), 1);
        assert_eq!(p.total(), 3);
    }

    #[test]
    fn per_source_merge() {
        let mut a = PerSource::default();
        let mut b = PerSource::default();
        a.bump(PrefetchSource::Nsp);
        b.bump(PrefetchSource::Nsp);
        b.bump(PrefetchSource::Sdp);
        a.merge(&b);
        assert_eq!(a.get(PrefetchSource::Nsp), 2);
        assert_eq!(a.get(PrefetchSource::Sdp), 1);
    }

    #[test]
    fn miss_rate_handles_zero() {
        let c = CacheStats::default();
        assert_eq!(c.miss_rate(), 0.0);
        let c = CacheStats {
            demand_accesses: 100,
            demand_misses: 25,
            ..Default::default()
        };
        assert!((c.miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ipc() {
        let s = SimStats {
            instructions: 300,
            cycles: 100,
            ..Default::default()
        };
        assert!((s.ipc() - 3.0).abs() < 1e-12);
        assert_eq!(SimStats::default().ipc(), 0.0);
    }

    #[test]
    fn bad_good_ratio_edge_cases() {
        let mut s = SimStats::default();
        assert_eq!(s.bad_good_ratio(), 0.0);
        s.prefetch_bad.bump(PrefetchSource::Nsp);
        assert!(s.bad_good_ratio().is_infinite());
        s.prefetch_good.bump(PrefetchSource::Nsp);
        s.prefetch_good.bump(PrefetchSource::Nsp);
        assert!((s.bad_good_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn accuracy() {
        let mut s = SimStats::default();
        assert_eq!(s.prefetch_accuracy(), 0.0);
        for _ in 0..3 {
            s.prefetch_good.bump(PrefetchSource::Sdp);
        }
        s.prefetch_bad.bump(PrefetchSource::Sdp);
        assert!((s.prefetch_accuracy() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SimStats {
            instructions: 10,
            cycles: 5,
            ..Default::default()
        };
        let b = SimStats {
            instructions: 20,
            cycles: 15,
            bus_bytes: 64,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.instructions, 30);
        assert_eq!(a.cycles, 20);
        assert_eq!(a.bus_bytes, 64);
    }

    #[test]
    fn traffic_ratio() {
        let mut s = SimStats::default();
        s.l1.demand_accesses = 100;
        for _ in 0..41 {
            s.prefetches_issued.bump(PrefetchSource::Nsp);
        }
        assert!((s.prefetch_traffic_ratio() - 0.41).abs() < 1e-12);
    }

    #[test]
    fn miss_class_fractions_and_merge() {
        let mut m = MissClass {
            compulsory: 1,
            capacity: 2,
            conflict: 1,
        };
        assert_eq!(m.total(), 4);
        assert!((m.compulsory_frac() - 0.25).abs() < 1e-12);
        assert!((m.capacity_frac() - 0.5).abs() < 1e-12);
        assert!((m.conflict_frac() - 0.25).abs() < 1e-12);
        m.merge(&MissClass {
            compulsory: 3,
            capacity: 0,
            conflict: 1,
        });
        assert_eq!(m.compulsory, 4);
        assert_eq!(m.conflict, 2);
        assert_eq!(MissClass::default().compulsory_frac(), 0.0);
    }

    #[test]
    fn funnel_conservation_detects_leaks() {
        let mut s = SimStats::default();
        for _ in 0..10 {
            s.prefetches_proposed.bump(PrefetchSource::Nsp);
        }
        for _ in 0..3 {
            s.prefetches_duplicate.bump(PrefetchSource::Nsp);
        }
        for _ in 0..2 {
            s.prefetches_filtered.bump(PrefetchSource::Nsp);
        }
        for _ in 0..4 {
            s.prefetches_issued.bump(PrefetchSource::Nsp);
        }
        // 3 + 2 + 0 + 4 = 9 accounted, 1 still queued: balanced.
        assert!(s.check_funnel_conservation(1).is_ok());
        // Wrong backlog: leak reported with the stage breakdown.
        let err = s.check_funnel_conservation(0).unwrap_err();
        assert_eq!(err.kind(), crate::PpfErrorKind::FunnelViolation);
        assert!(err.to_string().contains("proposed 10"), "{err}");
    }

    #[test]
    fn funnel_stages_are_in_flow_order() {
        let mut s = SimStats::default();
        s.prefetches_proposed.bump(PrefetchSource::Sdp);
        s.prefetches_filled.bump(PrefetchSource::Sdp);
        let stages = s.funnel_stages();
        assert_eq!(stages[0], ("proposed", 1));
        assert_eq!(stages[5], ("filled", 1));
        assert_eq!(stages.len(), 8);
    }

    #[test]
    fn stats_json_round_trip() {
        use crate::json::{FromJson, ToJson};
        let mut s = SimStats {
            instructions: 1_000,
            cycles: 2_000,
            ..Default::default()
        };
        s.l1.demand_accesses = 500;
        s.l1.miss_class.conflict = 7;
        s.prefetches_issued.bump(PrefetchSource::Stride);
        let back = SimStats::from_json_str(&s.to_json_string()).unwrap();
        assert_eq!(back, s);
    }
}
