//! Simulation statistics.
//!
//! A single flat [`SimStats`] struct is threaded through the simulator; every
//! component increments plain `u64` counters (no locks, no maps — the
//! hot-path hygiene rule from the workspace design notes). Derived metrics
//! (IPC, miss rates, the paper's good/bad prefetch census) are computed on
//! demand by accessor methods so the raw counters stay unambiguous.

use crate::prefetch::PrefetchSource;
use serde::{Deserialize, Serialize};

/// Per-prefetch-source counters, indexed by [`PrefetchSource::index`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerSource {
    /// Counter array, one slot per [`PrefetchSource`].
    pub by_source: [u64; PrefetchSource::COUNT],
}

impl PerSource {
    /// Increment the counter for `source`.
    #[inline]
    pub fn bump(&mut self, source: PrefetchSource) {
        self.by_source[source.index()] += 1;
    }

    /// Counter value for `source`.
    #[inline]
    pub fn get(&self, source: PrefetchSource) -> u64 {
        self.by_source[source.index()]
    }

    /// Sum over all sources.
    #[inline]
    pub fn total(&self) -> u64 {
        self.by_source.iter().sum()
    }

    /// Element-wise accumulate.
    pub fn merge(&mut self, other: &PerSource) {
        for (a, b) in self.by_source.iter_mut().zip(other.by_source.iter()) {
            *a += b;
        }
    }
}

/// Counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Demand (load/store) accesses.
    pub demand_accesses: u64,
    /// Demand accesses that hit.
    pub demand_hits: u64,
    /// Demand accesses that missed.
    pub demand_misses: u64,
    /// Lines filled by prefetches (prefetch traffic into this level).
    pub prefetch_fills: u64,
    /// Demand hits that landed on a still-unreferenced prefetched line
    /// (the moment RIB transitions 0 -> 1).
    pub prefetch_first_use: u64,
    /// Evictions of any line.
    pub evictions: u64,
    /// Evictions of dirty lines (writebacks).
    pub writebacks: u64,
}

impl CacheStats {
    /// Demand miss rate in \[0,1\]; 0 when no accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.demand_accesses == 0 {
            0.0
        } else {
            self.demand_misses as f64 / self.demand_accesses as f64
        }
    }

    /// Element-wise accumulate.
    pub fn merge(&mut self, o: &CacheStats) {
        self.demand_accesses += o.demand_accesses;
        self.demand_hits += o.demand_hits;
        self.demand_misses += o.demand_misses;
        self.prefetch_fills += o.prefetch_fills;
        self.prefetch_first_use += o.prefetch_first_use;
        self.evictions += o.evictions;
        self.writebacks += o.writebacks;
    }
}

/// All counters for one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Retired instructions.
    pub instructions: u64,
    /// Elapsed core cycles.
    pub cycles: u64,
    /// Retired loads.
    pub loads: u64,
    /// Retired stores.
    pub stores: u64,
    /// Retired branches.
    pub branches: u64,
    /// Mispredicted branches.
    pub branch_mispredicts: u64,

    /// L1 data cache counters.
    pub l1: CacheStats,
    /// L1 instruction cache counters (demand = fetch-group lookups).
    pub l1i: CacheStats,
    /// L2 unified cache counters.
    pub l2: CacheStats,

    /// Prefetches proposed by each generator (before duplicate squash and
    /// before the pollution filter).
    pub prefetches_proposed: PerSource,
    /// Duplicates squashed (target already in cache / queue / in flight).
    pub prefetches_duplicate: PerSource,
    /// Prefetches rejected by the pollution filter.
    pub prefetches_filtered: PerSource,
    /// Prefetches dropped because the prefetch queue was full.
    pub prefetches_queue_overflow: PerSource,
    /// Prefetches actually issued to the L1 (or prefetch buffer).
    pub prefetches_issued: PerSource,

    /// Good prefetches: prefetched lines referenced before eviction
    /// (RIB = 1 at replacement, or referenced lines drained at end of run).
    pub prefetch_good: PerSource,
    /// Bad prefetches: prefetched lines evicted without any reference.
    pub prefetch_bad: PerSource,

    /// Cycles on which at least one demand access had to wait because all L1
    /// ports were taken.
    pub l1_port_conflict_cycles: u64,
    /// Demand accesses delayed by port contention (each retry counts once).
    pub demand_port_retries: u64,
    /// Prefetch-queue pops delayed by port contention.
    pub prefetch_port_retries: u64,

    /// Bytes moved over the L2<->memory bus.
    pub bus_bytes: u64,
    /// Core cycles the bus spent busy.
    pub bus_busy_cycles: u64,

    /// Prefetch-buffer hits (only with the §5.5 dedicated buffer).
    pub buffer_hits: u64,
    /// Prefetch-buffer evictions of never-referenced lines.
    pub buffer_bad_evictions: u64,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Total good prefetches over all sources.
    pub fn good_total(&self) -> u64 {
        self.prefetch_good.total()
    }

    /// Total bad prefetches over all sources.
    pub fn bad_total(&self) -> u64 {
        self.prefetch_bad.total()
    }

    /// The paper's bad/good prefetch ratio (Figures 5, 8, 13, 15).
    /// Returns 0 when there are no good prefetches and no bad ones; returns
    /// `f64::INFINITY` when good = 0 but bad > 0.
    pub fn bad_good_ratio(&self) -> f64 {
        let good = self.good_total();
        let bad = self.bad_total();
        if bad == 0 {
            0.0
        } else if good == 0 {
            f64::INFINITY
        } else {
            bad as f64 / good as f64
        }
    }

    /// Fraction of issued prefetches that were good, in \[0,1\].
    pub fn prefetch_accuracy(&self) -> f64 {
        let done = self.good_total() + self.bad_total();
        if done == 0 {
            0.0
        } else {
            self.good_total() as f64 / done as f64
        }
    }

    /// L1 traffic from prefetches relative to demand traffic (Figure 2's
    /// "prefetch access to normal access ratio").
    pub fn prefetch_traffic_ratio(&self) -> f64 {
        if self.l1.demand_accesses == 0 {
            0.0
        } else {
            self.prefetches_issued.total() as f64 / self.l1.demand_accesses as f64
        }
    }

    /// Total prefetches that survived duplicate squash and reached the filter.
    pub fn prefetches_considered(&self) -> u64 {
        self.prefetches_issued.total()
            + self.prefetches_filtered.total()
            + self.prefetches_queue_overflow.total()
    }

    /// Element-wise accumulate (used when aggregating sweep shards).
    pub fn merge(&mut self, o: &SimStats) {
        self.instructions += o.instructions;
        self.cycles += o.cycles;
        self.loads += o.loads;
        self.stores += o.stores;
        self.branches += o.branches;
        self.branch_mispredicts += o.branch_mispredicts;
        self.l1.merge(&o.l1);
        self.l1i.merge(&o.l1i);
        self.l2.merge(&o.l2);
        self.prefetches_proposed.merge(&o.prefetches_proposed);
        self.prefetches_duplicate.merge(&o.prefetches_duplicate);
        self.prefetches_filtered.merge(&o.prefetches_filtered);
        self.prefetches_queue_overflow
            .merge(&o.prefetches_queue_overflow);
        self.prefetches_issued.merge(&o.prefetches_issued);
        self.prefetch_good.merge(&o.prefetch_good);
        self.prefetch_bad.merge(&o.prefetch_bad);
        self.l1_port_conflict_cycles += o.l1_port_conflict_cycles;
        self.demand_port_retries += o.demand_port_retries;
        self.prefetch_port_retries += o.prefetch_port_retries;
        self.bus_bytes += o.bus_bytes;
        self.bus_busy_cycles += o.bus_busy_cycles;
        self.buffer_hits += o.buffer_hits;
        self.buffer_bad_evictions += o.buffer_bad_evictions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_source_bump_and_total() {
        let mut p = PerSource::default();
        p.bump(PrefetchSource::Nsp);
        p.bump(PrefetchSource::Nsp);
        p.bump(PrefetchSource::Software);
        assert_eq!(p.get(PrefetchSource::Nsp), 2);
        assert_eq!(p.get(PrefetchSource::Sdp), 0);
        assert_eq!(p.get(PrefetchSource::Software), 1);
        assert_eq!(p.total(), 3);
    }

    #[test]
    fn per_source_merge() {
        let mut a = PerSource::default();
        let mut b = PerSource::default();
        a.bump(PrefetchSource::Nsp);
        b.bump(PrefetchSource::Nsp);
        b.bump(PrefetchSource::Sdp);
        a.merge(&b);
        assert_eq!(a.get(PrefetchSource::Nsp), 2);
        assert_eq!(a.get(PrefetchSource::Sdp), 1);
    }

    #[test]
    fn miss_rate_handles_zero() {
        let c = CacheStats::default();
        assert_eq!(c.miss_rate(), 0.0);
        let c = CacheStats {
            demand_accesses: 100,
            demand_misses: 25,
            ..Default::default()
        };
        assert!((c.miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ipc() {
        let s = SimStats {
            instructions: 300,
            cycles: 100,
            ..Default::default()
        };
        assert!((s.ipc() - 3.0).abs() < 1e-12);
        assert_eq!(SimStats::default().ipc(), 0.0);
    }

    #[test]
    fn bad_good_ratio_edge_cases() {
        let mut s = SimStats::default();
        assert_eq!(s.bad_good_ratio(), 0.0);
        s.prefetch_bad.bump(PrefetchSource::Nsp);
        assert!(s.bad_good_ratio().is_infinite());
        s.prefetch_good.bump(PrefetchSource::Nsp);
        s.prefetch_good.bump(PrefetchSource::Nsp);
        assert!((s.bad_good_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn accuracy() {
        let mut s = SimStats::default();
        assert_eq!(s.prefetch_accuracy(), 0.0);
        for _ in 0..3 {
            s.prefetch_good.bump(PrefetchSource::Sdp);
        }
        s.prefetch_bad.bump(PrefetchSource::Sdp);
        assert!((s.prefetch_accuracy() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SimStats {
            instructions: 10,
            cycles: 5,
            ..Default::default()
        };
        let b = SimStats {
            instructions: 20,
            cycles: 15,
            bus_bytes: 64,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.instructions, 30);
        assert_eq!(a.cycles, 20);
        assert_eq!(a.bus_bytes, 64);
    }

    #[test]
    fn traffic_ratio() {
        let mut s = SimStats::default();
        s.l1.demand_accesses = 100;
        for _ in 0..41 {
            s.prefetches_issued.bump(PrefetchSource::Nsp);
        }
        assert!((s.prefetch_traffic_ratio() - 0.41).abs() < 1e-12);
    }
}
