//! Property-based tests for the shared vocabulary types.

use ppf_types::{LineAddr, PrefetchSource, SimStats, SplitMix64};
use proptest::prelude::*;

/// A stats block whose funnel counters are balanced by construction:
/// `proposed` equals the sum of every downstream outcome plus `backlog`.
/// The outcome counts are scattered across prefetch sources so the check's
/// per-source totals are exercised, not just the grand total.
fn balanced_funnel(dup: u64, filt: u64, over: u64, issued: u64, backlog: u64) -> SimStats {
    let mut s = SimStats::default();
    let n = PrefetchSource::COUNT;
    for (i, (per, count)) in [
        (&mut s.prefetches_duplicate, dup),
        (&mut s.prefetches_filtered, filt),
        (&mut s.prefetches_queue_overflow, over),
        (&mut s.prefetches_issued, issued),
    ]
    .into_iter()
    .enumerate()
    {
        per.by_source[i % n] = count;
    }
    let proposed = dup + filt + over + issued + backlog;
    // Spread proposals over two sources to keep totals, not slots, balanced.
    s.prefetches_proposed.by_source[0] = proposed / 2;
    s.prefetches_proposed.by_source[1 % n] += proposed - proposed / 2;
    s
}

proptest! {
    #[test]
    fn line_addr_round_trip(addr in any::<u64>(), shift in 4u32..12) {
        let line_bytes = 1u32 << shift;
        let line = LineAddr::of(addr, line_bytes);
        let base = line.base_addr(line_bytes);
        // The base is line-aligned and contains the address.
        prop_assert_eq!(base % line_bytes as u64, 0);
        prop_assert!(base <= addr);
        prop_assert!(addr - base < line_bytes as u64);
        // Round trip: the base maps to the same line.
        prop_assert_eq!(LineAddr::of(base, line_bytes), line);
    }

    #[test]
    fn line_offset_is_additive(line in any::<u64>(), a in -1000i64..1000, b in -1000i64..1000) {
        let l = LineAddr(line);
        prop_assert_eq!(l.offset(a).offset(b), l.offset(a.wrapping_add(b)));
    }

    #[test]
    fn rng_below_always_in_bounds(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..32 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    #[test]
    fn rng_range_inclusive(seed in any::<u64>(), lo in 0u64..1000, width in 0u64..1000) {
        let hi = lo + width;
        let mut rng = SplitMix64::new(seed);
        for _ in 0..32 {
            let v = rng.range(lo, hi);
            prop_assert!((lo..=hi).contains(&v));
        }
    }

    #[test]
    fn rng_streams_reproducible(seed in any::<u64>()) {
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        prop_assert_eq!(va, vb);
    }

    #[test]
    fn rng_split_children_independent(seed in any::<u64>()) {
        let mut parent = SplitMix64::new(seed);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        // Children differ from each other in their first few outputs.
        let a: Vec<u64> = (0..4).map(|_| c1.next_u64()).collect();
        let b: Vec<u64> = (0..4).map(|_| c2.next_u64()).collect();
        prop_assert_ne!(a, b);
    }

    #[test]
    fn stats_merge_is_commutative_on_counters(
        a_insts in 0u64..1_000_000, a_cycles in 0u64..1_000_000,
        b_insts in 0u64..1_000_000, b_cycles in 0u64..1_000_000,
    ) {
        let mk = |i, c| SimStats { instructions: i, cycles: c, ..Default::default() };
        let mut ab = mk(a_insts, a_cycles);
        ab.merge(&mk(b_insts, b_cycles));
        let mut ba = mk(b_insts, b_cycles);
        ba.merge(&mk(a_insts, a_cycles));
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn funnel_conservation_accepts_any_balanced_split(
        dup in 0u64..100_000,
        filt in 0u64..100_000,
        over in 0u64..100_000,
        issued in 0u64..100_000,
        backlog in 0u64..64,
    ) {
        let s = balanced_funnel(dup, filt, over, issued, backlog);
        prop_assert!(s.check_funnel_conservation(backlog).is_ok());
    }

    #[test]
    fn funnel_conservation_rejects_any_leak(
        dup in 0u64..100_000,
        filt in 0u64..100_000,
        over in 0u64..100_000,
        issued in 0u64..100_000,
        backlog in 0u64..64,
        leak in 1u64..10_000,
    ) {
        // A candidate that was proposed but never reached any outcome —
        // exactly the bug class the debug-build check exists to catch.
        let mut s = balanced_funnel(dup, filt, over, issued, backlog);
        s.prefetches_proposed.by_source[0] += leak;
        let err = s.check_funnel_conservation(backlog).unwrap_err();
        prop_assert!(err.to_string().contains("funnel leak"), "{}", err);
        // And the dual: an outcome that was never proposed.
        let mut s = balanced_funnel(dup, filt, over, issued, backlog);
        s.prefetches_issued.by_source[0] += leak;
        prop_assert!(s.check_funnel_conservation(backlog).is_err());
    }

    #[test]
    fn funnel_conservation_survives_merge(
        a in 0u64..50_000, b in 0u64..50_000, c in 0u64..50_000,
        d in 0u64..50_000, back_a in 0u64..64, back_b in 0u64..64,
    ) {
        // Aggregating two balanced shards (as run_grid_seeds does) stays
        // balanced when the backlogs are summed.
        let mut x = balanced_funnel(a, b, c, d, back_a);
        let y = balanced_funnel(d, c, b, a, back_b);
        x.merge(&y);
        prop_assert!(x.check_funnel_conservation(back_a + back_b).is_ok());
    }

    #[test]
    fn ipc_is_finite_and_nonnegative(insts in 0u64..u32::MAX as u64, cycles in 0u64..u32::MAX as u64) {
        let s = SimStats { instructions: insts, cycles, ..Default::default() };
        let ipc = s.ipc();
        prop_assert!(ipc.is_finite());
        prop_assert!(ipc >= 0.0);
    }
}
