//! Property-based tests for the shared vocabulary types.

use ppf_types::{LineAddr, SimStats, SplitMix64};
use proptest::prelude::*;

proptest! {
    #[test]
    fn line_addr_round_trip(addr in any::<u64>(), shift in 4u32..12) {
        let line_bytes = 1u32 << shift;
        let line = LineAddr::of(addr, line_bytes);
        let base = line.base_addr(line_bytes);
        // The base is line-aligned and contains the address.
        prop_assert_eq!(base % line_bytes as u64, 0);
        prop_assert!(base <= addr);
        prop_assert!(addr - base < line_bytes as u64);
        // Round trip: the base maps to the same line.
        prop_assert_eq!(LineAddr::of(base, line_bytes), line);
    }

    #[test]
    fn line_offset_is_additive(line in any::<u64>(), a in -1000i64..1000, b in -1000i64..1000) {
        let l = LineAddr(line);
        prop_assert_eq!(l.offset(a).offset(b), l.offset(a.wrapping_add(b)));
    }

    #[test]
    fn rng_below_always_in_bounds(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..32 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    #[test]
    fn rng_range_inclusive(seed in any::<u64>(), lo in 0u64..1000, width in 0u64..1000) {
        let hi = lo + width;
        let mut rng = SplitMix64::new(seed);
        for _ in 0..32 {
            let v = rng.range(lo, hi);
            prop_assert!((lo..=hi).contains(&v));
        }
    }

    #[test]
    fn rng_streams_reproducible(seed in any::<u64>()) {
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        prop_assert_eq!(va, vb);
    }

    #[test]
    fn rng_split_children_independent(seed in any::<u64>()) {
        let mut parent = SplitMix64::new(seed);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        // Children differ from each other in their first few outputs.
        let a: Vec<u64> = (0..4).map(|_| c1.next_u64()).collect();
        let b: Vec<u64> = (0..4).map(|_| c2.next_u64()).collect();
        prop_assert_ne!(a, b);
    }

    #[test]
    fn stats_merge_is_commutative_on_counters(
        a_insts in 0u64..1_000_000, a_cycles in 0u64..1_000_000,
        b_insts in 0u64..1_000_000, b_cycles in 0u64..1_000_000,
    ) {
        let mk = |i, c| SimStats { instructions: i, cycles: c, ..Default::default() };
        let mut ab = mk(a_insts, a_cycles);
        ab.merge(&mk(b_insts, b_cycles));
        let mut ba = mk(b_insts, b_cycles);
        ba.merge(&mk(a_insts, a_cycles));
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn ipc_is_finite_and_nonnegative(insts in 0u64..u32::MAX as u64, cycles in 0u64..u32::MAX as u64) {
        let s = SimStats { instructions: insts, cycles, ..Default::default() };
        let ipc = s.ipc();
        prop_assert!(ipc.is_finite());
        prop_assert!(ipc >= 0.0);
    }
}
