//! Property-based tests for the core model: structural bounds hold and no
//! instruction is ever lost or double-retired under arbitrary streams and
//! arbitrary (even hostile) memory-port behaviour.

use ppf_cpu::{Core, Inst, InstStream, MemoryPort, Op};
use ppf_types::{Addr, CoreConfig, Cycle, Pc, SimStats};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct ScriptedInst {
    kind: u8,
    addr: Addr,
    taken: bool,
    dep: u8,
}

fn scripted_inst() -> impl Strategy<Value = ScriptedInst> {
    (0u8..6, any::<u64>(), any::<bool>(), 0u8..16).prop_map(|(kind, addr, taken, dep)| {
        ScriptedInst {
            kind,
            addr: addr % (1 << 30),
            taken,
            dep,
        }
    })
}

struct ScriptStream {
    script: Vec<ScriptedInst>,
    pos: usize,
    pc: Pc,
}

impl InstStream for ScriptStream {
    fn next_inst(&mut self) -> Inst {
        let s = &self.script[self.pos % self.script.len()];
        self.pos += 1;
        self.pc += 4;
        let op = match s.kind {
            0 => Op::IntAlu,
            1 => Op::FpAlu,
            2 => Op::Load { addr: s.addr },
            3 => Op::Store { addr: s.addr },
            4 => Op::SoftPrefetch { addr: s.addr },
            _ => Op::Branch {
                taken: s.taken,
                target: 0x9000 + (s.addr % 64) * 4,
            },
        };
        Inst::with_dep(self.pc, op, s.dep)
    }
}

/// A memory port that accepts a configurable fraction of accesses with a
/// configurable latency (deterministic pattern, not random).
struct PatternedMemory {
    period: u64,
    reject_below: u64,
    latency: u64,
    calls: u64,
}

impl MemoryPort for PatternedMemory {
    fn try_access(&mut self, _pc: Pc, _addr: Addr, _s: bool, now: Cycle) -> Option<Cycle> {
        self.calls += 1;
        if self.calls % self.period < self.reject_below {
            None
        } else {
            Some(now + self.latency)
        }
    }
    fn software_prefetch(&mut self, _pc: Pc, _addr: Addr, _now: Cycle) {}
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rob_lsq_bounds_and_progress(
        script in prop::collection::vec(scripted_inst(), 4..64),
        period in 2u64..8,
        reject_below in 0u64..4,
        latency in 1u64..200,
    ) {
        prop_assume!(reject_below < period);
        let cfg = CoreConfig::default();
        let mut core = Core::new(&cfg);
        let mut stream = ScriptStream { script, pos: 0, pc: 0x1000 };
        let mut mem = PatternedMemory { period, reject_below, latency, calls: 0 };
        let mut stats = SimStats::default();
        let mut last_retired = 0u64;
        let mut stagnant = 0u32;
        for now in 1..30_000u64 {
            core.tick(now, &mut stream, &mut mem, &mut stats);
            prop_assert!(core.rob_occupancy() <= cfg.rob_entries);
            prop_assert!(core.lsq_occupancy() <= cfg.lsq_entries);
            if stats.instructions == last_retired {
                stagnant += 1;
                // Longest legitimate stall: memory latency plus redirect.
                prop_assert!(
                    stagnant < 2_000,
                    "no retirement for {stagnant} cycles at {now}"
                );
            } else {
                prop_assert!(stats.instructions > last_retired, "retirement went backwards");
                stagnant = 0;
                last_retired = stats.instructions;
            }
            if stats.instructions > 5_000 {
                break;
            }
        }
        prop_assert!(stats.instructions > 0, "core must make progress");
    }

    #[test]
    fn retired_class_counts_are_consistent(
        script in prop::collection::vec(scripted_inst(), 8..64),
    ) {
        let cfg = CoreConfig::default();
        let mut core = Core::new(&cfg);
        let mut stream = ScriptStream { script, pos: 0, pc: 0x1000 };
        let mut mem = ppf_cpu::core::PerfectMemory;
        let mut stats = SimStats::default();
        for now in 1..20_000u64 {
            core.tick(now, &mut stream, &mut mem, &mut stats);
            if stats.instructions > 4_000 {
                break;
            }
        }
        // Class counters never exceed the retired total. Mispredicts are
        // counted at dispatch while branch counts are counted at retire,
        // so in-flight instructions (bounded by the ROB) are the only
        // allowed excess.
        let classified = stats.loads + stats.stores + stats.branches;
        prop_assert!(classified <= stats.instructions);
        prop_assert!(stats.branch_mispredicts <= stats.branches + cfg.rob_entries as u64);
    }
}
