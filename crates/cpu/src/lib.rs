//! Cycle-driven out-of-order core timing model.
//!
//! A simplified `sim-outorder`-class core with the structures Table 1 of the
//! paper specifies: 8-wide fetch/issue/retire, a 128-entry reorder buffer, a
//! 64-entry load/store queue, a bimodal branch predictor with a 4-way BTB,
//! and universal L1 ports (owned by the memory side and exposed through the
//! [`MemoryPort`] trait, so the core crate stays independent of `ppf-mem`).
//!
//! The model captures the hazards the paper's results depend on:
//!
//! * **structural** — ROB/LSQ occupancy, per-cycle ALU slots, and L1 port
//!   rejection (a memory op that loses arbitration retries next cycle, so
//!   prefetch traffic steals demand bandwidth exactly as in §5.4);
//! * **data** — each instruction may depend on a recent producer and issues
//!   only once that producer's result is ready (load-use latency!);
//! * **control** — mispredicted branches stall fetch until they resolve
//!   plus a redirect penalty.
//!
//! It deliberately does not rename registers or replay memory ordering —
//! the paper's figures measure the *memory subsystem*, and all results are
//! relative to the same core model.

#![warn(missing_docs)]

pub mod branch;
pub mod core;
pub mod inst;

pub use crate::core::{Core, MemoryPort, TickOutcome};
pub use branch::{BranchPredictor, Btb};
pub use inst::{Inst, InstStream, Op};
