//! The out-of-order pipeline model.
//!
//! Per-cycle phases (in [`Core::tick`]):
//!
//! 1. **Retire** — up to `retire_width` completed instructions leave the
//!    ROB in program order.
//! 2. **Issue/execute** — any window instruction whose producer's result is
//!    ready may issue, bounded by `issue_width`, per-cycle ALU slots, and —
//!    for memory ops — L1 port arbitration through [`MemoryPort`]. A memory
//!    op denied a port stays in the window and retries next cycle.
//! 3. **Fetch/dispatch** — up to `fetch_width` instructions enter the ROB
//!    (and LSQ) unless fetch is squashed by an unresolved mispredicted
//!    branch; fetch resumes `mispredict_penalty` cycles after the branch
//!    resolves.
//!
//! Software prefetches occupy an LSQ slot and are handed to the memory side
//! via [`MemoryPort::software_prefetch`] at issue; being non-blocking, they
//! complete in one cycle and nothing ever depends on them.

use crate::branch::FrontEnd;
use crate::inst::{InstStream, Op};
use ppf_types::{Addr, CoreConfig, Cycle, Pc, SimStats};

/// The core's window into the memory hierarchy (implemented by `ppf-sim`).
pub trait MemoryPort {
    /// Try to start a demand access in cycle `now`. `None` means no L1 port
    /// was available this cycle (structural hazard: retry next cycle);
    /// otherwise the cycle the data is ready.
    fn try_access(&mut self, pc: Pc, addr: Addr, is_store: bool, now: Cycle) -> Option<Cycle>;

    /// Hand a software prefetch (identified in the LSQ) to the prefetch
    /// machinery. Non-blocking; consumes no L1 port at this point — the
    /// prefetch queue arbitrates for ports later.
    fn software_prefetch(&mut self, pc: Pc, addr: Addr, now: Cycle);

    /// Instruction-side access for the fetch of `pc` at cycle `now`:
    /// returns the cycle the instruction bytes are available (`now` on an
    /// I-cache hit). Default: a perfect I-cache.
    fn fetch_access(&mut self, pc: Pc, now: Cycle) -> Cycle {
        let _ = pc;
        now
    }
}

/// A no-op memory port: every access hits in one cycle. Used by unit tests
/// and by the "perfect cache" calibration mode.
#[derive(Debug, Default, Clone)]
pub struct PerfectMemory;

impl MemoryPort for PerfectMemory {
    fn try_access(&mut self, _pc: Pc, _addr: Addr, _is_store: bool, now: Cycle) -> Option<Cycle> {
        Some(now + 1)
    }
    fn software_prefetch(&mut self, _pc: Pc, _addr: Addr, _now: Cycle) {}
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// Not yet issued (producer or structural hazard pending).
    Waiting,
    /// Issued; the result is ready at `done_at` (retire also waits for it).
    Done,
}

#[derive(Debug, Clone, Copy)]
struct RobEntry {
    seq: u64,
    pc: Pc,
    op: Op,
    dep_seq: Option<u64>,
    stage: Stage,
    /// Result-ready cycle (valid once Executing/Done).
    done_at: Cycle,
    is_mem: bool,
    /// This entry is a mispredicted branch fetch is waiting on.
    blocks_fetch: bool,
}

/// What one call to [`Core::tick`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickOutcome {
    /// Instructions retired this cycle.
    pub retired: u64,
    /// Instructions issued (Waiting → Done) this cycle.
    pub issued: u64,
    /// Memory ops that failed port arbitration this cycle.
    pub port_rejections: u64,
    /// Fetch changed machine state this cycle: it dispatched, consumed the
    /// stream, or probed the I-cache (which advances hierarchy state).
    pub fetch_changed: bool,
}

impl TickOutcome {
    /// True when the tick provably changed nothing — no retirement, no
    /// issue, no port traffic (denied ports bump memory-side counters),
    /// no fetch-side state change. A quiescent tick is a pure function of
    /// the cycle number, which is what licenses the skip-ahead kernel to
    /// jump over the identical ticks that would follow.
    pub fn quiescent(&self) -> bool {
        self.retired == 0 && self.issued == 0 && self.port_rejections == 0 && !self.fetch_changed
    }
}

/// Fixed-capacity power-of-two ring backing the ROB — the ShadowLru slab
/// pattern applied to the pipeline window. The issue/wake-up scans index
/// entries randomly every cycle; a mask-indexed flat slab keeps those scans
/// free of the wrap branch `VecDeque` pays per access.
///
/// `gate` is a parallel hot array the per-cycle issue scan walks instead of
/// the 72-byte entries: one word per slot holding `u64::MAX` for a slot that
/// cannot issue (Done, or dead) and otherwise the entry's cached issue
/// wake-up bound — a sound lower bound on the first cycle the Waiting entry
/// could possibly issue (0 = unknown, try now). The bound is derived from
/// the producer's fixed `done_at` (exact) or, while the producer itself is
/// still Waiting, from the earliest cycle the producer could issue plus its
/// minimum latency (conservative). Purely an optimization: it changes how
/// fast the scan skips an entry, never *when* the entry issues.
#[derive(Clone)]
struct RobRing {
    buf: Box<[RobEntry]>,
    gate: Box<[u64]>,
    mask: usize,
    head: usize,
    len: usize,
}

impl RobRing {
    fn with_capacity(cap: usize) -> Self {
        let cap = cap.max(1).next_power_of_two();
        let empty = RobEntry {
            seq: 0,
            pc: 0,
            op: Op::IntAlu,
            dep_seq: None,
            stage: Stage::Done,
            done_at: 0,
            is_mem: false,
            blocks_fetch: false,
        };
        RobRing {
            buf: vec![empty; cap].into_boxed_slice(),
            gate: vec![u64::MAX; cap].into_boxed_slice(),
            mask: cap - 1,
            head: 0,
            len: 0,
        }
    }

    /// The issue-gate word for logical entry `i` (see the type docs).
    #[inline]
    fn gate(&self, i: usize) -> u64 {
        debug_assert!(i < self.len);
        self.gate[(self.head + i) & self.mask]
    }

    #[inline]
    fn set_gate(&mut self, i: usize, g: u64) {
        debug_assert!(i < self.len);
        self.gate[(self.head + i) & self.mask] = g;
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn front(&self) -> Option<&RobEntry> {
        (self.len > 0).then(|| &self.buf[self.head])
    }

    #[inline]
    fn get(&self, i: usize) -> Option<&RobEntry> {
        (i < self.len).then(|| &self.buf[(self.head + i) & self.mask])
    }

    /// Copy out entry `i` (entries are small and `Copy`; the issue loop
    /// reads the entry and only re-borrows mutably on a state change).
    #[inline]
    fn at(&self, i: usize) -> RobEntry {
        debug_assert!(i < self.len);
        self.buf[(self.head + i) & self.mask]
    }

    #[inline]
    fn at_mut(&mut self, i: usize) -> &mut RobEntry {
        debug_assert!(i < self.len);
        &mut self.buf[(self.head + i) & self.mask]
    }

    #[inline]
    fn pop_front(&mut self) {
        debug_assert!(self.len > 0);
        self.head = (self.head + 1) & self.mask;
        self.len -= 1;
    }

    /// Append a (Waiting) entry; its gate starts at 0 ("try now").
    #[inline]
    fn push_back(&mut self, e: RobEntry) {
        debug_assert!(self.len <= self.mask, "logical capacity exceeded");
        debug_assert!(e.stage == Stage::Waiting);
        let slot = (self.head + self.len) & self.mask;
        self.buf[slot] = e;
        self.gate[slot] = 0;
        self.len += 1;
    }
}

/// The out-of-order core.
#[derive(Clone)]
pub struct Core {
    cfg: CoreConfig,
    front: FrontEnd,
    rob: RobRing,
    /// Entries currently in [`Stage::Waiting`] — lets the issue scan stop
    /// as soon as every waiting entry has been visited instead of walking
    /// the (mostly-Done) tail of a stalled window.
    waiting: usize,
    /// Earliest cycle any waiting entry could possibly issue. When a full
    /// scan proves every waiting entry is bounded past `now` (their cached
    /// `ready_at` wake-ups), the scans until this cycle are skipped
    /// entirely — the dominant cost while the window drains a long miss.
    /// Conservative: any unbounded outcome (slot or port pressure, a new
    /// dispatch) resets it to "scan next cycle".
    issue_scan_at: Cycle,
    next_seq: u64,
    lsq_used: usize,
    /// Fetch is stalled until this cycle (mispredict redirect).
    fetch_resume_at: Cycle,
    /// Seq of the unresolved mispredicted branch fetch waits on, if any.
    fetch_blocked_on: Option<u64>,
    /// An instruction fetched from the stream but not yet dispatched
    /// (it arrived while the LSQ was full). Streams are consumed exactly
    /// once, so it is buffered rather than regenerated.
    pending: Option<crate::inst::Inst>,
}

impl Core {
    /// Build a core from its configuration.
    pub fn new(cfg: &CoreConfig) -> Self {
        Core {
            front: FrontEnd::new(&cfg.branch),
            rob: RobRing::with_capacity(cfg.rob_entries),
            waiting: 0,
            issue_scan_at: 0,
            cfg: cfg.clone(),
            next_seq: 0,
            lsq_used: 0,
            fetch_resume_at: 0,
            fetch_blocked_on: None,
            pending: None,
        }
    }

    /// Current ROB occupancy.
    pub fn rob_occupancy(&self) -> usize {
        self.rob.len()
    }

    /// Current LSQ occupancy.
    pub fn lsq_occupancy(&self) -> usize {
        self.lsq_used
    }

    /// If producer `seq`'s result is not ready at `now`, the earliest cycle
    /// its consumer could possibly issue — a sound lower bound the issue
    /// scan caches in the consumer's `ready_at`. `None` when the producer
    /// is ready (retired, absent, or complete by `now`).
    fn producer_gate(&self, seq: u64, now: Cycle) -> Option<Cycle> {
        let front_seq = match self.rob.front() {
            Some(e) => e.seq,
            None => return None, // empty ROB: everything older has retired
        };
        if seq < front_seq {
            return None; // already retired
        }
        let idx = (seq - front_seq) as usize;
        let p = self.rob.get(idx)?;
        match p.stage {
            Stage::Waiting => {
                // Producers precede consumers in the window, so this
                // producer was already covered by the current scan and
                // stayed Waiting: it issues no earlier than next cycle
                // (or its own cached bound) and completes no earlier
                // than that plus its op's minimum latency.
                let issue_at = (now + 1).max(self.rob.gate(idx));
                Some(issue_at.saturating_add(self.min_latency(p.op)))
            }
            Stage::Done if p.done_at > now => Some(p.done_at),
            Stage::Done => None,
        }
    }

    /// The smallest completion latency `op` can possibly have — used only
    /// for the conservative wake-up bound above. Memory timing lives below
    /// the core, so memory ops assume results could be ready the same
    /// cycle the access starts.
    fn min_latency(&self, op: Op) -> u64 {
        match op {
            Op::IntAlu | Op::Branch { .. } => self.cfg.int_latency,
            Op::FpAlu => self.cfg.fp_latency,
            Op::Load { .. } | Op::Store { .. } | Op::SoftPrefetch { .. } => 0,
        }
    }

    fn retire(&mut self, now: Cycle, stats: &mut SimStats) -> u64 {
        let mut retired = 0;
        while retired < self.cfg.retire_width as u64 {
            match self.rob.front() {
                Some(e) if e.stage == Stage::Done && e.done_at <= now => {
                    if e.is_mem {
                        self.lsq_used -= 1;
                    }
                    match e.op {
                        Op::Load { .. } => stats.loads += 1,
                        Op::Store { .. } => stats.stores += 1,
                        Op::Branch { .. } => stats.branches += 1,
                        _ => {}
                    }
                    self.rob.pop_front();
                    retired += 1;
                }
                _ => break,
            }
        }
        stats.instructions += retired;
        retired
    }

    fn issue(&mut self, now: Cycle, mem: &mut dyn MemoryPort) -> (u64, u64) {
        if self.waiting == 0 || now < self.issue_scan_at {
            // Every waiting entry is provably gated past `now` — the last
            // full scan bounded each one, so this cycle's scan would visit
            // them all and issue nothing.
            return (0, 0);
        }
        let mut issued = 0usize;
        let mut int_slots = self.cfg.int_alus;
        let mut fp_slots = self.cfg.fp_alus;
        let mut rejections = 0u64;
        let mut resolved_block: Option<u64> = None;
        // Waiting entries present when the scan starts; once they have all
        // been visited the (Done) tail of the window cannot issue anything.
        let waiting_at_start = self.waiting;
        let mut waiting_seen = 0usize;
        // If the scan leaves a wake-up bound on every entry still Waiting
        // when it ends, their minimum becomes the next scan cycle; any
        // unbounded outcome (slot or port pressure, an unvisited tail)
        // forces a re-scan next cycle.
        let mut all_bounded = true;
        let mut min_bound = Cycle::MAX;

        for i in 0..self.rob.len() {
            if waiting_seen == waiting_at_start {
                break;
            }
            if issued >= self.cfg.issue_width {
                all_bounded = false; // unvisited waiting entries may be ready
                break;
            }
            let g = self.rob.gate(i);
            if g == u64::MAX {
                continue; // cannot issue (Done)
            }
            waiting_seen += 1;
            if g > now {
                // Producer provably not ready yet (cached bound).
                min_bound = min_bound.min(g);
                continue;
            }
            let entry = self.rob.at(i);
            if let Some(dep) = entry.dep_seq {
                if let Some(bound) = self.producer_gate(dep, now) {
                    // Remember the earliest possible issue cycle so the
                    // scans until then skip this entry with one compare.
                    self.rob.set_gate(i, bound);
                    min_bound = min_bound.min(bound);
                    continue;
                }
            }
            let done_at = match entry.op {
                Op::IntAlu => {
                    if int_slots == 0 {
                        all_bounded = false;
                        continue;
                    }
                    int_slots -= 1;
                    now + self.cfg.int_latency
                }
                Op::FpAlu => {
                    if fp_slots == 0 {
                        all_bounded = false;
                        continue;
                    }
                    fp_slots -= 1;
                    now + self.cfg.fp_latency
                }
                Op::Branch { .. } => {
                    if int_slots == 0 {
                        all_bounded = false;
                        continue;
                    }
                    int_slots -= 1;
                    let done = now + self.cfg.int_latency;
                    if entry.blocks_fetch {
                        resolved_block = Some(entry.seq);
                        self.fetch_resume_at = done + self.front.mispredict_penalty;
                    }
                    done
                }
                Op::Load { addr } | Op::Store { addr } => {
                    let is_store = matches!(entry.op, Op::Store { .. });
                    match mem.try_access(entry.pc, addr, is_store, now) {
                        Some(ready) => ready,
                        None => {
                            rejections += 1;
                            all_bounded = false;
                            continue; // structural hazard: retry next cycle
                        }
                    }
                }
                Op::SoftPrefetch { addr } => {
                    mem.software_prefetch(entry.pc, addr, now);
                    now + 1
                }
            };
            let e = self.rob.at_mut(i);
            e.stage = Stage::Done;
            e.done_at = done_at;
            self.rob.set_gate(i, u64::MAX);
            self.waiting -= 1;
            issued += 1;
        }
        if let Some(seq) = resolved_block {
            if self.fetch_blocked_on == Some(seq) {
                self.fetch_blocked_on = None;
            }
        }
        self.issue_scan_at = if all_bounded { min_bound } else { now + 1 };
        (issued as u64, rejections)
    }

    fn fetch(
        &mut self,
        now: Cycle,
        stream: &mut dyn InstStream,
        mem: &mut dyn MemoryPort,
        stats: &mut SimStats,
    ) -> bool {
        if self.fetch_blocked_on.is_some() || now < self.fetch_resume_at {
            return false;
        }
        let mut changed = false;
        for _ in 0..self.cfg.fetch_width {
            if self.rob.len() >= self.cfg.rob_entries {
                break;
            }
            let inst = match self.pending.take() {
                Some(i) => i,
                None => {
                    changed = true; // the stream advanced
                    stream.next_inst()
                }
            };
            if inst.op.is_mem() && self.lsq_used >= self.cfg.lsq_entries {
                // LSQ full: hold the instruction and stall fetch this cycle.
                // A held instruction going back where it came from is the
                // one early exit that leaves the machine untouched.
                self.pending = Some(inst);
                break;
            }
            // Instruction-side access: an I-cache miss stalls fetch until
            // the line arrives from the unified L2 (or memory). The probe
            // itself advances hierarchy state, so from here on the cycle
            // counts as active whether or not the instruction dispatches.
            changed = true;
            let bytes_at = mem.fetch_access(inst.pc, now);
            if bytes_at > now {
                self.pending = Some(inst);
                self.fetch_resume_at = self.fetch_resume_at.max(bytes_at);
                break;
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            let mut blocks_fetch = false;
            if let Op::Branch { taken, target } = inst.op {
                let correct = self.front.predict_and_train(inst.pc, taken, target);
                if !correct {
                    stats.branch_mispredicts += 1;
                    blocks_fetch = true;
                }
            }
            if inst.op.is_mem() {
                self.lsq_used += 1;
            }
            let dep_seq = if inst.dep == 0 {
                None
            } else {
                seq.checked_sub(inst.dep as u64)
            };
            self.rob.push_back(RobEntry {
                seq,
                pc: inst.pc,
                op: inst.op,
                dep_seq,
                stage: Stage::Waiting,
                done_at: 0,
                is_mem: inst.op.is_mem(),
                blocks_fetch,
            });
            self.waiting += 1;
            // The new entry may be issue-ready immediately (issue runs
            // before fetch within a tick, so "immediately" is next cycle).
            self.issue_scan_at = self.issue_scan_at.min(now + 1);
            if blocks_fetch {
                self.fetch_blocked_on = Some(seq);
                break; // wrong-path fetch is not modelled
            }
        }
        changed
    }

    /// Advance the core by one cycle.
    pub fn tick(
        &mut self,
        now: Cycle,
        stream: &mut dyn InstStream,
        mem: &mut dyn MemoryPort,
        stats: &mut SimStats,
    ) -> TickOutcome {
        let retired = self.retire(now, stats);
        let (issued, port_rejections) = self.issue(now, mem);
        let fetch_changed = self.fetch(now, stream, mem, stats);
        TickOutcome {
            retired,
            issued,
            port_rejections,
            fetch_changed,
        }
    }

    /// The next cycle at which this core can possibly act, given that the
    /// current tick was quiescent ([`TickOutcome::quiescent`]) — the core's
    /// entry in the skip-ahead kernel's event calendar. Every cycle strictly
    /// between `now` and the returned cycle is provably another quiescent
    /// tick, so the kernel may jump straight to it.
    ///
    /// The calendar has three sources:
    ///
    /// * **Retire** — the ROB head completes at its `done_at`.
    /// * **Issue wake-up** — `issue_scan_at`, the issue scan's own gate: a
    ///   sound lower bound on the first cycle any waiting entry could
    ///   issue, kept current by every full scan. A quiescent tick cannot
    ///   move it (the scan either proved a bound past `now` for every
    ///   waiting entry, or there are no waiting entries at all).
    /// * **Fetch** — resumes at `fetch_resume_at` unless structurally gated
    ///   (unresolved mispredicted branch, full ROB, LSQ-full pending memory
    ///   op); every gate is lifted only by an issue or retire event, which
    ///   the calendar already contains.
    ///
    /// Events in the past are clamped to `now + 1` (the conservative "act
    /// next cycle"), so the kernel falls back to plain stepping rather than
    /// ever jumping backwards. A bound that proves merely "not before X"
    /// rather than "acts at X" only shortens jumps, never skips an active
    /// cycle: landing on a still-quiescent cycle re-computes the calendar
    /// and jumps again.
    pub fn next_event_cycle(&self, now: Cycle) -> Option<Cycle> {
        let soon = now + 1;
        let mut next: Option<Cycle> = None;
        let consider = |next: &mut Option<Cycle>, at: Cycle| {
            let at = at.max(soon);
            *next = Some(next.map_or(at, |n| n.min(at)));
        };
        if let Some(front) = self.rob.front() {
            if front.stage == Stage::Done {
                consider(&mut next, front.done_at);
            }
        }
        if self.waiting > 0 {
            consider(&mut next, self.issue_scan_at);
        }
        if self.fetch_blocked_on.is_none() && self.rob.len() < self.cfg.rob_entries {
            let lsq_gated = self
                .pending
                .as_ref()
                .is_some_and(|i| i.op.is_mem() && self.lsq_used >= self.cfg.lsq_entries);
            if !lsq_gated {
                consider(&mut next, self.fetch_resume_at);
            }
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;

    fn core() -> Core {
        Core::new(&CoreConfig::default())
    }

    /// Run `n` instructions through the core with `mem`, returning stats.
    fn run(
        core: &mut Core,
        stream: &mut dyn InstStream,
        mem: &mut dyn MemoryPort,
        n: u64,
    ) -> SimStats {
        let mut stats = SimStats::default();
        let mut now = 0;
        while stats.instructions < n {
            core.tick(now, stream, mem, &mut stats);
            now += 1;
            assert!(now < 10_000_000, "runaway simulation");
        }
        stats.cycles = now;
        stats
    }

    #[test]
    fn independent_alu_stream_reaches_wide_ipc() {
        let mut c = core();
        let mut pc = 0u64;
        let mut stream = move || {
            pc += 4;
            Inst::new(pc, Op::IntAlu)
        };
        let stats = run(&mut c, &mut stream, &mut PerfectMemory, 10_000);
        let ipc = stats.instructions as f64 / stats.cycles as f64;
        assert!(ipc > 4.0, "independent ALU ops should flow wide, ipc={ipc}");
    }

    #[test]
    fn serial_dependency_chain_limits_ipc_to_one() {
        let mut c = core();
        let mut pc = 0u64;
        let mut stream = move || {
            pc += 4;
            Inst::with_dep(pc, Op::IntAlu, 1)
        };
        let stats = run(&mut c, &mut stream, &mut PerfectMemory, 5_000);
        let ipc = stats.instructions as f64 / stats.cycles as f64;
        assert!(ipc <= 1.05, "1-deep chain cannot exceed IPC 1, ipc={ipc}");
        assert!(ipc > 0.8, "but should approach 1, ipc={ipc}");
    }

    #[test]
    fn fp_latency_slows_chains() {
        let mut c = core();
        let mut pc = 0u64;
        let mut stream = move || {
            pc += 4;
            Inst::with_dep(pc, Op::FpAlu, 1)
        };
        let stats = run(&mut c, &mut stream, &mut PerfectMemory, 2_000);
        let ipc = stats.instructions as f64 / stats.cycles as f64;
        // 4-cycle FP chain: IPC ~ 0.25.
        assert!(ipc < 0.3, "ipc={ipc}");
    }

    /// Memory port that rejects every other access and completes after a
    /// fixed latency.
    struct FlakyMemory {
        latency: u64,
        count: u64,
    }
    impl MemoryPort for FlakyMemory {
        fn try_access(&mut self, _pc: Pc, _a: Addr, _s: bool, now: Cycle) -> Option<Cycle> {
            self.count += 1;
            if self.count.is_multiple_of(2) {
                None
            } else {
                Some(now + self.latency)
            }
        }
        fn software_prefetch(&mut self, _pc: Pc, _a: Addr, _now: Cycle) {}
    }

    #[test]
    fn port_rejections_cause_retries_not_loss() {
        let mut c = core();
        let mut pc = 0u64;
        let mut stream = move || {
            pc += 4;
            Inst::new(pc, Op::Load { addr: pc * 8 })
        };
        let mut mem = FlakyMemory {
            latency: 1,
            count: 0,
        };
        let stats = run(&mut c, &mut stream, &mut mem, 1_000);
        // Wide retirement can overshoot the threshold by up to a group.
        assert!(stats.loads >= 1_000, "every load eventually issues");
        assert_eq!(stats.loads, stats.instructions, "loads only, none lost");
    }

    #[test]
    fn memory_latency_shows_in_load_use_chains() {
        // load -> dependent alu -> load ... with 20-cycle memory.
        struct SlowMem;
        impl MemoryPort for SlowMem {
            fn try_access(&mut self, _pc: Pc, _a: Addr, _s: bool, now: Cycle) -> Option<Cycle> {
                Some(now + 20)
            }
            fn software_prefetch(&mut self, _p: Pc, _a: Addr, _n: Cycle) {}
        }
        let mut c = core();
        let mut i = 0u64;
        let mut stream = move || {
            i += 1;
            if i.is_multiple_of(2) {
                Inst::with_dep(i * 4, Op::IntAlu, 1)
            } else {
                Inst::with_dep(i * 4, Op::Load { addr: i * 64 }, 1)
            }
        };
        let stats = run(&mut c, &mut stream, &mut SlowMem, 1_000);
        let ipc = stats.instructions as f64 / stats.cycles as f64;
        assert!(ipc < 0.15, "serialized 20-cycle loads dominate, ipc={ipc}");
    }

    #[test]
    fn mispredicted_branches_stall_fetch() {
        // Alternating taken/not-taken defeats the bimodal predictor.
        let mut c = core();
        let mut i = 0u64;
        let mut stream = move || {
            i += 1;
            if i.is_multiple_of(4) {
                Inst::new(
                    0x100,
                    Op::Branch {
                        taken: i.is_multiple_of(8),
                        target: 0x900,
                    },
                )
            } else {
                Inst::new(i * 4 + 0x1000, Op::IntAlu)
            }
        };
        let stats = run(&mut c, &mut stream, &mut PerfectMemory, 8_000);
        assert!(
            stats.branch_mispredicts > 500,
            "{}",
            stats.branch_mispredicts
        );
        let ipc = stats.instructions as f64 / stats.cycles as f64;
        // Each mispredict costs ~8 cycles on a 4-instruction gap.
        assert!(ipc < 3.0, "mispredicts must hurt, ipc={ipc}");
    }

    #[test]
    fn well_predicted_branches_are_cheap() {
        let mut c = core();
        let mut i = 0u64;
        let mut stream = move || {
            i += 1;
            if i.is_multiple_of(4) {
                // Always taken to a fixed target: perfectly predictable.
                Inst::new(
                    0x100,
                    Op::Branch {
                        taken: true,
                        target: 0x900,
                    },
                )
            } else {
                Inst::new(i * 4 + 0x1000, Op::IntAlu)
            }
        };
        let stats = run(&mut c, &mut stream, &mut PerfectMemory, 8_000);
        assert!(stats.branch_mispredicts < 10);
        let ipc = stats.instructions as f64 / stats.cycles as f64;
        assert!(
            ipc > 4.0,
            "predictable branches should not stall, ipc={ipc}"
        );
    }

    #[test]
    fn software_prefetch_is_nonblocking_and_counted_via_port() {
        struct CountPf(u64);
        impl MemoryPort for CountPf {
            fn try_access(&mut self, _p: Pc, _a: Addr, _s: bool, now: Cycle) -> Option<Cycle> {
                Some(now + 1)
            }
            fn software_prefetch(&mut self, _p: Pc, _a: Addr, _n: Cycle) {
                self.0 += 1;
            }
        }
        let mut c = core();
        let mut i = 0u64;
        let mut stream = move || {
            i += 1;
            if i.is_multiple_of(10) {
                Inst::new(i * 4, Op::SoftPrefetch { addr: i * 32 })
            } else {
                Inst::new(i * 4, Op::IntAlu)
            }
        };
        let mut mem = CountPf(0);
        let stats = run(&mut c, &mut stream, &mut mem, 1_000);
        assert_eq!(mem.0, 100);
        let ipc = stats.instructions as f64 / stats.cycles as f64;
        assert!(ipc > 4.0, "prefetches must not stall the pipe, ipc={ipc}");
    }

    #[test]
    fn rob_and_lsq_occupancy_bounded() {
        struct NeverReady;
        impl MemoryPort for NeverReady {
            fn try_access(&mut self, _p: Pc, _a: Addr, _s: bool, _n: Cycle) -> Option<Cycle> {
                None
            }
            fn software_prefetch(&mut self, _p: Pc, _a: Addr, _n: Cycle) {}
        }
        let cfg = CoreConfig::default();
        let mut c = Core::new(&cfg);
        let mut i = 0u64;
        let mut stream = move || {
            i += 1;
            Inst::new(i * 4, Op::Load { addr: i * 64 })
        };
        let mut stats = SimStats::default();
        for now in 0..1000 {
            c.tick(now, &mut stream, &mut NeverReady, &mut stats);
            assert!(c.rob_occupancy() <= cfg.rob_entries);
            assert!(c.lsq_occupancy() <= cfg.lsq_entries);
        }
        assert_eq!(stats.instructions, 0, "nothing can retire");
        assert_eq!(c.lsq_occupancy(), cfg.lsq_entries, "LSQ fills and holds");
    }

    #[test]
    fn retire_is_in_order() {
        // A slow load followed by fast ALUs: nothing retires before the load.
        struct SlowOnce {
            used: bool,
        }
        impl MemoryPort for SlowOnce {
            fn try_access(&mut self, _p: Pc, _a: Addr, _s: bool, now: Cycle) -> Option<Cycle> {
                if self.used {
                    Some(now + 1)
                } else {
                    self.used = true;
                    Some(now + 100)
                }
            }
            fn software_prefetch(&mut self, _p: Pc, _a: Addr, _n: Cycle) {}
        }
        let mut c = core();
        let mut i = 0u64;
        let mut stream = move || {
            i += 1;
            if i == 1 {
                Inst::new(4, Op::Load { addr: 64 })
            } else {
                Inst::new(i * 4, Op::IntAlu)
            }
        };
        let mut mem = SlowOnce { used: false };
        let mut stats = SimStats::default();
        for now in 0..50 {
            c.tick(now, &mut stream, &mut mem, &mut stats);
        }
        assert_eq!(stats.instructions, 0, "head-of-ROB load blocks retirement");
    }
}
