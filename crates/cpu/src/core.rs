//! The out-of-order pipeline model.
//!
//! Per-cycle phases (in [`Core::tick`]):
//!
//! 1. **Retire** — up to `retire_width` completed instructions leave the
//!    ROB in program order.
//! 2. **Issue/execute** — any window instruction whose producer's result is
//!    ready may issue, bounded by `issue_width`, per-cycle ALU slots, and —
//!    for memory ops — L1 port arbitration through [`MemoryPort`]. A memory
//!    op denied a port stays in the window and retries next cycle.
//! 3. **Fetch/dispatch** — up to `fetch_width` instructions enter the ROB
//!    (and LSQ) unless fetch is squashed by an unresolved mispredicted
//!    branch; fetch resumes `mispredict_penalty` cycles after the branch
//!    resolves.
//!
//! Software prefetches occupy an LSQ slot and are handed to the memory side
//! via [`MemoryPort::software_prefetch`] at issue; being non-blocking, they
//! complete in one cycle and nothing ever depends on them.

use crate::branch::FrontEnd;
use crate::inst::{InstStream, Op};
use ppf_types::{Addr, CoreConfig, Cycle, Pc, SimStats};
use std::collections::VecDeque;

/// The core's window into the memory hierarchy (implemented by `ppf-sim`).
pub trait MemoryPort {
    /// Try to start a demand access in cycle `now`. `None` means no L1 port
    /// was available this cycle (structural hazard: retry next cycle);
    /// otherwise the cycle the data is ready.
    fn try_access(&mut self, pc: Pc, addr: Addr, is_store: bool, now: Cycle) -> Option<Cycle>;

    /// Hand a software prefetch (identified in the LSQ) to the prefetch
    /// machinery. Non-blocking; consumes no L1 port at this point — the
    /// prefetch queue arbitrates for ports later.
    fn software_prefetch(&mut self, pc: Pc, addr: Addr, now: Cycle);

    /// Instruction-side access for the fetch of `pc` at cycle `now`:
    /// returns the cycle the instruction bytes are available (`now` on an
    /// I-cache hit). Default: a perfect I-cache.
    fn fetch_access(&mut self, pc: Pc, now: Cycle) -> Cycle {
        let _ = pc;
        now
    }
}

/// A no-op memory port: every access hits in one cycle. Used by unit tests
/// and by the "perfect cache" calibration mode.
#[derive(Debug, Default, Clone)]
pub struct PerfectMemory;

impl MemoryPort for PerfectMemory {
    fn try_access(&mut self, _pc: Pc, _addr: Addr, _is_store: bool, now: Cycle) -> Option<Cycle> {
        Some(now + 1)
    }
    fn software_prefetch(&mut self, _pc: Pc, _addr: Addr, _now: Cycle) {}
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// Not yet issued (producer or structural hazard pending).
    Waiting,
    /// Issued; the result is ready at `done_at` (retire also waits for it).
    Done,
}

#[derive(Debug, Clone, Copy)]
struct RobEntry {
    seq: u64,
    pc: Pc,
    op: Op,
    dep_seq: Option<u64>,
    stage: Stage,
    /// Result-ready cycle (valid once Executing/Done).
    done_at: Cycle,
    is_mem: bool,
    /// This entry is a mispredicted branch fetch is waiting on.
    blocks_fetch: bool,
}

/// What one call to [`Core::tick`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickOutcome {
    /// Instructions retired this cycle.
    pub retired: u64,
    /// Memory ops that failed port arbitration this cycle.
    pub port_rejections: u64,
}

/// The out-of-order core.
#[derive(Clone)]
pub struct Core {
    cfg: CoreConfig,
    front: FrontEnd,
    rob: VecDeque<RobEntry>,
    next_seq: u64,
    lsq_used: usize,
    /// Fetch is stalled until this cycle (mispredict redirect).
    fetch_resume_at: Cycle,
    /// Seq of the unresolved mispredicted branch fetch waits on, if any.
    fetch_blocked_on: Option<u64>,
    /// An instruction fetched from the stream but not yet dispatched
    /// (it arrived while the LSQ was full). Streams are consumed exactly
    /// once, so it is buffered rather than regenerated.
    pending: Option<crate::inst::Inst>,
}

impl Core {
    /// Build a core from its configuration.
    pub fn new(cfg: &CoreConfig) -> Self {
        Core {
            front: FrontEnd::new(&cfg.branch),
            cfg: cfg.clone(),
            rob: VecDeque::with_capacity(cfg.rob_entries),
            next_seq: 0,
            lsq_used: 0,
            fetch_resume_at: 0,
            fetch_blocked_on: None,
            pending: None,
        }
    }

    /// Current ROB occupancy.
    pub fn rob_occupancy(&self) -> usize {
        self.rob.len()
    }

    /// Current LSQ occupancy.
    pub fn lsq_occupancy(&self) -> usize {
        self.lsq_used
    }

    /// Is the producer with sequence number `seq` complete by `now`?
    fn producer_ready(&self, seq: u64, now: Cycle) -> bool {
        let front_seq = match self.rob.front() {
            Some(e) => e.seq,
            None => return true, // empty ROB: everything older has retired
        };
        if seq < front_seq {
            return true; // already retired
        }
        let idx = (seq - front_seq) as usize;
        match self.rob.get(idx) {
            Some(e) => e.stage != Stage::Waiting && e.done_at <= now,
            None => true,
        }
    }

    fn retire(&mut self, now: Cycle, stats: &mut SimStats) -> u64 {
        let mut retired = 0;
        while retired < self.cfg.retire_width as u64 {
            match self.rob.front() {
                Some(e) if e.stage == Stage::Done && e.done_at <= now => {
                    if e.is_mem {
                        self.lsq_used -= 1;
                    }
                    match e.op {
                        Op::Load { .. } => stats.loads += 1,
                        Op::Store { .. } => stats.stores += 1,
                        Op::Branch { .. } => stats.branches += 1,
                        _ => {}
                    }
                    self.rob.pop_front();
                    retired += 1;
                }
                _ => break,
            }
        }
        stats.instructions += retired;
        retired
    }

    fn issue(&mut self, now: Cycle, mem: &mut dyn MemoryPort) -> u64 {
        let mut issued = 0usize;
        let mut int_slots = self.cfg.int_alus;
        let mut fp_slots = self.cfg.fp_alus;
        let mut rejections = 0u64;
        let mut resolved_block: Option<u64> = None;

        for i in 0..self.rob.len() {
            if issued >= self.cfg.issue_width {
                break;
            }
            let entry = self.rob[i];
            if entry.stage != Stage::Waiting {
                continue;
            }
            if let Some(dep) = entry.dep_seq {
                if !self.producer_ready(dep, now) {
                    continue;
                }
            }
            let done_at = match entry.op {
                Op::IntAlu => {
                    if int_slots == 0 {
                        continue;
                    }
                    int_slots -= 1;
                    now + self.cfg.int_latency
                }
                Op::FpAlu => {
                    if fp_slots == 0 {
                        continue;
                    }
                    fp_slots -= 1;
                    now + self.cfg.fp_latency
                }
                Op::Branch { .. } => {
                    if int_slots == 0 {
                        continue;
                    }
                    int_slots -= 1;
                    let done = now + self.cfg.int_latency;
                    if entry.blocks_fetch {
                        resolved_block = Some(entry.seq);
                        self.fetch_resume_at = done + self.front.mispredict_penalty;
                    }
                    done
                }
                Op::Load { addr } | Op::Store { addr } => {
                    let is_store = matches!(entry.op, Op::Store { .. });
                    match mem.try_access(entry.pc, addr, is_store, now) {
                        Some(ready) => ready,
                        None => {
                            rejections += 1;
                            continue; // structural hazard: retry next cycle
                        }
                    }
                }
                Op::SoftPrefetch { addr } => {
                    mem.software_prefetch(entry.pc, addr, now);
                    now + 1
                }
            };
            let e = &mut self.rob[i];
            e.stage = Stage::Done;
            e.done_at = done_at;
            issued += 1;
        }
        if let Some(seq) = resolved_block {
            if self.fetch_blocked_on == Some(seq) {
                self.fetch_blocked_on = None;
            }
        }
        rejections
    }

    fn fetch(
        &mut self,
        now: Cycle,
        stream: &mut dyn InstStream,
        mem: &mut dyn MemoryPort,
        stats: &mut SimStats,
    ) {
        if self.fetch_blocked_on.is_some() || now < self.fetch_resume_at {
            return;
        }
        for _ in 0..self.cfg.fetch_width {
            if self.rob.len() >= self.cfg.rob_entries {
                break;
            }
            let inst = match self.pending.take() {
                Some(i) => i,
                None => stream.next_inst(),
            };
            if inst.op.is_mem() && self.lsq_used >= self.cfg.lsq_entries {
                // LSQ full: hold the instruction and stall fetch this cycle.
                self.pending = Some(inst);
                break;
            }
            // Instruction-side access: an I-cache miss stalls fetch until
            // the line arrives from the unified L2 (or memory).
            let bytes_at = mem.fetch_access(inst.pc, now);
            if bytes_at > now {
                self.pending = Some(inst);
                self.fetch_resume_at = self.fetch_resume_at.max(bytes_at);
                break;
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            let mut blocks_fetch = false;
            if let Op::Branch { taken, target } = inst.op {
                let correct = self.front.predict_and_train(inst.pc, taken, target);
                if !correct {
                    stats.branch_mispredicts += 1;
                    blocks_fetch = true;
                }
            }
            if inst.op.is_mem() {
                self.lsq_used += 1;
            }
            let dep_seq = if inst.dep == 0 {
                None
            } else {
                seq.checked_sub(inst.dep as u64)
            };
            self.rob.push_back(RobEntry {
                seq,
                pc: inst.pc,
                op: inst.op,
                dep_seq,
                stage: Stage::Waiting,
                done_at: 0,
                is_mem: inst.op.is_mem(),
                blocks_fetch,
            });
            if blocks_fetch {
                self.fetch_blocked_on = Some(seq);
                break; // wrong-path fetch is not modelled
            }
        }
    }

    /// Advance the core by one cycle.
    pub fn tick(
        &mut self,
        now: Cycle,
        stream: &mut dyn InstStream,
        mem: &mut dyn MemoryPort,
        stats: &mut SimStats,
    ) -> TickOutcome {
        let retired = self.retire(now, stats);
        let port_rejections = self.issue(now, mem);
        self.fetch(now, stream, mem, stats);
        TickOutcome {
            retired,
            port_rejections,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;

    fn core() -> Core {
        Core::new(&CoreConfig::default())
    }

    /// Run `n` instructions through the core with `mem`, returning stats.
    fn run(
        core: &mut Core,
        stream: &mut dyn InstStream,
        mem: &mut dyn MemoryPort,
        n: u64,
    ) -> SimStats {
        let mut stats = SimStats::default();
        let mut now = 0;
        while stats.instructions < n {
            core.tick(now, stream, mem, &mut stats);
            now += 1;
            assert!(now < 10_000_000, "runaway simulation");
        }
        stats.cycles = now;
        stats
    }

    #[test]
    fn independent_alu_stream_reaches_wide_ipc() {
        let mut c = core();
        let mut pc = 0u64;
        let mut stream = move || {
            pc += 4;
            Inst::new(pc, Op::IntAlu)
        };
        let stats = run(&mut c, &mut stream, &mut PerfectMemory, 10_000);
        let ipc = stats.instructions as f64 / stats.cycles as f64;
        assert!(ipc > 4.0, "independent ALU ops should flow wide, ipc={ipc}");
    }

    #[test]
    fn serial_dependency_chain_limits_ipc_to_one() {
        let mut c = core();
        let mut pc = 0u64;
        let mut stream = move || {
            pc += 4;
            Inst::with_dep(pc, Op::IntAlu, 1)
        };
        let stats = run(&mut c, &mut stream, &mut PerfectMemory, 5_000);
        let ipc = stats.instructions as f64 / stats.cycles as f64;
        assert!(ipc <= 1.05, "1-deep chain cannot exceed IPC 1, ipc={ipc}");
        assert!(ipc > 0.8, "but should approach 1, ipc={ipc}");
    }

    #[test]
    fn fp_latency_slows_chains() {
        let mut c = core();
        let mut pc = 0u64;
        let mut stream = move || {
            pc += 4;
            Inst::with_dep(pc, Op::FpAlu, 1)
        };
        let stats = run(&mut c, &mut stream, &mut PerfectMemory, 2_000);
        let ipc = stats.instructions as f64 / stats.cycles as f64;
        // 4-cycle FP chain: IPC ~ 0.25.
        assert!(ipc < 0.3, "ipc={ipc}");
    }

    /// Memory port that rejects every other access and completes after a
    /// fixed latency.
    struct FlakyMemory {
        latency: u64,
        count: u64,
    }
    impl MemoryPort for FlakyMemory {
        fn try_access(&mut self, _pc: Pc, _a: Addr, _s: bool, now: Cycle) -> Option<Cycle> {
            self.count += 1;
            if self.count.is_multiple_of(2) {
                None
            } else {
                Some(now + self.latency)
            }
        }
        fn software_prefetch(&mut self, _pc: Pc, _a: Addr, _now: Cycle) {}
    }

    #[test]
    fn port_rejections_cause_retries_not_loss() {
        let mut c = core();
        let mut pc = 0u64;
        let mut stream = move || {
            pc += 4;
            Inst::new(pc, Op::Load { addr: pc * 8 })
        };
        let mut mem = FlakyMemory {
            latency: 1,
            count: 0,
        };
        let stats = run(&mut c, &mut stream, &mut mem, 1_000);
        // Wide retirement can overshoot the threshold by up to a group.
        assert!(stats.loads >= 1_000, "every load eventually issues");
        assert_eq!(stats.loads, stats.instructions, "loads only, none lost");
    }

    #[test]
    fn memory_latency_shows_in_load_use_chains() {
        // load -> dependent alu -> load ... with 20-cycle memory.
        struct SlowMem;
        impl MemoryPort for SlowMem {
            fn try_access(&mut self, _pc: Pc, _a: Addr, _s: bool, now: Cycle) -> Option<Cycle> {
                Some(now + 20)
            }
            fn software_prefetch(&mut self, _p: Pc, _a: Addr, _n: Cycle) {}
        }
        let mut c = core();
        let mut i = 0u64;
        let mut stream = move || {
            i += 1;
            if i.is_multiple_of(2) {
                Inst::with_dep(i * 4, Op::IntAlu, 1)
            } else {
                Inst::with_dep(i * 4, Op::Load { addr: i * 64 }, 1)
            }
        };
        let stats = run(&mut c, &mut stream, &mut SlowMem, 1_000);
        let ipc = stats.instructions as f64 / stats.cycles as f64;
        assert!(ipc < 0.15, "serialized 20-cycle loads dominate, ipc={ipc}");
    }

    #[test]
    fn mispredicted_branches_stall_fetch() {
        // Alternating taken/not-taken defeats the bimodal predictor.
        let mut c = core();
        let mut i = 0u64;
        let mut stream = move || {
            i += 1;
            if i.is_multiple_of(4) {
                Inst::new(
                    0x100,
                    Op::Branch {
                        taken: i.is_multiple_of(8),
                        target: 0x900,
                    },
                )
            } else {
                Inst::new(i * 4 + 0x1000, Op::IntAlu)
            }
        };
        let stats = run(&mut c, &mut stream, &mut PerfectMemory, 8_000);
        assert!(
            stats.branch_mispredicts > 500,
            "{}",
            stats.branch_mispredicts
        );
        let ipc = stats.instructions as f64 / stats.cycles as f64;
        // Each mispredict costs ~8 cycles on a 4-instruction gap.
        assert!(ipc < 3.0, "mispredicts must hurt, ipc={ipc}");
    }

    #[test]
    fn well_predicted_branches_are_cheap() {
        let mut c = core();
        let mut i = 0u64;
        let mut stream = move || {
            i += 1;
            if i.is_multiple_of(4) {
                // Always taken to a fixed target: perfectly predictable.
                Inst::new(
                    0x100,
                    Op::Branch {
                        taken: true,
                        target: 0x900,
                    },
                )
            } else {
                Inst::new(i * 4 + 0x1000, Op::IntAlu)
            }
        };
        let stats = run(&mut c, &mut stream, &mut PerfectMemory, 8_000);
        assert!(stats.branch_mispredicts < 10);
        let ipc = stats.instructions as f64 / stats.cycles as f64;
        assert!(
            ipc > 4.0,
            "predictable branches should not stall, ipc={ipc}"
        );
    }

    #[test]
    fn software_prefetch_is_nonblocking_and_counted_via_port() {
        struct CountPf(u64);
        impl MemoryPort for CountPf {
            fn try_access(&mut self, _p: Pc, _a: Addr, _s: bool, now: Cycle) -> Option<Cycle> {
                Some(now + 1)
            }
            fn software_prefetch(&mut self, _p: Pc, _a: Addr, _n: Cycle) {
                self.0 += 1;
            }
        }
        let mut c = core();
        let mut i = 0u64;
        let mut stream = move || {
            i += 1;
            if i.is_multiple_of(10) {
                Inst::new(i * 4, Op::SoftPrefetch { addr: i * 32 })
            } else {
                Inst::new(i * 4, Op::IntAlu)
            }
        };
        let mut mem = CountPf(0);
        let stats = run(&mut c, &mut stream, &mut mem, 1_000);
        assert_eq!(mem.0, 100);
        let ipc = stats.instructions as f64 / stats.cycles as f64;
        assert!(ipc > 4.0, "prefetches must not stall the pipe, ipc={ipc}");
    }

    #[test]
    fn rob_and_lsq_occupancy_bounded() {
        struct NeverReady;
        impl MemoryPort for NeverReady {
            fn try_access(&mut self, _p: Pc, _a: Addr, _s: bool, _n: Cycle) -> Option<Cycle> {
                None
            }
            fn software_prefetch(&mut self, _p: Pc, _a: Addr, _n: Cycle) {}
        }
        let cfg = CoreConfig::default();
        let mut c = Core::new(&cfg);
        let mut i = 0u64;
        let mut stream = move || {
            i += 1;
            Inst::new(i * 4, Op::Load { addr: i * 64 })
        };
        let mut stats = SimStats::default();
        for now in 0..1000 {
            c.tick(now, &mut stream, &mut NeverReady, &mut stats);
            assert!(c.rob_occupancy() <= cfg.rob_entries);
            assert!(c.lsq_occupancy() <= cfg.lsq_entries);
        }
        assert_eq!(stats.instructions, 0, "nothing can retire");
        assert_eq!(c.lsq_occupancy(), cfg.lsq_entries, "LSQ fills and holds");
    }

    #[test]
    fn retire_is_in_order() {
        // A slow load followed by fast ALUs: nothing retires before the load.
        struct SlowOnce {
            used: bool,
        }
        impl MemoryPort for SlowOnce {
            fn try_access(&mut self, _p: Pc, _a: Addr, _s: bool, now: Cycle) -> Option<Cycle> {
                if self.used {
                    Some(now + 1)
                } else {
                    self.used = true;
                    Some(now + 100)
                }
            }
            fn software_prefetch(&mut self, _p: Pc, _a: Addr, _n: Cycle) {}
        }
        let mut c = core();
        let mut i = 0u64;
        let mut stream = move || {
            i += 1;
            if i == 1 {
                Inst::new(4, Op::Load { addr: 64 })
            } else {
                Inst::new(i * 4, Op::IntAlu)
            }
        };
        let mut mem = SlowOnce { used: false };
        let mut stats = SimStats::default();
        for now in 0..50 {
            c.tick(now, &mut stream, &mut mem, &mut stats);
        }
        assert_eq!(stats.instructions, 0, "head-of-ROB load blocks retirement");
    }
}
