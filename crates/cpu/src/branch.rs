//! Branch prediction front end: bimodal predictor + branch target buffer
//! (Table 1: bimodal with 2048 entries, BTB 4-way × 4096 sets).
//!
//! A conditional branch is predicted correctly when the bimodal counter
//! gets the direction right *and*, for taken branches, the BTB supplies the
//! right target. Mispredictions stall fetch until the branch resolves plus
//! a redirect penalty (`BranchConfig::mispredict_penalty`).

use ppf_types::{BranchConfig, Pc};

/// Bimodal 2-bit-counter direction predictor.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    counters: Box<[u8]>,
    mask: u64,
}

impl BranchPredictor {
    /// A predictor with `entries` 2-bit counters (power of two), initialized
    /// weakly-taken (the usual cold state).
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two());
        BranchPredictor {
            counters: vec![2u8; entries].into_boxed_slice(),
            mask: (entries - 1) as u64,
        }
    }

    #[inline]
    fn slot(&self, pc: Pc) -> usize {
        ((pc >> 2) & self.mask) as usize
    }

    /// Predicted direction for the branch at `pc`.
    #[inline]
    pub fn predict(&self, pc: Pc) -> bool {
        self.counters[self.slot(pc)] >= 2
    }

    /// Train with the resolved direction.
    #[inline]
    pub fn train(&mut self, pc: Pc, taken: bool) {
        let slot = self.slot(pc);
        let v = self.counters[slot];
        self.counters[slot] = if taken {
            (v + 1).min(3)
        } else {
            v.saturating_sub(1)
        };
    }
}

#[derive(Debug, Clone, Copy)]
struct BtbEntry {
    tag: u64,
    target: Pc,
    lru: u64,
    valid: bool,
}

/// Set-associative branch target buffer.
#[derive(Debug, Clone)]
pub struct Btb {
    entries: Box<[BtbEntry]>,
    ways: usize,
    set_mask: u64,
    next_lru: u64,
}

impl Btb {
    /// A BTB of `sets` × `ways` (Table 1: 4096 × 4).
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two());
        assert!(ways > 0);
        Btb {
            entries: vec![
                BtbEntry {
                    tag: 0,
                    target: 0,
                    lru: 0,
                    valid: false
                };
                sets * ways
            ]
            .into_boxed_slice(),
            ways,
            set_mask: (sets - 1) as u64,
            next_lru: 1,
        }
    }

    #[inline]
    fn set_base(&self, pc: Pc) -> usize {
        (((pc >> 2) & self.set_mask) as usize) * self.ways
    }

    /// Predicted target for a taken branch at `pc`, if the BTB knows one.
    pub fn lookup(&mut self, pc: Pc) -> Option<Pc> {
        let base = self.set_base(pc);
        let key = pc >> 2;
        let lru = self.next_lru;
        for e in &mut self.entries[base..base + self.ways] {
            if e.valid && e.tag == key {
                e.lru = lru;
                self.next_lru += 1;
                return Some(e.target);
            }
        }
        None
    }

    /// Install/refresh the target for the branch at `pc` (on a taken
    /// resolution), evicting the LRU way on conflict.
    pub fn update(&mut self, pc: Pc, target: Pc) {
        let base = self.set_base(pc);
        let key = pc >> 2;
        let lru = self.next_lru;
        self.next_lru += 1;
        // Hit: refresh.
        if let Some(e) = self.entries[base..base + self.ways]
            .iter_mut()
            .find(|e| e.valid && e.tag == key)
        {
            e.target = target;
            e.lru = lru;
            return;
        }
        // Fill an invalid way or evict the LRU one.
        let way = self.entries[base..base + self.ways]
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| if e.valid { e.lru } else { 0 })
            .map(|(i, _)| i)
            .unwrap_or(0);
        self.entries[base + way] = BtbEntry {
            tag: key,
            target,
            lru,
            valid: true,
        };
    }
}

/// The combined front end: direction + target prediction.
#[derive(Debug, Clone)]
pub struct FrontEnd {
    /// Direction predictor.
    pub predictor: BranchPredictor,
    /// Target buffer.
    pub btb: Btb,
    /// Redirect penalty on a misprediction.
    pub mispredict_penalty: u64,
}

impl FrontEnd {
    /// Build from config.
    pub fn new(cfg: &BranchConfig) -> Self {
        FrontEnd {
            predictor: BranchPredictor::new(cfg.bimodal_entries),
            btb: Btb::new(cfg.btb_sets, cfg.btb_ways),
            mispredict_penalty: cfg.mispredict_penalty,
        }
    }

    /// Predict the branch at `pc`; returns `true` if the prediction matches
    /// the resolved `(taken, target)`, and trains the structures.
    pub fn predict_and_train(&mut self, pc: Pc, taken: bool, target: Pc) -> bool {
        let dir_pred = self.predictor.predict(pc);
        let target_pred = self.btb.lookup(pc);
        // Direction must match; a predicted-taken branch also needs the
        // right target from the BTB.
        let correct = dir_pred == taken && (!taken || target_pred == Some(target));
        self.predictor.train(pc, taken);
        if taken {
            self.btb.update(pc, target);
        }
        correct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bimodal_learns_direction() {
        let mut p = BranchPredictor::new(16);
        assert!(p.predict(0x100), "cold state is weakly taken");
        p.train(0x100, false);
        p.train(0x100, false);
        assert!(!p.predict(0x100));
        p.train(0x100, true);
        p.train(0x100, true);
        assert!(p.predict(0x100));
    }

    #[test]
    fn bimodal_hysteresis() {
        let mut p = BranchPredictor::new(16);
        p.train(0x100, true); // saturate to 3
        p.train(0x100, false); // back to 2: still predicts taken
        assert!(p.predict(0x100));
    }

    #[test]
    fn bimodal_aliasing() {
        let mut p = BranchPredictor::new(4);
        p.train(0x100, false);
        p.train(0x100, false);
        // pc 0x110 aliases (same (pc>>2) & 3).
        assert!(!p.predict(0x110));
    }

    #[test]
    fn btb_miss_then_hit() {
        let mut b = Btb::new(16, 2);
        assert_eq!(b.lookup(0x100), None);
        b.update(0x100, 0x2000);
        assert_eq!(b.lookup(0x100), Some(0x2000));
    }

    #[test]
    fn btb_lru_eviction() {
        let mut b = Btb::new(1, 2); // single set, 2 ways
        b.update(0x100, 0x1);
        b.update(0x104, 0x2);
        b.lookup(0x100); // refresh 0x100
        b.update(0x108, 0x3); // evicts 0x104
        assert_eq!(b.lookup(0x100), Some(0x1));
        assert_eq!(b.lookup(0x104), None);
        assert_eq!(b.lookup(0x108), Some(0x3));
    }

    #[test]
    fn btb_target_update() {
        let mut b = Btb::new(16, 2);
        b.update(0x100, 0x2000);
        b.update(0x100, 0x3000);
        assert_eq!(b.lookup(0x100), Some(0x3000));
    }

    #[test]
    fn frontend_correct_only_with_direction_and_target() {
        let mut f = FrontEnd::new(&BranchConfig::default());
        // Cold: predicts taken but BTB is empty -> wrong on a taken branch.
        assert!(!f.predict_and_train(0x100, true, 0x9000));
        // Now the BTB knows the target and the counter is saturated taken.
        assert!(f.predict_and_train(0x100, true, 0x9000));
        // Not-taken branch with cold weakly-taken counter: wrong once...
        assert!(!f.predict_and_train(0x200, false, 0x9000));
        // ...then the counter (now 1) predicts not-taken: correct.
        assert!(f.predict_and_train(0x200, false, 0x9000));
    }

    #[test]
    fn frontend_learns_not_taken_after_two_outcomes() {
        let mut f = FrontEnd::new(&BranchConfig::default());
        f.predict_and_train(0x300, false, 0);
        f.predict_and_train(0x300, false, 0);
        assert!(f.predict_and_train(0x300, false, 0), "counter now below 2");
    }

    #[test]
    fn frontend_retarget() {
        let mut f = FrontEnd::new(&BranchConfig::default());
        f.predict_and_train(0x100, true, 0x9000);
        assert!(f.predict_and_train(0x100, true, 0x9000));
        // Target changes (indirect-like): one miss, then relearned.
        assert!(!f.predict_and_train(0x100, true, 0xa000));
        assert!(f.predict_and_train(0x100, true, 0xa000));
    }
}
