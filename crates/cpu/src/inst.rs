//! The dynamic instruction stream the core consumes.
//!
//! Workload models (in `ppf-workloads`) generate an endless sequence of
//! [`Inst`]s. The format is deliberately minimal — a PC, an operation, and
//! an optional backward data dependency — because the paper's experiments
//! are entirely about the memory reference stream; compute instructions
//! exist to pace the pipeline realistically.

use ppf_types::{Addr, Pc};

/// One dynamic instruction's operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Integer ALU op.
    IntAlu,
    /// Floating-point op.
    FpAlu,
    /// Load from `addr`.
    Load {
        /// Byte address referenced.
        addr: Addr,
    },
    /// Store to `addr` (write-allocate).
    Store {
        /// Byte address referenced.
        addr: Addr,
    },
    /// Compiler-inserted software prefetch of `addr` (non-blocking; routed
    /// from the LSQ to the pollution filter, Figure 3).
    SoftPrefetch {
        /// Byte address to prefetch.
        addr: Addr,
    },
    /// Conditional branch with its resolved outcome.
    Branch {
        /// Actually taken?
        taken: bool,
        /// Actual target when taken.
        target: Pc,
    },
}

impl Op {
    /// Does this op occupy an LSQ entry?
    #[inline]
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Op::Load { .. } | Op::Store { .. } | Op::SoftPrefetch { .. }
        )
    }

    /// The referenced byte address, if any.
    #[inline]
    pub fn addr(&self) -> Option<Addr> {
        match self {
            Op::Load { addr } | Op::Store { addr } | Op::SoftPrefetch { addr } => Some(*addr),
            _ => None,
        }
    }
}

/// One dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inst {
    /// Program counter.
    pub pc: Pc,
    /// Operation.
    pub op: Op,
    /// Backward data dependency: this instruction reads the result of the
    /// instruction `dep` positions earlier in program order (0 = no
    /// dependency). Dependencies on loads create load-use stalls.
    pub dep: u8,
}

impl Inst {
    /// An independent instruction.
    pub fn new(pc: Pc, op: Op) -> Self {
        Inst { pc, op, dep: 0 }
    }

    /// An instruction depending on the `dep`-back producer.
    pub fn with_dep(pc: Pc, op: Op, dep: u8) -> Self {
        Inst { pc, op, dep }
    }
}

/// An endless dynamic instruction source.
///
/// `Send` because the grid runner moves warmed-up simulators (which own
/// their stream) between worker threads when sharing warm-up snapshots.
pub trait InstStream: Send {
    /// Produce the next instruction in program order. Streams are infinite:
    /// the simulator decides how many instructions to run.
    fn next_inst(&mut self) -> Inst;

    /// A boxed deep copy of this stream at its current position, or `None`
    /// when the stream is not duplicable (the default — closures, fault
    /// and adversary wrappers). Streams that opt in make their simulator
    /// snapshottable, letting the scheduler share warm-up work.
    fn clone_box(&self) -> Option<Box<dyn InstStream>> {
        None
    }
}

/// Blanket impl so closures can serve as streams in tests.
impl<F: FnMut() -> Inst + Send> InstStream for F {
    fn next_inst(&mut self) -> Inst {
        self()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_classification() {
        assert!(Op::Load { addr: 0 }.is_mem());
        assert!(Op::Store { addr: 0 }.is_mem());
        assert!(Op::SoftPrefetch { addr: 0 }.is_mem());
        assert!(!Op::IntAlu.is_mem());
        assert!(!Op::FpAlu.is_mem());
        assert!(!Op::Branch {
            taken: false,
            target: 0
        }
        .is_mem());
    }

    #[test]
    fn addr_extraction() {
        assert_eq!(Op::Load { addr: 42 }.addr(), Some(42));
        assert_eq!(Op::Store { addr: 7 }.addr(), Some(7));
        assert_eq!(Op::IntAlu.addr(), None);
    }

    #[test]
    fn closure_stream() {
        let mut n = 0u64;
        let mut s = move || {
            n += 4;
            Inst::new(n, Op::IntAlu)
        };
        assert_eq!(InstStream::next_inst(&mut s).pc, 4);
        assert_eq!(InstStream::next_inst(&mut s).pc, 8);
    }
}
