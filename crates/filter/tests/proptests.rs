//! Property-based tests for the pollution filter: counter bounds, table
//! behaviour under arbitrary training, and end-to-end filter consistency.

use ppf_filter::counter::SatCounter;
use ppf_filter::hash::{fold16_salted, hash_line, hash_line_salted, hash_pc, hash_pc_salted};
use ppf_filter::perceptron::{Features, Perceptron, FEATURE_COUNT, WEIGHT_MAX};
use ppf_filter::table::HistoryTable;
use ppf_filter::{FilterSnapshot, PollutionFilter};
use ppf_types::{
    CounterInit, FilterConfig, FilterKind, JsonValue, LineAddr, PrefetchRequest, PrefetchSource,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn pa_index_sweep_covers_every_slot(
        entries_log2 in 4u32..13,
        high in any::<u64>(),
    ) {
        // A sweep of consecutive line addresses (with arbitrary upper bits,
        // which fold16 XORs in as a constant) must land on every slot of a
        // power-of-two table: the PA index wastes no entries on any stripe
        // of the address space.
        let entries = 1usize << entries_log2;
        let mask = (entries - 1) as u64;
        let mut hit = vec![false; entries];
        for i in 0..entries as u64 {
            let line = LineAddr((high << 16) | i);
            hit[(hash_line(line) & mask) as usize] = true;
        }
        prop_assert!(hit.iter().all(|&h| h), "PA sweep must cover all {} slots", entries);
    }

    #[test]
    fn pc_index_sweep_covers_every_slot(
        entries_log2 in 4u32..13,
        high in any::<u64>(),
    ) {
        // Same full-range property for the PC index: consecutive 4-byte
        // aligned instruction addresses cover the whole table — the two
        // always-zero alignment bits must not shrink the usable index range.
        let entries = 1usize << entries_log2;
        let mask = (entries - 1) as u64;
        let mut hit = vec![false; entries];
        for i in 0..entries as u64 {
            let pc = (high << 18) | (i << 2);
            hit[(hash_pc(pc) & mask) as usize] = true;
        }
        prop_assert!(hit.iter().all(|&h| h), "PC sweep must cover all {} slots", entries);
    }

    #[test]
    fn saturating_bad_sweep_drains_the_whole_table(
        entries_log2 in 4u32..10,
        bits in 1u8..=3,
    ) {
        // Training every slot bad max+1 times saturates the entire table at
        // zero regardless of width — coverage and decay saturation at once.
        let entries = 1usize << entries_log2;
        let mut t = HistoryTable::new(entries, bits);
        let reps = 1u32 << bits;
        for key in 0..entries as u64 {
            for _ in 0..reps {
                t.train(key, false);
            }
        }
        prop_assert_eq!(t.fraction_good(), 0.0);
        prop_assert!(t.counters().iter().all(|&v| v == 0));
    }

    #[test]
    fn saturating_good_sweep_fills_the_whole_table(
        entries_log2 in 4u32..10,
        bits in 1u8..=3,
    ) {
        let entries = 1usize << entries_log2;
        let max = (1u8 << bits) - 1;
        let mut t = HistoryTable::with_init(entries, bits, ppf_types::CounterInit::WeaklyBad);
        let reps = 1u32 << bits;
        for key in 0..entries as u64 {
            for _ in 0..reps {
                t.train(key, true);
            }
        }
        prop_assert_eq!(t.fraction_good(), 1.0);
        prop_assert!(t.counters().iter().all(|&v| v == max));
    }

    #[test]
    fn counter_moves_monotonically_in_unit_steps(
        bits in 1u8..=8,
        initial in any::<u8>(),
        good in any::<bool>(),
        n in 1usize..40,
    ) {
        // Under a consistent outcome the counter is monotone, moves by at
        // most one per training, and never leaves [0, max].
        let mut c = SatCounter::new(bits, initial);
        let mut prev = c.value();
        for _ in 0..n {
            c.train(good);
            let v = c.value();
            if good {
                prop_assert!(v >= prev, "good training must not weaken");
            } else {
                prop_assert!(v <= prev, "bad training must not strengthen");
            }
            prop_assert!(v.abs_diff(prev) <= 1, "saturating counters step by one");
            prop_assert!(v <= c.max());
            prev = v;
        }
    }

    #[test]
    fn table_counters_never_exceed_width(
        bits in 1u8..=3,
        ops in prop::collection::vec((any::<u64>(), any::<bool>()), 0..300),
    ) {
        // The 2-bit-range invariant, generalized: whatever the training
        // history, no raw counter escapes its configured width.
        let mut t = HistoryTable::new(64, bits);
        let max = (1u8 << bits) - 1;
        for (key, good) in ops {
            t.train(key, good);
            prop_assert!(t.counters().iter().all(|&v| v <= max));
        }
    }

    #[test]
    fn counter_stays_in_range_under_any_training(
        bits in 1u8..=8,
        initial in any::<u8>(),
        outcomes in prop::collection::vec(any::<bool>(), 0..200),
    ) {
        let mut c = SatCounter::new(bits, initial);
        let max = c.max();
        for good in outcomes {
            c.train(good);
            prop_assert!(c.value() <= max);
        }
    }

    #[test]
    fn counter_prediction_matches_threshold(
        bits in 1u8..=8,
        outcomes in prop::collection::vec(any::<bool>(), 0..100),
    ) {
        let mut c = SatCounter::weakly_good(bits);
        for good in outcomes {
            c.train(good);
            prop_assert_eq!(c.predicts_good(), c.value() > c.max() / 2);
        }
    }

    #[test]
    fn saturated_good_counter_survives_one_bad(bits in 2u8..=8) {
        let mut c = SatCounter::new(bits, u8::MAX);
        c.train(false);
        prop_assert!(c.predicts_good(), "hysteresis: one bad does not flip saturation");
    }

    #[test]
    fn table_trains_only_the_indexed_slot(
        entries_log2 in 4u32..10,
        key in any::<u64>(),
        probe in any::<u64>(),
    ) {
        let entries = 1usize << entries_log2;
        let mut t = HistoryTable::new(entries, 2);
        t.train(key, false);
        let mask = (entries - 1) as u64;
        if probe & mask != key & mask {
            prop_assert!(t.predict_good(probe), "untouched slot stays weakly good");
        }
    }

    #[test]
    fn table_counts_match_counter_semantics(
        key in any::<u64>(),
        outcomes in prop::collection::vec(any::<bool>(), 0..100),
    ) {
        // Table slot must behave exactly like a standalone 2-bit counter.
        let mut t = HistoryTable::new(64, 2);
        let mut c = SatCounter::weakly_good(2);
        for good in outcomes {
            t.train(key, good);
            c.train(good);
            prop_assert_eq!(t.value(key), c.value());
            prop_assert_eq!(t.predict_good(key), c.predicts_good());
        }
    }

    #[test]
    fn salted_index_sweep_still_covers_every_slot(
        entries_log2 in 4u32..13,
        high in any::<u64>(),
        salt in any::<u64>(),
    ) {
        // Hardening must not cost coverage: the keyed fold scrambles each
        // 16-bit half through an affine permutation, so a consecutive sweep
        // still lands on every slot of a power-of-two table — for ANY salt,
        // including 0 (the plain fold). A salt that stranded slots would
        // shrink the effective table and help the attacker.
        let entries = 1usize << entries_log2;
        let mask = (entries - 1) as u64;
        let mut pa_hit = vec![false; entries];
        let mut pc_hit = vec![false; entries];
        for i in 0..entries as u64 {
            let line = LineAddr((high << 16) | i);
            pa_hit[(hash_line_salted(line, salt) & mask) as usize] = true;
            let pc = (high << 18) | (i << 2);
            pc_hit[(hash_pc_salted(pc, salt) & mask) as usize] = true;
        }
        prop_assert!(pa_hit.iter().all(|&h| h), "salted PA sweep must cover all {} slots", entries);
        prop_assert!(pc_hit.iter().all(|&h| h), "salted PC sweep must cover all {} slots", entries);
    }

    #[test]
    fn distinct_salts_decorrelate_an_aliasing_flood(
        victim in 0u64..0xffff,
        s1 in 1u64..u64::MAX,
        s2 in 1u64..u64::MAX,
    ) {
        // The aliasing-flood attack crafts lines `t | h<<16 | h<<32` whose
        // plain XOR-fold cancels the two h halves, so every flood line lands
        // on the victim's slot. Under a keyed fold the halves go through
        // different permutations and no longer cancel: the flood scatters
        // across many slots, and two distinct salts scatter it differently —
        // an attacker calibrated against one deployment learns nothing
        // about another.
        prop_assume!(s1 != s2);
        let mask = 0xffu64; // 256-entry table
        let flood: Vec<LineAddr> = (1..=64u64)
            .map(|h| LineAddr(victim | (h << 16) | (h << 32)))
            .collect();
        for line in &flood {
            prop_assert_eq!(
                hash_line(*line) & mask,
                hash_line(LineAddr(victim)) & mask,
                "flood construction must alias perfectly under the plain fold"
            );
        }
        let idx = |salt: u64| -> Vec<u64> {
            flood.iter().map(|l| hash_line_salted(*l, salt) & mask).collect()
        };
        let (i1, i2) = (idx(s1), idx(s2));
        let distinct = |v: &[u64]| {
            let mut s: Vec<u64> = v.to_vec();
            s.sort_unstable();
            s.dedup();
            s.len()
        };
        prop_assert!(
            distinct(&i1) >= 8 && distinct(&i2) >= 8,
            "a keyed fold must scatter the flood (got {} and {} distinct slots of 64 lines)",
            distinct(&i1), distinct(&i2)
        );
        prop_assert_ne!(i1, i2, "distinct salts must give distinct index sequences");
    }

    #[test]
    fn none_filter_never_rejects(
        lines in prop::collection::vec(any::<u64>(), 1..100),
    ) {
        let cfg = FilterConfig { kind: FilterKind::None, ..FilterConfig::default() };
        let mut f = PollutionFilter::new(&cfg);
        for (i, l) in lines.iter().enumerate() {
            let req = PrefetchRequest {
                line: LineAddr(*l),
                trigger_pc: *l ^ 0xabcd,
                source: PrefetchSource::Nsp,
                tenant: 0,
                depth: 1,
            };
            prop_assert!(f.should_prefetch(&req, i as u64));
            // Train adversarially; it must still never reject.
            f.on_eviction(&req.origin(), false);
        }
        prop_assert_eq!(f.stats().rejected, 0);
    }

    #[test]
    fn filter_decision_is_stateless_between_lookups(
        kind in prop_oneof![Just(FilterKind::Pa), Just(FilterKind::Pc)],
        line in any::<u64>(),
        pc in any::<u64>(),
    ) {
        // Two consecutive lookups with no intervening training agree
        // (lookups must not themselves mutate the prediction).
        let cfg = FilterConfig { kind, ..FilterConfig::default() };
        let mut f = PollutionFilter::new(&cfg);
        let req = PrefetchRequest { line: LineAddr(line), trigger_pc: pc, source: PrefetchSource::Sdp, tenant: 0, depth: 1 };
        let a = f.should_prefetch(&req, 0);
        let b = f.should_prefetch(&req, 1);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn consistent_training_converges(
        kind in prop_oneof![Just(FilterKind::Pa), Just(FilterKind::Pc)],
        line in any::<u64>(),
        pc in any::<u64>(),
        good in any::<bool>(),
    ) {
        // A key class with a perfectly consistent outcome ends up with the
        // matching steady-state decision after a handful of trainings.
        let cfg = FilterConfig { kind, ..FilterConfig::default() };
        let mut f = PollutionFilter::new(&cfg);
        let req = PrefetchRequest { line: LineAddr(line), trigger_pc: pc, source: PrefetchSource::Nsp, tenant: 0, depth: 1 };
        for _ in 0..4 {
            f.on_eviction(&req.origin(), good);
        }
        prop_assert_eq!(f.should_prefetch(&req, 0), good);
    }

    #[test]
    fn recovery_never_resurrects_without_a_matching_miss(
        line in any::<u64>(),
        other in any::<u64>(),
        pc in any::<u64>(),
    ) {
        prop_assume!(line != other);
        let cfg = FilterConfig { kind: FilterKind::Pa, ..FilterConfig::default() };
        let mut f = PollutionFilter::new(&cfg);
        let req = PrefetchRequest { line: LineAddr(line), trigger_pc: pc, source: PrefetchSource::Nsp, tenant: 0, depth: 1 };
        f.on_eviction(&req.origin(), false);
        f.on_eviction(&req.origin(), false);
        prop_assert!(!f.should_prefetch(&req, 10));
        // A miss on an unrelated line must not train this key...
        // (unless it aliases to the same reject-log slot AND table key,
        // which different lines cannot: the log stores the exact line).
        f.on_demand_miss(LineAddr(other), 11);
        prop_assert!(!f.should_prefetch(&req, 12));
    }

    #[test]
    fn perceptron_weights_saturate_symmetrically_in_unit_steps(
        line in any::<u64>(),
        pc in any::<u64>(),
        depth in any::<u8>(),
        bucket in 0u8..8,
        salt in any::<u64>(),
        outcomes in prop::collection::vec(any::<bool>(), 0..120),
    ) {
        // Signed analogue of `counter_moves_monotonically_in_unit_steps`:
        // whatever the training history, the weight sum moves by at most
        // FEATURE_COUNT per step, in the trained direction, and every
        // individual weight stays inside ±WEIGHT_MAX. Driving one outcome
        // long enough pins the sum at exactly ±(FEATURE_COUNT * WEIGHT_MAX)
        // — saturation is symmetric around zero, unlike the unsigned
        // counters' [0, max] band.
        let mut p = Perceptron::new(1024, 2, CounterInit::WeaklyGood, 1);
        let f = Features::of(LineAddr(line), pc, depth, bucket);
        let mut prev = p.sum(&f, 0, salt);
        for good in outcomes {
            p.train(&f, 0, salt, good);
            let s = p.sum(&f, 0, salt);
            if good {
                prop_assert!(s >= prev, "good training must not lower the sum");
            } else {
                prop_assert!(s <= prev, "bad training must not raise the sum");
            }
            prop_assert!((s - prev).abs() <= FEATURE_COUNT as i32, "unit steps per table");
            prop_assert!(
                p.weight_snapshot().iter().flatten().all(|w| (-WEIGHT_MAX..=WEIGHT_MAX).contains(w))
            );
            prev = s;
        }
        let bound = FEATURE_COUNT as i32 * WEIGHT_MAX as i32;
        for _ in 0..2 * WEIGHT_MAX as usize {
            p.train(&f, 0, salt, true);
        }
        prop_assert_eq!(p.sum(&f, 0, salt), bound);
        for _ in 0..4 * WEIGHT_MAX as usize {
            p.train(&f, 0, salt, false);
        }
        prop_assert_eq!(p.sum(&f, 0, salt), -bound);
    }

    #[test]
    fn perceptron_prediction_is_monotone_in_every_feature_weight(
        line in any::<u64>(),
        pc in any::<u64>(),
        depth in any::<u8>(),
        bucket in 0u8..8,
        salt in any::<u64>(),
        pre in prop::collection::vec(any::<bool>(), 0..60),
    ) {
        // From ANY reachable weight state, one good training step never
        // flips an admitted prefetch to rejected, and one bad step never
        // flips a rejected prefetch to admitted. Each step raises (lowers)
        // every selected feature weight by at most one, so this is
        // monotonicity of the decision in each feature's weight — a
        // perceptron whose admit region were non-monotone in a weight would
        // un-learn under consistent feedback.
        let mut p = Perceptron::new(512, 2, CounterInit::WeaklyGood, 1);
        let f = Features::of(LineAddr(line), pc, depth, bucket);
        for good in pre {
            p.train(&f, 0, salt, good);
        }
        let mut up = p.clone();
        up.train(&f, 0, salt, true);
        prop_assert!(
            !p.predict(&f, 0, salt) || up.predict(&f, 0, salt),
            "raising weights must not reject an admitted prefetch"
        );
        let mut down = p.clone();
        down.train(&f, 0, salt, false);
        prop_assert!(
            p.predict(&f, 0, salt) || !down.predict(&f, 0, salt),
            "lowering weights must not admit a rejected prefetch"
        );
    }

    #[test]
    fn perceptron_feature_fold_covers_every_row_for_any_salt(
        rows_log2 in 3u32..13,
        salt in any::<u64>(),
        high in any::<u64>(),
    ) {
        // Every perceptron feature table is indexed
        // `fold16_salted(value, salt) & (rows - 1)` with power-of-two rows.
        // A sweep of 2^k consecutive feature values (arbitrary upper bits)
        // must cover all 2^k rows for ANY salt — this is what guarantees
        // the bounded features (page offset: 64 values into 64 rows, depth:
        // 16 into 16, accuracy: 8 into 8) waste no rows, and that the big
        // PC/line tables keep the unsalted coverage property under keying.
        let rows = 1usize << rows_log2;
        let mask = (rows - 1) as u64;
        let mut hit = vec![false; rows];
        for v in 0..rows as u64 {
            hit[(fold16_salted((high << 16) | v, salt) & mask) as usize] = true;
        }
        prop_assert!(hit.iter().all(|&h| h), "sweep must cover all {} rows", rows);
    }

    #[test]
    fn filter_snapshot_round_trips_through_json_text(
        weights in prop::collection::vec(
            prop::collection::vec(-15i8..=15, 0..12), 0..6),
        counters in prop::collection::vec(
            prop::collection::vec(0u8..=7, 0..12), 0..6),
    ) {
        // Both snapshot arms survive a full serialize -> text -> parse ->
        // deserialize cycle: the lockstep harness and the committed repro
        // corpus depend on the weight/counter state being diffable through
        // its JSON rendering without loss.
        use ppf_types::json::{FromJson, ToJson};
        for snap in [FilterSnapshot::Weights(weights.clone()), FilterSnapshot::Counters(counters.clone())] {
            let text = snap.to_json().to_string();
            let back = FilterSnapshot::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
            prop_assert_eq!(back, snap);
        }
    }
}
