//! Adaptive filter engagement (§5.2.1, "advanced features").
//!
//! The paper observes that filtering a *high-accuracy* prefetcher (SDP with
//! its 11.7 good/bad ratio) costs more good prefetches than it saves, and
//! suggests the filter "can be made adaptive to start filtering when the
//! prefetching becomes too aggressive (with low accuracy)". This gate
//! estimates recent prefetch accuracy over a sliding window of eviction
//! outcomes and only engages the filter while accuracy is below a threshold
//! — with hysteresis so it does not flap at the boundary.

/// Sliding-window accuracy estimator with hysteresis.
#[derive(Debug, Clone)]
pub struct AdaptiveGate {
    /// Engage filtering when accuracy drops below this.
    engage_below: f64,
    /// Disengage when accuracy recovers above this (threshold + margin).
    disengage_above: f64,
    window: u32,
    good_in_window: u32,
    seen_in_window: u32,
    /// Running totals carried between windows (exponentially aged).
    accuracy: f64,
    engaged: bool,
    warmed_up: bool,
}

impl AdaptiveGate {
    /// Hysteresis margin added to the engage threshold for disengagement.
    const HYSTERESIS: f64 = 0.05;

    /// A gate that engages filtering when windowed accuracy `< threshold`.
    pub fn new(threshold: f64, window: u32) -> Self {
        assert!((0.0..=1.0).contains(&threshold));
        assert!(window > 0);
        AdaptiveGate {
            engage_below: threshold,
            disengage_above: (threshold + Self::HYSTERESIS).min(1.0),
            window,
            good_in_window: 0,
            seen_in_window: 0,
            accuracy: 1.0,
            engaged: false,
            warmed_up: false,
        }
    }

    /// Whether the filter should currently be applied.
    #[inline]
    pub fn engaged(&self) -> bool {
        self.engaged
    }

    /// Most recent windowed accuracy estimate (1.0 before warm-up).
    pub fn accuracy(&self) -> f64 {
        self.accuracy
    }

    /// Record one eviction outcome (RIB value).
    pub fn observe(&mut self, good: bool) {
        self.seen_in_window += 1;
        if good {
            self.good_in_window += 1;
        }
        if self.seen_in_window >= self.window {
            let fresh = self.good_in_window as f64 / self.seen_in_window as f64;
            // Blend with history so one window cannot whipsaw the gate.
            self.accuracy = if self.warmed_up {
                0.5 * self.accuracy + 0.5 * fresh
            } else {
                fresh
            };
            self.warmed_up = true;
            self.good_in_window = 0;
            self.seen_in_window = 0;
            if self.engaged {
                if self.accuracy > self.disengage_above {
                    self.engaged = false;
                }
            } else if self.accuracy < self.engage_below {
                self.engaged = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_disengaged() {
        let g = AdaptiveGate::new(0.5, 8);
        assert!(!g.engaged());
        assert_eq!(g.accuracy(), 1.0);
    }

    #[test]
    fn engages_on_low_accuracy() {
        let mut g = AdaptiveGate::new(0.5, 8);
        for _ in 0..8 {
            g.observe(false);
        }
        assert!(g.engaged(), "all-bad window must engage the filter");
        assert!(g.accuracy() < 0.5);
    }

    #[test]
    fn stays_disengaged_on_high_accuracy() {
        let mut g = AdaptiveGate::new(0.5, 8);
        for _ in 0..64 {
            g.observe(true);
        }
        assert!(!g.engaged());
    }

    #[test]
    fn disengages_after_recovery_with_hysteresis() {
        let mut g = AdaptiveGate::new(0.5, 4);
        for _ in 0..8 {
            g.observe(false);
        }
        assert!(g.engaged());
        // Recovery: needs accuracy above threshold + margin, and the
        // blending means several good windows are required.
        for _ in 0..32 {
            g.observe(true);
        }
        assert!(!g.engaged(), "sustained accuracy disengages the gate");
    }

    #[test]
    fn partial_window_does_not_update() {
        let mut g = AdaptiveGate::new(0.5, 100);
        for _ in 0..99 {
            g.observe(false);
        }
        assert!(!g.engaged(), "window not yet complete");
        g.observe(false);
        assert!(g.engaged());
    }

    #[test]
    #[should_panic]
    fn zero_window_rejected() {
        AdaptiveGate::new(0.5, 0);
    }
}
