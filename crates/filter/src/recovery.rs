//! Rejected-prefetch verification (the filter's recovery path).
//!
//! A strictly eviction-trained filter is *absorbing*: once a history-table
//! counter falls into the reject region, prefetches for its keys stop being
//! issued, so no evictions of those prefetches ever occur and the counter
//! can never be trained again. Any key class whose outcome stream is not
//! 100% good eventually sees two consecutive bad outcomes and dies
//! permanently — over a 300M-instruction run (the paper's length) that
//! would filter out essentially *all* prefetches, not the ~50%-of-good /
//! ~97%-of-bad split Figure 4 reports. The paper does not spell out its
//! recovery mechanism, but its sustained steady-state numbers require one.
//!
//! This module implements the natural hardware choice, equivalent to a
//! small victim/confirmation buffer: when the filter rejects a prefetch it
//! records the target line in a direct-mapped [`RejectLog`]; if a demand
//! miss to that line arrives while the record is live, the rejection was a
//! *misprediction* (the prefetch would have been referenced) and the
//! counter is trained good. Useless rejections are never demanded soon
//! after, leave the log silently, and the counter stays bad — so
//! consistently-bad keys remain filtered while good keys knocked out by an
//! unlucky streak recover. The structure is address-only (no data), the
//! same cost class as the prefetch queue.

use ppf_types::LineAddr;

/// One live rejection record: the rejected target, the history-table key
/// whose counter vetoed it, and when the rejection happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    line: LineAddr,
    key: u64,
    /// Which history table vetoed (0 unless split-by-source).
    table: u8,
    /// Tenant whose lookup was rejected — recovery must train the same
    /// partition the veto came from.
    tenant: u8,
    stamp: u64,
}

/// Direct-mapped log of recently rejected prefetch targets.
#[derive(Debug, Clone)]
pub struct RejectLog {
    entries: Box<[Option<Entry>]>,
    mask: u64,
    /// Freshness window in core cycles: roughly the residence time of a
    /// line in the small L1. A demand miss later than this would not have
    /// found the prefetched line alive anyway (the RIB would have read 0),
    /// so it is not evidence of a misprediction.
    window: u64,
}

/// Default log size: matches the history table's 4K entries at a fraction
/// of its cost (line number + key per slot).
pub const DEFAULT_REJECT_LOG: usize = 4096;

/// Default freshness window in core cycles — the order of a line's
/// residence time in the paper's 8KB L1 under aggressive prefetch fill
/// pressure. A demand miss arriving later would not have been covered by
/// the prefetch anyway (the line would have been evicted before use, RIB
/// = 0), so it does not count as a misprediction.
pub const DEFAULT_WINDOW: u64 = 400;

impl RejectLog {
    /// A log with `entries` slots (power of two) and the default window.
    pub fn new(entries: usize) -> Self {
        Self::with_window(entries, DEFAULT_WINDOW)
    }

    /// A log with an explicit freshness window.
    pub fn with_window(entries: usize, window: u64) -> Self {
        assert!(entries.is_power_of_two());
        assert!(window > 0);
        RejectLog {
            entries: vec![None; entries].into_boxed_slice(),
            mask: (entries - 1) as u64,
            window,
        }
    }

    #[inline]
    fn slot(&self, line: LineAddr) -> usize {
        // Lines are already uniformly distributed; low bits index directly.
        (line.0 & self.mask) as usize
    }

    /// Record a rejection of `line` decided by `key` in history table
    /// `table` for `tenant` at cycle `now`. Overwrites any previous record
    /// in the slot.
    #[inline]
    pub fn record(&mut self, line: LineAddr, key: u64, table: u8, tenant: u8, now: u64) {
        let slot = self.slot(line);
        self.entries[slot] = Some(Entry {
            line,
            key,
            table,
            tenant,
            stamp: now,
        });
    }

    /// A demand miss to `line` arrived at cycle `now`: if a *fresh*
    /// rejection matches, return the `(key, table, tenant)` to train good
    /// (consuming the record). Stale matches are dropped without training.
    #[inline]
    pub fn check_miss(&mut self, line: LineAddr, now: u64) -> Option<(u64, u8, u8)> {
        let slot = self.slot(line);
        match self.entries[slot] {
            Some(e) if e.line == line => {
                self.entries[slot] = None;
                (now.saturating_sub(e.stamp) <= self.window).then_some((e.key, e.table, e.tenant))
            }
            _ => None,
        }
    }

    /// Number of live records (diagnostics; includes stale ones not yet
    /// probed or overwritten).
    pub fn live(&self) -> usize {
        self.entries.iter().flatten().count()
    }
}

impl Default for RejectLog {
    fn default() -> Self {
        RejectLog::new(DEFAULT_REJECT_LOG)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_matches_miss() {
        let mut log = RejectLog::new(16);
        log.record(LineAddr(5), 99, 0, 0, 10);
        assert_eq!(log.check_miss(LineAddr(5), 20), Some((99, 0, 0)));
        // Consumed: a second miss does not re-train.
        assert_eq!(log.check_miss(LineAddr(5), 21), None);
    }

    #[test]
    fn non_matching_miss_is_ignored() {
        let mut log = RejectLog::new(16);
        log.record(LineAddr(5), 99, 0, 0, 10);
        assert_eq!(log.check_miss(LineAddr(6), 11), None);
        assert_eq!(
            log.check_miss(LineAddr(5), 12),
            Some((99, 0, 0)),
            "record still live"
        );
    }

    #[test]
    fn aliasing_overwrites() {
        let mut log = RejectLog::new(16);
        log.record(LineAddr(5), 1, 0, 0, 0);
        log.record(LineAddr(21), 2, 0, 0, 1); // same slot in a 16-entry log
        assert_eq!(log.check_miss(LineAddr(5), 2), None, "overwritten");
        assert_eq!(log.check_miss(LineAddr(21), 3), Some((2, 0, 0)));
    }

    #[test]
    fn live_count() {
        let mut log = RejectLog::new(16);
        assert_eq!(log.live(), 0);
        log.record(LineAddr(1), 0, 0, 0, 0);
        log.record(LineAddr(2), 0, 0, 0, 0);
        assert_eq!(log.live(), 2);
        log.check_miss(LineAddr(1), 1);
        assert_eq!(log.live(), 1);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_rejected() {
        RejectLog::new(100);
    }

    #[test]
    fn stale_records_do_not_train() {
        let mut log = RejectLog::with_window(16, 4);
        log.record(LineAddr(5), 99, 0, 3, 100);
        assert_eq!(log.check_miss(LineAddr(5), 105), None, "record went stale");
        assert_eq!(log.live(), 0, "stale record consumed");
    }

    #[test]
    fn fresh_record_within_window_trains() {
        let mut log = RejectLog::with_window(16, 4);
        log.record(LineAddr(5), 99, 0, 3, 100);
        assert_eq!(log.check_miss(LineAddr(5), 103), Some((99, 0, 3)));
    }
}
