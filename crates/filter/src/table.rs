//! The single-level history table (§4, Figure 3).
//!
//! A direct-indexed array of saturating counters. 4096 2-bit entries = 1KB,
//! the paper's default; §5.3 sweeps 1024 to 16384 entries. Counters are
//! stored as raw `u8`s in a flat boxed slice — the hot path is a masked
//! index plus a byte compare, no hashing beyond the fold done by the caller
//! and no allocation.
//!
//! # Per-tenant partitioning
//!
//! The hardened multi-tenant configuration (DESIGN.md §12) splits the same
//! storage into `P` equal partitions: a request from tenant `t` indexes only
//! the `t % P` region (`base + (key & region_mask)`), so a hostile tenant's
//! eviction feedback is physically unable to touch a victim tenant's
//! counters. `P = 1` (the default) is bit-for-bit the paper's shared table;
//! the unpartitioned entry points delegate with tenant 0.

use crate::counter::SatCounter;
use ppf_types::CounterInit;

/// Direct-indexed table of saturating counters.
#[derive(Debug, Clone)]
pub struct HistoryTable {
    counters: Box<[u8]>,
    mask: u64,
    bits: u8,
    max: u8,
    /// Threshold: values strictly above predict good.
    threshold: u8,
    /// Tenant partitions (1 = shared table). Power of two dividing the
    /// entry count, so each partition keeps a power-of-two slot range.
    partitions: u32,
}

impl HistoryTable {
    /// A table of `entries` counters (power of two) of `bits` width, all
    /// initialized weakly-good so unseen prefetches are issued (the
    /// paper's configuration).
    pub fn new(entries: usize, bits: u8) -> Self {
        Self::with_init(entries, bits, CounterInit::WeaklyGood)
    }

    /// A table with an explicit initial counter state (ablation).
    pub fn with_init(entries: usize, bits: u8, init: CounterInit) -> Self {
        Self::with_partitions(entries, bits, init, 1)
    }

    /// A table split into `partitions` equal per-tenant regions (1 = the
    /// shared table of the paper).
    pub fn with_partitions(entries: usize, bits: u8, init: CounterInit, partitions: u32) -> Self {
        assert!(entries.is_power_of_two(), "table entries must be 2^k");
        assert!((1..=8).contains(&bits));
        assert!(
            partitions.is_power_of_two() && (partitions as usize) <= entries,
            "partitions must be 2^k and at most the entry count"
        );
        let init = match init {
            CounterInit::WeaklyGood => SatCounter::weakly_good(bits),
            CounterInit::StronglyGood => SatCounter::strongly_good(bits),
            CounterInit::WeaklyBad => SatCounter::weakly_bad(bits),
        };
        HistoryTable {
            counters: vec![init.value(); entries].into_boxed_slice(),
            mask: (entries / partitions as usize - 1) as u64,
            bits,
            max: init.max(),
            threshold: init.max() / 2,
            partitions,
        }
    }

    /// Partition count (1 = shared).
    pub fn partitions(&self) -> u32 {
        self.partitions
    }

    /// Entry count.
    pub fn entries(&self) -> usize {
        self.counters.len()
    }

    /// Counter width in bits.
    pub fn counter_bits(&self) -> u8 {
        self.bits
    }

    /// Table size in bytes (entries × width / 8) — what Table 1 reports.
    pub fn size_bytes(&self) -> usize {
        self.counters.len() * self.bits as usize / 8
    }

    #[inline]
    fn slot(&self, key: u64, tenant: u8) -> usize {
        let region = (tenant as u32 % self.partitions) as usize * (self.mask as usize + 1);
        region + (key & self.mask) as usize
    }

    /// Does the counter for `key` predict a good prefetch? (Shared-table
    /// form: tenant 0.)
    #[inline]
    pub fn predict_good(&self, key: u64) -> bool {
        self.predict_good_for(key, 0)
    }

    /// Does tenant `tenant`'s counter for `key` predict a good prefetch?
    #[inline]
    pub fn predict_good_for(&self, key: u64, tenant: u8) -> bool {
        self.counters[self.slot(key, tenant)] > self.threshold
    }

    /// Raw counter value for `key` (tests/introspection; tenant 0).
    pub fn value(&self, key: u64) -> u8 {
        self.value_for(key, 0)
    }

    /// Raw counter value for tenant `tenant`'s `key`.
    pub fn value_for(&self, key: u64, tenant: u8) -> u8 {
        self.counters[self.slot(key, tenant)]
    }

    /// The full counter array, in slot order (differential-oracle
    /// snapshots).
    pub fn counters(&self) -> &[u8] {
        &self.counters
    }

    /// Train the counter for `key` with one outcome (tenant 0).
    #[inline]
    pub fn train(&mut self, key: u64, good: bool) {
        self.train_for(key, 0, good);
    }

    /// Train tenant `tenant`'s counter for `key` with one outcome.
    #[inline]
    pub fn train_for(&mut self, key: u64, tenant: u8, good: bool) {
        let slot = self.slot(key, tenant);
        let v = self.counters[slot];
        self.counters[slot] = if good {
            if v < self.max {
                v + 1
            } else {
                v
            }
        } else {
            v.saturating_sub(1)
        };
    }

    /// Fraction of entries currently predicting good (diagnostics).
    pub fn fraction_good(&self) -> f64 {
        let good = self
            .counters
            .iter()
            .filter(|&&v| v > self.threshold)
            .count();
        good as f64 / self.counters.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_table_predicts_all_good() {
        let t = HistoryTable::new(1024, 2);
        assert!((t.fraction_good() - 1.0).abs() < 1e-12);
        for key in [0u64, 5, 1023, 1024, u64::MAX] {
            assert!(t.predict_good(key));
        }
    }

    #[test]
    fn paper_default_is_1kb() {
        let t = HistoryTable::new(4096, 2);
        assert_eq!(t.size_bytes(), 1024);
    }

    #[test]
    fn section_5_3_sizes() {
        // 1024 entries = 256B ... 16384 entries = 4KB (paper §5.3).
        for (entries, bytes) in [
            (1024, 256),
            (2048, 512),
            (4096, 1024),
            (8192, 2048),
            (16384, 4096),
        ] {
            assert_eq!(HistoryTable::new(entries, 2).size_bytes(), bytes);
        }
    }

    #[test]
    fn init_variants_control_first_touch() {
        let good = HistoryTable::with_init(16, 2, CounterInit::StronglyGood);
        assert!(good.predict_good(3));
        let bad = HistoryTable::with_init(16, 2, CounterInit::WeaklyBad);
        assert!(!bad.predict_good(3));
        let mut bad = bad;
        bad.train(3, true);
        assert!(bad.predict_good(3), "one good outcome admits the key");
    }

    #[test]
    fn train_and_flip() {
        let mut t = HistoryTable::new(16, 2);
        t.train(3, false);
        assert!(!t.predict_good(3), "weakly-good flips after one bad");
        assert!(t.predict_good(4), "neighbours untouched");
        t.train(3, true);
        assert!(t.predict_good(3));
    }

    #[test]
    fn aliasing_by_mask() {
        let mut t = HistoryTable::new(16, 2);
        t.train(1, false);
        t.train(1, false);
        // Key 17 aliases to the same slot in a 16-entry table.
        assert!(!t.predict_good(17), "aliased keys share a counter");
    }

    #[test]
    fn saturation_bounds() {
        let mut t = HistoryTable::new(8, 2);
        for _ in 0..10 {
            t.train(0, true);
        }
        assert_eq!(t.value(0), 3);
        for _ in 0..10 {
            t.train(0, false);
        }
        assert_eq!(t.value(0), 0);
    }

    #[test]
    fn fraction_good_tracks_training() {
        let mut t = HistoryTable::new(4, 2);
        t.train(0, false); // 4 entries, 1 flipped bad
        assert!((t.fraction_good() - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_rejected() {
        HistoryTable::new(1000, 2);
    }

    #[test]
    fn single_partition_is_the_shared_table() {
        let mut shared = HistoryTable::new(16, 2);
        let mut part1 = HistoryTable::with_partitions(16, 2, CounterInit::WeaklyGood, 1);
        for (key, tenant, good) in [(3u64, 0u8, false), (3, 2, false), (17, 1, true)] {
            shared.train_for(key, tenant, good);
            part1.train_for(key, tenant, good);
        }
        assert_eq!(shared.counters(), part1.counters());
        // With one partition every tenant shares every counter.
        assert_eq!(part1.value_for(3, 0), part1.value_for(3, 3));
    }

    #[test]
    fn partitions_isolate_tenants() {
        let mut t = HistoryTable::with_partitions(16, 2, CounterInit::WeaklyGood, 4);
        // Tenant 1 saturates its counter for key 3 bad.
        t.train_for(3, 1, false);
        t.train_for(3, 1, false);
        assert!(!t.predict_good_for(3, 1));
        // Tenants 0, 2 and 3 are untouched — the poisoning cannot escape
        // the attacker's partition.
        for victim in [0u8, 2, 3] {
            assert!(t.predict_good_for(3, victim), "tenant {victim} polluted");
        }
        // Keys alias within a partition at entries/partitions, not entries.
        t.train_for(7, 0, false);
        assert_eq!(t.value_for(7 + 4, 0), t.value_for(7, 0), "4-slot regions");
    }

    #[test]
    fn partitioned_slots_stay_in_bounds() {
        let mut t = HistoryTable::with_partitions(32, 2, CounterInit::WeaklyGood, 4);
        for tenant in 0..=7u8 {
            for key in [0u64, 31, 32, u64::MAX] {
                t.train_for(key, tenant, false);
                let _ = t.predict_good_for(key, tenant);
            }
        }
        // Tenant IDs past the partition count wrap onto existing regions.
        assert_eq!(t.value_for(0, 1), t.value_for(0, 5));
    }
}
