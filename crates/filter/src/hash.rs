//! Hash/fold functions that map a line address or PC onto the history table.
//!
//! Hardware history tables index with a few low-order bits, usually after
//! XOR-folding higher bits down to decorrelate strided patterns. We fold the
//! full 64-bit key in 16-bit halves — cheap in hardware (a tree of XORs) and
//! enough to spread Table 2's working sets across a 4K-entry table. The
//! table applies its own power-of-two mask to the returned value.
//!
//! # Salted (keyed) variants
//!
//! The plain fold is public knowledge, and it is linear over XOR:
//! `fold16(a ^ b) = fold16(a) ^ fold16(b)`. An adversary exploits that to
//! build *aliasing floods* — unbounded address sets that all land in one
//! table index (e.g. every `t | (h << 16) | (h << 32)` folds to `t`, for
//! any `h`). The salted variants (DESIGN.md §12) defeat the construction by
//! passing each 16-bit half through its own salt-keyed affine permutation
//! `x ↦ (x ^ a) * m + b (mod 2^16)` *before* the fold. Odd multipliers make
//! every permutation bijective on the low `k` bits for all `k ≤ 16`, so a
//! sweep of 2^k consecutive addresses still covers all 2^k masked indices
//! (the coverage property the unsalted hash has, asserted in the property
//! tests) — but the multiply does not distribute over XOR, so cross-half
//! cancellation no longer works and collision sets crafted against the
//! public hash are scattered by an unknown salt. Salt 0 is the identity:
//! the salted functions then return exactly the unsalted hash.

use ppf_types::{LineAddr, Pc};

/// SplitMix64 finalizer: expands the salt into per-half permutation keys.
/// A pure bit-mixing function (no RNG state) so the derived keys are a
/// deterministic function of the configured salt alone.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Salt-keyed affine permutation of one 16-bit half: `(x ^ a) * m + b`
/// modulo 2^16, with `m` forced odd. Each component is bijective modulo
/// 2^k for every `k ≤ 16`, which is exactly what preserves the index-sweep
/// coverage guarantee under the table's power-of-two mask.
#[inline]
fn scramble16(half: u64, key: u64) -> u64 {
    let a = key & 0xffff;
    let m = (key >> 16) | 1;
    let b = key >> 48;
    ((half ^ a).wrapping_mul(m)).wrapping_add(b) & 0xffff
}

/// Keyed XOR-fold: scramble each 16-bit half with its own salt-derived
/// affine permutation, then fold. `salt == 0` is the plain [`fold16`].
#[inline]
pub fn fold16_salted(v: u64, salt: u64) -> u64 {
    if salt == 0 {
        return fold16(v);
    }
    scramble16(v & 0xffff, mix64(salt ^ 0x9e37_79b9_7f4a_7c15))
        ^ scramble16((v >> 16) & 0xffff, mix64(salt ^ 0xd1b5_4a32_d192_ed03))
        ^ scramble16((v >> 32) & 0xffff, mix64(salt ^ 0x8cb9_2ba7_2f3d_8dd7))
        ^ scramble16(v >> 48, mix64(salt ^ 0x52db_cc63_35f6_11c9))
}

/// XOR-fold a 64-bit value to 16 bits. Keeps low bits dominant (hardware
/// tables index with low bits) while mixing in upper address bits so that
/// large strides do not alias trivially.
#[inline]
pub fn fold16(v: u64) -> u64 {
    let v = v ^ (v >> 16) ^ (v >> 32) ^ (v >> 48);
    v & 0xffff
}

/// Index key for the PA-based filter: the cache-line address, folded.
#[inline]
pub fn hash_line(line: LineAddr) -> u64 {
    fold16(line.0)
}

/// Index key for the PC-based filter: the trigger PC with the instruction
/// alignment bits stripped (instructions are 4 bytes), folded.
#[inline]
pub fn hash_pc(pc: Pc) -> u64 {
    fold16(pc >> 2)
}

/// Keyed [`hash_line`]; `salt == 0` is the plain hash.
#[inline]
pub fn hash_line_salted(line: LineAddr, salt: u64) -> u64 {
    fold16_salted(line.0, salt)
}

/// Keyed [`hash_pc`]; `salt == 0` is the plain hash.
#[inline]
pub fn hash_pc_salted(pc: Pc, salt: u64) -> u64 {
    fold16_salted(pc >> 2, salt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_fits_16_bits() {
        for v in [0u64, 1, 0xffff, 0x10000, u64::MAX, 0xdead_beef_cafe_f00d] {
            assert!(fold16(v) <= 0xffff);
        }
    }

    #[test]
    fn fold_is_deterministic() {
        assert_eq!(fold16(0x1234_5678_9abc_def0), fold16(0x1234_5678_9abc_def0));
    }

    #[test]
    fn nearby_lines_do_not_collide() {
        // Sequential lines must map to distinct entries — otherwise the
        // PA filter could not distinguish a stream's members.
        let base = 0x40_0000u64;
        let keys: Vec<u64> = (0..256).map(|i| hash_line(LineAddr(base + i))).collect();
        let mut dedup = keys.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len());
    }

    #[test]
    fn pc_alignment_bits_are_stripped() {
        // PCs advance by 4; adjacent instructions must hash differently,
        // while the 2 low (always-zero) bits must not waste index space.
        assert_ne!(hash_pc(0x1000), hash_pc(0x1004));
        let keys: Vec<u64> = (0..512).map(|i| hash_pc(0x1000 + 4 * i)).collect();
        let mut dedup = keys.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len(), "sequential PCs should not alias");
    }

    #[test]
    fn high_bits_affect_hash() {
        // Two lines 2^32 apart must not always collide.
        let a = hash_line(LineAddr(0x1000));
        let b = hash_line(LineAddr(0x1000 + (1 << 32)));
        assert_ne!(a, b);
    }

    #[test]
    fn salt_zero_is_the_plain_hash() {
        for v in [0u64, 1, 0xffff, 0x10000, u64::MAX, 0xdead_beef_cafe_f00d] {
            assert_eq!(fold16_salted(v, 0), fold16(v));
        }
        assert_eq!(
            hash_line_salted(LineAddr(0x40_0123), 0),
            hash_line(LineAddr(0x40_0123))
        );
        assert_eq!(hash_pc_salted(0x1004, 0), hash_pc(0x1004));
    }

    #[test]
    fn salted_fold_fits_16_bits_and_is_deterministic() {
        for v in [0u64, 7, 0xffff_0001, u64::MAX] {
            for salt in [1u64, 42, 0xfeed_face_dead_beef] {
                let h = fold16_salted(v, salt);
                assert!(h <= 0xffff);
                assert_eq!(h, fold16_salted(v, salt));
            }
        }
    }

    #[test]
    fn salt_breaks_xor_linearity() {
        // The attack surface of the plain fold is its XOR-linearity; a
        // nonzero salt must not preserve it, or crafted collision sets
        // would survive salting unchanged.
        let salt = 0x0123_4567_89ab_cdef;
        let (a, b) = (0x1111_2222_3333_4444u64, 0x5555_6666_7777_8888u64);
        assert_eq!(fold16(a ^ b), fold16(a) ^ fold16(b));
        assert_ne!(
            fold16_salted(a ^ b, salt),
            fold16_salted(a, salt) ^ fold16_salted(b, salt)
        );
    }

    #[test]
    fn salted_sequential_lines_do_not_collide() {
        // The no-alias guarantee for streams must survive salting.
        for salt in [1u64, 0x00ff_00ff, 0xabcdef0123456789] {
            let base = 0x40_0000u64;
            let keys: Vec<u64> = (0..256)
                .map(|i| hash_line_salted(LineAddr(base + i), salt))
                .collect();
            let mut dedup = keys.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), keys.len(), "salt {salt:#x}");
        }
    }
}
