//! Hash/fold functions that map a line address or PC onto the history table.
//!
//! Hardware history tables index with a few low-order bits, usually after
//! XOR-folding higher bits down to decorrelate strided patterns. We fold the
//! full 64-bit key in 16-bit halves — cheap in hardware (a tree of XORs) and
//! enough to spread Table 2's working sets across a 4K-entry table. The
//! table applies its own power-of-two mask to the returned value.

use ppf_types::{LineAddr, Pc};

/// XOR-fold a 64-bit value to 16 bits. Keeps low bits dominant (hardware
/// tables index with low bits) while mixing in upper address bits so that
/// large strides do not alias trivially.
#[inline]
pub fn fold16(v: u64) -> u64 {
    let v = v ^ (v >> 16) ^ (v >> 32) ^ (v >> 48);
    v & 0xffff
}

/// Index key for the PA-based filter: the cache-line address, folded.
#[inline]
pub fn hash_line(line: LineAddr) -> u64 {
    fold16(line.0)
}

/// Index key for the PC-based filter: the trigger PC with the instruction
/// alignment bits stripped (instructions are 4 bytes), folded.
#[inline]
pub fn hash_pc(pc: Pc) -> u64 {
    fold16(pc >> 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_fits_16_bits() {
        for v in [0u64, 1, 0xffff, 0x10000, u64::MAX, 0xdead_beef_cafe_f00d] {
            assert!(fold16(v) <= 0xffff);
        }
    }

    #[test]
    fn fold_is_deterministic() {
        assert_eq!(fold16(0x1234_5678_9abc_def0), fold16(0x1234_5678_9abc_def0));
    }

    #[test]
    fn nearby_lines_do_not_collide() {
        // Sequential lines must map to distinct entries — otherwise the
        // PA filter could not distinguish a stream's members.
        let base = 0x40_0000u64;
        let keys: Vec<u64> = (0..256).map(|i| hash_line(LineAddr(base + i))).collect();
        let mut dedup = keys.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len());
    }

    #[test]
    fn pc_alignment_bits_are_stripped() {
        // PCs advance by 4; adjacent instructions must hash differently,
        // while the 2 low (always-zero) bits must not waste index space.
        assert_ne!(hash_pc(0x1000), hash_pc(0x1004));
        let keys: Vec<u64> = (0..512).map(|i| hash_pc(0x1000 + 4 * i)).collect();
        let mut dedup = keys.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len(), "sequential PCs should not alias");
    }

    #[test]
    fn high_bits_affect_hash() {
        // Two lines 2^32 apart must not always collide.
        let a = hash_line(LineAddr(0x1000));
        let b = hash_line(LineAddr(0x1000 + (1 << 32)));
        assert_ne!(a, b);
    }
}
