//! Hardware cost accounting for the filter designs.
//!
//! §5.3 and §6 of the paper argue the filter's economy: "the history table
//! size can be kept small (1KB or 512B ...) while the overhead for the L1
//! cache is very insignificant as the flags for enabling other hardware
//! prefetching algorithms can be reused". This module makes that argument
//! checkable: given a [`FilterConfig`] and the cache geometry, it itemizes
//! every bit of storage the design adds, so ablations can report benefit
//! *per bit* rather than benefit alone.

use ppf_types::{CacheConfig, FilterConfig, FilterKind, PrefetchSource};

/// Itemized storage cost of a pollution-filter design, in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterCost {
    /// History table counters (entries × width, over all tables).
    pub history_table_bits: u64,
    /// PIB storage: 1 bit per L1 line. The paper notes NSP/SDP already
    /// carry an equivalent bit, so this is usually *shared*, not added.
    pub pib_bits: u64,
    /// RIB storage: 1 bit per L1 line (shared with SDP's reference bit).
    pub rib_bits: u64,
    /// Provenance routing for the PC-based filter: the trigger PC carried
    /// per L1 line so eviction feedback can index the table (the paper's
    /// "separate data path"). Zero for PA, which reuses the line address.
    pub provenance_bits: u64,
    /// Reject-log storage for misprediction recovery (line number + key +
    /// stamp per slot). Zero when recovery is disabled.
    pub reject_log_bits: u64,
}

/// Bits kept per reject-log slot: a 26-bit line number (suffices for a
/// 64-bit space after set-sampling, as victim buffers do), a 12-bit table
/// key, a 9-bit coarse timestamp, and a valid bit.
const REJECT_SLOT_BITS: u64 = 26 + 12 + 9 + 1;

/// PC bits carried per line for PC-based feedback (folded to the table
/// index width plus tag slack).
const PROVENANCE_PC_BITS: u64 = 16;

impl FilterCost {
    /// Cost of `cfg` on a machine with L1 `l1` (reject-log size from
    /// `reject_entries`, normally `recovery::DEFAULT_REJECT_LOG`).
    pub fn of(cfg: &FilterConfig, l1: &CacheConfig, reject_entries: usize) -> Self {
        if cfg.kind == FilterKind::None {
            return FilterCost {
                history_table_bits: 0,
                pib_bits: 0,
                rib_bits: 0,
                provenance_bits: 0,
                reject_log_bits: 0,
            };
        }
        let tables = if cfg.split_by_source {
            PrefetchSource::COUNT as u64
        } else {
            1
        };
        let per_table_entries = if cfg.split_by_source {
            ((cfg.table_entries / PrefetchSource::COUNT).next_power_of_two()).max(64) as u64
        } else {
            cfg.table_entries as u64
        };
        let lines = l1.lines() as u64;
        let history_table_bits = if cfg.kind == FilterKind::Perceptron {
            // Signed weight tables instead of counters, sized to fit the
            // same `table_entries x counter_bits` budget. Partitioning
            // region-slices this allocation without growing it.
            crate::perceptron::rows_for(cfg.table_entries, cfg.counter_bits)
                .iter()
                .map(|&r| r as u64 * crate::perceptron::WEIGHT_BITS as u64)
                .sum()
        } else {
            tables * per_table_entries * cfg.counter_bits as u64
        };
        FilterCost {
            history_table_bits,
            pib_bits: lines,
            rib_bits: lines,
            // The PC-based filter routes the trigger PC per line; the
            // perceptron needs the same path (its PC feature indexes
            // training at eviction time), plus depth rides in the same
            // provenance word (4 bits, absorbed by the tag slack).
            provenance_bits: if matches!(cfg.kind, FilterKind::Pc | FilterKind::Perceptron) {
                lines * PROVENANCE_PC_BITS
            } else {
                0
            },
            reject_log_bits: if cfg.recovery_window > 0 {
                reject_entries as u64 * REJECT_SLOT_BITS
            } else {
                0
            },
        }
    }

    /// Total added bits, counting PIB/RIB as shared with the prefetchers
    /// (the paper's accounting).
    pub fn total_bits_shared(&self) -> u64 {
        self.history_table_bits + self.provenance_bits + self.reject_log_bits
    }

    /// Total added bits if PIB/RIB could not be shared.
    pub fn total_bits_standalone(&self) -> u64 {
        self.total_bits_shared() + self.pib_bits + self.rib_bits
    }

    /// Convenience: shared total in bytes.
    pub fn total_bytes_shared(&self) -> u64 {
        self.total_bits_shared().div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppf_types::SystemConfig;

    fn l1() -> CacheConfig {
        SystemConfig::paper_default().l1
    }

    #[test]
    fn none_filter_costs_nothing() {
        let cfg = FilterConfig {
            kind: FilterKind::None,
            ..FilterConfig::default()
        };
        let c = FilterCost::of(&cfg, &l1(), 4096);
        assert_eq!(c.total_bits_standalone(), 0);
    }

    #[test]
    fn paper_table_is_1kb() {
        let cfg = FilterConfig {
            kind: FilterKind::Pa,
            recovery_window: 0, // the paper's strict accounting
            ..FilterConfig::default()
        };
        let c = FilterCost::of(&cfg, &l1(), 4096);
        assert_eq!(c.history_table_bits, 4096 * 2);
        assert_eq!(c.history_table_bits / 8, 1024, "Table 1's 1KB");
        // PA needs no per-line PC routing.
        assert_eq!(c.provenance_bits, 0);
        // PIB/RIB are one bit per line each.
        assert_eq!(c.pib_bits, 256);
        assert_eq!(c.rib_bits, 256);
        // Shared accounting (the paper's): just the table.
        assert_eq!(c.total_bytes_shared(), 1024);
    }

    #[test]
    fn pc_filter_pays_for_provenance() {
        let pa = FilterCost::of(
            &FilterConfig {
                kind: FilterKind::Pa,
                ..FilterConfig::default()
            },
            &l1(),
            4096,
        );
        let pc = FilterCost::of(
            &FilterConfig {
                kind: FilterKind::Pc,
                ..FilterConfig::default()
            },
            &l1(),
            4096,
        );
        assert!(pc.provenance_bits > 0);
        assert!(pc.total_bits_shared() > pa.total_bits_shared());
    }

    #[test]
    fn split_tables_cost_the_same_budget() {
        let shared = FilterCost::of(
            &FilterConfig {
                kind: FilterKind::Pa,
                ..FilterConfig::default()
            },
            &l1(),
            4096,
        );
        let split = FilterCost::of(
            &FilterConfig {
                kind: FilterKind::Pa,
                split_by_source: true,
                ..FilterConfig::default()
            },
            &l1(),
            4096,
        );
        assert_eq!(
            shared.history_table_bits, split.history_table_bits,
            "4 x 1024 x 2 bits == 1 x 4096 x 2 bits"
        );
    }

    #[test]
    fn recovery_cost_is_itemized() {
        let strict = FilterCost::of(
            &FilterConfig {
                kind: FilterKind::Pa,
                recovery_window: 0,
                ..FilterConfig::default()
            },
            &l1(),
            4096,
        );
        let recovering = FilterCost::of(
            &FilterConfig {
                kind: FilterKind::Pa,
                ..FilterConfig::default()
            },
            &l1(),
            4096,
        );
        assert_eq!(strict.reject_log_bits, 0);
        assert_eq!(recovering.reject_log_bits, 4096 * REJECT_SLOT_BITS);
        assert!(recovering.total_bits_shared() > strict.total_bits_shared());
    }

    #[test]
    fn perceptron_fits_the_equal_bit_budget() {
        for parts in [1usize, 4] {
            let cfg = FilterConfig {
                kind: FilterKind::Perceptron,
                tenant_partitions: parts,
                ..FilterConfig::default()
            };
            let c = FilterCost::of(&cfg, &l1(), 4096);
            let budget = cfg.table_entries as u64 * cfg.counter_bits as u64;
            assert!(
                c.history_table_bits <= budget,
                "{} weight bits from a {budget}-bit budget (P={parts})",
                c.history_table_bits
            );
            // Like the PC filter, training needs the trigger PC per line.
            assert!(c.provenance_bits > 0);
        }
    }

    #[test]
    fn bigger_l1_scales_per_line_costs() {
        let cfg = FilterConfig {
            kind: FilterKind::Pc,
            ..FilterConfig::default()
        };
        let small = FilterCost::of(&cfg, &l1(), 4096);
        let big = FilterCost::of(&cfg, &SystemConfig::paper_default().with_l1_32k().l1, 4096);
        assert_eq!(big.pib_bits, 4 * small.pib_bits);
        assert_eq!(big.provenance_bits, 4 * small.provenance_bits);
        assert_eq!(big.history_table_bits, small.history_table_bits);
    }
}
