//! Hashed-perceptron pollution filter (DESIGN.md §15).
//!
//! The counter filters judge a prefetch from a single hashed index; the
//! perceptron (after the perceptron-filtered prefetcher literature — see
//! PAPERS.md) combines several weak sources of evidence. Each *feature*
//! owns a small table of signed weights; a lookup hashes every feature,
//! sums the selected weights, and admits the prefetch when the sum clears
//! [`DECISION_THRESHOLD`]. Training is the same PIB/RIB eviction feedback
//! the counter filters consume: a referenced line bumps every selected
//! weight up by one, an unreferenced one bumps them down, saturating
//! symmetrically at ±[`WEIGHT_MAX`] — unit-step updates, exactly like the
//! saturating counters, just signed and multi-table. Good-outcome updates
//! are margin-gated ([`TRAIN_MARGIN`]): once the sum is confidently
//! positive, further strengthening is skipped, so shared features cannot
//! saturate and drown out target-specific evidence.
//!
//! The feature vector:
//!
//! | # | feature          | value                                  | rows    |
//! |---|------------------|----------------------------------------|---------|
//! | 0 | trigger PC       | `pc >> 2` folded                       | derived |
//! | 1 | line address     | line number folded                     | derived |
//! | 2 | page offset      | `line & 63` (position in a 64-line page)| 64     |
//! | 3 | prefetch depth   | lookahead distance, clamped to 15      | 16      |
//! | 4 | global accuracy  | `trained_good / trained` in 8 buckets  | 8       |
//!
//! Features 2–4 have bounded cardinality, so their tables are fixed and
//! small; the PC and line tables split whatever remains of the storage
//! budget ([`rows_for`]). The whole structure never spends more bits than
//! the counter table it replaces (`table_entries × counter_bits`), which is
//! what makes the `filter-family` head-to-head an equal-budget comparison.
//!
//! Salting and partitioning compose exactly as in [`crate::table`]: a
//! nonzero salt keys every feature fold ([`crate::hash::fold16_salted`]),
//! and with `P` tenant partitions each feature table is region-sliced so
//! tenant `t` only touches partition `t % P`.

use crate::hash::fold16_salted;
use ppf_types::{CounterInit, LineAddr, Pc, MAX_PREFETCH_DEPTH};

/// Number of feature tables.
pub const FEATURE_COUNT: usize = 5;

/// Bits per signed weight (sign + 4 magnitude bits → range ±15). This is
/// the denominator of the storage budget: a weight costs 2.5× a 2-bit
/// counter, so the perceptron gets proportionally fewer rows.
pub const WEIGHT_BITS: usize = 5;

/// Symmetric saturation bound for every weight.
pub const WEIGHT_MAX: i8 = 15;

/// A prefetch is admitted when the summed weights reach this threshold.
/// The bias is negative so an untrained perceptron (all weights at the
/// `WeaklyGood` init of 0) admits everything — the paper's weakly-good
/// spirit — AND so the two cross-cutting features (depth and global
/// accuracy, which many otherwise-unrelated requests share) can never veto
/// on their own: rejection requires at least three features' worth of
/// negative evidence, i.e. the target-specific features must concur.
pub const DECISION_THRESHOLD: i32 = -2;

/// Positive-side training margin: a *referenced* (good) eviction only
/// trains the weights while the sum sits at or below
/// `DECISION_THRESHOLD + TRAIN_MARGIN` — strengthening an already-confident
/// admit is skipped. Without this gate the two cross-cutting features
/// (depth and global accuracy), which nearly every request in a
/// mostly-good workload shares, saturate at +[`WEIGHT_MAX`] and mask any
/// amount of negative PC/line evidence; with it, positive mass stays
/// bounded near the decision boundary so a few bad outcomes can flip a
/// prediction. Bad evictions and reject-log recoveries are never gated:
/// negative evidence is what the filter exists to accumulate, and a
/// recovery is a proven misprediction by construction.
pub const TRAIN_MARGIN: i32 = 2;

/// Rows of the page-offset feature table (feature 2): one per line slot in
/// a 64-line page region, the feature's full cardinality.
pub const PAGE_OFFSET_ROWS: usize = 64;

/// Rows of the prefetch-depth feature table (feature 3): depths are
/// clamped to [`MAX_PREFETCH_DEPTH`], so 16 rows cover every value.
pub const DEPTH_ROWS: usize = 16;

/// Rows of the global-accuracy feature table (feature 4): accuracy is
/// quantized to [`ACCURACY_BUCKETS`] buckets.
pub const ACCURACY_ROWS: usize = 8;

/// Number of global-accuracy buckets (feature 4's cardinality).
pub const ACCURACY_BUCKETS: u8 = 8;

/// Floor of the PC/line feature-table row count, for degenerate budgets.
const MIN_BIG_ROWS: usize = 16;

/// Largest power of two `<= n` (0 for 0).
#[inline]
fn floor_pow2(n: usize) -> usize {
    if n == 0 {
        0
    } else {
        1 << (usize::BITS - 1 - n.leading_zeros())
    }
}

/// Quantize the filter's lifetime training accuracy into
/// [`ACCURACY_BUCKETS`] buckets. An untrained filter reports the top
/// bucket — optimistic, matching the weakly-good initialization story.
#[inline]
pub fn accuracy_bucket(trained_good: u64, trained_bad: u64) -> u8 {
    match (trained_good * ACCURACY_BUCKETS as u64).checked_div(trained_good + trained_bad) {
        None => ACCURACY_BUCKETS - 1,
        Some(scaled) => (scaled as u8).min(ACCURACY_BUCKETS - 1),
    }
}

/// Per-feature table sizes for a storage budget of `table_entries` counters
/// of `counter_bits` bits each. The three bounded features take their fixed
/// tables; the line feature takes the largest power of two at most half the
/// remaining weight slots, and the PC feature takes the largest power of
/// two that fits in what is left (often 2× the line table — the PC feature
/// carries the most predictive signal, so the leftover budget a symmetric
/// split would strand goes to it). Both are floored at [`MIN_BIG_ROWS`] so
/// a degenerate budget still yields a working filter.
pub fn rows_for(table_entries: usize, counter_bits: u8) -> [usize; FEATURE_COUNT] {
    let budget_bits = table_entries * counter_bits as usize;
    let budget_slots = budget_bits / WEIGHT_BITS;
    let fixed = PAGE_OFFSET_ROWS + DEPTH_ROWS + ACCURACY_ROWS;
    let free = budget_slots.saturating_sub(fixed);
    let line = floor_pow2(free / 2).max(MIN_BIG_ROWS);
    let pc = floor_pow2(free.saturating_sub(line)).max(MIN_BIG_ROWS);
    [pc, line, PAGE_OFFSET_ROWS, DEPTH_ROWS, ACCURACY_ROWS]
}

/// The inputs a lookup or training event presents to the feature hashes.
/// Everything here is available both at issue time (from the request) and
/// at eviction time (from the line's [`ppf_types::PrefetchOrigin`]), so
/// lookup and training always select the same weights.
#[derive(Debug, Clone, Copy)]
pub struct Features {
    /// Prefetch target line (feature 1, and feature 2's page offset).
    pub line: LineAddr,
    /// Trigger PC (feature 0).
    pub pc: Pc,
    /// Prefetch depth, clamped to [`MAX_PREFETCH_DEPTH`] (feature 3).
    pub depth: u8,
    /// Global-accuracy bucket from [`accuracy_bucket`] (feature 4).
    pub bucket: u8,
}

impl Features {
    /// Assemble the feature vector for a request or origin.
    #[inline]
    pub fn of(line: LineAddr, pc: Pc, depth: u8, bucket: u8) -> Features {
        Features {
            line,
            pc,
            depth: depth.min(MAX_PREFETCH_DEPTH),
            bucket,
        }
    }

    /// The raw per-feature values fed to the keyed fold, in table order.
    #[inline]
    fn values(&self) -> [u64; FEATURE_COUNT] {
        [
            // Strip the two always-zero instruction-alignment bits, like
            // the PC-indexed counter filter.
            self.pc >> 2,
            self.line.0,
            self.line.0 & (PAGE_OFFSET_ROWS as u64 - 1),
            self.depth as u64,
            self.bucket as u64,
        ]
    }
}

/// The perceptron's weight storage: one signed table per feature.
#[derive(Debug, Clone)]
pub struct Perceptron {
    /// `tables[f]` holds `rows[f] * partitions` weights — the full
    /// [`rows_for`] allocation, region-sliced like [`crate::table`]: total
    /// storage does not grow with the partition count, per-tenant reach
    /// shrinks instead.
    tables: [Vec<i8>; FEATURE_COUNT],
    /// Rows per partition (region size) of each feature table.
    rows: [usize; FEATURE_COUNT],
    /// Per-tenant partitions (power of two, ≥ 1).
    partitions: u32,
}

impl Perceptron {
    /// Build the weight tables for the given counter-table budget. Weights
    /// initialize from `init` in the same spirit as the counters:
    /// `WeaklyGood` starts at 0 (sum 0 admits — one bad training per
    /// feature flips nothing yet, but the structure is on the fence),
    /// `StronglyGood` at +1 per feature, `WeaklyBad` at −1 (unseen
    /// prefetches are rejected until trained or recovered).
    pub fn new(table_entries: usize, counter_bits: u8, init: CounterInit, partitions: u32) -> Self {
        let partitions = partitions.max(1);
        let total = rows_for(table_entries, counter_bits);
        // Region-slice the fixed allocation: every partition gets
        // 1/partitions of each feature table (all row counts and the
        // partition count are powers of two, so this divides exactly).
        let rows = total.map(|r| (r / partitions as usize).max(1));
        let w0 = match init {
            CounterInit::WeaklyGood => 0i8,
            CounterInit::StronglyGood => 1,
            CounterInit::WeaklyBad => -1,
        };
        let tables = rows.map(|r| vec![w0; r * partitions as usize]);
        Perceptron {
            tables,
            rows,
            partitions,
        }
    }

    /// Rows per partition (region size) of each feature table, in feature
    /// order.
    pub fn rows(&self) -> [usize; FEATURE_COUNT] {
        self.rows
    }

    /// Total weight slots across all feature tables and partitions.
    pub fn storage_entries(&self) -> usize {
        self.tables.iter().map(Vec::len).sum()
    }

    /// Total storage in bits ([`WEIGHT_BITS`] per slot).
    pub fn storage_bits(&self) -> usize {
        self.storage_entries() * WEIGHT_BITS
    }

    /// The slot each feature selects for (`features`, `tenant`, `salt`).
    /// `salt` is the *effective* (tenant-mixed) salt; 0 is the plain fold.
    #[inline]
    fn slots(&self, features: &Features, tenant: u8, salt: u64) -> [usize; FEATURE_COUNT] {
        let values = features.values();
        let mut out = [0usize; FEATURE_COUNT];
        for f in 0..FEATURE_COUNT {
            let region = self.rows[f];
            let idx = (fold16_salted(values[f], salt) as usize) & (region - 1);
            let part = (tenant as u32 % self.partitions) as usize;
            out[f] = part * region + idx;
        }
        out
    }

    /// The summed weight of the selected slots.
    #[inline]
    pub fn sum(&self, features: &Features, tenant: u8, salt: u64) -> i32 {
        let slots = self.slots(features, tenant, salt);
        self.tables
            .iter()
            .zip(slots)
            .map(|(t, s)| t[s] as i32)
            .sum()
    }

    /// Threshold decision: admit when the weight sum reaches
    /// [`DECISION_THRESHOLD`].
    #[inline]
    pub fn predict(&self, features: &Features, tenant: u8, salt: u64) -> bool {
        self.sum(features, tenant, salt) >= DECISION_THRESHOLD
    }

    /// Unit-step training on one outcome: every selected weight moves one
    /// step toward the outcome, saturating at ±[`WEIGHT_MAX`].
    pub fn train(&mut self, features: &Features, tenant: u8, salt: u64, good: bool) {
        let slots = self.slots(features, tenant, salt);
        for (t, s) in self.tables.iter_mut().zip(slots) {
            let w = &mut t[s];
            *w = if good {
                (*w + 1).min(WEIGHT_MAX)
            } else {
                (*w - 1).max(-WEIGHT_MAX)
            };
        }
    }

    /// Reject-log recovery training: a demand miss on a rejected line is a
    /// proven misprediction, so the *target-specific* features (PC, line,
    /// page offset) each move one step up — but the shared depth and
    /// accuracy weights stay put. Full-width recovery would hand +1 to
    /// weights nearly every request shares, letting one mistimed line
    /// re-inflate the global bias (and re-admit every repeat offender);
    /// target-only recovery gives the line its second chance without
    /// paying that tax, matching the counter filters' one-step recovery.
    pub fn recover(&mut self, features: &Features, tenant: u8, salt: u64) {
        let slots = self.slots(features, tenant, salt);
        for (t, s) in self.tables.iter_mut().zip(slots).take(3) {
            let w = &mut t[s];
            *w = (*w + 1).min(WEIGHT_MAX);
        }
    }

    /// Raw weight arrays in feature order — the oracle's full-state diff
    /// surface (the signed analogue of `counter_snapshot`).
    pub fn weight_snapshot(&self) -> Vec<Vec<i8>> {
        self.tables.iter().map(|t| t.to_vec()).collect()
    }

    /// Fraction of weight slots currently non-negative — the convergence
    /// gauge matching the counter tables' `fraction_good` (starts at 1.0
    /// under the default init, decays as eviction feedback drives weights
    /// negative).
    pub fn fraction_good(&self) -> f64 {
        let total = self.storage_entries();
        if total == 0 {
            return 1.0;
        }
        let good = self
            .tables
            .iter()
            .flat_map(|t| t.iter())
            .filter(|&&w| w >= 0)
            .count();
        good as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feats(line: u64, pc: u64) -> Features {
        Features::of(LineAddr(line), pc, 1, ACCURACY_BUCKETS - 1)
    }

    #[test]
    fn default_budget_stays_inside_the_counter_table() {
        // Paper default: 4096 × 2-bit = 8192 bits. The perceptron must not
        // spend more.
        let p = Perceptron::new(4096, 2, CounterInit::WeaklyGood, 1);
        assert_eq!(p.rows(), [1024, 512, 64, 16, 8]);
        assert!(p.storage_bits() <= 8192, "got {} bits", p.storage_bits());
    }

    #[test]
    fn tiny_budget_still_builds() {
        let p = Perceptron::new(64, 1, CounterInit::WeaklyGood, 1);
        assert_eq!(p.rows()[0], MIN_BIG_ROWS);
        assert!(p.predict(&feats(1, 2), 0, 0));
    }

    #[test]
    fn unseen_prefetch_is_admitted_then_trains_bad() {
        let mut p = Perceptron::new(4096, 2, CounterInit::WeaklyGood, 1);
        let f = feats(500, 0x400);
        assert!(p.predict(&f, 0, 0), "all-zero weights admit");
        p.train(&f, 0, 0, false);
        assert_eq!(p.sum(&f, 0, 0), -(FEATURE_COUNT as i32));
        assert!(!p.predict(&f, 0, 0), "one bad training rejects");
    }

    #[test]
    fn training_saturates_symmetrically() {
        let mut p = Perceptron::new(4096, 2, CounterInit::WeaklyGood, 1);
        let f = feats(77, 0x1000);
        for _ in 0..3 * WEIGHT_MAX as usize {
            p.train(&f, 0, 0, true);
        }
        assert_eq!(p.sum(&f, 0, 0), FEATURE_COUNT as i32 * WEIGHT_MAX as i32);
        for _ in 0..6 * WEIGHT_MAX as usize {
            p.train(&f, 0, 0, false);
        }
        assert_eq!(p.sum(&f, 0, 0), -(FEATURE_COUNT as i32) * WEIGHT_MAX as i32);
        assert!(p
            .weight_snapshot()
            .iter()
            .flatten()
            .all(|&w| (-WEIGHT_MAX..=WEIGHT_MAX).contains(&w)));
    }

    #[test]
    fn weakly_bad_init_rejects_unseen() {
        let p = Perceptron::new(4096, 2, CounterInit::WeaklyBad, 1);
        assert!(!p.predict(&feats(1, 2), 0, 0));
        let p = Perceptron::new(4096, 2, CounterInit::StronglyGood, 1);
        assert!(p.predict(&feats(1, 2), 0, 0));
    }

    #[test]
    fn partitions_isolate_tenants() {
        let mut p = Perceptron::new(4096, 2, CounterInit::WeaklyGood, 4);
        let f = feats(900, 0x2000);
        // Tenant 1 poisons its own partition only.
        for _ in 0..WEIGHT_MAX {
            p.train(&f, 1, 0, false);
        }
        assert!(!p.predict(&f, 1, 0));
        assert!(p.predict(&f, 0, 0), "tenant 0's partition is untouched");
        assert!(p.predict(&f, 2, 0));
    }

    #[test]
    fn salt_zero_is_the_plain_fold() {
        // At salt 0 the small-cardinality features index identically
        // (value & mask), so two Perceptrons built alike agree slot-wise.
        let mut a = Perceptron::new(1024, 2, CounterInit::WeaklyGood, 1);
        let mut b = Perceptron::new(1024, 2, CounterInit::WeaklyGood, 1);
        let f = feats(123, 0x5555);
        a.train(&f, 0, 0, false);
        b.train(&f, 0, 0, false);
        assert_eq!(a.weight_snapshot(), b.weight_snapshot());
    }

    #[test]
    fn distinct_salts_select_distinct_slots() {
        let p = Perceptron::new(4096, 2, CounterInit::WeaklyGood, 1);
        let f = feats(0xABCD_EF01, 0x7FF0);
        let s1 = p.slots(&f, 0, 0x1111_2222_3333_4444);
        let s2 = p.slots(&f, 0, 0x9999_8888_7777_6666);
        assert_ne!(s1, s2, "keyed folds must decorrelate across salts");
    }

    #[test]
    fn accuracy_buckets_cover_the_range() {
        assert_eq!(accuracy_bucket(0, 0), ACCURACY_BUCKETS - 1);
        assert_eq!(accuracy_bucket(100, 0), ACCURACY_BUCKETS - 1);
        assert_eq!(accuracy_bucket(0, 100), 0);
        assert_eq!(accuracy_bucket(50, 50), ACCURACY_BUCKETS / 2);
        for g in 0..=32u64 {
            let b = accuracy_bucket(g, 32 - g);
            assert!(b < ACCURACY_BUCKETS);
        }
    }

    #[test]
    fn depth_clamps_into_its_table() {
        let f = Features::of(LineAddr(1), 0x100, 200, 0);
        assert_eq!(f.depth, MAX_PREFETCH_DEPTH);
    }
}
