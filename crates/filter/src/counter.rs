//! Saturating counters — the history table's storage element.
//!
//! The paper uses 2-bit saturating counters with "the same lookup and
//! update operations ... as those for branch predictors" (§4): increment on
//! a good outcome, decrement on a bad one, saturate at both ends, and
//! predict by the top half of the range. Width is configurable for the
//! counter-width ablation bench.

/// A saturating counter of `bits` width (1..=8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SatCounter {
    value: u8,
    max: u8,
}

impl SatCounter {
    /// A counter of `bits` width starting at `initial` (clamped to range).
    pub fn new(bits: u8, initial: u8) -> Self {
        assert!((1..=8).contains(&bits), "counter width must be 1..=8");
        let max = if bits == 8 {
            u8::MAX
        } else {
            (1u8 << bits) - 1
        };
        SatCounter {
            value: initial.min(max),
            max,
        }
    }

    /// The paper's 2-bit counter initialized weakly-good, so never-seen
    /// prefetches are issued.
    pub fn weakly_good(bits: u8) -> Self {
        let max = if bits == 8 {
            u8::MAX
        } else {
            (1u8 << bits) - 1
        };
        // Lowest value that still predicts good: e.g. 2 for 2-bit counters.
        SatCounter::new(bits, max / 2 + 1)
    }

    /// Saturated-good initialization (ablation).
    pub fn strongly_good(bits: u8) -> Self {
        SatCounter::new(bits, u8::MAX)
    }

    /// Highest value that still predicts bad (ablation): unseen prefetches
    /// are rejected until proven useful.
    pub fn weakly_bad(bits: u8) -> Self {
        let max = if bits == 8 {
            u8::MAX
        } else {
            (1u8 << bits) - 1
        };
        SatCounter::new(bits, max / 2)
    }

    /// Current raw value.
    pub fn value(self) -> u8 {
        self.value
    }

    /// Saturation maximum.
    pub fn max(self) -> u8 {
        self.max
    }

    /// Predicts "good" when in the upper half of the range (like a taken
    /// branch prediction).
    #[inline]
    pub fn predicts_good(self) -> bool {
        self.value > self.max / 2
    }

    /// Strengthen (good outcome), saturating at the top.
    #[inline]
    pub fn increment(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Weaken (bad outcome), saturating at zero.
    #[inline]
    pub fn decrement(&mut self) {
        if self.value > 0 {
            self.value -= 1;
        }
    }

    /// Apply one training outcome.
    #[inline]
    pub fn train(&mut self, good: bool) {
        if good {
            self.increment();
        } else {
            self.decrement();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bit_state_machine() {
        // Classic bimodal: 0,1 predict bad; 2,3 predict good.
        let mut c = SatCounter::new(2, 0);
        assert!(!c.predicts_good());
        c.increment();
        assert_eq!(c.value(), 1);
        assert!(!c.predicts_good());
        c.increment();
        assert!(c.predicts_good());
        c.increment();
        assert_eq!(c.value(), 3);
        c.increment();
        assert_eq!(c.value(), 3, "saturates at 3");
        c.decrement();
        c.decrement();
        assert!(!c.predicts_good());
        c.decrement();
        c.decrement();
        assert_eq!(c.value(), 0, "saturates at 0");
    }

    #[test]
    fn weakly_good_starts_predicting_good() {
        for bits in 1..=8 {
            let c = SatCounter::weakly_good(bits);
            assert!(c.predicts_good(), "width {bits}");
            // One bad outcome flips a weakly-good counter to not-good
            // (for widths >= 2; a 1-bit counter flips too).
            let mut c2 = c;
            c2.decrement();
            if bits <= 2 {
                assert!(!c2.predicts_good(), "width {bits}");
            }
        }
    }

    #[test]
    fn init_variants() {
        for bits in 1..=8 {
            assert!(SatCounter::strongly_good(bits).predicts_good());
            assert!(!SatCounter::weakly_bad(bits).predicts_good());
            // Weakly-bad is one step below the threshold.
            let mut c = SatCounter::weakly_bad(bits);
            c.increment();
            assert!(c.predicts_good(), "width {bits}");
        }
    }

    #[test]
    fn one_bit_counter() {
        let mut c = SatCounter::new(1, 1);
        assert!(c.predicts_good());
        c.train(false);
        assert!(!c.predicts_good());
        c.train(true);
        assert!(c.predicts_good());
    }

    #[test]
    fn initial_clamped_to_range() {
        let c = SatCounter::new(2, 200);
        assert_eq!(c.value(), 3);
    }

    #[test]
    fn eight_bit_counter_saturates_at_255() {
        let mut c = SatCounter::new(8, 254);
        c.increment();
        c.increment();
        assert_eq!(c.value(), 255);
        assert!(c.predicts_good());
    }

    #[test]
    #[should_panic]
    fn zero_width_rejected() {
        SatCounter::new(0, 0);
    }

    #[test]
    fn hysteresis_needs_two_flips_from_saturation() {
        let mut c = SatCounter::new(2, 3);
        c.train(false);
        assert!(c.predicts_good(), "strongly-good survives one bad outcome");
        c.train(false);
        assert!(!c.predicts_good());
    }
}
