//! The paper's contribution: hardware cache-pollution filters for
//! aggressive prefetches (§4 of Zhuang & Lee, ICPP 2003).
//!
//! A [`PollutionFilter`] consists of a single-level **history table** of
//! 2-bit saturating counters, a hash function, and lookup/update logic — the
//! same machinery as a bimodal branch predictor. Incoming prefetches are
//! looked up before issue:
//!
//! * **PA-based** ([`ppf_types::FilterKind::Pa`]): indexed by the prefetched
//!   *cache-line address* (offset bits stripped). Discriminates different
//!   addresses fetched by the same instruction, but aliases more in a small
//!   table (§4.1).
//! * **PC-based** ([`ppf_types::FilterKind::Pc`]): indexed by the *program
//!   counter* of the triggering instruction. Coarser but more compact; needs
//!   the PC routed to the filter on a separate path (§4.2).
//!
//! Training is eviction-driven: when the L1 replaces a line whose PIB is
//! set, the line's RIB (referenced-or-not) strengthens or weakens the
//! counter the prefetch hashed to. A prefetch is issued only when its
//! counter predicts "good" (counter in the upper half, like a taken branch);
//! unseen entries start weakly-good so first-touch prefetches pass — the
//! paper relies on this ("all prefetches first mapped to the history table
//! are assumed to be good and issued", §5.3).
//!
//! [`adaptive::AdaptiveGate`] implements the "advanced features" remark in
//! §5.2.1: engage filtering only while observed prefetch accuracy is low.

#![warn(missing_docs)]

pub mod adaptive;
pub mod cost;
pub mod counter;
pub mod hash;
pub mod recovery;
pub mod table;

use ppf_types::{FilterConfig, FilterKind, PrefetchOrigin, PrefetchRequest, PrefetchSource};

use adaptive::AdaptiveGate;
use table::HistoryTable;

/// Filter-local statistics (also mirrored into the global `SimStats` by the
/// simulator; kept here so the filter is independently testable).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Lookups that predicted "good" (prefetch allowed).
    pub allowed: u64,
    /// Lookups that predicted "bad" (prefetch dropped).
    pub rejected: u64,
    /// Eviction feedback events with RIB = 1.
    pub trained_good: u64,
    /// Eviction feedback events with RIB = 0.
    pub trained_bad: u64,
    /// Lookups bypassed by the adaptive gate (filter disengaged).
    pub bypassed: u64,
    /// Rejections later proven wrong by a demand miss (recovery trains).
    pub recovered: u64,
}

ppf_types::json_struct!(FilterStats {
    allowed,
    rejected,
    trained_good,
    trained_bad,
    bypassed,
    recovered,
});

/// Largest power of two `<= n` (0 for 0). Table sizing rounds *down* so a
/// configured storage budget is never exceeded.
#[inline]
fn floor_pow2(n: usize) -> usize {
    if n == 0 {
        0
    } else {
        1 << (usize::BITS - 1 - n.leading_zeros())
    }
}

/// Per-key diagnostic record (only populated when tracing is enabled).
#[derive(Debug, Clone, Copy, Default)]
pub struct KeyTrace {
    /// Good training events.
    pub trained_good: u64,
    /// Bad training events.
    pub trained_bad: u64,
    /// Lookups rejected.
    pub rejected: u64,
    /// Lookups allowed.
    pub allowed: u64,
}

/// The hardware pollution filter of §4.
#[derive(Debug, Clone)]
pub struct PollutionFilter {
    kind: FilterKind,
    /// One shared table (paper), or one per prefetch source when
    /// `FilterConfig::split_by_source` splits the same storage budget.
    tables: Vec<HistoryTable>,
    gate: Option<AdaptiveGate>,
    stats: FilterStats,
    /// Optional per-trigger-PC trace for diagnostics (off in normal runs;
    /// costs a hash-map update per event when enabled).
    trace: Option<std::collections::HashMap<u64, KeyTrace>>,
    /// Recently rejected targets, for misprediction recovery (see
    /// [`recovery`]). `None` for `FilterKind::None`.
    reject_log: Option<recovery::RejectLog>,
    /// Tournament chooser for [`FilterKind::Hybrid`]: PC-indexed 2-bit
    /// counters; "good" means trust the PC table, otherwise the PA table.
    chooser: Option<HistoryTable>,
    /// Keyed-hash salt (0 = the paper's plain fold; DESIGN.md §12).
    salt: u64,
}

/// Folded into a nonzero salt per tenant ID so each tenant indexes the
/// shared table through its own keyed permutation (tag-mixing): a hostile
/// tenant can no longer aim trained-bad counters at a victim's keys even
/// without partitioning. Tenant 0 keeps the configured salt unchanged, so
/// single-tenant salted runs are unaffected.
const TENANT_TAG_MIX: u64 = 0x9e37_79b9_7f4a_7c15;

impl PollutionFilter {
    /// Build a filter from its configuration. With `FilterKind::None` the
    /// filter admits everything and trains nothing (the baseline machine).
    pub fn new(cfg: &FilterConfig) -> Self {
        let parts = (cfg.tenant_partitions.max(1) as u32).min(ppf_types::MAX_TENANTS as u32);
        let table = |entries: usize| {
            HistoryTable::with_partitions(entries, cfg.counter_bits, cfg.counter_init, parts)
        };
        let tables = if cfg.kind == FilterKind::Hybrid {
            // tables[0] is PA-indexed, tables[1] is PC-indexed. The chooser
            // below takes half the advertised budget, each component a
            // quarter, so components + chooser together stay inside
            // `table_entries` counters (floored at 64 entries each for
            // degenerate budgets).
            let per = floor_pow2(cfg.table_entries / 4).max(64);
            vec![table(per), table(per)]
        } else if cfg.split_by_source {
            // Same total budget, four ways; round *down* to a power of two
            // (rounding up would overshoot the budget whenever the quarter
            // is not already a power of two); floor at 64 entries each.
            let per = floor_pow2(cfg.table_entries / PrefetchSource::COUNT).max(64);
            (0..PrefetchSource::COUNT).map(|_| table(per)).collect()
        } else {
            vec![table(cfg.table_entries)]
        };
        PollutionFilter {
            kind: cfg.kind,
            tables,
            gate: cfg
                .adaptive_accuracy_threshold
                .map(|thr| AdaptiveGate::new(thr, cfg.adaptive_window)),
            stats: FilterStats::default(),
            trace: None,
            // `recovery_window == 0` disables recovery entirely — the
            // strict (absorbing) reading of the paper, kept as an ablation.
            reject_log: (cfg.kind != FilterKind::None && cfg.recovery_window > 0).then(|| {
                recovery::RejectLog::with_window(recovery::DEFAULT_REJECT_LOG, cfg.recovery_window)
            }),
            // Half the advertised budget; honors the configured counter
            // width and initial state like the component tables (the
            // PC-indexed chooser aliases across trigger sites, so it gets
            // the larger share).
            chooser: (cfg.kind == FilterKind::Hybrid)
                .then(|| table(floor_pow2(cfg.table_entries / 2).max(64))),
            salt: cfg.hash_salt,
        }
    }

    /// The keyed-hash salt a lookup from `tenant` uses: the configured salt
    /// with the tenant ID tag-mixed in (identity when salting is off).
    #[inline]
    fn effective_salt(&self, tenant: u8) -> u64 {
        if self.salt == 0 {
            0
        } else {
            self.salt ^ (tenant as u64).wrapping_mul(TENANT_TAG_MIX)
        }
    }

    /// Enable per-trigger-PC diagnostic tracing.
    pub fn enable_trace(&mut self) {
        self.trace = Some(std::collections::HashMap::new());
    }

    /// The per-trigger-PC trace, if enabled.
    pub fn trace(&self) -> Option<&std::collections::HashMap<u64, KeyTrace>> {
        self.trace.as_ref()
    }

    /// The indexing scheme in use.
    pub fn kind(&self) -> FilterKind {
        self.kind
    }

    /// Filter-local statistics.
    pub fn stats(&self) -> &FilterStats {
        &self.stats
    }

    /// History-table entry count (per table when split by source).
    pub fn table_entries(&self) -> usize {
        self.tables[0].entries()
    }

    /// Number of history tables (1 shared, or one per prefetch source).
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Entry count of the hybrid chooser table; `None` for non-hybrid kinds.
    pub fn chooser_entries(&self) -> Option<usize> {
        self.chooser.as_ref().map(HistoryTable::entries)
    }

    /// Total counters across every structure the filter allocates
    /// (component tables plus the hybrid chooser) — the real storage cost
    /// to compare against the advertised `FilterConfig::table_entries`.
    pub fn storage_entries(&self) -> usize {
        self.tables.iter().map(HistoryTable::entries).sum::<usize>()
            + self.chooser_entries().unwrap_or(0)
    }

    /// Entries-weighted fraction of component-table counters currently
    /// predicting "good" — the telemetry gauge for filter convergence. All
    /// counters start weakly-good (§4), so this begins at 1.0 and decays as
    /// PIB/RIB evictions train entries bad; the curve flattening out is the
    /// filter reaching steady state. The hybrid chooser is excluded: it
    /// predicts *which table* to trust, not whether a prefetch is good.
    pub fn fraction_good(&self) -> f64 {
        let total: usize = self.tables.iter().map(HistoryTable::entries).sum();
        if total == 0 {
            return 1.0;
        }
        let good: f64 = self
            .tables
            .iter()
            .map(|t| t.fraction_good() * t.entries() as f64)
            .sum();
        good / total as f64
    }

    /// Snapshot of every component table's raw counter array, in table
    /// order. Cheap state-inspection hook for the differential oracle.
    pub fn counter_snapshot(&self) -> Vec<Vec<u8>> {
        self.tables.iter().map(|t| t.counters().to_vec()).collect()
    }

    /// Snapshot of the hybrid chooser's counters; `None` for non-hybrid
    /// kinds.
    pub fn chooser_snapshot(&self) -> Option<Vec<u8>> {
        self.chooser.as_ref().map(|c| c.counters().to_vec())
    }

    #[inline]
    fn table_idx(&self, source: PrefetchSource) -> usize {
        if self.tables.len() > 1 {
            source.index()
        } else {
            0
        }
    }

    #[inline]
    fn index_for(&self, line: ppf_types::LineAddr, pc: ppf_types::Pc, tenant: u8) -> Option<u64> {
        let salt = self.effective_salt(tenant);
        match self.kind {
            FilterKind::None => None,
            FilterKind::Pa => Some(hash::hash_line_salted(line, salt)),
            FilterKind::Pc => Some(hash::hash_pc_salted(pc, salt)),
            // Hybrid handles its two keys explicitly at each use site; the
            // recovery log stores the chosen (key, table) pair.
            FilterKind::Hybrid => None,
        }
    }

    /// Hybrid lookup: both predictions plus the chooser's pick.
    /// Returns (decision, chosen key, chosen table index).
    #[inline]
    fn hybrid_predict(
        &self,
        line: ppf_types::LineAddr,
        pc: ppf_types::Pc,
        tenant: u8,
    ) -> (bool, u64, usize) {
        let salt = self.effective_salt(tenant);
        let pa_key = hash::hash_line_salted(line, salt);
        let pc_key = hash::hash_pc_salted(pc, salt);
        let use_pc = self
            .chooser
            .as_ref()
            .map(|c| c.predict_good_for(pc_key, tenant))
            .unwrap_or(false);
        if use_pc {
            (self.tables[1].predict_good_for(pc_key, tenant), pc_key, 1)
        } else {
            (self.tables[0].predict_good_for(pa_key, tenant), pa_key, 0)
        }
    }

    /// Decide whether `req` should be issued (history-table lookup, §4) at
    /// cycle `now`. `FilterKind::None` always allows. The adaptive gate,
    /// when configured and satisfied with recent accuracy, bypasses
    /// filtering.
    pub fn should_prefetch(&mut self, req: &PrefetchRequest, now: u64) -> bool {
        let (key, table) = match self.kind {
            FilterKind::None => {
                self.stats.allowed += 1;
                return true;
            }
            FilterKind::Hybrid => {
                let (_, key, table) = self.hybrid_predict(req.line, req.trigger_pc, req.tenant);
                (key, table)
            }
            _ => match self.index_for(req.line, req.trigger_pc, req.tenant) {
                Some(key) => (key, self.table_idx(req.source)),
                None => unreachable!("None handled above"),
            },
        };
        if let Some(gate) = &self.gate {
            if !gate.engaged() {
                self.stats.bypassed += 1;
                self.stats.allowed += 1;
                return true;
            }
        }
        let good = self.tables[table].predict_good_for(key, req.tenant);
        if good {
            self.stats.allowed += 1;
        } else {
            self.stats.rejected += 1;
            if let Some(log) = &mut self.reject_log {
                log.record(req.line, key, table as u8, req.tenant, now);
            }
        }
        if let Some(trace) = &mut self.trace {
            let e = trace.entry(req.trigger_pc).or_default();
            if good {
                e.allowed += 1;
            } else {
                e.rejected += 1;
            }
        }
        good
    }

    /// Train on an L1 eviction (or end-of-run drain) of a prefetched line:
    /// `referenced` is the line's RIB. Also feeds the adaptive gate's
    /// accuracy window.
    pub fn on_eviction(&mut self, origin: &PrefetchOrigin, referenced: bool) {
        if referenced {
            self.stats.trained_good += 1;
        } else {
            self.stats.trained_bad += 1;
        }
        if let Some(gate) = &mut self.gate {
            gate.observe(referenced);
        }
        if let Some(trace) = &mut self.trace {
            let e = trace.entry(origin.trigger_pc).or_default();
            if referenced {
                e.trained_good += 1;
            } else {
                e.trained_bad += 1;
            }
        }
        if self.kind == FilterKind::Hybrid {
            let tenant = origin.tenant;
            let salt = self.effective_salt(tenant);
            let pa_key = hash::hash_line_salted(origin.line, salt);
            let pc_key = hash::hash_pc_salted(origin.trigger_pc, salt);
            // Both component tables train on the outcome; the chooser
            // trains toward whichever component was right (only when they
            // disagree — the tournament update rule).
            let pa_right = self.tables[0].predict_good_for(pa_key, tenant) == referenced;
            let pc_right = self.tables[1].predict_good_for(pc_key, tenant) == referenced;
            self.tables[0].train_for(pa_key, tenant, referenced);
            self.tables[1].train_for(pc_key, tenant, referenced);
            if pa_right != pc_right {
                if let Some(c) = &mut self.chooser {
                    c.train_for(pc_key, tenant, pc_right);
                }
            }
        } else if let Some(key) = self.index_for(origin.line, origin.trigger_pc, origin.tenant) {
            let table = self.table_idx(origin.source);
            self.tables[table].train_for(key, origin.tenant, referenced);
        }
    }

    /// A demand access missed the L1 on `line`. If a prefetch for that line
    /// was recently rejected, the rejection was a misprediction: train the
    /// vetoing counter good so the key class can recover (see [`recovery`]).
    pub fn on_demand_miss(&mut self, line: ppf_types::LineAddr, now: u64) {
        let Some(log) = &mut self.reject_log else {
            return;
        };
        if let Some((key, table, tenant)) = log.check_miss(line, now) {
            self.stats.recovered += 1;
            self.tables[table as usize].train_for(key, tenant, true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppf_types::{LineAddr, PrefetchSource};

    fn cfg(kind: FilterKind) -> FilterConfig {
        FilterConfig {
            kind,
            ..FilterConfig::default()
        }
    }

    fn req(line: u64, pc: u64) -> PrefetchRequest {
        PrefetchRequest {
            line: LineAddr(line),
            trigger_pc: pc,
            source: PrefetchSource::Nsp,
            tenant: 0,
        }
    }

    #[test]
    fn none_filter_always_allows() {
        let mut f = PollutionFilter::new(&cfg(FilterKind::None));
        for i in 0..100 {
            // Train hard against, then verify it still allows.
            f.on_eviction(&req(i, 0x100).origin(), false);
            assert!(f.should_prefetch(&req(i, 0x100), i));
        }
        assert_eq!(f.stats().rejected, 0);
    }

    #[test]
    fn first_touch_is_allowed() {
        // Counters initialize weakly-good: a never-seen prefetch passes.
        let mut f = PollutionFilter::new(&cfg(FilterKind::Pa));
        assert!(f.should_prefetch(&req(123, 0x100), 0));
        let mut f = PollutionFilter::new(&cfg(FilterKind::Pc));
        assert!(f.should_prefetch(&req(123, 0x100), 0));
    }

    #[test]
    fn pa_filter_learns_bad_address() {
        let mut f = PollutionFilter::new(&cfg(FilterKind::Pa));
        let r = req(500, 0x100);
        // Two bad outcomes drive the 2-bit counter from weakly-good to bad.
        f.on_eviction(&r.origin(), false);
        f.on_eviction(&r.origin(), false);
        assert!(!f.should_prefetch(&r, 0));
        // ...and a different line is unaffected.
        assert!(f.should_prefetch(&req(501, 0x100), 0));
    }

    #[test]
    fn pc_filter_groups_by_trigger_pc() {
        let mut f = PollutionFilter::new(&cfg(FilterKind::Pc));
        // Same PC, different lines: training one line's outcome affects the
        // other (that is the point of PC indexing).
        f.on_eviction(&req(1, 0x100).origin(), false);
        f.on_eviction(&req(2, 0x100).origin(), false);
        assert!(!f.should_prefetch(&req(3, 0x100), 0));
        // A different PC still passes.
        assert!(f.should_prefetch(&req(3, 0x200), 0));
    }

    #[test]
    fn pa_filter_relearns_good() {
        let mut f = PollutionFilter::new(&cfg(FilterKind::Pa));
        let r = req(500, 0x100);
        f.on_eviction(&r.origin(), false);
        f.on_eviction(&r.origin(), false);
        assert!(!f.should_prefetch(&r, 0));
        f.on_eviction(&r.origin(), true);
        f.on_eviction(&r.origin(), true);
        assert!(f.should_prefetch(&r, 0), "counter saturates back to good");
    }

    #[test]
    fn stats_track_decisions_and_training() {
        let mut f = PollutionFilter::new(&cfg(FilterKind::Pa));
        let r = req(7, 0x100);
        f.should_prefetch(&r, 0);
        f.on_eviction(&r.origin(), false);
        f.on_eviction(&r.origin(), false);
        f.should_prefetch(&r, 0);
        assert_eq!(f.stats().allowed, 1);
        assert_eq!(f.stats().rejected, 1);
        assert_eq!(f.stats().trained_bad, 2);
        assert_eq!(f.stats().trained_good, 0);
    }

    #[test]
    fn adaptive_gate_bypasses_while_accuracy_high() {
        let mut c = cfg(FilterKind::Pa);
        c.adaptive_accuracy_threshold = Some(0.5);
        c.adaptive_window = 16;
        let mut f = PollutionFilter::new(&c);
        let r = req(9, 0x100);
        // Train the entry bad — but overall accuracy stays high, so the
        // gate keeps the filter disengaged and prefetches pass.
        f.on_eviction(&r.origin(), false);
        f.on_eviction(&r.origin(), false);
        for i in 0..32 {
            f.on_eviction(&req(100 + i, 0x200).origin(), true);
        }
        assert!(f.should_prefetch(&r, 0), "high accuracy -> gate bypasses");
        assert!(f.stats().bypassed > 0);
        // Flood with bad outcomes: accuracy collapses, filter engages.
        for i in 0..64 {
            f.on_eviction(&req(200 + i, 0x300).origin(), false);
        }
        assert!(!f.should_prefetch(&r, 0), "low accuracy -> filter engages");
    }

    #[test]
    fn rejected_key_recovers_via_demand_miss() {
        let mut f = PollutionFilter::new(&cfg(FilterKind::Pc));
        let r = req(500, 0x100);
        // Lock the PC out.
        f.on_eviction(&r.origin(), false);
        f.on_eviction(&r.origin(), false);
        assert!(!f.should_prefetch(&r, 0));
        assert!(!f.should_prefetch(&req(501, 0x100), 0));
        // The program then demand-misses the rejected lines: both were
        // mispredictions, and two good trains bring the counter back.
        f.on_demand_miss(LineAddr(500), 10);
        f.on_demand_miss(LineAddr(501), 11);
        assert_eq!(f.stats().recovered, 2);
        assert!(f.should_prefetch(&r, 0), "key class recovered");
    }

    #[test]
    fn unrelated_demand_miss_does_not_recover() {
        let mut f = PollutionFilter::new(&cfg(FilterKind::Pc));
        let r = req(500, 0x100);
        f.on_eviction(&r.origin(), false);
        f.on_eviction(&r.origin(), false);
        assert!(!f.should_prefetch(&r, 0));
        // Misses to lines that were never rejected train nothing.
        f.on_demand_miss(LineAddr(9999), 10);
        f.on_demand_miss(LineAddr(12345), 11);
        assert_eq!(f.stats().recovered, 0);
        assert!(!f.should_prefetch(&r, 0));
    }

    #[test]
    fn split_filter_isolates_sources() {
        let mut c = cfg(FilterKind::Pa);
        c.split_by_source = true;
        let mut f = PollutionFilter::new(&c);
        assert_eq!(f.table_count(), PrefetchSource::COUNT);
        // NSP trains a line bad...
        let nsp = PrefetchRequest {
            line: LineAddr(500),
            trigger_pc: 0x100,
            source: PrefetchSource::Nsp,
            tenant: 0,
        };
        f.on_eviction(&nsp.origin(), false);
        f.on_eviction(&nsp.origin(), false);
        assert!(!f.should_prefetch(&nsp, 0));
        // ...but SDP's prefetch of the SAME line is judged by its own
        // table and still passes — the poisoning the shared table suffers.
        let sdp = PrefetchRequest {
            source: PrefetchSource::Sdp,
            ..nsp
        };
        assert!(f.should_prefetch(&sdp, 1));
    }

    #[test]
    fn split_filter_divides_the_budget() {
        let mut c = cfg(FilterKind::Pa);
        c.split_by_source = true;
        let f = PollutionFilter::new(&c);
        // 4096 entries split four ways.
        assert_eq!(f.table_entries(), 1024);
    }

    #[test]
    fn split_filter_recovery_trains_the_right_table() {
        let mut c = cfg(FilterKind::Pc);
        c.split_by_source = true;
        let mut f = PollutionFilter::new(&c);
        let nsp = PrefetchRequest {
            line: LineAddr(500),
            trigger_pc: 0x100,
            source: PrefetchSource::Nsp,
            tenant: 0,
        };
        f.on_eviction(&nsp.origin(), false);
        f.on_eviction(&nsp.origin(), false);
        assert!(!f.should_prefetch(&nsp, 0));
        // The rejected line is demand-missed promptly: NSP's table (and
        // only NSP's) trains back up. The counter sits at 0 after two bad
        // trainings, so two reject-miss rounds are needed to clear the
        // threshold — each rejection re-arms the log.
        f.on_demand_miss(LineAddr(500), 5);
        assert!(!f.should_prefetch(&nsp, 6)); // still bad; re-records
        f.on_demand_miss(LineAddr(500), 7);
        assert_eq!(f.stats().recovered, 2);
        assert!(f.should_prefetch(&nsp, 8));
    }

    #[test]
    fn hybrid_uses_pa_until_chooser_learns() {
        let mut f = PollutionFilter::new(&cfg(FilterKind::Hybrid));
        // Scenario where PC is right and PA is wrong: one PC touches many
        // lines, all consistently bad. The PA table (per line) sees each
        // line only twice — not enough to lock every line out — while the
        // PC table converges fast, and the chooser learns to trust it.
        for round in 0..6u64 {
            for i in 0..64 {
                let r = req(10_000 + round * 64 + i, 0x300);
                f.on_eviction(&r.origin(), false);
            }
        }
        // A fresh line from that PC: PA would say weakly-good (never seen),
        // PC says bad; the chooser must have learned to trust PC.
        assert!(!f.should_prefetch(&req(99_999, 0x300), 0));
    }

    #[test]
    fn hybrid_trains_both_components() {
        let mut f = PollutionFilter::new(&cfg(FilterKind::Hybrid));
        let r = req(500, 0x100);
        f.on_eviction(&r.origin(), false);
        f.on_eviction(&r.origin(), false);
        // Whichever table the chooser picks, the key class is bad.
        assert!(!f.should_prefetch(&r, 0));
    }

    #[test]
    fn hybrid_splits_the_budget() {
        let c = cfg(FilterKind::Hybrid);
        let f = PollutionFilter::new(&c);
        assert_eq!(f.table_count(), 2);
        assert_eq!(f.table_entries(), 1024, "a quarter each for PA and PC");
        assert_eq!(f.chooser_entries(), Some(2048), "half for the chooser");
        assert_eq!(
            f.storage_entries(),
            c.table_entries,
            "components + chooser together spend exactly the advertised budget"
        );
    }

    #[test]
    fn hybrid_chooser_honors_counter_config() {
        // The chooser is sized inside the budget AND follows the configured
        // counter width/init instead of hardcoding 2-bit weakly-good.
        let mut c = cfg(FilterKind::Hybrid);
        c.counter_bits = 3;
        c.counter_init = ppf_types::CounterInit::WeaklyBad;
        let mut f = PollutionFilter::new(&c);
        assert!(f.storage_entries() <= c.table_entries);
        // Weakly-bad init: the chooser starts distrusting PC, and both
        // component tables start rejecting, so a first-touch prefetch is
        // rejected — observable proof the init reached all three tables.
        assert!(!f.should_prefetch(&req(1, 0x100), 0));
    }

    #[test]
    fn non_pow2_budget_never_overshoots() {
        // Regression: sizing used `next_power_of_two()`, which rounds UP —
        // a 1000-entry budget split four ways became 4 x 256 = 1024 > 1000.
        // Rounding down keeps every layout inside the advertised budget.
        for split in [false, true] {
            for kind in [FilterKind::Pa, FilterKind::Pc, FilterKind::Hybrid] {
                let mut c = cfg(kind);
                c.table_entries = 1000;
                c.split_by_source = split;
                // Shared non-split tables require a power-of-two entry
                // count; only the derived (split/hybrid) layouts accept an
                // arbitrary budget.
                if kind == FilterKind::Hybrid || split {
                    let f = PollutionFilter::new(&c);
                    assert!(
                        f.storage_entries() <= c.table_entries,
                        "{kind:?} split={split}: {} counters from a budget of {}",
                        f.storage_entries(),
                        c.table_entries
                    );
                }
            }
        }
    }

    #[test]
    fn zero_recovery_window_disables_reject_log() {
        let mut c = cfg(FilterKind::Pc);
        c.recovery_window = 0;
        let mut f = PollutionFilter::new(&c);
        let r = req(500, 0x100);
        f.on_eviction(&r.origin(), false);
        f.on_eviction(&r.origin(), false);
        assert!(!f.should_prefetch(&r, 0));
        // With the log disabled, a demand miss on the rejected line is NOT
        // treated as a misprediction: nothing recovers, the key stays bad.
        f.on_demand_miss(LineAddr(500), 1);
        f.on_demand_miss(LineAddr(500), 2);
        assert_eq!(f.stats().recovered, 0);
        assert!(!f.should_prefetch(&r, 3));
    }

    #[test]
    fn paper_default_table_is_4k_entries() {
        let f = PollutionFilter::new(&cfg(FilterKind::Pa));
        assert_eq!(f.table_entries(), 4096);
    }

    #[test]
    fn fraction_good_starts_at_one_and_decays_with_bad_training() {
        let mut f = PollutionFilter::new(&cfg(FilterKind::Pa));
        assert_eq!(f.fraction_good(), 1.0, "weakly-good init predicts good");
        // Train a handful of distinct lines bad twice each: their 2-bit
        // counters saturate below the threshold, so the aggregate drops.
        for line in 0..8u64 {
            let r = req(line * 64, 0x100);
            f.on_eviction(&r.origin(), false);
            f.on_eviction(&r.origin(), false);
        }
        let fg = f.fraction_good();
        assert!(fg < 1.0, "training bad must lower fraction_good: {fg}");
        assert!(fg > 0.9, "only 8 of 4096 entries were trained: {fg}");
    }
}
