//! The paper's contribution: hardware cache-pollution filters for
//! aggressive prefetches (§4 of Zhuang & Lee, ICPP 2003).
//!
//! A [`PollutionFilter`] consists of a single-level **history table** of
//! 2-bit saturating counters, a hash function, and lookup/update logic — the
//! same machinery as a bimodal branch predictor. Incoming prefetches are
//! looked up before issue:
//!
//! * **PA-based** ([`ppf_types::FilterKind::Pa`]): indexed by the prefetched
//!   *cache-line address* (offset bits stripped). Discriminates different
//!   addresses fetched by the same instruction, but aliases more in a small
//!   table (§4.1).
//! * **PC-based** ([`ppf_types::FilterKind::Pc`]): indexed by the *program
//!   counter* of the triggering instruction. Coarser but more compact; needs
//!   the PC routed to the filter on a separate path (§4.2).
//!
//! Training is eviction-driven: when the L1 replaces a line whose PIB is
//! set, the line's RIB (referenced-or-not) strengthens or weakens the
//! counter the prefetch hashed to. A prefetch is issued only when its
//! counter predicts "good" (counter in the upper half, like a taken branch);
//! unseen entries start weakly-good so first-touch prefetches pass — the
//! paper relies on this ("all prefetches first mapped to the history table
//! are assumed to be good and issued", §5.3).
//!
//! [`adaptive::AdaptiveGate`] implements the "advanced features" remark in
//! §5.2.1: engage filtering only while observed prefetch accuracy is low.

#![warn(missing_docs)]

pub mod adaptive;
pub mod cost;
pub mod counter;
pub mod hash;
pub mod perceptron;
pub mod recovery;
pub mod table;

use ppf_types::json::{FromJson, JsonError, JsonValue, ToJson};
use ppf_types::{FilterConfig, FilterKind, PrefetchOrigin, PrefetchRequest, PrefetchSource};

use adaptive::AdaptiveGate;
use perceptron::{accuracy_bucket, Features, Perceptron};
use table::HistoryTable;

/// Filter-local statistics (also mirrored into the global `SimStats` by the
/// simulator; kept here so the filter is independently testable).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Lookups that predicted "good" (prefetch allowed).
    pub allowed: u64,
    /// Lookups that predicted "bad" (prefetch dropped).
    pub rejected: u64,
    /// Eviction feedback events with RIB = 1.
    pub trained_good: u64,
    /// Eviction feedback events with RIB = 0.
    pub trained_bad: u64,
    /// Lookups bypassed by the adaptive gate (filter disengaged).
    pub bypassed: u64,
    /// Rejections later proven wrong by a demand miss (recovery trains).
    pub recovered: u64,
}

ppf_types::json_struct!(FilterStats {
    allowed,
    rejected,
    trained_good,
    trained_bad,
    bypassed,
    recovered,
});

/// Largest power of two `<= n` (0 for 0). Table sizing rounds *down* so a
/// configured storage budget is never exceeded.
#[inline]
fn floor_pow2(n: usize) -> usize {
    if n == 0 {
        0
    } else {
        1 << (usize::BITS - 1 - n.leading_zeros())
    }
}

/// Per-key diagnostic record (only populated when tracing is enabled).
#[derive(Debug, Clone, Copy, Default)]
pub struct KeyTrace {
    /// Good training events.
    pub trained_good: u64,
    /// Bad training events.
    pub trained_bad: u64,
    /// Lookups rejected.
    pub rejected: u64,
    /// Lookups allowed.
    pub allowed: u64,
}

/// The hardware pollution filter of §4.
#[derive(Debug, Clone)]
pub struct PollutionFilter {
    kind: FilterKind,
    /// One shared table (paper), or one per prefetch source when
    /// `FilterConfig::split_by_source` splits the same storage budget.
    tables: Vec<HistoryTable>,
    gate: Option<AdaptiveGate>,
    stats: FilterStats,
    /// Optional per-trigger-PC trace for diagnostics (off in normal runs;
    /// costs a hash-map update per event when enabled).
    trace: Option<std::collections::HashMap<u64, KeyTrace>>,
    /// Recently rejected targets, for misprediction recovery (see
    /// [`recovery`]). `None` for `FilterKind::None`.
    reject_log: Option<recovery::RejectLog>,
    /// Tournament chooser for [`FilterKind::Hybrid`]: PC-indexed 2-bit
    /// counters; "good" means trust the PC table, otherwise the PA table.
    chooser: Option<HistoryTable>,
    /// Weight tables for [`FilterKind::Perceptron`] (DESIGN.md §15); the
    /// counter `tables` vector is empty for that kind.
    perceptron: Option<Perceptron>,
    /// Keyed-hash salt (0 = the paper's plain fold; DESIGN.md §12).
    salt: u64,
}

/// A full-state snapshot of whichever storage the configured kind uses —
/// unsigned counters or signed perceptron weights. This is the oracle's
/// diff surface and serializes through the JSON layer as a tagged object
/// (`{"counters": [...]}` / `{"weights": [...]}`) so lockstep divergence
/// reports render either representation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FilterSnapshot {
    /// Raw counter arrays of every component table, in table order.
    Counters(Vec<Vec<u8>>),
    /// Raw signed weight arrays of every feature table, in feature order.
    Weights(Vec<Vec<i8>>),
}

impl ToJson for FilterSnapshot {
    fn to_json(&self) -> JsonValue {
        match self {
            FilterSnapshot::Counters(t) => {
                JsonValue::Object(vec![("counters".to_string(), t.to_json())])
            }
            FilterSnapshot::Weights(t) => {
                JsonValue::Object(vec![("weights".to_string(), t.to_json())])
            }
        }
    }
}

impl FromJson for FilterSnapshot {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        if let Some(c) = v.get("counters") {
            return Vec::<Vec<u8>>::from_json(c).map(FilterSnapshot::Counters);
        }
        if let Some(w) = v.get("weights") {
            return Vec::<Vec<i8>>::from_json(w).map(FilterSnapshot::Weights);
        }
        Err(format!(
            "expected object with `counters` or `weights`, got {v}"
        ))
    }
}

/// Folded into a nonzero salt per tenant ID so each tenant indexes the
/// shared table through its own keyed permutation (tag-mixing): a hostile
/// tenant can no longer aim trained-bad counters at a victim's keys even
/// without partitioning. Tenant 0 keeps the configured salt unchanged, so
/// single-tenant salted runs are unaffected.
const TENANT_TAG_MIX: u64 = 0x9e37_79b9_7f4a_7c15;

impl PollutionFilter {
    /// Build a filter from its configuration. With `FilterKind::None` the
    /// filter admits everything and trains nothing (the baseline machine).
    pub fn new(cfg: &FilterConfig) -> Self {
        let parts = (cfg.tenant_partitions.max(1) as u32).min(ppf_types::MAX_TENANTS as u32);
        let table = |entries: usize| {
            HistoryTable::with_partitions(entries, cfg.counter_bits, cfg.counter_init, parts)
        };
        let tables = if cfg.kind == FilterKind::Perceptron {
            // All storage lives in the signed weight tables below; an empty
            // counter-table vector keeps the counter paths inert.
            Vec::new()
        } else if cfg.kind == FilterKind::Hybrid {
            // tables[0] is PA-indexed, tables[1] is PC-indexed. The chooser
            // below takes half the advertised budget, each component a
            // quarter, so components + chooser together stay inside
            // `table_entries` counters (floored at 64 entries each for
            // degenerate budgets).
            let per = floor_pow2(cfg.table_entries / 4).max(64);
            vec![table(per), table(per)]
        } else if cfg.split_by_source {
            // Same total budget, four ways; round *down* to a power of two
            // (rounding up would overshoot the budget whenever the quarter
            // is not already a power of two); floor at 64 entries each.
            let per = floor_pow2(cfg.table_entries / PrefetchSource::COUNT).max(64);
            (0..PrefetchSource::COUNT).map(|_| table(per)).collect()
        } else {
            vec![table(cfg.table_entries)]
        };
        PollutionFilter {
            kind: cfg.kind,
            tables,
            gate: cfg
                .adaptive_accuracy_threshold
                .map(|thr| AdaptiveGate::new(thr, cfg.adaptive_window)),
            stats: FilterStats::default(),
            trace: None,
            // `recovery_window == 0` disables recovery entirely — the
            // strict (absorbing) reading of the paper, kept as an ablation.
            reject_log: (cfg.kind != FilterKind::None && cfg.recovery_window > 0).then(|| {
                recovery::RejectLog::with_window(recovery::DEFAULT_REJECT_LOG, cfg.recovery_window)
            }),
            // Half the advertised budget; honors the configured counter
            // width and initial state like the component tables (the
            // PC-indexed chooser aliases across trigger sites, so it gets
            // the larger share).
            chooser: (cfg.kind == FilterKind::Hybrid)
                .then(|| table(floor_pow2(cfg.table_entries / 2).max(64))),
            perceptron: (cfg.kind == FilterKind::Perceptron).then(|| {
                Perceptron::new(cfg.table_entries, cfg.counter_bits, cfg.counter_init, parts)
            }),
            salt: cfg.hash_salt,
        }
    }

    /// The keyed-hash salt a lookup from `tenant` uses: the configured salt
    /// with the tenant ID tag-mixed in (identity when salting is off).
    #[inline]
    fn effective_salt(&self, tenant: u8) -> u64 {
        if self.salt == 0 {
            0
        } else {
            self.salt ^ (tenant as u64).wrapping_mul(TENANT_TAG_MIX)
        }
    }

    /// Enable per-trigger-PC diagnostic tracing.
    pub fn enable_trace(&mut self) {
        self.trace = Some(std::collections::HashMap::new());
    }

    /// The per-trigger-PC trace, if enabled.
    pub fn trace(&self) -> Option<&std::collections::HashMap<u64, KeyTrace>> {
        self.trace.as_ref()
    }

    /// The indexing scheme in use.
    pub fn kind(&self) -> FilterKind {
        self.kind
    }

    /// Filter-local statistics.
    pub fn stats(&self) -> &FilterStats {
        &self.stats
    }

    /// History-table entry count (per table when split by source). For the
    /// perceptron this is the per-partition row count of the largest
    /// feature table (the PC/line tables).
    pub fn table_entries(&self) -> usize {
        match &self.perceptron {
            Some(p) => p.rows()[0],
            None => self.tables[0].entries(),
        }
    }

    /// Number of history tables (1 shared, or one per prefetch source).
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Entry count of the hybrid chooser table; `None` for non-hybrid kinds.
    pub fn chooser_entries(&self) -> Option<usize> {
        self.chooser.as_ref().map(HistoryTable::entries)
    }

    /// Total counters across every structure the filter allocates
    /// (component tables plus the hybrid chooser) — the real storage cost
    /// to compare against the advertised `FilterConfig::table_entries`.
    pub fn storage_entries(&self) -> usize {
        self.tables.iter().map(HistoryTable::entries).sum::<usize>()
            + self.chooser_entries().unwrap_or(0)
            + self
                .perceptron
                .as_ref()
                .map(Perceptron::storage_entries)
                .unwrap_or(0)
    }

    /// Entries-weighted fraction of component-table counters currently
    /// predicting "good" — the telemetry gauge for filter convergence. All
    /// counters start weakly-good (§4), so this begins at 1.0 and decays as
    /// PIB/RIB evictions train entries bad; the curve flattening out is the
    /// filter reaching steady state. The hybrid chooser is excluded: it
    /// predicts *which table* to trust, not whether a prefetch is good.
    pub fn fraction_good(&self) -> f64 {
        if let Some(p) = &self.perceptron {
            return p.fraction_good();
        }
        let total: usize = self.tables.iter().map(HistoryTable::entries).sum();
        if total == 0 {
            return 1.0;
        }
        let good: f64 = self
            .tables
            .iter()
            .map(|t| t.fraction_good() * t.entries() as f64)
            .sum();
        good / total as f64
    }

    /// Snapshot of every component table's raw counter array, in table
    /// order. Cheap state-inspection hook for the differential oracle.
    pub fn counter_snapshot(&self) -> Vec<Vec<u8>> {
        self.tables.iter().map(|t| t.counters().to_vec()).collect()
    }

    /// Snapshot of the hybrid chooser's counters; `None` for non-hybrid
    /// kinds.
    pub fn chooser_snapshot(&self) -> Option<Vec<u8>> {
        self.chooser.as_ref().map(|c| c.counters().to_vec())
    }

    /// Snapshot of the perceptron's signed weight tables in feature order;
    /// `None` for counter-based kinds.
    pub fn weight_snapshot(&self) -> Option<Vec<Vec<i8>>> {
        self.perceptron.as_ref().map(Perceptron::weight_snapshot)
    }

    /// Full-state snapshot of whichever storage this kind uses — the
    /// kind-agnostic diff surface for lockstep oracles.
    pub fn snapshot(&self) -> FilterSnapshot {
        match self.weight_snapshot() {
            Some(w) => FilterSnapshot::Weights(w),
            None => FilterSnapshot::Counters(self.counter_snapshot()),
        }
    }

    #[inline]
    fn table_idx(&self, source: PrefetchSource) -> usize {
        if self.tables.len() > 1 {
            source.index()
        } else {
            0
        }
    }

    #[inline]
    fn index_for(&self, line: ppf_types::LineAddr, pc: ppf_types::Pc, tenant: u8) -> Option<u64> {
        let salt = self.effective_salt(tenant);
        match self.kind {
            FilterKind::None => None,
            FilterKind::Pa => Some(hash::hash_line_salted(line, salt)),
            FilterKind::Pc => Some(hash::hash_pc_salted(pc, salt)),
            // Hybrid handles its two keys explicitly at each use site; the
            // recovery log stores the chosen (key, table) pair. The
            // perceptron has no single index either — its reject-log entry
            // stores the feature inputs instead.
            FilterKind::Hybrid | FilterKind::Perceptron => None,
        }
    }

    /// Hybrid lookup: both predictions plus the chooser's pick.
    /// Returns (decision, chosen key, chosen table index).
    #[inline]
    fn hybrid_predict(
        &self,
        line: ppf_types::LineAddr,
        pc: ppf_types::Pc,
        tenant: u8,
    ) -> (bool, u64, usize) {
        let salt = self.effective_salt(tenant);
        let pa_key = hash::hash_line_salted(line, salt);
        let pc_key = hash::hash_pc_salted(pc, salt);
        let use_pc = self
            .chooser
            .as_ref()
            .map(|c| c.predict_good_for(pc_key, tenant))
            .unwrap_or(false);
        if use_pc {
            (self.tables[1].predict_good_for(pc_key, tenant), pc_key, 1)
        } else {
            (self.tables[0].predict_good_for(pa_key, tenant), pa_key, 0)
        }
    }

    /// Perceptron lookup path of [`Self::should_prefetch`]: gate bypass,
    /// then a weight-sum threshold decision. A rejection records the
    /// feature inputs (target line, trigger PC, clamped depth) in the
    /// reject log so a later demand miss can re-derive the exact feature
    /// vector and train it good.
    fn perceptron_lookup(&mut self, req: &PrefetchRequest, now: u64) -> bool {
        if let Some(gate) = &self.gate {
            if !gate.engaged() {
                self.stats.bypassed += 1;
                self.stats.allowed += 1;
                return true;
            }
        }
        let bucket = accuracy_bucket(self.stats.trained_good, self.stats.trained_bad);
        let feats = Features::of(req.line, req.trigger_pc, req.depth, bucket);
        let salt = self.effective_salt(req.tenant);
        let good = self
            .perceptron
            .as_ref()
            .is_none_or(|p| p.predict(&feats, req.tenant, salt));
        if good {
            self.stats.allowed += 1;
        } else {
            self.stats.rejected += 1;
            if let Some(log) = &mut self.reject_log {
                // Slot reuse: `key` carries the trigger PC and `table` the
                // clamped depth — together with the line, everything needed
                // to rebuild the feature vector at miss time.
                log.record(req.line, req.trigger_pc, feats.depth, req.tenant, now);
            }
        }
        if let Some(trace) = &mut self.trace {
            let e = trace.entry(req.trigger_pc).or_default();
            if good {
                e.allowed += 1;
            } else {
                e.rejected += 1;
            }
        }
        good
    }

    /// Decide whether `req` should be issued (history-table lookup, §4) at
    /// cycle `now`. `FilterKind::None` always allows. The adaptive gate,
    /// when configured and satisfied with recent accuracy, bypasses
    /// filtering.
    pub fn should_prefetch(&mut self, req: &PrefetchRequest, now: u64) -> bool {
        let (key, table) = match self.kind {
            FilterKind::None => {
                self.stats.allowed += 1;
                return true;
            }
            FilterKind::Perceptron => return self.perceptron_lookup(req, now),
            FilterKind::Hybrid => {
                let (_, key, table) = self.hybrid_predict(req.line, req.trigger_pc, req.tenant);
                (key, table)
            }
            _ => match self.index_for(req.line, req.trigger_pc, req.tenant) {
                Some(key) => (key, self.table_idx(req.source)),
                None => unreachable!("None handled above"),
            },
        };
        if let Some(gate) = &self.gate {
            if !gate.engaged() {
                self.stats.bypassed += 1;
                self.stats.allowed += 1;
                return true;
            }
        }
        let good = self.tables[table].predict_good_for(key, req.tenant);
        if good {
            self.stats.allowed += 1;
        } else {
            self.stats.rejected += 1;
            if let Some(log) = &mut self.reject_log {
                log.record(req.line, key, table as u8, req.tenant, now);
            }
        }
        if let Some(trace) = &mut self.trace {
            let e = trace.entry(req.trigger_pc).or_default();
            if good {
                e.allowed += 1;
            } else {
                e.rejected += 1;
            }
        }
        good
    }

    /// Train on an L1 eviction (or end-of-run drain) of a prefetched line:
    /// `referenced` is the line's RIB. Also feeds the adaptive gate's
    /// accuracy window.
    pub fn on_eviction(&mut self, origin: &PrefetchOrigin, referenced: bool) {
        if referenced {
            self.stats.trained_good += 1;
        } else {
            self.stats.trained_bad += 1;
        }
        if let Some(gate) = &mut self.gate {
            gate.observe(referenced);
        }
        if let Some(trace) = &mut self.trace {
            let e = trace.entry(origin.trigger_pc).or_default();
            if referenced {
                e.trained_good += 1;
            } else {
                e.trained_bad += 1;
            }
        }
        if let Some(p) = &mut self.perceptron {
            // Ordering contract (mirrored by the oracle): the stats bump
            // above happens FIRST, so the accuracy bucket this training
            // event hashes feature 4 with already includes the event itself.
            let bucket = accuracy_bucket(self.stats.trained_good, self.stats.trained_bad);
            let feats = Features::of(origin.line, origin.trigger_pc, origin.depth, bucket);
            let salt = if self.salt == 0 {
                0
            } else {
                self.salt ^ (origin.tenant as u64).wrapping_mul(TENANT_TAG_MIX)
            };
            // Margin gate (perceptron::TRAIN_MARGIN): good outcomes only
            // train while the sum is at or below the margin band above the
            // threshold; bad outcomes always train.
            if !referenced
                || p.sum(&feats, origin.tenant, salt)
                    <= perceptron::DECISION_THRESHOLD + perceptron::TRAIN_MARGIN
            {
                p.train(&feats, origin.tenant, salt, referenced);
            }
        } else if self.kind == FilterKind::Hybrid {
            let tenant = origin.tenant;
            let salt = self.effective_salt(tenant);
            let pa_key = hash::hash_line_salted(origin.line, salt);
            let pc_key = hash::hash_pc_salted(origin.trigger_pc, salt);
            // Both component tables train on the outcome; the chooser
            // trains toward whichever component was right (only when they
            // disagree — the tournament update rule).
            let pa_right = self.tables[0].predict_good_for(pa_key, tenant) == referenced;
            let pc_right = self.tables[1].predict_good_for(pc_key, tenant) == referenced;
            self.tables[0].train_for(pa_key, tenant, referenced);
            self.tables[1].train_for(pc_key, tenant, referenced);
            if pa_right != pc_right {
                if let Some(c) = &mut self.chooser {
                    c.train_for(pc_key, tenant, pc_right);
                }
            }
        } else if let Some(key) = self.index_for(origin.line, origin.trigger_pc, origin.tenant) {
            let table = self.table_idx(origin.source);
            self.tables[table].train_for(key, origin.tenant, referenced);
        }
    }

    /// A demand access missed the L1 on `line`. If a prefetch for that line
    /// was recently rejected, the rejection was a misprediction: train the
    /// vetoing counter good so the key class can recover (see [`recovery`]).
    pub fn on_demand_miss(&mut self, line: ppf_types::LineAddr, now: u64) {
        let Some(log) = &mut self.reject_log else {
            return;
        };
        let Some((key, table, tenant)) = log.check_miss(line, now) else {
            return;
        };
        self.stats.recovered += 1;
        if let Some(p) = &mut self.perceptron {
            // The log entry holds the rejected request's feature inputs
            // (`key` = trigger PC, `table` = clamped depth; see the reject
            // path). Re-derive the vector and give the target-specific
            // weights their one-step second chance (`Perceptron::recover`)
            // — the analogue of the counter filters' recovery train.
            let bucket = accuracy_bucket(self.stats.trained_good, self.stats.trained_bad);
            let feats = Features::of(line, key, table, bucket);
            let salt = if self.salt == 0 {
                0
            } else {
                self.salt ^ (tenant as u64).wrapping_mul(TENANT_TAG_MIX)
            };
            p.recover(&feats, tenant, salt);
        } else {
            self.tables[table as usize].train_for(key, tenant, true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppf_types::{LineAddr, PrefetchSource};

    fn cfg(kind: FilterKind) -> FilterConfig {
        FilterConfig {
            kind,
            ..FilterConfig::default()
        }
    }

    fn req(line: u64, pc: u64) -> PrefetchRequest {
        PrefetchRequest {
            line: LineAddr(line),
            trigger_pc: pc,
            source: PrefetchSource::Nsp,
            tenant: 0,
            depth: 1,
        }
    }

    #[test]
    fn none_filter_always_allows() {
        let mut f = PollutionFilter::new(&cfg(FilterKind::None));
        for i in 0..100 {
            // Train hard against, then verify it still allows.
            f.on_eviction(&req(i, 0x100).origin(), false);
            assert!(f.should_prefetch(&req(i, 0x100), i));
        }
        assert_eq!(f.stats().rejected, 0);
    }

    #[test]
    fn first_touch_is_allowed() {
        // Counters initialize weakly-good: a never-seen prefetch passes.
        let mut f = PollutionFilter::new(&cfg(FilterKind::Pa));
        assert!(f.should_prefetch(&req(123, 0x100), 0));
        let mut f = PollutionFilter::new(&cfg(FilterKind::Pc));
        assert!(f.should_prefetch(&req(123, 0x100), 0));
    }

    #[test]
    fn pa_filter_learns_bad_address() {
        let mut f = PollutionFilter::new(&cfg(FilterKind::Pa));
        let r = req(500, 0x100);
        // Two bad outcomes drive the 2-bit counter from weakly-good to bad.
        f.on_eviction(&r.origin(), false);
        f.on_eviction(&r.origin(), false);
        assert!(!f.should_prefetch(&r, 0));
        // ...and a different line is unaffected.
        assert!(f.should_prefetch(&req(501, 0x100), 0));
    }

    #[test]
    fn pc_filter_groups_by_trigger_pc() {
        let mut f = PollutionFilter::new(&cfg(FilterKind::Pc));
        // Same PC, different lines: training one line's outcome affects the
        // other (that is the point of PC indexing).
        f.on_eviction(&req(1, 0x100).origin(), false);
        f.on_eviction(&req(2, 0x100).origin(), false);
        assert!(!f.should_prefetch(&req(3, 0x100), 0));
        // A different PC still passes.
        assert!(f.should_prefetch(&req(3, 0x200), 0));
    }

    #[test]
    fn pa_filter_relearns_good() {
        let mut f = PollutionFilter::new(&cfg(FilterKind::Pa));
        let r = req(500, 0x100);
        f.on_eviction(&r.origin(), false);
        f.on_eviction(&r.origin(), false);
        assert!(!f.should_prefetch(&r, 0));
        f.on_eviction(&r.origin(), true);
        f.on_eviction(&r.origin(), true);
        assert!(f.should_prefetch(&r, 0), "counter saturates back to good");
    }

    #[test]
    fn stats_track_decisions_and_training() {
        let mut f = PollutionFilter::new(&cfg(FilterKind::Pa));
        let r = req(7, 0x100);
        f.should_prefetch(&r, 0);
        f.on_eviction(&r.origin(), false);
        f.on_eviction(&r.origin(), false);
        f.should_prefetch(&r, 0);
        assert_eq!(f.stats().allowed, 1);
        assert_eq!(f.stats().rejected, 1);
        assert_eq!(f.stats().trained_bad, 2);
        assert_eq!(f.stats().trained_good, 0);
    }

    #[test]
    fn adaptive_gate_bypasses_while_accuracy_high() {
        let mut c = cfg(FilterKind::Pa);
        c.adaptive_accuracy_threshold = Some(0.5);
        c.adaptive_window = 16;
        let mut f = PollutionFilter::new(&c);
        let r = req(9, 0x100);
        // Train the entry bad — but overall accuracy stays high, so the
        // gate keeps the filter disengaged and prefetches pass.
        f.on_eviction(&r.origin(), false);
        f.on_eviction(&r.origin(), false);
        for i in 0..32 {
            f.on_eviction(&req(100 + i, 0x200).origin(), true);
        }
        assert!(f.should_prefetch(&r, 0), "high accuracy -> gate bypasses");
        assert!(f.stats().bypassed > 0);
        // Flood with bad outcomes: accuracy collapses, filter engages.
        for i in 0..64 {
            f.on_eviction(&req(200 + i, 0x300).origin(), false);
        }
        assert!(!f.should_prefetch(&r, 0), "low accuracy -> filter engages");
    }

    #[test]
    fn rejected_key_recovers_via_demand_miss() {
        let mut f = PollutionFilter::new(&cfg(FilterKind::Pc));
        let r = req(500, 0x100);
        // Lock the PC out.
        f.on_eviction(&r.origin(), false);
        f.on_eviction(&r.origin(), false);
        assert!(!f.should_prefetch(&r, 0));
        assert!(!f.should_prefetch(&req(501, 0x100), 0));
        // The program then demand-misses the rejected lines: both were
        // mispredictions, and two good trains bring the counter back.
        f.on_demand_miss(LineAddr(500), 10);
        f.on_demand_miss(LineAddr(501), 11);
        assert_eq!(f.stats().recovered, 2);
        assert!(f.should_prefetch(&r, 0), "key class recovered");
    }

    #[test]
    fn unrelated_demand_miss_does_not_recover() {
        let mut f = PollutionFilter::new(&cfg(FilterKind::Pc));
        let r = req(500, 0x100);
        f.on_eviction(&r.origin(), false);
        f.on_eviction(&r.origin(), false);
        assert!(!f.should_prefetch(&r, 0));
        // Misses to lines that were never rejected train nothing.
        f.on_demand_miss(LineAddr(9999), 10);
        f.on_demand_miss(LineAddr(12345), 11);
        assert_eq!(f.stats().recovered, 0);
        assert!(!f.should_prefetch(&r, 0));
    }

    #[test]
    fn split_filter_isolates_sources() {
        let mut c = cfg(FilterKind::Pa);
        c.split_by_source = true;
        let mut f = PollutionFilter::new(&c);
        assert_eq!(f.table_count(), PrefetchSource::COUNT);
        // NSP trains a line bad...
        let nsp = PrefetchRequest {
            line: LineAddr(500),
            trigger_pc: 0x100,
            source: PrefetchSource::Nsp,
            tenant: 0,
            depth: 1,
        };
        f.on_eviction(&nsp.origin(), false);
        f.on_eviction(&nsp.origin(), false);
        assert!(!f.should_prefetch(&nsp, 0));
        // ...but SDP's prefetch of the SAME line is judged by its own
        // table and still passes — the poisoning the shared table suffers.
        let sdp = PrefetchRequest {
            source: PrefetchSource::Sdp,
            ..nsp
        };
        assert!(f.should_prefetch(&sdp, 1));
    }

    #[test]
    fn split_filter_divides_the_budget() {
        let mut c = cfg(FilterKind::Pa);
        c.split_by_source = true;
        let f = PollutionFilter::new(&c);
        // 4096 entries split four ways.
        assert_eq!(f.table_entries(), 1024);
    }

    #[test]
    fn split_filter_recovery_trains_the_right_table() {
        let mut c = cfg(FilterKind::Pc);
        c.split_by_source = true;
        let mut f = PollutionFilter::new(&c);
        let nsp = PrefetchRequest {
            line: LineAddr(500),
            trigger_pc: 0x100,
            source: PrefetchSource::Nsp,
            tenant: 0,
            depth: 1,
        };
        f.on_eviction(&nsp.origin(), false);
        f.on_eviction(&nsp.origin(), false);
        assert!(!f.should_prefetch(&nsp, 0));
        // The rejected line is demand-missed promptly: NSP's table (and
        // only NSP's) trains back up. The counter sits at 0 after two bad
        // trainings, so two reject-miss rounds are needed to clear the
        // threshold — each rejection re-arms the log.
        f.on_demand_miss(LineAddr(500), 5);
        assert!(!f.should_prefetch(&nsp, 6)); // still bad; re-records
        f.on_demand_miss(LineAddr(500), 7);
        assert_eq!(f.stats().recovered, 2);
        assert!(f.should_prefetch(&nsp, 8));
    }

    #[test]
    fn hybrid_uses_pa_until_chooser_learns() {
        let mut f = PollutionFilter::new(&cfg(FilterKind::Hybrid));
        // Scenario where PC is right and PA is wrong: one PC touches many
        // lines, all consistently bad. The PA table (per line) sees each
        // line only twice — not enough to lock every line out — while the
        // PC table converges fast, and the chooser learns to trust it.
        for round in 0..6u64 {
            for i in 0..64 {
                let r = req(10_000 + round * 64 + i, 0x300);
                f.on_eviction(&r.origin(), false);
            }
        }
        // A fresh line from that PC: PA would say weakly-good (never seen),
        // PC says bad; the chooser must have learned to trust PC.
        assert!(!f.should_prefetch(&req(99_999, 0x300), 0));
    }

    #[test]
    fn hybrid_trains_both_components() {
        let mut f = PollutionFilter::new(&cfg(FilterKind::Hybrid));
        let r = req(500, 0x100);
        f.on_eviction(&r.origin(), false);
        f.on_eviction(&r.origin(), false);
        // Whichever table the chooser picks, the key class is bad.
        assert!(!f.should_prefetch(&r, 0));
    }

    #[test]
    fn hybrid_splits_the_budget() {
        let c = cfg(FilterKind::Hybrid);
        let f = PollutionFilter::new(&c);
        assert_eq!(f.table_count(), 2);
        assert_eq!(f.table_entries(), 1024, "a quarter each for PA and PC");
        assert_eq!(f.chooser_entries(), Some(2048), "half for the chooser");
        assert_eq!(
            f.storage_entries(),
            c.table_entries,
            "components + chooser together spend exactly the advertised budget"
        );
    }

    #[test]
    fn hybrid_chooser_honors_counter_config() {
        // The chooser is sized inside the budget AND follows the configured
        // counter width/init instead of hardcoding 2-bit weakly-good.
        let mut c = cfg(FilterKind::Hybrid);
        c.counter_bits = 3;
        c.counter_init = ppf_types::CounterInit::WeaklyBad;
        let mut f = PollutionFilter::new(&c);
        assert!(f.storage_entries() <= c.table_entries);
        // Weakly-bad init: the chooser starts distrusting PC, and both
        // component tables start rejecting, so a first-touch prefetch is
        // rejected — observable proof the init reached all three tables.
        assert!(!f.should_prefetch(&req(1, 0x100), 0));
    }

    #[test]
    fn non_pow2_budget_never_overshoots() {
        // Regression: sizing used `next_power_of_two()`, which rounds UP —
        // a 1000-entry budget split four ways became 4 x 256 = 1024 > 1000.
        // Rounding down keeps every layout inside the advertised budget.
        for split in [false, true] {
            for kind in [FilterKind::Pa, FilterKind::Pc, FilterKind::Hybrid] {
                let mut c = cfg(kind);
                c.table_entries = 1000;
                c.split_by_source = split;
                // Shared non-split tables require a power-of-two entry
                // count; only the derived (split/hybrid) layouts accept an
                // arbitrary budget.
                if kind == FilterKind::Hybrid || split {
                    let f = PollutionFilter::new(&c);
                    assert!(
                        f.storage_entries() <= c.table_entries,
                        "{kind:?} split={split}: {} counters from a budget of {}",
                        f.storage_entries(),
                        c.table_entries
                    );
                }
            }
        }
    }

    #[test]
    fn zero_recovery_window_disables_reject_log() {
        let mut c = cfg(FilterKind::Pc);
        c.recovery_window = 0;
        let mut f = PollutionFilter::new(&c);
        let r = req(500, 0x100);
        f.on_eviction(&r.origin(), false);
        f.on_eviction(&r.origin(), false);
        assert!(!f.should_prefetch(&r, 0));
        // With the log disabled, a demand miss on the rejected line is NOT
        // treated as a misprediction: nothing recovers, the key stays bad.
        f.on_demand_miss(LineAddr(500), 1);
        f.on_demand_miss(LineAddr(500), 2);
        assert_eq!(f.stats().recovered, 0);
        assert!(!f.should_prefetch(&r, 3));
    }

    #[test]
    fn paper_default_table_is_4k_entries() {
        let f = PollutionFilter::new(&cfg(FilterKind::Pa));
        assert_eq!(f.table_entries(), 4096);
    }

    #[test]
    fn fraction_good_starts_at_one_and_decays_with_bad_training() {
        let mut f = PollutionFilter::new(&cfg(FilterKind::Pa));
        assert_eq!(f.fraction_good(), 1.0, "weakly-good init predicts good");
        // Train a handful of distinct lines bad twice each: their 2-bit
        // counters saturate below the threshold, so the aggregate drops.
        for line in 0..8u64 {
            let r = req(line * 64, 0x100);
            f.on_eviction(&r.origin(), false);
            f.on_eviction(&r.origin(), false);
        }
        let fg = f.fraction_good();
        assert!(fg < 1.0, "training bad must lower fraction_good: {fg}");
        assert!(fg > 0.9, "only 8 of 4096 entries were trained: {fg}");
    }

    #[test]
    fn perceptron_first_touch_is_allowed_then_learns_bad() {
        let mut f = PollutionFilter::new(&cfg(FilterKind::Perceptron));
        let r = req(500, 0x100);
        assert!(f.should_prefetch(&r, 0), "all-zero weights admit");
        // One bad eviction drives all five selected weights to −1: sum −5.
        f.on_eviction(&r.origin(), false);
        assert!(!f.should_prefetch(&r, 1));
        // A request sharing no feature slot with the trained one still
        // passes (different line, page offset, and PC slots; the shared
        // depth/bucket weights are only −1 each, not enough to flip the
        // sum alone). PC 0x904 folds to row 577 of 1024, clear of 0x100's 64.
        assert!(f.should_prefetch(&req(1000, 0x904), 2));
    }

    #[test]
    fn perceptron_relearns_good() {
        let mut f = PollutionFilter::new(&cfg(FilterKind::Perceptron));
        let r = req(500, 0x100);
        for _ in 0..4 {
            f.on_eviction(&r.origin(), false);
        }
        assert!(!f.should_prefetch(&r, 0));
        for _ in 0..5 {
            f.on_eviction(&r.origin(), true);
        }
        assert!(f.should_prefetch(&r, 1), "weights trained back up");
    }

    #[test]
    fn perceptron_rejected_prefetch_recovers_via_demand_miss() {
        let mut f = PollutionFilter::new(&cfg(FilterKind::Perceptron));
        let r = req(500, 0x100);
        f.on_eviction(&r.origin(), false);
        assert!(!f.should_prefetch(&r, 0));
        // The rejection was wrong: the program demand-misses the line. One
        // good train lifts the sum from −5 back to 0 (admit).
        f.on_demand_miss(LineAddr(500), 5);
        assert_eq!(f.stats().recovered, 1);
        assert!(f.should_prefetch(&r, 6), "feature vector recovered");
    }

    #[test]
    fn perceptron_storage_never_exceeds_the_counter_budget() {
        for (entries, bits) in [(4096usize, 2u8), (1024, 2), (256, 3), (64, 1)] {
            let mut c = cfg(FilterKind::Perceptron);
            c.table_entries = entries;
            c.counter_bits = bits;
            let f = PollutionFilter::new(&c);
            let budget_bits = entries * bits as usize;
            let spent = f.storage_entries() * perceptron::WEIGHT_BITS;
            // The fixed feature tables (88 slots = 440 bits) dominate only
            // for degenerate budgets; everywhere else the layout must fit.
            if budget_bits >= 1024 {
                assert!(
                    spent <= budget_bits,
                    "{entries}x{bits}: spent {spent} of {budget_bits} bits"
                );
            }
        }
    }

    #[test]
    fn perceptron_snapshot_is_weights_counters_otherwise() {
        let f = PollutionFilter::new(&cfg(FilterKind::Perceptron));
        assert!(f.counter_snapshot().is_empty());
        let snap = f.snapshot();
        match &snap {
            FilterSnapshot::Weights(w) => {
                assert_eq!(w.len(), perceptron::FEATURE_COUNT);
                assert!(w.iter().flatten().all(|&x| x == 0));
            }
            other => panic!("expected weights, got {other:?}"),
        }
        let f = PollutionFilter::new(&cfg(FilterKind::Pa));
        assert!(f.weight_snapshot().is_none());
        assert!(matches!(f.snapshot(), FilterSnapshot::Counters(_)));
    }

    #[test]
    fn filter_snapshot_round_trips_through_json() {
        use ppf_types::json::{FromJson, ToJson};
        let w = FilterSnapshot::Weights(vec![vec![-15, 0, 15], vec![1, -1]]);
        let c = FilterSnapshot::Counters(vec![vec![0, 3], vec![2]]);
        for snap in [w, c] {
            let back = FilterSnapshot::from_json(&snap.to_json()).unwrap();
            assert_eq!(back, snap);
        }
    }

    #[test]
    fn perceptron_depth_feature_distinguishes_deep_prefetches() {
        // Same PC and page, different depths: deep speculative requests can
        // be trained bad while shallow ones stay admitted, because the depth
        // feature selects different weights. The line feature also differs
        // here (as it would for a real degree-d burst), so the test drives
        // the shared PC weight down and checks depth keeps them apart.
        let mut f = PollutionFilter::new(&cfg(FilterKind::Perceptron));
        let shallow = PrefetchRequest {
            depth: 1,
            ..req(500, 0x100)
        };
        let deep = PrefetchRequest {
            depth: 8,
            ..req(501, 0x100)
        };
        // Deep requests train bad; shallow ones good — alternating, so the
        // shared PC/bucket weights roughly cancel.
        for _ in 0..6 {
            f.on_eviction(&deep.origin(), false);
            f.on_eviction(&shallow.origin(), true);
        }
        assert!(!f.should_prefetch(&deep, 0), "deep class trained bad");
        assert!(f.should_prefetch(&shallow, 1), "shallow class still good");
    }

    #[test]
    fn perceptron_tenants_are_isolated_with_partitions() {
        let mut c = cfg(FilterKind::Perceptron);
        c.tenant_partitions = 4;
        let mut f = PollutionFilter::new(&c);
        let hostile = PrefetchRequest {
            tenant: 1,
            ..req(500, 0x100)
        };
        for _ in 0..8 {
            f.on_eviction(&hostile.origin(), false);
        }
        assert!(!f.should_prefetch(&hostile, 0));
        let victim = PrefetchRequest {
            tenant: 0,
            ..req(500, 0x100)
        };
        assert!(
            f.should_prefetch(&victim, 1),
            "tenant 0's partition is untouched by tenant 1's pollution"
        );
    }

    #[test]
    fn perceptron_gate_bypass_counts() {
        let mut c = cfg(FilterKind::Perceptron);
        c.adaptive_accuracy_threshold = Some(0.5);
        c.adaptive_window = 16;
        let mut f = PollutionFilter::new(&c);
        let r = req(9, 0x100);
        // Pollute r's feature slots, but keep overall accuracy high.
        f.on_eviction(&r.origin(), false);
        f.on_eviction(&r.origin(), false);
        for i in 0..32 {
            f.on_eviction(&req(100 + i, 0x200).origin(), true);
        }
        assert!(f.should_prefetch(&r, 0), "high accuracy -> gate bypasses");
        assert!(f.stats().bypassed > 0);
        for i in 0..64 {
            f.on_eviction(&req(200 + i, 0x300).origin(), false);
        }
        assert!(!f.should_prefetch(&r, 1), "low accuracy -> filter engages");
    }
}
