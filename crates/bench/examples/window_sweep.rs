//! Diagnostic: recovery-window sweep — bad reduction / good loss / IPC.
use ppf_sim::experiments::RunSpec;
use ppf_sim::report::geomean;
use ppf_types::{FilterKind, SystemConfig};
use ppf_workloads::Workload;

fn main() {
    for window in [8u64, 16, 32, 64, 128, 256] {
        let mut grid = Vec::new();
        for kind in [FilterKind::None, FilterKind::Pa, FilterKind::Pc] {
            for &w in &Workload::ALL {
                let mut cfg = SystemConfig::paper_default().with_filter(kind);
                cfg.filter.recovery_window = window;
                grid.push(RunSpec::new(kind.label(), cfg, w).instructions(600_000));
            }
        }
        let reports = ppf_sim::run_grid(grid);
        let by = |label: &str| -> Vec<&ppf_sim::SimReport> {
            reports.iter().filter(|r| r.label == label).collect()
        };
        let (none, pa, pc) = (by("none"), by("PA"), by("PC"));
        let summarize = |f: &[&ppf_sim::SimReport]| {
            let mut bad_red = Vec::new();
            let mut good_loss = Vec::new();
            let mut gains = Vec::new();
            for i in 0..10 {
                let b0 = none[i].stats.bad_total() as f64;
                let g0 = none[i].stats.good_total() as f64;
                if b0 > 0.0 {
                    bad_red.push(1.0 - f[i].stats.bad_total() as f64 / b0);
                }
                if g0 > 0.0 {
                    good_loss.push(1.0 - f[i].stats.good_total() as f64 / g0);
                }
                gains.push(f[i].ipc() / none[i].ipc());
            }
            (
                bad_red.iter().sum::<f64>() / bad_red.len() as f64,
                good_loss.iter().sum::<f64>() / good_loss.len() as f64,
                geomean(&gains) - 1.0,
            )
        };
        let (br_pa, gl_pa, g_pa) = summarize(&pa);
        let (br_pc, gl_pc, g_pc) = summarize(&pc);
        println!(
            "window={window:<4} PA: badred={:.0}% goodloss={:.0}% ipc={:+.1}% | PC: badred={:.0}% goodloss={:.0}% ipc={:+.1}%",
            100.0*br_pa, 100.0*gl_pa, 100.0*g_pa, 100.0*br_pc, 100.0*gl_pc, 100.0*g_pc
        );
    }
}
