//! Diagnostic: NSP degree vs Figure-1 bad share and Figure-2 traffic ratio.
use ppf_sim::experiments::RunSpec;
use ppf_types::SystemConfig;
use ppf_workloads::Workload;

fn main() {
    for degree in [1u32, 2, 3, 4] {
        let mut cfg = SystemConfig::paper_default();
        cfg.prefetch.nsp_degree = degree;
        let specs: Vec<RunSpec> = Workload::ALL
            .iter()
            .map(|&w| RunSpec::new("x", cfg.clone(), w).instructions(600_000))
            .collect();
        let reports = ppf_sim::run_grid(specs);
        let mut bad_fracs = Vec::new();
        let mut ratios = Vec::new();
        for r in &reports {
            let g = r.stats.good_total();
            let b = r.stats.bad_total();
            bad_fracs.push(b as f64 / (g + b).max(1) as f64);
            ratios
                .push(r.stats.prefetches_issued.total() as f64 / r.stats.l1.demand_accesses as f64);
        }
        let mb = bad_fracs.iter().sum::<f64>() / 10.0;
        let mr = ratios.iter().sum::<f64>() / 10.0;
        println!(
            "degree={degree}  mean_bad={:.1}%  mean_traffic_ratio={:.3}",
            100.0 * mb,
            mr
        );
    }
}
