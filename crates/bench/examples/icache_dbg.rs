//! Diagnostic: I-cache behaviour per workload.
use ppf_sim::experiments::RunSpec;
use ppf_types::SystemConfig;
use ppf_workloads::Workload;

fn main() {
    for w in [Workload::Em3d, Workload::Gcc, Workload::Wave5] {
        let r = RunSpec::new("x", SystemConfig::paper_default(), w)
            .instructions(300_000)
            .run();
        println!(
            "{:<8} ipc={:.3} l1i: acc={} miss={} rate={:.4}",
            w.name(),
            r.ipc(),
            r.stats.l1i.demand_accesses,
            r.stats.l1i.demand_misses,
            r.stats.l1i.miss_rate()
        );
    }
}
