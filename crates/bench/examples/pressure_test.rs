//! Diagnostic: do the buffer/port effects flip at higher prefetch traffic?
use ppf_sim::experiments::RunSpec;
use ppf_sim::report::geomean;
use ppf_types::{FilterKind, SystemConfig};
use ppf_workloads::Workload;

fn main() {
    for degree in [1u32, 4, 8] {
        // Buffer effect under PA filter.
        let mut grid = Vec::new();
        for &w in &Workload::ALL {
            let mut pa = SystemConfig::paper_default().with_filter(FilterKind::Pa);
            pa.prefetch.nsp_degree = degree;
            grid.push(RunSpec::new("PA", pa.clone(), w).instructions(400_000));
            grid.push(RunSpec::new("PA+buf", pa.with_prefetch_buffer(), w).instructions(400_000));
        }
        // Port sweep (no filter, to isolate contention).
        for &w in &Workload::ALL {
            for ports in [3usize, 4, 5] {
                let mut cfg = SystemConfig::paper_default().with_l1_ports(ports);
                cfg.prefetch.nsp_degree = degree;
                grid.push(RunSpec::new(format!("{ports}p"), cfg, w).instructions(400_000));
            }
        }
        let reports = ppf_sim::run_grid(grid);
        let buf_gain: Vec<f64> = (0..10)
            .map(|i| reports[2 * i + 1].ipc() / reports[2 * i].ipc())
            .collect();
        let base = 20;
        let p3: Vec<f64> = (0..10).map(|i| reports[base + 3 * i].ipc()).collect();
        let p4: Vec<f64> = (0..10).map(|i| reports[base + 3 * i + 1].ipc()).collect();
        let p5: Vec<f64> = (0..10).map(|i| reports[base + 3 * i + 2].ipc()).collect();
        println!(
            "degree={degree}: buffer IPC effect {:+.1}% | ports 3->4 {:+.1}%, 4->5 {:+.1}%",
            100.0 * (geomean(&buf_gain) - 1.0),
            100.0 * (geomean(&p4) / geomean(&p3) - 1.0),
            100.0 * (geomean(&p5) / geomean(&p4) - 1.0),
        );
    }
}
