//! Ablation: the filter with recovery disabled (the strict, absorbing
//! reading of the paper) vs. the default — reproduces the EXPERIMENTS.md
//! claim about removal rates.
use ppf_sim::experiments::RunSpec;
use ppf_types::{FilterKind, SystemConfig};
use ppf_workloads::Workload;

fn main() {
    for (name, window) in [("no-recovery", 0u64), ("recovery-400cy", 400)] {
        let mut grid = Vec::new();
        for kind in [FilterKind::None, FilterKind::Pa] {
            for &w in &Workload::ALL {
                let mut cfg = SystemConfig::paper_default().with_filter(kind);
                cfg.filter.recovery_window = window;
                grid.push(RunSpec::new(kind.label(), cfg, w).instructions(600_000));
            }
        }
        let reports = ppf_sim::run_grid(grid);
        let none: Vec<_> = reports.iter().filter(|r| r.label == "none").collect();
        let pa: Vec<_> = reports.iter().filter(|r| r.label == "PA").collect();
        let mut bad_red = Vec::new();
        let mut good_loss = Vec::new();
        for i in 0..10 {
            bad_red.push(
                1.0 - pa[i].stats.bad_total() as f64 / none[i].stats.bad_total().max(1) as f64,
            );
            good_loss.push(
                1.0 - pa[i].stats.good_total() as f64 / none[i].stats.good_total().max(1) as f64,
            );
        }
        println!(
            "{name:<16} PA bad removed {:.0}%  good lost {:.0}%",
            100.0 * bad_red.iter().sum::<f64>() / 10.0,
            100.0 * good_loss.iter().sum::<f64>() / 10.0
        );
    }
}
