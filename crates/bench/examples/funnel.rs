//! Diagnostic: prefetch funnel per source for one workload.
use ppf_sim::experiments::RunSpec;
use ppf_types::{PrefetchSource, SystemConfig};
use ppf_workloads::Workload;

fn main() {
    for w in [Workload::Mcf, Workload::Perimeter, Workload::Em3d] {
        let r = RunSpec::new("x", SystemConfig::paper_default(), w)
            .instructions(600_000)
            .run();
        println!("--- {w}", w = w.name());
        for s in PrefetchSource::ALL {
            println!(
                "  {:<9} proposed={:>7} dup={:>7} filtered={:>5} overflow={:>5} issued={:>7} good={:>6} bad={:>6}",
                s.name(),
                r.stats.prefetches_proposed.get(s),
                r.stats.prefetches_duplicate.get(s),
                r.stats.prefetches_filtered.get(s),
                r.stats.prefetches_queue_overflow.get(s),
                r.stats.prefetches_issued.get(s),
                r.stats.prefetch_good.get(s),
                r.stats.prefetch_bad.get(s),
            );
        }
    }
}
