//! Diagnostic: prefetch aggressiveness vs filter IPC gains.
use ppf_sim::experiments::RunSpec;
use ppf_sim::report::geomean;
use ppf_types::{FilterKind, SystemConfig};
use ppf_workloads::Workload;

fn main() {
    for degree in [2u32, 4, 6, 8] {
        let mut grid = Vec::new();
        for kind in [FilterKind::None, FilterKind::Pa, FilterKind::Pc] {
            for &w in &Workload::ALL {
                let mut cfg = SystemConfig::paper_default().with_filter(kind);
                cfg.prefetch.nsp_degree = degree;
                grid.push(RunSpec::new(kind.label(), cfg, w).instructions(600_000));
            }
        }
        let reports = ppf_sim::run_grid(grid);
        let ipc = |label: &str| -> Vec<f64> {
            reports
                .iter()
                .filter(|r| r.label == label)
                .map(|r| r.ipc())
                .collect()
        };
        let none = ipc("none");
        let pa = ipc("PA");
        let pc = ipc("PC");
        let gain = |f: &[f64]| {
            let r: Vec<f64> = f.iter().zip(none.iter()).map(|(a, b)| a / b).collect();
            geomean(&r) - 1.0
        };
        let traffic: f64 = reports
            .iter()
            .filter(|r| r.label == "none")
            .map(|r| r.stats.prefetches_issued.total() as f64 / r.stats.l1.demand_accesses as f64)
            .sum::<f64>()
            / 10.0;
        let bad: f64 = reports
            .iter()
            .filter(|r| r.label == "none")
            .map(|r| {
                r.stats.bad_total() as f64
                    / (r.stats.bad_total() + r.stats.good_total()).max(1) as f64
            })
            .sum::<f64>()
            / 10.0;
        println!(
            "degree={degree}  traffic={traffic:.3}  bad={:.1}%  PA gain={:+.1}%  PC gain={:+.1}%",
            100.0 * bad,
            100.0 * gain(&pa),
            100.0 * gain(&pc)
        );
    }
}
