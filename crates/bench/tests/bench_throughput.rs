//! Tier-1 coverage for the throughput bench harness: determinism of the
//! simulated counters, the `BENCH_*.json` schema round-trip, the CI
//! regression-gate arithmetic, and the in-process cell memo.

use ppf_bench::memo;
use ppf_bench::throughput::{
    compare, load_report, run, store_report, BenchReport, BenchSettings, LayerStat, LAYERS,
    SCHEMA_VERSION,
};
use ppf_sim::experiments::RunSpec;
use ppf_types::SystemConfig;
use ppf_workloads::Workload;

/// A mix small enough to run all four layers twice inside a unit test.
fn tiny_settings() -> BenchSettings {
    let mut s = BenchSettings::quick();
    s.insts_per_cell = 20_000;
    s.workloads.truncate(1);
    s
}

#[test]
fn same_seed_runs_have_identical_counters() {
    let settings = tiny_settings();
    let a = run(&settings).expect("first bench run");
    let b = run(&settings).expect("second bench run");
    assert_eq!(a.layers.len(), LAYERS.len());
    for (la, lb) in a.layers.iter().zip(&b.layers) {
        assert_eq!(la.name, lb.name);
        assert!(la.instructions > 0, "layer {} retired nothing", la.name);
        assert_eq!(
            (la.instructions, la.cycles),
            (lb.instructions, lb.cycles),
            "layer {} counters drifted between same-seed runs",
            la.name
        );
    }
}

fn sample_report() -> BenchReport {
    BenchReport {
        schema_version: SCHEMA_VERSION,
        rev: "abc1234".into(),
        quick: true,
        seed: 42,
        insts_per_cell: 150_000,
        trials: 3,
        workloads: vec!["mcf-like".into(), "stream-like".into()],
        layers: vec![LayerStat {
            name: "core".into(),
            instructions: 300_000,
            cycles: 456_789,
            wall_ms: 123.456789,
            mips: 2.431,
            mcps: 3.700123,
        }],
        total_mips: 2.431,
    }
}

#[test]
fn report_round_trips_through_json() {
    let report = sample_report();
    let text = ppf_types::ToJson::to_json_pretty(&report);
    let parsed: BenchReport = ppf_types::FromJson::from_json_str(&text).expect("parse");
    assert_eq!(parsed, report);
}

#[test]
fn report_round_trips_through_file() {
    let report = sample_report();
    let dir = std::env::temp_dir().join(format!("ppf_bench_rt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_test.json");
    store_report(&path, &report).expect("store");
    let loaded = load_report(&path).expect("load");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(loaded, report);
}

fn report_with_mips(mips: &[f64]) -> BenchReport {
    let mut r = sample_report();
    r.layers = mips
        .iter()
        .zip(LAYERS)
        .map(|(&m, name)| LayerStat {
            name: name.into(),
            instructions: 300_000,
            cycles: 456_789,
            wall_ms: 100.0,
            mips: m,
            mcps: m,
        })
        .collect();
    r.total_mips = mips.iter().sum::<f64>() / mips.len() as f64;
    r
}

#[test]
fn compare_detects_a_regression_past_the_threshold() {
    let base = report_with_mips(&[2.0, 2.0, 2.0, 2.0]);
    let new = report_with_mips(&[2.0, 1.5, 2.0, 2.0]); // -25% on "+mem"
    let cmp = compare(&base, &new);
    assert_eq!(cmp.rows.len(), LAYERS.len() + 1, "four layers plus total");
    let mem = cmp.rows.iter().find(|r| r.name == "+mem").unwrap();
    assert!((mem.delta_pct - -25.0).abs() < 1e-9);
    assert!((cmp.worst_pct - -25.0).abs() < 1e-9);
    assert!(cmp.regression_exceeds(20.0));
    assert!(!cmp.regression_exceeds(30.0));
    assert!(cmp.warnings.is_empty());
}

#[test]
fn compare_tolerates_noise_within_the_threshold() {
    let base = report_with_mips(&[2.0, 2.0, 2.0, 2.0]);
    let new = report_with_mips(&[1.8, 2.1, 1.9, 2.2]); // worst -10%
    let cmp = compare(&base, &new);
    assert!(!cmp.regression_exceeds(20.0));
}

#[test]
fn compare_warns_on_incomparable_mixes() {
    let base = report_with_mips(&[2.0; 4]);
    let mut new = report_with_mips(&[2.0; 4]);
    new.quick = false;
    new.insts_per_cell += 1;
    let cmp = compare(&base, &new);
    assert_eq!(cmp.warnings.len(), 2, "quick-flag and mix warnings");
    assert!(!cmp.regression_exceeds(20.0), "warnings are not failures");
}

#[test]
fn memo_serves_repeat_cells_with_identical_reports() {
    let spec = || {
        let mut s = RunSpec::new(
            "memo-test-unique-label",
            SystemConfig::paper_default(),
            Workload::ALL[0],
        )
        .instructions(5_000);
        s.warmup = 0;
        s
    };
    // Both copies execute on the first call: the memo only serves cells
    // that *completed* before the grid started.
    let first = memo::run_grid_memoized(vec![spec(), spec()]);
    assert_eq!(first.executed, 2);
    assert_eq!(first.hits, 0);
    // The second call is served entirely from the memo, byte-for-byte.
    let second = memo::run_grid_memoized(vec![spec()]);
    assert_eq!(second.executed, 0);
    assert_eq!(second.hits, 1);
    assert_eq!(
        first.outcomes[0].report().expect("first run ok"),
        second.outcomes[0].report().expect("memo hit ok"),
    );
}
