//! End-to-end tests of the `figures` binary's machine interface.
//!
//! The contract under test: `--json` output must stay machine-parseable
//! even when cells fail (exit code 2). The failure diagnostics go to
//! stderr and into the JSON document's `failures` array — never interleaved
//! into stdout or silently dropped from the dump. Fault injection
//! (`--inject-fault`) drives the partial path deterministically.

use ppf_bench::figures::ExperimentDoc;
use ppf_types::{FromJson, PpfErrorKind};
use std::path::PathBuf;
use std::process::Command;

fn figures() -> Command {
    Command::new(env!("CARGO_BIN_EXE_figures"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn partial_failure_keeps_stdout_parseable_and_dumps_failures() {
    let dir = temp_dir("ppf-figures-json-fault-test");
    let out = figures()
        .args(["--insts", "3000", "--inject-fault", "50", "--json"])
        .arg(&dir)
        .arg("fig2")
        .output()
        .expect("figures binary runs");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();

    // The sweep completed around the injected fault: exit 2, not 1.
    assert_eq!(
        out.status.code(),
        Some(2),
        "stdout:\n{stdout}\nstderr:\n{stderr}"
    );

    // The human table still renders, but the per-cell error dump lives on
    // stderr so stdout stays clean for machine consumers.
    assert!(stdout.contains("partial results"), "{stdout}");
    assert!(
        !stdout.contains("failed cells:"),
        "appendix leaked to stdout:\n{stdout}"
    );
    assert!(stderr.contains("failed cells:"), "{stderr}");
    assert!(stderr.contains("injected fault"), "{stderr}");

    // The JSON document parses and carries the structured failure.
    let json = std::fs::read_to_string(dir.join("fig2.json")).expect("json dump written");
    let doc = ExperimentDoc::from_json_str(&json).expect("dump parses as ExperimentDoc");
    assert_eq!(doc.experiment, "fig2");
    assert!(!doc.reports.is_empty(), "surviving cells still dumped");
    assert_eq!(doc.failures.len(), 1, "exactly the injected fault failed");
    assert_eq!(doc.failures[0].error.kind, PpfErrorKind::CellPanic);
    assert!(doc.failures[0].error.message.contains("injected fault"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn green_run_dumps_doc_with_empty_failures() {
    let dir = temp_dir("ppf-figures-json-green-test");
    let out = figures()
        .args(["--insts", "3000", "--json"])
        .arg(&dir)
        .arg("fig2")
        .output()
        .expect("figures binary runs");
    assert!(out.status.success());
    let json = std::fs::read_to_string(dir.join("fig2.json")).unwrap();
    let doc = ExperimentDoc::from_json_str(&json).unwrap();
    assert!(doc.failures.is_empty());
    assert_eq!(doc.reports.len(), 10, "fig1_2 grid: 2 labels x 5 workloads");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn telemetry_flag_streams_interval_records_per_cell() {
    let dir = temp_dir("ppf-figures-telemetry-cli-test");
    let out = figures()
        .args(["--insts", "20000", "--telemetry"])
        .arg(&dir)
        .arg("fig2")
        .output()
        .expect("figures binary runs");
    assert!(out.status.success());
    let cell_dir = dir.join("fig2");
    let streams: Vec<_> = std::fs::read_dir(&cell_dir)
        .expect("per-experiment telemetry dir exists")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "jsonl"))
        .collect();
    assert_eq!(streams.len(), 10, "one stream per grid cell");
    for entry in streams {
        let text = std::fs::read_to_string(entry.path()).unwrap();
        let records = ppf_types::telemetry::parse_jsonl(&text).expect("stream parses");
        assert!(!records.is_empty(), "{:?} is empty", entry.path());
    }
    std::fs::remove_dir_all(&dir).ok();
}
