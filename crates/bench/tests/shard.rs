//! End-to-end tests of the sharded sweep fabric through the `figures`
//! binary.
//!
//! The load-bearing contract: for any shard count K, running `--shard k/K`
//! for every k and merging the fragment directories must produce
//! per-experiment JSON documents *byte-identical* to an unsharded
//! `figures --json` run of the same sweep — sharding is a pure partition
//! of work, never a change of results. The merge must also refuse
//! inconsistent inputs (overlap, version skew) with structured
//! `shard-mismatch` errors and report coverage gaps via exit code 2.

use ppf_bench::shard::{ExperimentFragment, ShardManifest, SHARD_SCHEMA_VERSION};
use ppf_types::FromJson;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::OnceLock;

/// The sweep under test: small enough to run many times, two experiments
/// so cross-experiment manifest handling is exercised.
const EXPERIMENTS: [&str; 2] = ["fig2", "table2"];
const INSTS: &str = "5000";

fn figures() -> Command {
    Command::new(env!("CARGO_BIN_EXE_figures"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ppf-shard-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Run `figures --insts INSTS --json <dir> [--shard k/n] fig2 table2`,
/// asserting success.
fn run_figures(json_dir: &Path, shard: Option<(u64, u64)>) {
    let mut cmd = figures();
    cmd.args(["--insts", INSTS, "--json"]).arg(json_dir);
    if let Some((k, n)) = shard {
        cmd.args(["--shard", &format!("{k}/{n}")]);
    }
    let out = cmd.args(EXPERIMENTS).output().expect("figures runs");
    assert!(
        out.status.success(),
        "figures failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// The unsharded reference documents, computed once per test process.
fn baseline() -> &'static Vec<(String, String)> {
    static BASE: OnceLock<Vec<(String, String)>> = OnceLock::new();
    BASE.get_or_init(|| {
        let dir = temp_dir("baseline");
        run_figures(&dir, None);
        let docs = EXPERIMENTS
            .iter()
            .map(|name| {
                let text = std::fs::read_to_string(dir.join(format!("{name}.json")))
                    .expect("unsharded doc written");
                (name.to_string(), text)
            })
            .collect();
        std::fs::remove_dir_all(&dir).ok();
        docs
    })
}

/// Run all K shards into fresh directories and return their paths.
fn run_all_shards(tag: &str, count: u64) -> Vec<PathBuf> {
    (1..=count)
        .map(|k| {
            let dir = temp_dir(&format!("{tag}-{k}of{count}"));
            run_figures(&dir, Some((k, count)));
            dir
        })
        .collect()
}

fn merge(out_dir: &Path, shard_dirs: &[PathBuf]) -> std::process::Output {
    let mut cmd = figures();
    cmd.arg("merge").arg("--out").arg(out_dir);
    for d in shard_dirs {
        cmd.arg(d);
    }
    cmd.output().expect("figures merge runs")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The tentpole invariant: for any shard count, the union of all
    /// shards merges byte-identical to the unsharded run.
    #[test]
    fn shard_union_merges_byte_identical_to_unsharded(count in 2u64..=5) {
        let shard_dirs = run_all_shards("union", count);
        let out_dir = temp_dir(&format!("union-merged-{count}"));
        let out = merge(&out_dir, &shard_dirs);
        prop_assert!(
            out.status.success(),
            "merge failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        for (name, expected) in baseline() {
            let merged = std::fs::read_to_string(out_dir.join(format!("{name}.json")))
                .expect("merged doc written");
            prop_assert_eq!(&merged, expected, "{} differs from unsharded run", name);
        }
        for d in shard_dirs {
            std::fs::remove_dir_all(&d).ok();
        }
        std::fs::remove_dir_all(&out_dir).ok();
    }
}

#[test]
fn shard_fragments_and_manifest_are_self_describing() {
    let dirs = run_all_shards("describe", 2);
    let mut covered: Vec<Vec<u64>> = vec![Vec::new(); EXPERIMENTS.len()];
    let mut totals: Vec<u64> = vec![0; EXPERIMENTS.len()];
    for (k, dir) in dirs.iter().enumerate() {
        let manifest = ShardManifest::from_json_str(
            &std::fs::read_to_string(dir.join("MANIFEST.json")).expect("manifest written"),
        )
        .expect("manifest parses");
        assert_eq!(manifest.schema_version, SHARD_SCHEMA_VERSION);
        assert_eq!(manifest.shard_index, k as u64 + 1);
        assert_eq!(manifest.shard_count, 2);
        assert_eq!(manifest.insts.to_string(), INSTS);
        // Both invoked experiments are gridded, so the manifest lists
        // exactly them, in invocation order.
        let names: Vec<&str> = manifest
            .experiments
            .iter()
            .map(|e| e.experiment.as_str())
            .collect();
        assert_eq!(names, EXPERIMENTS);
        for (i, exp) in manifest.experiments.iter().enumerate() {
            assert!(exp.total_cells > 0);
            totals[i] = exp.total_cells;
            assert_eq!(exp.indices.len(), exp.keys.len());
            // The fragment mirrors the manifest's coverage claim.
            let frag = ExperimentFragment::from_json_str(
                &std::fs::read_to_string(dir.join(format!("{}.fragment.json", exp.experiment)))
                    .expect("fragment written"),
            )
            .expect("fragment parses");
            assert_eq!(frag.schema_version, SHARD_SCHEMA_VERSION);
            assert_eq!(frag.shard_index, manifest.shard_index);
            let frag_indices: Vec<u64> = frag.entries.iter().map(|e| e.index).collect();
            assert_eq!(frag_indices, exp.indices);
            assert!(frag.entries.iter().all(|e| e.report.is_some()));
            covered[i].extend(&exp.indices);
        }
    }
    // The two shards partition each grid exactly: no gaps, no overlap.
    for (per_exp, total) in covered.iter_mut().zip(&totals) {
        per_exp.sort_unstable();
        assert_eq!(*per_exp, (0..*total).collect::<Vec<u64>>());
    }
    for d in dirs {
        std::fs::remove_dir_all(&d).ok();
    }
}

#[test]
fn merge_rejects_overlapping_shards_with_structured_error() {
    let dirs = run_all_shards("overlap", 2);
    let out_dir = temp_dir("overlap-merged");
    // The same shard twice: every cell it owns is claimed twice.
    let out = merge(&out_dir, &[dirs[0].clone(), dirs[0].clone()]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("shard-mismatch"), "{stderr}");
    assert!(
        !out_dir.join("fig2.json").exists(),
        "a refused merge must write nothing"
    );
    for d in dirs {
        std::fs::remove_dir_all(&d).ok();
    }
    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn merge_reports_coverage_gaps_with_exit_2() {
    let dirs = run_all_shards("gaps", 2);
    let out_dir = temp_dir("gaps-merged");
    // Only shard 1 of 2: consistent inputs, incomplete coverage.
    let out = merge(&out_dir, &dirs[..1]);
    assert_eq!(out.status.code(), Some(2), "partial coverage is exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("coverage gaps"), "{stderr}");
    assert!(stderr.contains("missing"), "{stderr}");
    assert!(
        !out_dir.join("fig2.json").exists(),
        "a partial merge must write nothing"
    );
    for d in dirs {
        std::fs::remove_dir_all(&d).ok();
    }
    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn merge_rejects_schema_version_skew() {
    let dirs = run_all_shards("skew", 2);
    let out_dir = temp_dir("skew-merged");
    let manifest_path = dirs[1].join("MANIFEST.json");
    let doctored = std::fs::read_to_string(&manifest_path).unwrap().replacen(
        "\"schema_version\": 1",
        "\"schema_version\": 999",
        1,
    );
    std::fs::write(&manifest_path, doctored).unwrap();
    let out = merge(&out_dir, &dirs);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("schema version"), "{stderr}");
    for d in dirs {
        std::fs::remove_dir_all(&d).ok();
    }
    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn shard_flag_requires_json_dir() {
    let out = figures()
        .args(["--insts", INSTS, "--shard", "1/2", "fig2"])
        .output()
        .expect("figures runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--shard requires --json"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
