//! Checkpoint/resume integration drills: fresh runs persist every healthy
//! cell, resumes execute only the missing or failed ones, a config change
//! invalidates the old entries, and corrupt files are re-run.

use ppf_bench::checkpoint::{cell_path, run_grid_checkpointed, run_grid_seeds_checkpointed};
use ppf_sim::experiments::CellOutcome;
use ppf_sim::{RunSpec, WatchdogConfig};
use ppf_types::{PpfErrorKind, SystemConfig};
use ppf_workloads::{AdversarySpec, AttackKind, FaultSpec, Workload};
use std::path::PathBuf;

const N: u64 = 4_000;

/// A scratch checkpoint directory unique to this test process.
fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ppf-ckpt-{}-{name}", std::process::id()))
}

/// The acceptance drill grid: 10 workloads, one panicking and one wedged.
fn drill_grid() -> Vec<RunSpec> {
    Workload::ALL
        .iter()
        .map(|&w| {
            let spec = RunSpec::new("drill", SystemConfig::paper_default(), w).instructions(N);
            match w {
                Workload::Perimeter => spec.with_fault(FaultSpec::panic_at(500)),
                Workload::Gcc => {
                    let mut cfg = SystemConfig::paper_default();
                    cfg.mem.latency = 1_000_000_000;
                    RunSpec::new("drill", cfg, w)
                        .instructions(N)
                        .with_fault(FaultSpec::hang_at(0))
                        .with_watchdog(WatchdogConfig {
                            max_cpi: 10_000,
                            stall_window: 20_000,
                        })
                }
                _ => spec,
            }
        })
        .collect()
}

/// The same grid with every fault healed (what a fixed re-run looks like).
fn healed_grid() -> Vec<RunSpec> {
    drill_grid()
        .into_iter()
        .map(|mut s| {
            s.fault = None;
            if s.config.mem.latency > 1_000 {
                s.config = SystemConfig::paper_default();
            }
            s
        })
        .collect()
}

/// Fresh run: every cell executes, only healthy cells leave files, and a
/// resume of the fixed grid reloads exactly those and runs the rest.
#[test]
fn resume_executes_only_failed_cells() {
    let dir = scratch("resume");
    std::fs::remove_dir_all(&dir).ok();

    let first = run_grid_checkpointed(drill_grid(), &dir).unwrap();
    assert_eq!(first.loaded, 0, "fresh directory has nothing to reload");
    assert_eq!(first.executed, 10);
    assert_eq!(first.corrupt, 0);
    assert!(first.write_errors.is_empty());
    assert_eq!(first.outcomes.iter().filter(|o| o.is_ok()).count(), 8);
    // Only the 8 healthy cells were persisted; failures are never
    // checkpointed so a resume retries them.
    let files = std::fs::read_dir(&dir).unwrap().count();
    assert_eq!(files, 8);
    for (spec, outcome) in drill_grid().iter().zip(&first.outcomes) {
        assert_eq!(cell_path(&dir, spec).exists(), outcome.is_ok());
    }

    // Resume with the faults fixed: the 8 checkpointed cells reload, only
    // the 2 previously-failed cells execute. The wedged cell's config
    // changed when it was healed, so its old key never existed anyway.
    let second = run_grid_checkpointed(healed_grid(), &dir).unwrap();
    assert_eq!(second.loaded, 8);
    assert_eq!(second.executed, 2);
    assert!(second.outcomes.iter().all(CellOutcome::is_ok));

    // The reloaded cells are identical to the first run's survivors.
    for (a, b) in first
        .outcomes
        .iter()
        .zip(&second.outcomes)
        .filter_map(|(a, b)| Some((a.report()?, b.report()?)))
    {
        assert_eq!(a.stats, b.stats);
    }

    // Third run: everything reloads, nothing executes.
    let third = run_grid_checkpointed(healed_grid(), &dir).unwrap();
    assert_eq!(third.loaded, 10);
    assert_eq!(third.executed, 0);

    std::fs::remove_dir_all(&dir).ok();
}

/// Any config change produces different cell keys, so a checkpoint from
/// the old sweep is invisible to the new one.
#[test]
fn config_change_invalidates_checkpoint() {
    let dir = scratch("invalidate");
    std::fs::remove_dir_all(&dir).ok();

    let grid = || {
        vec![
            RunSpec::new("base", SystemConfig::paper_default(), Workload::Gzip).instructions(N),
            RunSpec::new("base", SystemConfig::paper_default(), Workload::Mcf).instructions(N),
        ]
    };
    let first = run_grid_checkpointed(grid(), &dir).unwrap();
    assert_eq!((first.loaded, first.executed), (0, 2));

    let mut changed = grid();
    for spec in &mut changed {
        spec.config.prefetch.nsp_degree += 1;
    }
    for spec in &changed {
        assert!(
            !cell_path(&dir, spec).exists(),
            "changed config must hash to fresh keys"
        );
    }
    let second = run_grid_checkpointed(changed, &dir).unwrap();
    assert_eq!(
        (second.loaded, second.executed),
        (0, 2),
        "old entries must not satisfy the new sweep"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// A checkpoint file that exists but does not parse is counted corrupt and
/// the cell is transparently re-run (and re-persisted).
#[test]
fn corrupt_checkpoint_entry_is_rerun() {
    let dir = scratch("corrupt");
    std::fs::remove_dir_all(&dir).ok();

    let grid =
        || vec![RunSpec::new("c", SystemConfig::paper_default(), Workload::Bh).instructions(N)];
    run_grid_checkpointed(grid(), &dir).unwrap();
    let path = cell_path(&dir, &grid()[0]);
    std::fs::write(&path, "{ not json").unwrap();

    let rerun = run_grid_checkpointed(grid(), &dir).unwrap();
    assert_eq!(rerun.corrupt, 1);
    assert_eq!((rerun.loaded, rerun.executed), (0, 1));
    assert!(rerun.outcomes[0].is_ok());
    // The re-run rewrote a valid entry.
    let healed = run_grid_checkpointed(grid(), &dir).unwrap();
    assert_eq!((healed.loaded, healed.executed), (1, 0));

    std::fs::remove_dir_all(&dir).ok();
}

/// The multi-seed form checkpoints each fanned (cell, seed) run under its
/// own key and merges on reload exactly like a live run.
#[test]
fn seed_fanout_checkpoints_every_fanned_cell() {
    let dir = scratch("seeds");
    std::fs::remove_dir_all(&dir).ok();

    let grid =
        || vec![RunSpec::new("s", SystemConfig::paper_default(), Workload::Em3d).instructions(N)];
    let first = run_grid_seeds_checkpointed(grid(), 3, &dir).unwrap();
    assert_eq!((first.loaded, first.executed), (0, 3));
    assert_eq!(
        first.outcomes.len(),
        1,
        "outcomes are merged per input cell"
    );
    let merged = first.outcomes[0].report().unwrap();
    assert!(merged.stats.instructions >= 3 * N);
    assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 3);

    let second = run_grid_seeds_checkpointed(grid(), 3, &dir).unwrap();
    assert_eq!((second.loaded, second.executed), (3, 0));
    assert_eq!(
        second.outcomes[0].report().unwrap().stats,
        merged.stats,
        "reloaded merge must match the live merge"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// An attack cell that also faults mid-campaign must not checkpoint its
/// poisoned partial state: the failure leaves no file, the healed re-run
/// executes from scratch, and its result is identical to a run that never
/// faulted — resumed state cannot smuggle in a half-trained filter.
#[test]
fn faulting_attack_cell_is_not_cached_poisoned() {
    let dir = scratch("attack-fault");
    std::fs::remove_dir_all(&dir).ok();

    let attack = AdversarySpec::window(AttackKind::Poison, 500, 3_000);
    let attacked = |fault: Option<FaultSpec>| {
        let spec = RunSpec::new("atk", SystemConfig::paper_default(), Workload::Em3d)
            .instructions(N)
            .with_adversary(attack);
        match fault {
            // Panic inside the attack window: the filter has already eaten
            // poisoned feedback when the cell dies.
            Some(f) => spec.with_fault(f),
            None => spec,
        }
    };

    let faulted =
        run_grid_checkpointed(vec![attacked(Some(FaultSpec::panic_at(1_500)))], &dir).unwrap();
    let failure = faulted.outcomes[0].failure().expect("attacked cell faults");
    assert_eq!(failure.error.kind, PpfErrorKind::CellPanic);
    assert_eq!(
        std::fs::read_dir(&dir).unwrap().count(),
        0,
        "a faulted attack cell must leave no checkpoint behind"
    );

    // Healed re-run executes fresh (nothing to reload) and persists.
    let healed = run_grid_checkpointed(vec![attacked(None)], &dir).unwrap();
    assert_eq!((healed.loaded, healed.executed), (0, 1));
    let healed_report = healed.outcomes[0].report().unwrap().clone();

    // A pristine directory gives the identical result: whatever the faulted
    // attempt computed before dying is invisible to the resume.
    let pristine_dir = scratch("attack-fault-pristine");
    std::fs::remove_dir_all(&pristine_dir).ok();
    let pristine = run_grid_checkpointed(vec![attacked(None)], &pristine_dir).unwrap();
    assert_eq!(
        pristine.outcomes[0].report().unwrap().stats,
        healed_report.stats
    );

    // And the healed checkpoint reloads cleanly under the same attack key.
    let resumed = run_grid_checkpointed(vec![attacked(None)], &dir).unwrap();
    assert_eq!((resumed.loaded, resumed.executed), (1, 0));
    assert_eq!(
        resumed.outcomes[0].report().unwrap().stats,
        healed_report.stats
    );

    // The attack is part of the cell key: the same cell without the
    // adversary must NOT be satisfied by the attacked checkpoint.
    let clean_spec =
        RunSpec::new("atk", SystemConfig::paper_default(), Workload::Em3d).instructions(N);
    assert!(
        !cell_path(&dir, &clean_spec).exists(),
        "attack-free cell must hash to a different key than the attacked one"
    );

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&pristine_dir).ok();
}

/// Failures come back as structured outcomes from the checkpointed path
/// too (the figures layer renders them in the appendix).
#[test]
fn checkpointed_failures_are_structured() {
    let dir = scratch("failures");
    std::fs::remove_dir_all(&dir).ok();

    let spec = RunSpec::new("f", SystemConfig::paper_default(), Workload::Gap)
        .instructions(N)
        .with_fault(FaultSpec::panic_at(50));
    let run = run_grid_checkpointed(vec![spec], &dir).unwrap();
    let failure = run.outcomes[0].failure().expect("cell fails");
    assert_eq!(failure.error.kind, PpfErrorKind::CellPanic);
    assert_eq!(failure.attempts, 2);
    assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);

    std::fs::remove_dir_all(&dir).ok();
}
