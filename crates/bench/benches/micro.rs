//! Component microbenchmarks and design-choice ablations.
//!
//! The first groups time the hot-path data structures in isolation (cache
//! probe/fill, history-table lookup/train, prefetch generators, branch
//! predictor, workload stream generation). The ablation groups quantify
//! the design choices DESIGN.md calls out: counter width, L1
//! associativity, the stride (RPT) prefetcher extension, and the adaptive
//! filter gate.

use criterion::{criterion_group, criterion_main, Criterion};
use ppf_cpu::InstStream;
use ppf_filter::{table::HistoryTable, PollutionFilter};
use ppf_mem::cache::{Cache, FillKind};
use ppf_mem::replacement::ReplacementPolicy;
use ppf_prefetch::{
    AccessEvent, NextSequencePrefetcher, Prefetcher, ShadowDirectoryPrefetcher, StridePrefetcher,
};
use ppf_sim::experiments::RunSpec;
use ppf_types::{
    CacheConfig, FilterConfig, FilterKind, LineAddr, PrefetchRequest, PrefetchSource, SplitMix64,
    SystemConfig,
};
use ppf_workloads::Workload;
use std::hint::black_box;

fn bench_cache(c: &mut Criterion) {
    let cfg = CacheConfig {
        size_bytes: 8 * 1024,
        line_bytes: 32,
        ways: 1,
        hit_latency: 1,
        ports: 3,
    };
    c.bench_function("micro/cache/probe_fill_mix", |b| {
        let mut cache = Cache::new(&cfg, ReplacementPolicy::Lru, 1);
        let mut rng = SplitMix64::new(9);
        b.iter(|| {
            let line = LineAddr(rng.below(4096));
            if cache.probe(line, false).is_none() {
                cache.fill(line, FillKind::Demand);
            }
            black_box(cache.valid_lines() > 0)
        })
    });
}

fn bench_history_table(c: &mut Criterion) {
    c.bench_function("micro/filter/table_lookup_train", |b| {
        let mut t = HistoryTable::new(4096, 2);
        let mut rng = SplitMix64::new(5);
        b.iter(|| {
            let key = rng.next_u64();
            let p = t.predict_good(key);
            t.train(key, !p);
            black_box(p)
        })
    });
    c.bench_function("micro/filter/full_filter_decision", |b| {
        let mut f = PollutionFilter::new(&FilterConfig {
            kind: FilterKind::Pa,
            ..FilterConfig::default()
        });
        let mut rng = SplitMix64::new(6);
        let mut now = 0u64;
        b.iter(|| {
            now += 1;
            let req = PrefetchRequest {
                line: LineAddr(rng.below(1 << 20)),
                trigger_pc: rng.below(1 << 16) * 4,
                source: PrefetchSource::Nsp,
                tenant: 0,
                depth: 1,
            };
            let d = f.should_prefetch(&req, now);
            if !d {
                f.on_demand_miss(req.line, now + 3);
            }
            black_box(d)
        })
    });
}

fn bench_prefetchers(c: &mut Criterion) {
    let event = |line: u64, hit: bool| AccessEvent {
        pc: 0x1000 + (line % 16) * 4,
        addr: line * 32,
        line: LineAddr(line),
        l1_hit: hit,
        nsp_tagged_hit: false,
        l2_accessed: !hit,
        l2_hit: true,
        is_store: false,
    };
    c.bench_function("micro/prefetch/nsp_trigger", |b| {
        let mut p = NextSequencePrefetcher::new();
        let mut out = Vec::with_capacity(4);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            out.clear();
            p.on_access(&event(i % 10_000, i.is_multiple_of(3)), &mut out);
            black_box(out.len())
        })
    });
    c.bench_function("micro/prefetch/sdp_trigger", |b| {
        let mut p = ShadowDirectoryPrefetcher::new(16384);
        let mut out = Vec::with_capacity(4);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            out.clear();
            p.on_access(&event(i % 4096, false), &mut out);
            black_box(out.len())
        })
    });
    c.bench_function("micro/prefetch/stride_rpt", |b| {
        let mut p = StridePrefetcher::paper_sized();
        let mut out = Vec::with_capacity(4);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            out.clear();
            let mut ev = event(i % 1000, true);
            ev.addr = i * 64;
            p.on_access(&ev, &mut out);
            black_box(out.len())
        })
    });
}

fn bench_workload_generation(c: &mut Criterion) {
    c.bench_function("micro/workload/stream_next_inst", |b| {
        let mut s = Workload::Mcf.stream(3);
        b.iter(|| black_box(s.next_inst()))
    });
}

fn bench_simulator_throughput(c: &mut Criterion) {
    // Whole-machine throughput: simulated instructions per wall second is
    // the number the README quotes.
    c.bench_function("micro/sim/20k_instructions_em3d", |b| {
        b.iter(|| {
            black_box(
                RunSpec::new("tp", SystemConfig::paper_default(), Workload::Em3d)
                    .instructions(20_000)
                    .run(),
            )
        })
    });
}

fn bench_ablation_counter_width(c: &mut Criterion) {
    for bits in [1u8, 2, 3] {
        let mut cfg = SystemConfig::paper_default().with_filter(FilterKind::Pa);
        cfg.filter.counter_bits = bits;
        let name = format!("ablation/counter_width/{bits}-bit/mcf");
        c.bench_function(&name, |b| {
            b.iter(|| {
                black_box(
                    RunSpec::new("w", cfg.clone(), Workload::Mcf)
                        .instructions(30_000)
                        .run(),
                )
            })
        });
    }
}

fn bench_ablation_stride_prefetcher(c: &mut Criterion) {
    let mut cfg = SystemConfig::paper_default();
    cfg.prefetch.stride = true;
    c.bench_function("ablation/with_stride_rpt/wave5", |b| {
        b.iter(|| {
            black_box(
                RunSpec::new("stride", cfg.clone(), Workload::Wave5)
                    .instructions(30_000)
                    .run(),
            )
        })
    });
}

fn bench_ablation_adaptive_gate(c: &mut Criterion) {
    let mut cfg = SystemConfig::paper_default().with_filter(FilterKind::Pa);
    cfg.filter.adaptive_accuracy_threshold = Some(0.5);
    c.bench_function("ablation/adaptive_gate/em3d", |b| {
        b.iter(|| {
            black_box(
                RunSpec::new("adaptive", cfg.clone(), Workload::Em3d)
                    .instructions(30_000)
                    .run(),
            )
        })
    });
}

fn bench_ablation_nsp_degree(c: &mut Criterion) {
    for degree in [1u32, 4] {
        let mut cfg = SystemConfig::paper_default();
        cfg.prefetch.nsp_degree = degree;
        let name = format!("ablation/nsp_degree/{degree}/gzip");
        c.bench_function(&name, |b| {
            b.iter(|| {
                black_box(
                    RunSpec::new("deg", cfg.clone(), Workload::Gzip)
                        .instructions(30_000)
                        .run(),
                )
            })
        });
    }
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(10);
    targets =
        bench_cache,
        bench_history_table,
        bench_prefetchers,
        bench_workload_generation,
        bench_simulator_throughput,
        bench_ablation_counter_width,
        bench_ablation_stride_prefetcher,
        bench_ablation_adaptive_gate,
        bench_ablation_nsp_degree,
}
criterion_main!(micro);
