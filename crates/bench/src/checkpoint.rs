//! Checkpoint/resume for long figure sweeps.
//!
//! Every completed cell's [`SimReport`] is written to
//! `<dir>/<key>.json`, where `<key>` is an FNV-1a content hash of the
//! cell's full identity — label, config JSON, workload, seed and
//! instruction budgets. On restart the runner reloads every cell whose
//! file exists and parses, and re-runs only the missing, corrupt or
//! previously failed ones (failures are deliberately never checkpointed:
//! a resume is exactly the retry the operator asked for). A config change
//! produces different keys, so stale results can never leak into a new
//! sweep.
//!
//! Writes stream from the worker threads as cells finish (write to a
//! `.tmp` sibling, then rename), so a crash mid-sweep loses at most the
//! cells still in flight.

use ppf_sim::experiments::{
    fan_seeds, merge_seed_outcomes, run_grid_outcomes_observed, CellOutcome, RunSpec,
};
use ppf_sim::SimReport;
use ppf_types::{FromJson, PpfError, ToJson};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// FNV-1a 64-bit over `bytes`, continuing from `h`.
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The checkpoint key of one cell: a content hash of (label, config JSON,
/// workload, seed, instruction and warm-up budgets). Any change to any of
/// these yields a different key, invalidating the old checkpoint entry.
pub fn cell_key(spec: &RunSpec) -> String {
    let mut h = FNV_OFFSET;
    // Attack-free cells keep their pre-adversary keys (empty part), so
    // existing checkpoint directories stay valid.
    let adversary = spec.adversary.map(|a| a.describe()).unwrap_or_default();
    for part in [
        spec.label.as_str(),
        &spec.config.to_json_string(),
        spec.workload.name(),
        &spec.seed.to_string(),
        &spec.n_instructions.to_string(),
        &spec.warmup.to_string(),
        &adversary,
    ] {
        h = fnv1a(h, part.as_bytes());
        // Field separator so ("ab","c") and ("a","bc") cannot collide.
        h = fnv1a(h, &[0]);
    }
    format!("{h:016x}")
}

/// Path of a cell's checkpoint file under `dir`.
pub fn cell_path(dir: &Path, spec: &RunSpec) -> PathBuf {
    dir.join(format!("{}.json", cell_key(spec)))
}

/// The result of one checkpointed grid execution.
#[derive(Debug)]
pub struct CheckpointedRun {
    /// Per-cell outcomes, in input order (seed-merged for the seeds form).
    pub outcomes: Vec<CellOutcome>,
    /// Cells reloaded from the checkpoint directory (not re-run).
    pub loaded: usize,
    /// Cells actually executed this invocation.
    pub executed: usize,
    /// Checkpoint files that existed but did not parse (counted as
    /// missing and re-run).
    pub corrupt: usize,
    /// Non-fatal failures writing checkpoint files (the sweep's results
    /// are still returned; only their persistence failed).
    pub write_errors: Vec<PpfError>,
}

/// Load one cell's checkpoint entry, distinguishing "not there" (`Ok(None)`)
/// from "there but unreadable" (`Err`, kind `checkpoint-corrupt`).
fn load_cell(path: &Path) -> Result<Option<SimReport>, PpfError> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            return Err(PpfError::io(e.to_string()).context(format!("reading {}", path.display())))
        }
    };
    SimReport::from_json_str(&text)
        .map(Some)
        .map_err(|e| PpfError::checkpoint_corrupt(e).context(format!("parsing {}", path.display())))
}

/// Write one cell's report atomically (tmp + rename).
fn store_cell(path: &Path, report: &SimReport) -> Result<(), PpfError> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, report.to_json_pretty())
        .and_then(|()| std::fs::rename(&tmp, path))
        .map_err(|e| PpfError::io(e.to_string()).context(format!("writing {}", path.display())))
}

/// Run `specs` with per-cell checkpointing under `dir`: reload completed
/// cells, execute the rest (streaming each completed cell to disk), and
/// return outcomes in input order. Only directory creation fails hard;
/// unreadable entries are re-run and unwritable ones are reported in
/// [`CheckpointedRun::write_errors`].
pub fn run_grid_checkpointed(specs: Vec<RunSpec>, dir: &Path) -> Result<CheckpointedRun, PpfError> {
    std::fs::create_dir_all(dir).map_err(|e| {
        PpfError::io(e.to_string()).context(format!("creating checkpoint dir {}", dir.display()))
    })?;
    let n = specs.len();
    let mut outcomes: Vec<Option<CellOutcome>> = (0..n).map(|_| None).collect();
    let mut pending: Vec<(usize, RunSpec)> = Vec::new();
    let mut loaded = 0usize;
    let mut corrupt = 0usize;
    for (idx, spec) in specs.into_iter().enumerate() {
        match load_cell(&cell_path(dir, &spec)) {
            Ok(Some(report)) => {
                loaded += 1;
                outcomes[idx] = Some(CellOutcome::Ok(Box::new(report)));
            }
            Ok(None) => pending.push((idx, spec)),
            Err(_) => {
                corrupt += 1;
                pending.push((idx, spec));
            }
        }
    }
    let executed = pending.len();
    let write_errors: Mutex<Vec<PpfError>> = Mutex::new(Vec::new());
    let (indices, to_run): (Vec<usize>, Vec<RunSpec>) = pending.into_iter().unzip();
    let paths: Vec<PathBuf> = to_run.iter().map(|s| cell_path(dir, s)).collect();
    let ran = run_grid_outcomes_observed(to_run, |i, outcome| {
        if let CellOutcome::Ok(report) = outcome {
            if let Err(e) = store_cell(&paths[i], report) {
                write_errors
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push(e);
            }
        }
    });
    for (slot, outcome) in indices.into_iter().zip(ran) {
        outcomes[slot] = Some(outcome);
    }
    Ok(CheckpointedRun {
        outcomes: outcomes
            .into_iter()
            .map(|o| o.expect("every cell loaded or ran"))
            .collect(),
        loaded,
        executed,
        corrupt,
        write_errors: write_errors.into_inner().unwrap_or_default(),
    })
}

/// The multi-seed form: checkpoints the full (cell × seed) fan-out (each
/// fanned cell gets its own key), then merges outcomes per input cell
/// exactly like `run_grid_seeds`.
pub fn run_grid_seeds_checkpointed(
    specs: Vec<RunSpec>,
    seeds: u32,
    dir: &Path,
) -> Result<CheckpointedRun, PpfError> {
    assert!(seeds >= 1);
    let n = specs.len();
    let fanned = fan_seeds(&specs, seeds);
    let mut run = run_grid_checkpointed(fanned, dir)?;
    run.outcomes = merge_seed_outcomes(run.outcomes, n, seeds);
    Ok(run)
}
