//! Checkpoint/resume for long figure sweeps.
//!
//! Every completed cell's [`SimReport`] is written to
//! `<dir>/<key>.json`, where `<key>` is an FNV-1a content hash of the
//! cell's full identity — label, config JSON, workload, seed and
//! instruction budgets ([`cell_key`], shared with the grid scheduler). On
//! restart the runner reloads every cell whose file exists and parses,
//! and re-runs only the missing, corrupt or previously failed ones
//! (failures are deliberately never checkpointed: a resume is exactly the
//! retry the operator asked for). A config change produces different
//! keys, so stale results can never leak into a new sweep.
//!
//! Writes stream from the worker threads as cells finish (write to a
//! `.tmp` sibling, then rename), so a crash mid-sweep loses at most the
//! cells still in flight.
//!
//! Each run also feeds observed per-cell wall-times back into a
//! [`CostModel`] persisted *beside* the checkpoint directory (at
//! `<dir>.timings.json` — a sibling, never inside `dir`, whose contents
//! are exactly one file per completed cell). The next run loads it so the
//! scheduler starts the longest cells first.

use ppf_sim::experiments::{
    fan_seeds, merge_seed_outcomes, run_grid_outcomes_traced, CellOutcome, RunSpec,
};
pub use ppf_sim::schedule::cell_key;
use ppf_sim::schedule::CostModel;
use ppf_sim::SimReport;
use ppf_types::{FromJson, PpfError, ToJson};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Path of a cell's checkpoint file under `dir`.
pub fn cell_path(dir: &Path, spec: &RunSpec) -> PathBuf {
    dir.join(format!("{}.json", cell_key(spec)))
}

/// Where the cost model for checkpoint directory `dir` is persisted: a
/// *sibling* file (`ckpt/fig6` → `ckpt/fig6.timings.json`). It must not
/// live inside `dir`, whose contents are exactly one JSON file per
/// completed cell.
pub fn timings_path(dir: &Path) -> PathBuf {
    dir.with_extension("timings.json")
}

/// The result of one checkpointed grid execution.
#[derive(Debug)]
pub struct CheckpointedRun {
    /// Per-cell outcomes, in input order (seed-merged for the seeds form).
    pub outcomes: Vec<CellOutcome>,
    /// Cells reloaded from the checkpoint directory (not re-run).
    pub loaded: usize,
    /// Cells actually executed this invocation.
    pub executed: usize,
    /// Checkpoint files that existed but did not parse (counted as
    /// missing and re-run).
    pub corrupt: usize,
    /// Non-fatal failures writing checkpoint files (the sweep's results
    /// are still returned; only their persistence failed).
    pub write_errors: Vec<PpfError>,
}

/// Load one cell's checkpoint entry, distinguishing "not there" (`Ok(None)`)
/// from "there but unreadable" (`Err`, kind `checkpoint-corrupt`).
fn load_cell(path: &Path) -> Result<Option<SimReport>, PpfError> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            return Err(PpfError::io(e.to_string()).context(format!("reading {}", path.display())))
        }
    };
    SimReport::from_json_str(&text)
        .map(Some)
        .map_err(|e| PpfError::checkpoint_corrupt(e).context(format!("parsing {}", path.display())))
}

/// Write one cell's report atomically (tmp + rename).
fn store_cell(path: &Path, report: &SimReport) -> Result<(), PpfError> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, report.to_json_pretty())
        .and_then(|()| std::fs::rename(&tmp, path))
        .map_err(|e| PpfError::io(e.to_string()).context(format!("writing {}", path.display())))
}

/// Run `specs` with per-cell checkpointing under `dir`: reload completed
/// cells, execute the rest (streaming each completed cell to disk), and
/// return outcomes in input order. Dispatch of the executed cells is
/// ordered by the persisted cost model beside `dir`, which this run's
/// observed wall-times then refresh. Only directory creation fails hard;
/// unreadable entries are re-run and unwritable ones are reported in
/// [`CheckpointedRun::write_errors`].
pub fn run_grid_checkpointed(specs: Vec<RunSpec>, dir: &Path) -> Result<CheckpointedRun, PpfError> {
    std::fs::create_dir_all(dir).map_err(|e| {
        PpfError::io(e.to_string()).context(format!("creating checkpoint dir {}", dir.display()))
    })?;
    let n = specs.len();
    let mut outcomes: Vec<Option<CellOutcome>> = (0..n).map(|_| None).collect();
    let mut pending: Vec<(usize, RunSpec)> = Vec::new();
    let mut loaded = 0usize;
    let mut corrupt = 0usize;
    for (idx, spec) in specs.into_iter().enumerate() {
        match load_cell(&cell_path(dir, &spec)) {
            Ok(Some(report)) => {
                loaded += 1;
                outcomes[idx] = Some(CellOutcome::Ok(Box::new(report)));
            }
            Ok(None) => pending.push((idx, spec)),
            Err(_) => {
                corrupt += 1;
                pending.push((idx, spec));
            }
        }
    }
    let executed = pending.len();
    let write_errors: Mutex<Vec<PpfError>> = Mutex::new(Vec::new());
    let (indices, to_run): (Vec<usize>, Vec<RunSpec>) = pending.into_iter().unzip();
    let paths: Vec<PathBuf> = to_run.iter().map(|s| cell_path(dir, s)).collect();
    let mut model = CostModel::load(&timings_path(dir));
    let insts: Vec<u64> = to_run.iter().map(|s| s.warmup + s.n_instructions).collect();
    let (ran, trace) = run_grid_outcomes_traced(to_run, &model, |i, outcome| {
        if let CellOutcome::Ok(report) = outcome {
            if let Err(e) = store_cell(&paths[i], report) {
                write_errors
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push(e);
            }
        }
    });
    // Feed observed wall-times back into the persisted model (successful
    // cells only; a failed cell's time measures the failure, not the
    // work). Persistence is advisory: a write error is reported, never
    // fatal.
    for (i, outcome) in ran.iter().enumerate() {
        if outcome.is_ok() && trace.cell_micros[i] > 0 {
            model.record(&trace.keys[i], insts[i], trace.cell_micros[i]);
        }
    }
    if executed > 0 {
        if let Err(e) = model.save(&timings_path(dir)) {
            write_errors
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(e);
        }
    }
    for (slot, outcome) in indices.into_iter().zip(ran) {
        outcomes[slot] = Some(outcome);
    }
    Ok(CheckpointedRun {
        outcomes: outcomes
            .into_iter()
            .map(|o| o.expect("every cell loaded or ran"))
            .collect(),
        loaded,
        executed,
        corrupt,
        write_errors: write_errors.into_inner().unwrap_or_default(),
    })
}

/// The multi-seed form: checkpoints the full (cell × seed) fan-out (each
/// fanned cell gets its own key), then merges outcomes per input cell
/// exactly like `run_grid_seeds`.
pub fn run_grid_seeds_checkpointed(
    specs: Vec<RunSpec>,
    seeds: u32,
    dir: &Path,
) -> Result<CheckpointedRun, PpfError> {
    assert!(seeds >= 1);
    let n = specs.len();
    let fanned = fan_seeds(&specs, seeds);
    let mut run = run_grid_checkpointed(fanned, dir)?;
    run.outcomes = merge_seed_outcomes(run.outcomes, n, seeds);
    Ok(run)
}
