//! In-process cell memoization for multi-experiment sweeps.
//!
//! The 31 experiments of `figures all` share grids heavily: fig1/fig2
//! render one grid two ways, fig4–6, fig7–9, fig10–12, fig13/14 and
//! fig15/16 each share a sweep, and most ablations re-run the paper's
//! no-filter/PA baseline cells verbatim. A cell is a pure function of its
//! [`RunSpec`] (the determinism suite asserts exactly this), so within one
//! process a spec identical to one already completed can reuse the
//! finished [`SimReport`] instead of re-simulating — same bytes out,
//! roughly half the cells actually run.
//!
//! Keys extend the checkpoint content hash ([`cell_key`]) with the
//! watchdog bounds (not part of the on-disk key, but they decide whether
//! a cell errors). Fault-injected cells are never memoized, and failures
//! are never cached — mirroring the checkpoint layer's "a resume is the
//! retry the operator asked for".

use crate::checkpoint::cell_key;
use ppf_sim::experiments::{
    fan_seeds, merge_seed_outcomes, run_grid_outcomes_observed, CellOutcome, RunSpec,
};
use ppf_sim::SimReport;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock, PoisonError};

/// The process-wide memo table.
fn memo() -> &'static Mutex<HashMap<String, SimReport>> {
    static MEMO: OnceLock<Mutex<HashMap<String, SimReport>>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The memo key of a cell, or `None` when the cell must not be memoized.
/// Fault injection and telemetry streaming are outside the key's identity
/// (neither changes the report's bytes, but a faulted cell must always
/// execute and a telemetry cell must always write its side-channel stream),
/// so both run unconditionally.
///
/// The key is *label-independent*: the label is presentation (copied
/// verbatim into the report and never fed back into the machine), so
/// "no-filter" in one experiment and "none" in another hit the same entry
/// when every machine-visible field matches — `figures all` re-runs the
/// paper baseline under many names. A hit patches the caller's label onto
/// the cached report.
pub fn memo_key(spec: &RunSpec) -> Option<String> {
    if spec.fault.is_some() || spec.telemetry.is_some() {
        return None;
    }
    let mut unlabeled = spec.clone();
    unlabeled.label = String::new();
    Some(format!(
        "{}:{}:{}",
        cell_key(&unlabeled),
        spec.watchdog.max_cpi,
        spec.watchdog.stall_window
    ))
}

/// The result of one memoized grid execution.
#[derive(Debug)]
pub struct MemoizedRun {
    /// Per-cell outcomes, in input order (seed-merged for the seeds form).
    pub outcomes: Vec<CellOutcome>,
    /// Cells served from the in-process memo (not re-run).
    pub hits: usize,
    /// Cells actually executed this call.
    pub executed: usize,
}

/// Run `specs`, serving any cell whose key was already completed this
/// process from the memo and executing the rest (which then populate it).
pub fn run_grid_memoized(specs: Vec<RunSpec>) -> MemoizedRun {
    let n = specs.len();
    let mut outcomes: Vec<Option<CellOutcome>> = (0..n).map(|_| None).collect();
    let mut pending: Vec<(usize, RunSpec, Option<String>)> = Vec::new();
    let mut hits = 0usize;
    {
        let table = memo().lock().unwrap_or_else(PoisonError::into_inner);
        for (idx, spec) in specs.into_iter().enumerate() {
            match memo_key(&spec) {
                Some(key) => match table.get(&key) {
                    Some(report) => {
                        hits += 1;
                        // The cached report carries the donor cell's label;
                        // everything else is identical by key construction.
                        let mut report = report.clone();
                        report.label = spec.label.clone();
                        outcomes[idx] = Some(CellOutcome::Ok(Box::new(report)));
                    }
                    None => pending.push((idx, spec, Some(key))),
                },
                None => pending.push((idx, spec, None)),
            }
        }
    }
    let executed = pending.len();
    let mut indices = Vec::with_capacity(executed);
    let mut keys = Vec::with_capacity(executed);
    let mut to_run = Vec::with_capacity(executed);
    for (idx, spec, key) in pending {
        indices.push(idx);
        keys.push(key);
        to_run.push(spec);
    }
    let ran = run_grid_outcomes_observed(to_run, |i, outcome| {
        if let (CellOutcome::Ok(report), Some(key)) = (outcome, &keys[i]) {
            memo()
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(key.clone(), (**report).clone());
        }
    });
    for (slot, outcome) in indices.into_iter().zip(ran) {
        outcomes[slot] = Some(outcome);
    }
    MemoizedRun {
        outcomes: outcomes
            .into_iter()
            .map(|o| o.expect("every cell served or ran"))
            .collect(),
        hits,
        executed,
    }
}

/// The multi-seed form: memoizes the full (cell × seed) fan-out, then
/// merges outcomes per input cell exactly like `run_grid_seeds`.
pub fn run_grid_seeds_memoized(specs: Vec<RunSpec>, seeds: u32) -> MemoizedRun {
    assert!(seeds >= 1);
    let n = specs.len();
    let fanned = fan_seeds(&specs, seeds);
    let mut run = run_grid_memoized(fanned);
    run.outcomes = merge_seed_outcomes(run.outcomes, n, seeds);
    run
}
