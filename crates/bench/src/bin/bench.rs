//! `bench` — simulator performance measurement.
//!
//! ```text
//! bench throughput [--quick] [--out PATH] [--no-write]
//!                  [--baseline PATH] [--max-regress PCT]
//! ```
//!
//! Runs the pinned-seed workload mix through every model layer
//! (core / +mem / +prefetch / +filter), prints a per-layer MIPS table and
//! writes `BENCH_<rev>.json` (override with `--out`, suppress with
//! `--no-write`). With `--baseline` the run is also diffed against a
//! committed `BENCH_*.json`; the delta table prints either way and the
//! exit code is 3 when any layer's MIPS regressed more than
//! `--max-regress` percent (default 20).
//!
//! Exit codes: 0 success, 1 usage or I/O errors, 3 perf regression.

use ppf_bench::throughput;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: bench throughput [--quick] [--out PATH] [--no-write]\n\
     \x20                       [--baseline PATH] [--max-regress PCT]";

/// Exit code for "ran fine, but MIPS regressed beyond the threshold".
const EXIT_REGRESSION: u8 = 3;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("throughput") {
        match args.first().map(String::as_str) {
            Some("--help") | Some("-h") => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            Some(other) => eprintln!("unknown subcommand '{other}'\n{USAGE}"),
            None => eprintln!("no subcommand given\n{USAGE}"),
        }
        return ExitCode::FAILURE;
    }
    let mut settings = throughput::BenchSettings::full();
    let mut out: Option<PathBuf> = None;
    let mut write = true;
    let mut baseline: Option<PathBuf> = None;
    let mut max_regress = throughput::DEFAULT_MAX_REGRESS_PCT;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => settings = throughput::BenchSettings::quick(),
            "--no-write" => write = false,
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("--out needs a path\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--baseline" => {
                i += 1;
                match args.get(i) {
                    Some(p) => baseline = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("--baseline needs a path\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--max-regress" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(p) if p > 0.0 => max_regress = p,
                    _ => {
                        eprintln!("--max-regress needs a positive percentage\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument '{other}'\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let report = match throughput::run(&settings) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("throughput run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", throughput::render(&report));
    if write {
        let path = out.unwrap_or_else(|| PathBuf::from(format!("BENCH_{}.json", report.rev)));
        match throughput::store_report(&path, &report) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(base_path) = baseline {
        let base = match throughput::load_report(&base_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        let cmp = throughput::compare(&base, &report);
        println!("\nvs baseline {} ({})", base.rev, base_path.display());
        print!("{}", throughput::render_comparison(&cmp));
        if cmp.regression_exceeds(max_regress) {
            eprintln!(
                "perf regression: worst layer {:.1}% below baseline (threshold -{max_regress:.0}%)",
                cmp.worst_pct
            );
            return ExitCode::from(EXIT_REGRESSION);
        }
        println!(
            "within threshold (worst {:+.1}%, limit -{max_regress:.0}%)",
            cmp.worst_pct
        );
    }
    ExitCode::SUCCESS
}
