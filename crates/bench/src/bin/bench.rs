//! `bench` — simulator performance measurement and time-series inspection.
//!
//! ```text
//! bench throughput [--quick] [--trials N] [--out PATH] [--no-write]
//!                  [--baseline PATH] [--max-regress PCT]
//! bench timeline [WORKLOAD] [--filter PA|PC|hybrid|none] [--insts N]
//!                [--interval CYCLES] [--seed S] [--json]
//! ```
//!
//! `throughput` runs the pinned-seed workload mix through every model layer
//! (core / +mem / +prefetch / +filter), prints a per-layer MIPS table and
//! writes `BENCH_<rev>.json` (override with `--out`, suppress with
//! `--no-write`). Each layer is timed `--trials` times (default 3) and the
//! fastest pass reported, so one preempted scheduler slice cannot masquerade
//! as a simulator regression. With `--baseline` the run is also diffed against a
//! committed `BENCH_*.json`; the delta table prints either way and the
//! exit code is 3 when any layer's MIPS regressed more than
//! `--max-regress` percent (default 20).
//!
//! `timeline` runs one cold (no warm-up) cell with interval telemetry and
//! renders the filter's warm-up curve — `fraction_good` leaving its
//! weakly-good init, the transient bad-prefetch burst, and the interval at
//! which the history table stabilizes. `--json` emits the full record
//! series plus analysis as one JSON document instead of the table.
//!
//! With `--attack KIND` the stream carries an adversarial campaign
//! (poison, alias-flood, phase-shift or interleave; window set by
//! `--attack-start`/`--attack-stop` in instructions) and the report gains
//! a time-to-recover analysis: how far `fraction_good` fell under attack
//! and how many intervals after attack-off it took to climb back within
//! the recovery band of the pre-attack baseline.
//!
//! Exit codes: 0 success, 1 usage or I/O errors, 3 perf regression.

use ppf_bench::{throughput, timeline};
use ppf_types::{FilterKind, ToJson};
use ppf_workloads::{AdversarySpec, AttackKind, Workload};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: bench throughput [--quick] [--trials N] [--out PATH] [--no-write]\n\
     \x20                       [--baseline PATH] [--max-regress PCT]\n\
     \x20      bench timeline [WORKLOAD] [--filter PA|PC|hybrid|none] [--insts N]\n\
     \x20                     [--interval CYCLES] [--seed S] [--json]\n\
     \x20                     [--attack poison|alias-flood|phase-shift|interleave]\n\
     \x20                     [--attack-start N] [--attack-stop N]";

/// Exit code for "ran fine, but MIPS regressed beyond the threshold".
const EXIT_REGRESSION: u8 = 3;

fn parse_filter(name: &str) -> Option<FilterKind> {
    match name.to_ascii_lowercase().as_str() {
        "none" => Some(FilterKind::None),
        "pa" => Some(FilterKind::Pa),
        "pc" => Some(FilterKind::Pc),
        "hybrid" => Some(FilterKind::Hybrid),
        _ => None,
    }
}

fn timeline_main(args: &[String]) -> ExitCode {
    let mut settings = timeline::TimelineSettings::default();
    let mut json = false;
    let mut attack: Option<AttackKind> = None;
    let mut attack_start: Option<u64> = None;
    let mut attack_stop: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--attack" => {
                i += 1;
                match args.get(i).and_then(|s| AttackKind::from_name(s)) {
                    Some(kind) => attack = Some(kind),
                    None => {
                        eprintln!(
                            "--attack needs one of poison|alias-flood|phase-shift|interleave\n{USAGE}"
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--attack-start" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) => attack_start = Some(n),
                    None => {
                        eprintln!("--attack-start needs an instruction index\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--attack-stop" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) => attack_stop = Some(n),
                    None => {
                        eprintln!("--attack-stop needs an instruction index\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--filter" => {
                i += 1;
                match args.get(i).and_then(|s| parse_filter(s)) {
                    Some(kind) => settings.filter = kind,
                    None => {
                        eprintln!("--filter needs one of PA|PC|hybrid|none\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--insts" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n > 0 => settings.insts = n,
                    _ => {
                        eprintln!("--insts needs a positive number\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--interval" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n > 0 => settings.interval_cycles = n,
                    _ => {
                        eprintln!("--interval needs a positive cycle count\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--seed" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) => settings.seed = n,
                    None => {
                        eprintln!("--seed needs a number\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--json" => json = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown argument '{flag}'\n{USAGE}");
                return ExitCode::FAILURE;
            }
            name => match Workload::from_name(name) {
                Some(w) => settings.workload = w,
                None => {
                    eprintln!("unknown workload '{name}'");
                    return ExitCode::FAILURE;
                }
            },
        }
        i += 1;
    }
    match attack {
        Some(kind) => {
            let mut spec = AdversarySpec::campaign(kind);
            if let Some(s) = attack_start {
                spec.start = s;
            }
            if let Some(s) = attack_stop {
                spec.stop = s;
            }
            if spec.start >= spec.stop {
                eprintln!("--attack-start must be below --attack-stop\n{USAGE}");
                return ExitCode::FAILURE;
            }
            settings.attack = Some(spec);
        }
        None if attack_start.is_some() || attack_stop.is_some() => {
            eprintln!("--attack-start/--attack-stop need --attack KIND\n{USAGE}");
            return ExitCode::FAILURE;
        }
        None => {}
    }
    match timeline::run(&settings) {
        Ok(report) => {
            if json {
                println!("{}", report.to_json_pretty());
            } else {
                print!("{}", timeline::render(&report));
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("timeline failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("timeline") {
        return timeline_main(&args[1..]);
    }
    if args.first().map(String::as_str) != Some("throughput") {
        match args.first().map(String::as_str) {
            Some("--help") | Some("-h") => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            Some(other) => eprintln!("unknown subcommand '{other}'\n{USAGE}"),
            None => eprintln!("no subcommand given\n{USAGE}"),
        }
        return ExitCode::FAILURE;
    }
    let mut settings = throughput::BenchSettings::full();
    let mut out: Option<PathBuf> = None;
    let mut write = true;
    let mut baseline: Option<PathBuf> = None;
    let mut max_regress = throughput::DEFAULT_MAX_REGRESS_PCT;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                let trials = settings.trials;
                settings = throughput::BenchSettings::quick();
                settings.trials = trials;
            }
            "--no-write" => write = false,
            "--trials" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n > 0 => settings.trials = n,
                    _ => {
                        eprintln!("--trials needs a positive count\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("--out needs a path\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--baseline" => {
                i += 1;
                match args.get(i) {
                    Some(p) => baseline = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("--baseline needs a path\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--max-regress" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(p) if p > 0.0 => max_regress = p,
                    _ => {
                        eprintln!("--max-regress needs a positive percentage\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument '{other}'\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let report = match throughput::run(&settings) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("throughput run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", throughput::render(&report));
    if write {
        let path = out.unwrap_or_else(|| PathBuf::from(format!("BENCH_{}.json", report.rev)));
        match throughput::store_report(&path, &report) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(base_path) = baseline {
        let base = match throughput::load_report(&base_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        let cmp = throughput::compare(&base, &report);
        println!("\nvs baseline {} ({})", base.rev, base_path.display());
        print!("{}", throughput::render_comparison(&cmp));
        if cmp.regression_exceeds(max_regress) {
            eprintln!(
                "perf regression: worst layer {:.1}% below baseline (threshold -{max_regress:.0}%)",
                cmp.worst_pct
            );
            return ExitCode::from(EXIT_REGRESSION);
        }
        println!(
            "within threshold (worst {:+.1}%, limit -{max_regress:.0}%)",
            cmp.worst_pct
        );
    }
    ExitCode::SUCCESS
}
