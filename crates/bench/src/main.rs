//! `figures` — regenerate every table and figure of the paper.
//!
//! ```text
//! figures [--insts N] [--seeds K] [--json DIR] [--checkpoint DIR]
//!         [--telemetry DIR] [--shard K/N] <experiment>...
//! figures all
//! figures merge --out DIR FRAGDIR...
//! figures --list
//! ```
//!
//! Experiments: `table1 table2 fig1 fig2 fig4 ... fig16 nsp-sdp
//! cache-vs-table` and the `ablate-*` grids (`--list` enumerates them).
//! Each prints an aligned text table with the same rows/series as the
//! paper's figure, plus the mean the paper quotes in its prose. With
//! `--json DIR` the raw reports are also written as JSON. With
//! `--checkpoint DIR` every completed cell is persisted and a re-run
//! resumes, executing only missing or previously failed cells. With
//! `--telemetry DIR` every cell streams per-interval metrics to
//! `DIR/<experiment>/<cell>.jsonl`.
//!
//! With `--shard K/N` (requires `--json`) only the cells owned by shard
//! `K` of `N` run; the JSON directory receives one
//! `<experiment>.fragment.json` per experiment plus a `MANIFEST.json`
//! describing the coverage. `figures merge --out DIR FRAGDIR...`
//! reassembles such fragment directories into per-experiment documents
//! byte-identical to an unsharded `--json` run.
//!
//! Exit codes: 0 on success, 1 on usage or I/O errors (nothing runs on a
//! bad invocation) and on inconsistent merge inputs, 2 when the sweep
//! completed but some cells failed — or when a merge's inputs are
//! consistent but don't cover every cell. Tables go to stdout; the
//! per-cell failure appendix goes to stderr, so stdout stays
//! machine-parseable even on a partial run.

use ppf_bench::figures::{self, ExperimentOptions};
use ppf_bench::shard::{self, MergeOutcome, ShardManifest, ShardSpec};
use ppf_types::ToJson;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: figures [--insts N] [--seeds K] [--json DIR] [--checkpoint DIR] \
     [--telemetry DIR] [--inject-fault N] [--shard K/N] <experiment>...\n\
     \x20      figures merge --out DIR FRAGDIR...\n\
     \x20      figures --list";

/// Exit code for "the sweep ran, but some cells failed" and for "the merge
/// inputs are consistent but don't cover every cell".
const EXIT_PARTIAL: u8 = 2;

fn print_experiments() {
    println!("experiments: {}", figures::EXPERIMENTS.join(" "));
    println!("             all");
}

/// `figures merge --out DIR FRAGDIR...`: reassemble shard fragment
/// directories into unsharded per-experiment documents.
fn run_merge(args: &[String]) -> ExitCode {
    let mut out_dir: Option<PathBuf> = None;
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(d) => out_dir = Some(PathBuf::from(d)),
                    None => {
                        eprintln!("--out needs a directory\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown merge flag '{flag}'\n{USAGE}");
                return ExitCode::FAILURE;
            }
            dir => dirs.push(PathBuf::from(dir)),
        }
        i += 1;
    }
    let Some(out_dir) = out_dir else {
        eprintln!("merge needs --out DIR\n{USAGE}");
        return ExitCode::FAILURE;
    };
    if dirs.is_empty() {
        eprintln!("merge needs at least one fragment directory\n{USAGE}");
        return ExitCode::FAILURE;
    }
    match shard::merge_shards(&dirs, &out_dir) {
        Ok(MergeOutcome::Complete(summary)) => {
            println!(
                "merged {} shard(s): {} experiments, {} cells -> {}",
                summary.shards,
                summary.experiments,
                summary.cells,
                out_dir.display()
            );
            ExitCode::SUCCESS
        }
        Ok(MergeOutcome::Partial { missing }) => {
            // The gap report is the product here: a fleet operator needs
            // to know exactly which cells to re-run, not just "incomplete".
            eprintln!("merge incomplete — coverage gaps (nothing written):");
            for (experiment, indices) in &missing {
                eprintln!(
                    "  {experiment}: {} cell(s) missing {indices:?}",
                    indices.len()
                );
            }
            ExitCode::from(EXIT_PARTIAL)
        }
        Err(e) => {
            eprintln!("merge: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("merge") {
        return run_merge(&args[1..]);
    }
    let mut insts = ppf_sim::experiments::DEFAULT_INSTRUCTIONS;
    let mut opts = ExperimentOptions::default();
    let mut names: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--insts" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) => insts = n,
                    None => {
                        eprintln!("--insts needs a number\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--seeds" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n >= 1 => opts.seeds = n,
                    _ => {
                        eprintln!("--seeds needs a positive number\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(d) => opts.json_dir = Some(d.clone()),
                    None => {
                        eprintln!("--json needs a directory\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--checkpoint" => {
                i += 1;
                match args.get(i) {
                    Some(d) => opts.checkpoint = Some(PathBuf::from(d)),
                    None => {
                        eprintln!("--checkpoint needs a directory\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--telemetry" => {
                i += 1;
                match args.get(i) {
                    Some(d) => opts.telemetry = Some(PathBuf::from(d)),
                    None => {
                        eprintln!("--telemetry needs a directory\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--inject-fault" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) => opts.inject_fault = Some(n),
                    None => {
                        eprintln!("--inject-fault needs an instruction number\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--shard" => {
                i += 1;
                match args.get(i).map(|s| ShardSpec::parse(s)) {
                    Some(Ok(s)) => opts.shard = Some(s),
                    _ => {
                        eprintln!("--shard needs K/N with 1 <= K <= N\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--list" => {
                for name in figures::EXPERIMENTS {
                    println!("{name}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                print_experiments();
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag '{flag}'\n{USAGE}");
                return ExitCode::FAILURE;
            }
            name => names.push(name.to_string()),
        }
        i += 1;
    }
    if opts.shard.is_some() && opts.json_dir.is_none() {
        // A shard's entire product is its fragments; without --json it
        // would do work and throw the results away.
        eprintln!("--shard requires --json DIR (fragments are the shard's output)\n{USAGE}");
        return ExitCode::FAILURE;
    }
    if names.is_empty() {
        eprintln!("no experiment given; try --help");
        return ExitCode::FAILURE;
    }
    if names.iter().any(|n| n == "all") {
        names = figures::EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    // Validate every name before running anything: a typo must not waste a
    // sweep on the experiments listed before it.
    let unknown: Vec<&String> = names
        .iter()
        .filter(|n| !figures::EXPERIMENTS.contains(&n.as_str()))
        .collect();
    if !unknown.is_empty() {
        for n in unknown {
            eprintln!("unknown experiment '{n}'");
        }
        print_experiments();
        return ExitCode::FAILURE;
    }
    let mut failed_cells = 0usize;
    let mut manifest_experiments = Vec::new();
    for name in &names {
        match figures::run_experiment_full(name, insts, &opts) {
            Ok(out) => {
                println!("{}", out.body);
                if !out.failures.is_empty() {
                    // Diagnostics to stderr: stdout must stay parseable.
                    eprint!("{}", figures::failure_appendix(&out.failures));
                }
                if opts.checkpoint.is_some() && out.loaded_cells + out.executed_cells > 0 {
                    eprintln!(
                        "[{name}] checkpoint: {} cell runs reloaded, {} executed",
                        out.loaded_cells, out.executed_cells
                    );
                }
                failed_cells += out.failed_cells;
                manifest_experiments.extend(out.manifest);
            }
            Err(e) => {
                eprintln!("{name}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    // Sharded mode: after the whole invocation, write the shard's
    // self-description beside its fragments so `figures merge` can
    // validate coverage without re-deriving any grid.
    if let (Some(s), Some(dir)) = (opts.shard, &opts.json_dir) {
        let manifest = ShardManifest {
            schema_version: shard::SHARD_SCHEMA_VERSION,
            shard_index: s.index,
            shard_count: s.count,
            insts,
            seeds: opts.seeds as u64,
            experiments: manifest_experiments,
        };
        let path = PathBuf::from(dir).join(shard::MANIFEST_FILE);
        if let Err(e) = std::fs::write(&path, manifest.to_json_pretty()) {
            eprintln!("writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("[shard {s}] manifest: {}", path.display());
    }
    if failed_cells > 0 {
        eprintln!("{failed_cells} cell(s) failed; see the failure appendix above");
        return ExitCode::from(EXIT_PARTIAL);
    }
    ExitCode::SUCCESS
}
