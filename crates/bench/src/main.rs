//! `figures` — regenerate every table and figure of the paper.
//!
//! ```text
//! figures [--insts N] [--json DIR] <experiment>...
//! figures all
//! ```
//!
//! Experiments: `table1 table2 fig1 fig2 fig4 ... fig16 nsp-sdp
//! cache-vs-table`. Each prints an aligned text table with the same
//! rows/series as the paper's figure, plus the mean the paper quotes in its
//! prose. With `--json DIR` the raw reports are also written as JSON.

use ppf_bench::figures;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut insts = ppf_sim::experiments::DEFAULT_INSTRUCTIONS;
    let mut seeds = 1u32;
    let mut json_dir: Option<String> = None;
    let mut names: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--insts" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) => insts = n,
                    None => {
                        eprintln!("--insts needs a number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--seeds" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n >= 1 => seeds = n,
                    _ => {
                        eprintln!("--seeds needs a positive number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(d) => json_dir = Some(d.clone()),
                    None => {
                        eprintln!("--json needs a directory");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                println!("usage: figures [--insts N] [--seeds K] [--json DIR] <experiment>...");
                println!("experiments: {}", figures::EXPERIMENTS.join(" "));
                println!("             all");
                return ExitCode::SUCCESS;
            }
            name => names.push(name.to_string()),
        }
        i += 1;
    }
    if names.is_empty() {
        eprintln!("no experiment given; try --help");
        return ExitCode::FAILURE;
    }
    if names.iter().any(|n| n == "all") {
        names = figures::EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    for name in &names {
        match figures::run_experiment_seeds(name, insts, json_dir.as_deref(), seeds) {
            Ok(output) => println!("{output}"),
            Err(e) => {
                eprintln!("{name}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
