//! `figures` — regenerate every table and figure of the paper.
//!
//! ```text
//! figures [--insts N] [--seeds K] [--json DIR] [--checkpoint DIR]
//!         [--telemetry DIR] <experiment>...
//! figures all
//! figures --list
//! ```
//!
//! Experiments: `table1 table2 fig1 fig2 fig4 ... fig16 nsp-sdp
//! cache-vs-table` and the `ablate-*` grids (`--list` enumerates them).
//! Each prints an aligned text table with the same rows/series as the
//! paper's figure, plus the mean the paper quotes in its prose. With
//! `--json DIR` the raw reports are also written as JSON. With
//! `--checkpoint DIR` every completed cell is persisted and a re-run
//! resumes, executing only missing or previously failed cells. With
//! `--telemetry DIR` every cell streams per-interval metrics to
//! `DIR/<experiment>/<cell>.jsonl`.
//!
//! Exit codes: 0 on success, 1 on usage or I/O errors (nothing runs on a
//! bad invocation), 2 when the sweep completed but some cells failed.
//! Tables go to stdout; the per-cell failure appendix goes to stderr, so
//! stdout stays machine-parseable even on a partial run.

use ppf_bench::figures::{self, ExperimentOptions};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: figures [--insts N] [--seeds K] [--json DIR] [--checkpoint DIR] \
     [--telemetry DIR] [--inject-fault N] <experiment>...\n\
     \x20      figures --list";

/// Exit code for "the sweep ran, but some cells failed".
const EXIT_PARTIAL: u8 = 2;

fn print_experiments() {
    println!("experiments: {}", figures::EXPERIMENTS.join(" "));
    println!("             all");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut insts = ppf_sim::experiments::DEFAULT_INSTRUCTIONS;
    let mut opts = ExperimentOptions::default();
    let mut names: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--insts" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) => insts = n,
                    None => {
                        eprintln!("--insts needs a number\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--seeds" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n >= 1 => opts.seeds = n,
                    _ => {
                        eprintln!("--seeds needs a positive number\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(d) => opts.json_dir = Some(d.clone()),
                    None => {
                        eprintln!("--json needs a directory\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--checkpoint" => {
                i += 1;
                match args.get(i) {
                    Some(d) => opts.checkpoint = Some(PathBuf::from(d)),
                    None => {
                        eprintln!("--checkpoint needs a directory\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--telemetry" => {
                i += 1;
                match args.get(i) {
                    Some(d) => opts.telemetry = Some(PathBuf::from(d)),
                    None => {
                        eprintln!("--telemetry needs a directory\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--inject-fault" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) => opts.inject_fault = Some(n),
                    None => {
                        eprintln!("--inject-fault needs an instruction number\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--list" => {
                for name in figures::EXPERIMENTS {
                    println!("{name}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                print_experiments();
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag '{flag}'\n{USAGE}");
                return ExitCode::FAILURE;
            }
            name => names.push(name.to_string()),
        }
        i += 1;
    }
    if names.is_empty() {
        eprintln!("no experiment given; try --help");
        return ExitCode::FAILURE;
    }
    if names.iter().any(|n| n == "all") {
        names = figures::EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    // Validate every name before running anything: a typo must not waste a
    // sweep on the experiments listed before it.
    let unknown: Vec<&String> = names
        .iter()
        .filter(|n| !figures::EXPERIMENTS.contains(&n.as_str()))
        .collect();
    if !unknown.is_empty() {
        for n in unknown {
            eprintln!("unknown experiment '{n}'");
        }
        print_experiments();
        return ExitCode::FAILURE;
    }
    let mut failed_cells = 0usize;
    for name in &names {
        match figures::run_experiment_full(name, insts, &opts) {
            Ok(out) => {
                println!("{}", out.body);
                if !out.failures.is_empty() {
                    // Diagnostics to stderr: stdout must stay parseable.
                    eprint!("{}", figures::failure_appendix(&out.failures));
                }
                if opts.checkpoint.is_some() && out.loaded_cells + out.executed_cells > 0 {
                    eprintln!(
                        "[{name}] checkpoint: {} cell runs reloaded, {} executed",
                        out.loaded_cells, out.executed_cells
                    );
                }
                failed_cells += out.failed_cells;
            }
            Err(e) => {
                eprintln!("{name}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if failed_cells > 0 {
        eprintln!("{failed_cells} cell(s) failed; see the failure appendix above");
        return ExitCode::from(EXIT_PARTIAL);
    }
    ExitCode::SUCCESS
}
