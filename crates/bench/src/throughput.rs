//! `bench throughput` — simulator throughput measurement per model layer.
//!
//! Runs a fixed, pinned-seed workload mix through four cumulative model
//! layers — `core` (near-perfect L1, no prefetch), `+mem` (the paper's
//! hierarchy, prefetch off), `+prefetch` (NSP+SDP mix, no filter) and
//! `+filter` (PA pollution filter) — and reports instructions/sec and
//! cycles/sec for each. The per-layer split is the profile: the cost of a
//! subsystem is the MIPS drop between adjacent layers.
//!
//! Results serialize as a [`BenchReport`] in a stable JSON schema
//! (`BENCH_<rev>.json`), so the repo accumulates a perf trajectory, and
//! [`compare`] diffs two reports for the CI regression gate. Instruction
//! and cycle counters are cycle-exact deterministic; only the wall-clock
//! derived fields (`wall_ms`, `mips`, `mcps`) vary between runs.

use ppf_sim::experiments::{RunSpec, DEFAULT_INSTRUCTIONS, DEFAULT_SEED};
use ppf_sim::report::TextTable;
use ppf_types::{json_struct, FilterKind, PpfError, PrefetchConfig, SystemConfig, ToJson};
use ppf_workloads::Workload;
use std::time::Instant;

/// Version of the `BENCH_*.json` schema. Bump on any field change so a
/// reader can reject files it does not understand.
pub const SCHEMA_VERSION: u64 = 2;

/// The model layers, innermost first. Each adds one subsystem on top of
/// the previous, so adjacent MIPS deltas attribute simulation cost.
pub const LAYERS: [&str; 4] = ["core", "+mem", "+prefetch", "+filter"];

/// Default CI regression threshold: fail when any layer's MIPS drops by
/// more than this percentage against the committed baseline.
pub const DEFAULT_MAX_REGRESS_PCT: f64 = 20.0;

/// The machine configuration for one layer.
///
/// `core` approximates a perfect memory system with a 4MB L1 (the mix's
/// working sets fit, so nearly every access hits in one cycle); the other
/// layers are the paper's Table 1 machine with prefetch/filter toggled.
pub fn layer_config(layer: &str) -> SystemConfig {
    let base = SystemConfig::paper_default();
    match layer {
        "core" => {
            let mut c = base;
            c.prefetch = PrefetchConfig::disabled();
            c.l1.size_bytes = 4 * 1024 * 1024;
            c.l1i.size_bytes = 1024 * 1024;
            c
        }
        "+mem" => {
            let mut c = base;
            c.prefetch = PrefetchConfig::disabled();
            c
        }
        "+prefetch" => base,
        "+filter" => base.with_filter(FilterKind::Pa),
        other => panic!("unknown bench layer '{other}'"),
    }
}

/// What to run: workload mix, per-cell instruction budget, stream seed.
#[derive(Debug, Clone)]
pub struct BenchSettings {
    /// True for the reduced CI mix (`--quick`).
    pub quick: bool,
    /// Pinned stream seed (all cells use the same one).
    pub seed: u64,
    /// Measured instructions per (layer, workload) cell. Warm-up is zero:
    /// throughput measures simulator speed, not steady-state CPI, and a
    /// zero warm-up makes executed == measured so MIPS is exact.
    pub insts_per_cell: u64,
    /// Timed passes per layer; the fastest wall time is reported. The
    /// simulated work is deterministic, so extra passes only reject host
    /// scheduling noise — essential for the sub-second `--quick` mix,
    /// where one preempted slice otherwise halves the reported MIPS.
    pub trials: u32,
    /// The workload mix.
    pub workloads: Vec<Workload>,
}

impl BenchSettings {
    /// The full mix: every suite workload, 1M instructions each.
    pub fn full() -> Self {
        BenchSettings {
            quick: false,
            seed: DEFAULT_SEED,
            insts_per_cell: DEFAULT_INSTRUCTIONS,
            trials: 3,
            workloads: Workload::ALL.to_vec(),
        }
    }

    /// The CI smoke mix: three workloads with distinct access characters
    /// (pointer-chasing, streaming, mixed), 150k instructions each —
    /// seconds, not minutes, while still exercising every layer.
    pub fn quick() -> Self {
        let mut s = BenchSettings::full();
        s.quick = true;
        s.insts_per_cell = 150_000;
        s.workloads.truncate(3);
        s
    }
}

/// One layer's measurement. `instructions`/`cycles` are deterministic;
/// the wall-clock fields are not.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerStat {
    /// Layer name (one of [`LAYERS`]).
    pub name: String,
    /// Instructions retired across the mix (deterministic).
    pub instructions: u64,
    /// Core cycles elapsed across the mix (deterministic).
    pub cycles: u64,
    /// Wall-clock milliseconds for the whole mix.
    pub wall_ms: f64,
    /// Millions of simulated instructions per wall second.
    pub mips: f64,
    /// Millions of simulated cycles per wall second.
    pub mcps: f64,
}

json_struct!(LayerStat {
    name,
    instructions,
    cycles,
    wall_ms,
    mips,
    mcps,
});

/// A full throughput measurement: the `BENCH_*.json` schema.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// [`SCHEMA_VERSION`] at write time.
    pub schema_version: u64,
    /// Git revision the measurement was taken at ("unknown" outside git).
    pub rev: String,
    /// True if this was a `--quick` run (mixes are not comparable across
    /// this flag; [`compare`] warns on a mismatch).
    pub quick: bool,
    /// Pinned stream seed.
    pub seed: u64,
    /// Measured instructions per (layer, workload) cell.
    pub insts_per_cell: u64,
    /// Timed passes per layer (fastest kept).
    pub trials: u32,
    /// Workload names in the mix, in run order.
    pub workloads: Vec<String>,
    /// Per-layer measurements, in [`LAYERS`] order.
    pub layers: Vec<LayerStat>,
    /// Aggregate MIPS: total instructions over total wall time.
    pub total_mips: f64,
}

json_struct!(BenchReport {
    schema_version,
    rev,
    quick,
    seed,
    insts_per_cell,
    trials,
    workloads,
    layers,
    total_mips,
});

/// The short git revision of HEAD, or "unknown" outside a git checkout.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Run the benchmark: every layer over the mix, timed per layer.
pub fn run(settings: &BenchSettings) -> Result<BenchReport, PpfError> {
    let mut layers = Vec::with_capacity(LAYERS.len());
    let mut total_insts = 0u64;
    let mut total_secs = 0f64;
    for layer in LAYERS {
        let config = layer_config(layer);
        let mut instructions = 0u64;
        let mut cycles = 0u64;
        let mut secs = f64::MAX;
        // Each pass simulates the identical deterministic mix; the fastest
        // pass is the measurement least distorted by host preemption.
        for _ in 0..settings.trials.max(1) {
            instructions = 0;
            cycles = 0;
            let start = Instant::now();
            for &w in &settings.workloads {
                let mut spec = RunSpec::new(format!("bench-{layer}"), config.clone(), w)
                    .instructions(settings.insts_per_cell);
                spec.seed = settings.seed;
                spec.warmup = 0;
                let report = spec.run_checked()?;
                instructions += report.stats.instructions;
                cycles += report.stats.cycles;
            }
            secs = secs.min(start.elapsed().as_secs_f64().max(1e-9));
        }
        total_insts += instructions;
        total_secs += secs;
        layers.push(LayerStat {
            name: layer.to_string(),
            instructions,
            cycles,
            wall_ms: secs * 1e3,
            mips: instructions as f64 / secs / 1e6,
            mcps: cycles as f64 / secs / 1e6,
        });
    }
    Ok(BenchReport {
        schema_version: SCHEMA_VERSION,
        rev: git_rev(),
        quick: settings.quick,
        seed: settings.seed,
        insts_per_cell: settings.insts_per_cell,
        trials: settings.trials.max(1),
        workloads: settings.workloads.iter().map(|w| w.name().into()).collect(),
        layers,
        total_mips: total_insts as f64 / total_secs.max(1e-9) / 1e6,
    })
}

/// Render a report as an aligned human table.
pub fn render(report: &BenchReport) -> String {
    let mut t = TextTable::new(vec![
        "layer", "insts", "cycles", "wall_ms", "MIPS", "Mcyc/s",
    ]);
    for l in &report.layers {
        t.row(vec![
            l.name.clone(),
            l.instructions.to_string(),
            l.cycles.to_string(),
            format!("{:.1}", l.wall_ms),
            format!("{:.3}", l.mips),
            format!("{:.3}", l.mcps),
        ]);
    }
    format!(
        "throughput @ {} ({} mix, seed {}, {} insts/cell)\n{}total: {:.3} MIPS",
        report.rev,
        if report.quick { "quick" } else { "full" },
        report.seed,
        report.insts_per_cell,
        t.render(),
        report.total_mips,
    )
}

/// One row of a baseline comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerDelta {
    /// Layer name ("total" for the aggregate row).
    pub name: String,
    /// Baseline MIPS.
    pub base_mips: f64,
    /// Current MIPS.
    pub new_mips: f64,
    /// Relative change in percent; negative is a regression.
    pub delta_pct: f64,
}

/// The result of diffing a measurement against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Per-layer rows (layers present in both reports), plus "total".
    pub rows: Vec<LayerDelta>,
    /// The most negative `delta_pct` across all rows (0 if none negative).
    pub worst_pct: f64,
    /// Non-fatal comparability warnings (quick-flag or mix mismatches).
    pub warnings: Vec<String>,
}

impl Comparison {
    /// True when the worst regression exceeds `max_pct` percent.
    pub fn regression_exceeds(&self, max_pct: f64) -> bool {
        self.worst_pct < -max_pct
    }
}

fn delta_row(name: &str, base: f64, new: f64) -> LayerDelta {
    LayerDelta {
        name: name.to_string(),
        base_mips: base,
        new_mips: new,
        delta_pct: if base > 0.0 {
            (new - base) / base * 100.0
        } else {
            0.0
        },
    }
}

/// Diff `new` against `base`, matching layers by name.
pub fn compare(base: &BenchReport, new: &BenchReport) -> Comparison {
    let mut warnings = Vec::new();
    if base.quick != new.quick {
        warnings.push(format!(
            "baseline is a {} run but this is a {} run; MIPS are not directly comparable",
            if base.quick { "quick" } else { "full" },
            if new.quick { "quick" } else { "full" },
        ));
    }
    if base.workloads != new.workloads || base.insts_per_cell != new.insts_per_cell {
        warnings
            .push("baseline mix differs (workloads or insts/cell); refresh the baseline".into());
    }
    let mut rows = Vec::new();
    for l in &new.layers {
        if let Some(b) = base.layers.iter().find(|b| b.name == l.name) {
            rows.push(delta_row(&l.name, b.mips, l.mips));
        }
    }
    rows.push(delta_row("total", base.total_mips, new.total_mips));
    let worst_pct = rows.iter().map(|r| r.delta_pct).fold(0.0, f64::min);
    Comparison {
        rows,
        worst_pct,
        warnings,
    }
}

/// Render a comparison as an aligned delta table.
pub fn render_comparison(cmp: &Comparison) -> String {
    let mut t = TextTable::new(vec!["layer", "base MIPS", "new MIPS", "delta"]);
    for r in &cmp.rows {
        t.row(vec![
            r.name.clone(),
            format!("{:.3}", r.base_mips),
            format!("{:.3}", r.new_mips),
            format!("{:+.1}%", r.delta_pct),
        ]);
    }
    let mut out = t.render();
    for w in &cmp.warnings {
        out.push_str(&format!("warning: {w}\n"));
    }
    out
}

/// Load a `BENCH_*.json` file.
pub fn load_report(path: &std::path::Path) -> Result<BenchReport, PpfError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| PpfError::io(e.to_string()).context(format!("reading {}", path.display())))?;
    ppf_types::FromJson::from_json_str(&text)
        .map_err(|e| PpfError::io(e).context(format!("parsing {}", path.display())))
}

/// Write a report as pretty JSON (tmp + rename, like checkpoints).
pub fn store_report(path: &std::path::Path, report: &BenchReport) -> Result<(), PpfError> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, report.to_json_pretty())
        .and_then(|()| std::fs::rename(&tmp, path))
        .map_err(|e| PpfError::io(e.to_string()).context(format!("writing {}", path.display())))
}
