//! `bench timeline` — render a filter warm-up curve from interval telemetry.
//!
//! End-of-run tables answer "how good is the trained filter"; this module
//! answers "how fast does it get there". It runs one instrumented cell with
//! **no warm-up** (the transient is the whole point), collects the interval
//! records, and derives a [`WarmupAnalysis`]: where `fraction_good` leaves
//! its weakly-good 1.0 init, when it stabilizes, and how large the
//! bad-prefetch burst is before the history table converges — the §4
//! training dynamics the paper describes but never plots.

use ppf_cpu::InstStream;
use ppf_sim::Simulator;
use ppf_types::json_struct;
use ppf_types::telemetry::{IntervalRecord, TelemetryConfig};
use ppf_types::{FilterKind, PpfError, SystemConfig};
use ppf_workloads::{AdversarySpec, AdversaryStream, Workload};

use ppf_sim::report::{f3, TextTable};

/// Convergence band: `fraction_good` counts as stable once every later
/// sample stays within this distance of the final value.
pub const STABLE_EPSILON: f64 = 0.02;

/// Recovery band: after an attack window closes, the filter counts as
/// recovered once `fraction_good` climbs back within this distance of the
/// pre-attack baseline (one-sided — overshooting the baseline is fine).
pub const RECOVERY_EPSILON: f64 = 0.05;

/// Maximum table rows rendered (the full series is always in `--json`).
const MAX_ROWS: usize = 40;

/// One `bench timeline` invocation, fully specified.
#[derive(Debug, Clone)]
pub struct TimelineSettings {
    /// Benchmark to trace.
    pub workload: Workload,
    /// Pollution filter under observation.
    pub filter: FilterKind,
    /// Instructions to run (from a cold machine — no warm-up phase).
    pub insts: u64,
    /// Telemetry sampling interval in cycles.
    pub interval_cycles: u64,
    /// Stream seed.
    pub seed: u64,
    /// Adversarial campaign to interleave into the stream (None = the
    /// plain warm-up trace).
    pub attack: Option<AdversarySpec>,
}

impl Default for TimelineSettings {
    fn default() -> Self {
        TimelineSettings {
            workload: Workload::Em3d,
            filter: FilterKind::Pa,
            insts: 400_000,
            interval_cycles: 5_000,
            seed: 42,
            attack: None,
        }
    }
}

/// Warm-up shape derived from an interval series.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmupAnalysis {
    /// `fraction_good` of the first interval (≈1.0 under weakly-good init).
    pub start_fraction_good: f64,
    /// `fraction_good` of the last interval.
    pub final_fraction_good: f64,
    /// Did the series settle into the ±[`STABLE_EPSILON`] band at all?
    pub converged: bool,
    /// First interval from which every sample stays within the band.
    pub intervals_to_stable: u64,
    /// The same boundary in cycles.
    pub cycles_to_stable: u64,
    /// Interval with the most bad-classified prefetches (the transient
    /// burst the filter exists to suppress).
    pub peak_bad_interval: u64,
    /// Bad prefetches in that peak interval.
    pub peak_bad_count: u64,
    /// Bad prefetches per interval before the stable boundary.
    pub bad_rate_before_stable: f64,
    /// Bad prefetches per interval from the boundary on.
    pub bad_rate_after_stable: f64,
}

json_struct!(WarmupAnalysis {
    start_fraction_good,
    final_fraction_good,
    converged,
    intervals_to_stable,
    cycles_to_stable,
    peak_bad_interval,
    peak_bad_count,
    bad_rate_before_stable,
    bad_rate_after_stable,
});

/// Time-to-recover shape of a run with an adversarial campaign: how far
/// `fraction_good` fell under attack, and how long after attack-off it
/// took to climb back within [`RECOVERY_EPSILON`] of the pre-attack
/// baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryAnalysis {
    /// The campaign, in `kind@start..stop` form.
    pub attack: String,
    /// First attacked instruction (stream index).
    pub attack_start: u64,
    /// First post-attack instruction (stream index).
    pub attack_stop: u64,
    /// Mean `fraction_good` over the intervals fully before the attack
    /// (falls back to the first interval when the attack starts at 0).
    pub baseline_fraction_good: f64,
    /// Mean `fraction_good` over the intervals overlapping the attack.
    pub under_attack_fraction_good: f64,
    /// Lowest `fraction_good` seen from attack-on onwards.
    pub trough_fraction_good: f64,
    /// Did `fraction_good` return within the recovery band post-attack?
    pub recovered: bool,
    /// Post-attack intervals elapsed until recovery (0 = the first
    /// interval after attack-off was already in the band).
    pub intervals_to_recover: u64,
    /// The same span in cycles, measured from the first post-attack
    /// interval's start.
    pub cycles_to_recover: u64,
}

json_struct!(RecoveryAnalysis {
    attack,
    attack_start,
    attack_stop,
    baseline_fraction_good,
    under_attack_fraction_good,
    trough_fraction_good,
    recovered,
    intervals_to_recover,
    cycles_to_recover,
});

/// The full timeline result: the interval series plus its analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineReport {
    /// Benchmark name.
    pub workload: String,
    /// Filter label ("PA", "PC", ...).
    pub filter: String,
    /// Stream seed.
    pub seed: u64,
    /// Sampling interval in cycles.
    pub interval_cycles: u64,
    /// The interval series, in order.
    pub records: Vec<IntervalRecord>,
    /// Warm-up shape derived from the series.
    pub analysis: WarmupAnalysis,
    /// Time-to-recover shape, present when the run carried an attack.
    pub recovery: Option<RecoveryAnalysis>,
}

json_struct!(TimelineReport {
    workload,
    filter,
    seed,
    interval_cycles,
    records,
    analysis,
    recovery,
});

/// Derive the warm-up shape from an interval series. An empty series — a
/// telemetry JSONL stream with no records — yields a neutral, explicitly
/// non-converged analysis rather than panicking, so downstream rendering
/// stays total.
pub fn analyze(records: &[IntervalRecord]) -> WarmupAnalysis {
    if records.is_empty() {
        return WarmupAnalysis {
            start_fraction_good: 0.0,
            final_fraction_good: 0.0,
            converged: false,
            intervals_to_stable: 0,
            cycles_to_stable: 0,
            peak_bad_interval: 0,
            peak_bad_count: 0,
            bad_rate_before_stable: 0.0,
            bad_rate_after_stable: 0.0,
        };
    }
    let final_fg = records[records.len() - 1].fraction_good;
    // First index from which *every* later sample stays in the band —
    // scanned backwards so a late excursion pushes the boundary out.
    let mut stable_from = records.len() - 1;
    for i in (0..records.len()).rev() {
        if (records[i].fraction_good - final_fg).abs() <= STABLE_EPSILON {
            stable_from = i;
        } else {
            break;
        }
    }
    let converged = (records[stable_from].fraction_good - final_fg).abs() <= STABLE_EPSILON;
    let (peak_idx, peak) = records
        .iter()
        .enumerate()
        .max_by_key(|(_, r)| r.prefetch_bad)
        .expect("nonempty");
    let rate = |slice: &[IntervalRecord]| {
        if slice.is_empty() {
            0.0
        } else {
            slice.iter().map(|r| r.prefetch_bad).sum::<u64>() as f64 / slice.len() as f64
        }
    };
    WarmupAnalysis {
        start_fraction_good: records[0].fraction_good,
        final_fraction_good: final_fg,
        converged,
        intervals_to_stable: records[stable_from].interval,
        cycles_to_stable: records[stable_from].start_cycle,
        peak_bad_interval: records[peak_idx].interval,
        peak_bad_count: peak.prefetch_bad,
        bad_rate_before_stable: rate(&records[..stable_from]),
        bad_rate_after_stable: rate(&records[stable_from..]),
    }
}

/// Derive the time-to-recover shape of an attacked run. Intervals are
/// mapped onto the attack window by cumulative retired instructions:
/// "baseline" intervals end before the attack starts, "under attack"
/// intervals overlap the window, and recovery is scanned over the
/// intervals starting at or after attack-off. An empty series or a
/// window past the end of the run yields an explicitly non-recovered
/// analysis rather than panicking.
pub fn analyze_recovery(records: &[IntervalRecord], attack: &AdversarySpec) -> RecoveryAnalysis {
    let mut neutral = RecoveryAnalysis {
        attack: attack.describe(),
        attack_start: attack.start,
        attack_stop: attack.stop,
        baseline_fraction_good: 0.0,
        under_attack_fraction_good: 0.0,
        trough_fraction_good: 0.0,
        recovered: false,
        intervals_to_recover: 0,
        cycles_to_recover: 0,
    };
    if records.is_empty() {
        return neutral;
    }
    // Cumulative retired instructions at each interval boundary: interval
    // i covers (cum[i], cum[i + 1]] in stream index terms.
    let mut cum = 0u64;
    let mut baseline = Vec::new();
    let mut under = Vec::new();
    let mut first_post: Option<usize> = None;
    for (i, r) in records.iter().enumerate() {
        let (lo, hi) = (cum, cum + r.instructions);
        cum = hi;
        if hi <= attack.start {
            baseline.push(r.fraction_good);
        } else if lo < attack.stop {
            under.push(r.fraction_good);
        } else if first_post.is_none() {
            first_post = Some(i);
        }
    }
    let fg_mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    // An attack opening at instruction 0 has no clean intervals; the
    // filter's weakly-good start (the first sample) is then the fairest
    // "what it should get back to" reference.
    neutral.baseline_fraction_good = if baseline.is_empty() {
        records[0].fraction_good
    } else {
        fg_mean(&baseline)
    };
    neutral.under_attack_fraction_good = fg_mean(&under);
    neutral.trough_fraction_good = records[baseline.len()..]
        .iter()
        .map(|r| r.fraction_good)
        .fold(f64::INFINITY, f64::min)
        .min(records[records.len() - 1].fraction_good);
    let Some(post) = first_post else {
        return neutral; // attack window runs past the end of the series
    };
    let off_cycle = records[post].start_cycle;
    for (k, r) in records[post..].iter().enumerate() {
        if r.fraction_good >= neutral.baseline_fraction_good - RECOVERY_EPSILON {
            neutral.recovered = true;
            neutral.intervals_to_recover = k as u64;
            neutral.cycles_to_recover = r.end_cycle - off_cycle;
            break;
        }
    }
    neutral
}

/// Run the instrumented cell and build the report.
pub fn run(settings: &TimelineSettings) -> Result<TimelineReport, PpfError> {
    let cfg = SystemConfig::paper_default().with_filter(settings.filter);
    let stream: Box<dyn InstStream> = match settings.attack {
        Some(attack) => Box::new(AdversaryStream::new(
            attack,
            settings.workload,
            settings.seed,
        )),
        None => Box::new(settings.workload.stream(settings.seed)),
    };
    let mut sim = Simulator::with_seed(cfg, stream, settings.seed)?
        .labeled(
            format!("timeline-{}", settings.filter.label()),
            settings.workload.name(),
        )
        .with_telemetry(&TelemetryConfig::every(settings.interval_cycles))?;
    // Deliberately no warm-up: interval 0 starts at the cold machine, so
    // the filter's weakly-good transient is on the curve.
    sim.run_checked(settings.insts)?;
    let records = sim.take_telemetry_records();
    if records.is_empty() {
        return Err(PpfError::config_invalid(format!(
            "run too short for interval telemetry: no interval of {} cycles \
             completed — lower --interval or raise --insts",
            settings.interval_cycles
        )));
    }
    let analysis = analyze(&records);
    let recovery = settings
        .attack
        .as_ref()
        .map(|a| analyze_recovery(&records, a));
    Ok(TimelineReport {
        workload: settings.workload.name().to_string(),
        filter: settings.filter.label().to_string(),
        seed: settings.seed,
        interval_cycles: settings.interval_cycles,
        records,
        analysis,
        recovery,
    })
}

/// Render the timeline as an aligned text table plus a warm-up summary.
/// Long series are downsampled to ~[`MAX_ROWS`] rows; `--json` always
/// carries every record.
pub fn render(report: &TimelineReport) -> String {
    let mut out = format!(
        "== timeline: {} / {} filter, {} cycles per interval, seed {} ==\n",
        report.workload, report.filter, report.interval_cycles, report.seed
    );
    let mut t = TextTable::new(vec![
        "interval",
        "cycles",
        "IPC",
        "L1 miss",
        "issued",
        "filtered",
        "good",
        "bad",
        "frac-good",
        "bus",
    ]);
    let step = report.records.len().div_ceil(MAX_ROWS);
    for r in report.records.iter().step_by(step.max(1)) {
        t.row(vec![
            r.interval.to_string(),
            format!("{}..{}", r.start_cycle, r.end_cycle),
            f3(r.ipc),
            f3(r.l1_miss_rate),
            r.prefetch_issued.total().to_string(),
            r.prefetch_filtered.total().to_string(),
            r.prefetch_good.to_string(),
            r.prefetch_bad.to_string(),
            f3(r.fraction_good),
            f3(r.bus_occupancy),
        ]);
    }
    out.push_str(&t.render());
    if step > 1 {
        out.push_str(&format!(
            "({} of {} intervals shown; --json carries all)\n",
            report.records.len().div_ceil(step),
            report.records.len()
        ));
    }
    let a = &report.analysis;
    out.push_str(&format!(
        "warm-up: fraction_good {} -> {} ({})\n",
        f3(a.start_fraction_good),
        f3(a.final_fraction_good),
        if a.converged {
            format!(
                "stable within ±{STABLE_EPSILON} from interval {} (cycle {})",
                a.intervals_to_stable, a.cycles_to_stable
            )
        } else {
            "not yet stable — raise --insts".to_string()
        },
    ));
    out.push_str(&format!(
        "bad-prefetch burst: peak {} in interval {}; {} bad/interval before \
         stability vs {} after\n",
        a.peak_bad_count,
        a.peak_bad_interval,
        f3(a.bad_rate_before_stable),
        f3(a.bad_rate_after_stable),
    ));
    if let Some(r) = &report.recovery {
        out.push_str(&format!(
            "attack {}: fraction_good baseline {} -> under attack {} (trough {})\n",
            r.attack,
            f3(r.baseline_fraction_good),
            f3(r.under_attack_fraction_good),
            f3(r.trough_fraction_good),
        ));
        out.push_str(&if r.recovered {
            format!(
                "recovery: within ±{RECOVERY_EPSILON} of baseline {} intervals \
                 ({} cycles) after attack-off\n",
                r.intervals_to_recover, r.cycles_to_recover
            )
        } else {
            "recovery: NOT recovered by end of run — raise --insts or widen \
             the post-attack window\n"
                .to_string()
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppf_types::json::{FromJson, ToJson};
    use ppf_types::stats::PerSource;

    fn rec(interval: u64, fraction_good: f64, bad: u64) -> IntervalRecord {
        IntervalRecord {
            interval,
            start_cycle: interval * 100,
            end_cycle: (interval + 1) * 100,
            instructions: 120,
            ipc: 1.2,
            l1_miss_rate: 0.1,
            prefetch_issued: PerSource::default(),
            prefetch_filtered: PerSource::default(),
            prefetch_dropped: PerSource::default(),
            prefetch_good: 5,
            prefetch_bad: bad,
            fraction_good,
            bus_occupancy: 0.3,
            mshr_live: 1,
            queue_backlog: 0,
        }
    }

    #[test]
    fn analyze_finds_convergence_boundary() {
        let records = vec![
            rec(0, 1.0, 40),
            rec(1, 0.9, 30),
            rec(2, 0.8, 10),
            rec(3, 0.79, 2),
            rec(4, 0.80, 1),
        ];
        let a = analyze(&records);
        assert_eq!(a.start_fraction_good, 1.0);
        assert_eq!(a.final_fraction_good, 0.80);
        assert!(a.converged);
        assert_eq!(a.intervals_to_stable, 2);
        assert_eq!(a.cycles_to_stable, 200);
        assert_eq!(a.peak_bad_interval, 0);
        assert_eq!(a.peak_bad_count, 40);
        assert!(a.bad_rate_before_stable > a.bad_rate_after_stable);
    }

    #[test]
    fn analyze_flat_series_is_stable_from_the_start() {
        let records = vec![rec(0, 0.9, 3), rec(1, 0.9, 3), rec(2, 0.9, 3)];
        let a = analyze(&records);
        assert!(a.converged);
        assert_eq!(a.intervals_to_stable, 0);
        assert_eq!(a.bad_rate_before_stable, 0.0);
    }

    /// A synthetic attacked series: each interval retires 100 instructions.
    fn fg_series(fgs: &[f64]) -> Vec<IntervalRecord> {
        fgs.iter()
            .enumerate()
            .map(|(i, &fg)| {
                let mut r = rec(i as u64, fg, 1);
                r.instructions = 100;
                r
            })
            .collect()
    }

    #[test]
    fn analyze_recovery_maps_intervals_onto_the_window() {
        use ppf_workloads::AttackKind;
        // Intervals 0..3 clean (fg 0.9), 3..6 attacked (fg 0.5), then the
        // post-attack climb back toward baseline.
        let records = fg_series(&[0.9, 0.9, 0.9, 0.5, 0.5, 0.5, 0.6, 0.8, 0.88, 0.9]);
        let spec = AdversarySpec::window(AttackKind::Poison, 300, 600);
        let r = analyze_recovery(&records, &spec);
        assert_eq!(r.attack_start, 300);
        assert_eq!(r.attack_stop, 600);
        assert!((r.baseline_fraction_good - 0.9).abs() < 1e-12);
        assert!((r.under_attack_fraction_good - 0.5).abs() < 1e-12);
        assert!((r.trough_fraction_good - 0.5).abs() < 1e-12);
        assert!(r.recovered);
        // 0.6 and 0.8 miss the 0.9 - 0.05 band; 0.88 is the first hit,
        // two intervals after attack-off.
        assert_eq!(r.intervals_to_recover, 2);
        assert_eq!(
            r.cycles_to_recover,
            records[8].end_cycle - records[6].start_cycle
        );
    }

    #[test]
    fn analyze_recovery_flags_an_unrecovered_series() {
        use ppf_workloads::AttackKind;
        let records = fg_series(&[0.9, 0.9, 0.5, 0.5, 0.6, 0.6]);
        let spec = AdversarySpec::window(AttackKind::AliasFlood, 200, 400);
        let r = analyze_recovery(&records, &spec);
        assert!(!r.recovered, "0.6 never reaches 0.9 - 0.05");
        assert_eq!(r.intervals_to_recover, 0);
    }

    #[test]
    fn analyze_recovery_with_window_past_the_end_is_neutral() {
        use ppf_workloads::AttackKind;
        let records = fg_series(&[0.9, 0.9]);
        let spec = AdversarySpec::window(AttackKind::PhaseShift, 100, 10_000);
        let r = analyze_recovery(&records, &spec);
        assert!(!r.recovered, "no post-attack interval to recover in");
    }

    #[test]
    fn attacked_timeline_carries_a_recovery_analysis() {
        use ppf_workloads::AttackKind;
        let settings = TimelineSettings {
            insts: 120_000,
            attack: Some(AdversarySpec::window(AttackKind::Poison, 20_000, 60_000)),
            ..TimelineSettings::default()
        };
        let a = run(&settings).expect("attacked timeline runs");
        let b = run(&settings).expect("attacked timeline runs");
        assert_eq!(a, b, "pinned seed => identical attacked series");
        let rec = a.recovery.as_ref().expect("attack => recovery analysis");
        assert_eq!(rec.attack, "poison@20000..60000");
        let text = render(&a);
        assert!(text.contains("attack poison@20000..60000"), "{text}");
        assert!(text.contains("recovery:"), "{text}");
    }

    #[test]
    fn timeline_run_is_deterministic_and_shows_warmup() {
        let settings = TimelineSettings::default();
        let a = run(&settings).expect("timeline runs");
        let b = run(&settings).expect("timeline runs");
        assert_eq!(a, b, "pinned seed => identical series");
        assert!(!a.records.is_empty());
        // The weakly-good init: the curve starts at (or near) 1.0 and
        // decays as bad prefetches train the history table.
        assert!(a.analysis.start_fraction_good > 0.99);
        assert!(a.analysis.final_fraction_good < a.analysis.start_fraction_good);
    }

    #[test]
    fn timeline_report_json_round_trips() {
        let settings = TimelineSettings {
            insts: 60_000,
            ..TimelineSettings::default()
        };
        let report = run(&settings).expect("timeline runs");
        let back = TimelineReport::from_json_str(&report.to_json_string()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn too_short_run_is_a_structured_error() {
        let settings = TimelineSettings {
            insts: 10,
            interval_cycles: 1_000_000,
            ..TimelineSettings::default()
        };
        let err = run(&settings).unwrap_err();
        assert!(err.message.contains("no interval"), "{err}");
    }

    fn report_of(records: Vec<IntervalRecord>) -> TimelineReport {
        TimelineReport {
            workload: "em3d".to_string(),
            filter: "PA".to_string(),
            seed: 42,
            interval_cycles: 100,
            analysis: analyze(&records),
            records,
            recovery: None,
        }
    }

    #[test]
    fn empty_series_analyzes_neutral_and_renders() {
        // An empty telemetry JSONL stream must not panic anywhere in the
        // analyze/render pipeline.
        let a = analyze(&[]);
        assert!(!a.converged, "nothing observed is not convergence");
        assert_eq!(a.peak_bad_count, 0);
        let text = render(&report_of(Vec::new()));
        assert!(text.contains("== timeline:"), "{text}");
        assert!(text.contains("not yet stable"), "{text}");
        assert!(!text.contains("intervals shown"), "no downsampling note");
    }

    #[test]
    fn single_interval_renders_stable_table() {
        let text = render(&report_of(vec![rec(0, 0.95, 7)]));
        // The one record is its own final value: trivially converged, and
        // the row must actually appear in the table.
        assert!(text.contains("stable within"), "{text}");
        assert!(text.contains("0..100"), "{text}");
        assert!(!text.contains("intervals shown"), "no downsampling note");
    }

    #[test]
    fn series_below_downsample_width_keeps_every_row() {
        let n = MAX_ROWS - 1;
        let records: Vec<IntervalRecord> = (0..n as u64).map(|i| rec(i, 0.9, 1)).collect();
        let text = render(&report_of(records));
        for i in 0..n as u64 {
            assert!(
                text.contains(&format!("{}..{}", i * 100, (i + 1) * 100)),
                "interval {i} missing from an un-downsampled table"
            );
        }
        assert!(!text.contains("intervals shown"), "no downsampling note");
    }

    #[test]
    fn render_downsamples_long_series() {
        let records: Vec<IntervalRecord> = (0..200).map(|i| rec(i, 0.9, 1)).collect();
        let report = TimelineReport {
            workload: "em3d".to_string(),
            filter: "PA".to_string(),
            seed: 42,
            interval_cycles: 100,
            analysis: analyze(&records),
            records,
            recovery: None,
        };
        let text = render(&report);
        assert!(text.lines().count() < 60, "downsampled: {}", text.len());
        assert!(text.contains("intervals shown"));
        assert!(text.contains("warm-up: fraction_good"));
    }
}
