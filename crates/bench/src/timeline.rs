//! `bench timeline` — render a filter warm-up curve from interval telemetry.
//!
//! End-of-run tables answer "how good is the trained filter"; this module
//! answers "how fast does it get there". It runs one instrumented cell with
//! **no warm-up** (the transient is the whole point), collects the interval
//! records, and derives a [`WarmupAnalysis`]: where `fraction_good` leaves
//! its weakly-good 1.0 init, when it stabilizes, and how large the
//! bad-prefetch burst is before the history table converges — the §4
//! training dynamics the paper describes but never plots.

use ppf_sim::Simulator;
use ppf_types::json_struct;
use ppf_types::telemetry::{IntervalRecord, TelemetryConfig};
use ppf_types::{FilterKind, PpfError, SystemConfig};
use ppf_workloads::Workload;

use ppf_sim::report::{f3, TextTable};

/// Convergence band: `fraction_good` counts as stable once every later
/// sample stays within this distance of the final value.
pub const STABLE_EPSILON: f64 = 0.02;

/// Maximum table rows rendered (the full series is always in `--json`).
const MAX_ROWS: usize = 40;

/// One `bench timeline` invocation, fully specified.
#[derive(Debug, Clone)]
pub struct TimelineSettings {
    /// Benchmark to trace.
    pub workload: Workload,
    /// Pollution filter under observation.
    pub filter: FilterKind,
    /// Instructions to run (from a cold machine — no warm-up phase).
    pub insts: u64,
    /// Telemetry sampling interval in cycles.
    pub interval_cycles: u64,
    /// Stream seed.
    pub seed: u64,
}

impl Default for TimelineSettings {
    fn default() -> Self {
        TimelineSettings {
            workload: Workload::Em3d,
            filter: FilterKind::Pa,
            insts: 400_000,
            interval_cycles: 5_000,
            seed: 42,
        }
    }
}

/// Warm-up shape derived from an interval series.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmupAnalysis {
    /// `fraction_good` of the first interval (≈1.0 under weakly-good init).
    pub start_fraction_good: f64,
    /// `fraction_good` of the last interval.
    pub final_fraction_good: f64,
    /// Did the series settle into the ±[`STABLE_EPSILON`] band at all?
    pub converged: bool,
    /// First interval from which every sample stays within the band.
    pub intervals_to_stable: u64,
    /// The same boundary in cycles.
    pub cycles_to_stable: u64,
    /// Interval with the most bad-classified prefetches (the transient
    /// burst the filter exists to suppress).
    pub peak_bad_interval: u64,
    /// Bad prefetches in that peak interval.
    pub peak_bad_count: u64,
    /// Bad prefetches per interval before the stable boundary.
    pub bad_rate_before_stable: f64,
    /// Bad prefetches per interval from the boundary on.
    pub bad_rate_after_stable: f64,
}

json_struct!(WarmupAnalysis {
    start_fraction_good,
    final_fraction_good,
    converged,
    intervals_to_stable,
    cycles_to_stable,
    peak_bad_interval,
    peak_bad_count,
    bad_rate_before_stable,
    bad_rate_after_stable,
});

/// The full timeline result: the interval series plus its analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineReport {
    /// Benchmark name.
    pub workload: String,
    /// Filter label ("PA", "PC", ...).
    pub filter: String,
    /// Stream seed.
    pub seed: u64,
    /// Sampling interval in cycles.
    pub interval_cycles: u64,
    /// The interval series, in order.
    pub records: Vec<IntervalRecord>,
    /// Warm-up shape derived from the series.
    pub analysis: WarmupAnalysis,
}

json_struct!(TimelineReport {
    workload,
    filter,
    seed,
    interval_cycles,
    records,
    analysis,
});

/// Derive the warm-up shape from an interval series. An empty series — a
/// telemetry JSONL stream with no records — yields a neutral, explicitly
/// non-converged analysis rather than panicking, so downstream rendering
/// stays total.
pub fn analyze(records: &[IntervalRecord]) -> WarmupAnalysis {
    if records.is_empty() {
        return WarmupAnalysis {
            start_fraction_good: 0.0,
            final_fraction_good: 0.0,
            converged: false,
            intervals_to_stable: 0,
            cycles_to_stable: 0,
            peak_bad_interval: 0,
            peak_bad_count: 0,
            bad_rate_before_stable: 0.0,
            bad_rate_after_stable: 0.0,
        };
    }
    let final_fg = records[records.len() - 1].fraction_good;
    // First index from which *every* later sample stays in the band —
    // scanned backwards so a late excursion pushes the boundary out.
    let mut stable_from = records.len() - 1;
    for i in (0..records.len()).rev() {
        if (records[i].fraction_good - final_fg).abs() <= STABLE_EPSILON {
            stable_from = i;
        } else {
            break;
        }
    }
    let converged = (records[stable_from].fraction_good - final_fg).abs() <= STABLE_EPSILON;
    let (peak_idx, peak) = records
        .iter()
        .enumerate()
        .max_by_key(|(_, r)| r.prefetch_bad)
        .expect("nonempty");
    let rate = |slice: &[IntervalRecord]| {
        if slice.is_empty() {
            0.0
        } else {
            slice.iter().map(|r| r.prefetch_bad).sum::<u64>() as f64 / slice.len() as f64
        }
    };
    WarmupAnalysis {
        start_fraction_good: records[0].fraction_good,
        final_fraction_good: final_fg,
        converged,
        intervals_to_stable: records[stable_from].interval,
        cycles_to_stable: records[stable_from].start_cycle,
        peak_bad_interval: records[peak_idx].interval,
        peak_bad_count: peak.prefetch_bad,
        bad_rate_before_stable: rate(&records[..stable_from]),
        bad_rate_after_stable: rate(&records[stable_from..]),
    }
}

/// Run the instrumented cell and build the report.
pub fn run(settings: &TimelineSettings) -> Result<TimelineReport, PpfError> {
    let cfg = SystemConfig::paper_default().with_filter(settings.filter);
    let mut sim = Simulator::with_seed(
        cfg,
        Box::new(settings.workload.stream(settings.seed)),
        settings.seed,
    )?
    .labeled(
        format!("timeline-{}", settings.filter.label()),
        settings.workload.name(),
    )
    .with_telemetry(&TelemetryConfig::every(settings.interval_cycles))?;
    // Deliberately no warm-up: interval 0 starts at the cold machine, so
    // the filter's weakly-good transient is on the curve.
    sim.run_checked(settings.insts)?;
    let records = sim.take_telemetry_records();
    if records.is_empty() {
        return Err(PpfError::config_invalid(format!(
            "run too short for interval telemetry: no interval of {} cycles \
             completed — lower --interval or raise --insts",
            settings.interval_cycles
        )));
    }
    let analysis = analyze(&records);
    Ok(TimelineReport {
        workload: settings.workload.name().to_string(),
        filter: settings.filter.label().to_string(),
        seed: settings.seed,
        interval_cycles: settings.interval_cycles,
        records,
        analysis,
    })
}

/// Render the timeline as an aligned text table plus a warm-up summary.
/// Long series are downsampled to ~[`MAX_ROWS`] rows; `--json` always
/// carries every record.
pub fn render(report: &TimelineReport) -> String {
    let mut out = format!(
        "== timeline: {} / {} filter, {} cycles per interval, seed {} ==\n",
        report.workload, report.filter, report.interval_cycles, report.seed
    );
    let mut t = TextTable::new(vec![
        "interval",
        "cycles",
        "IPC",
        "L1 miss",
        "issued",
        "filtered",
        "good",
        "bad",
        "frac-good",
        "bus",
    ]);
    let step = report.records.len().div_ceil(MAX_ROWS);
    for r in report.records.iter().step_by(step.max(1)) {
        t.row(vec![
            r.interval.to_string(),
            format!("{}..{}", r.start_cycle, r.end_cycle),
            f3(r.ipc),
            f3(r.l1_miss_rate),
            r.prefetch_issued.total().to_string(),
            r.prefetch_filtered.total().to_string(),
            r.prefetch_good.to_string(),
            r.prefetch_bad.to_string(),
            f3(r.fraction_good),
            f3(r.bus_occupancy),
        ]);
    }
    out.push_str(&t.render());
    if step > 1 {
        out.push_str(&format!(
            "({} of {} intervals shown; --json carries all)\n",
            report.records.len().div_ceil(step),
            report.records.len()
        ));
    }
    let a = &report.analysis;
    out.push_str(&format!(
        "warm-up: fraction_good {} -> {} ({})\n",
        f3(a.start_fraction_good),
        f3(a.final_fraction_good),
        if a.converged {
            format!(
                "stable within ±{STABLE_EPSILON} from interval {} (cycle {})",
                a.intervals_to_stable, a.cycles_to_stable
            )
        } else {
            "not yet stable — raise --insts".to_string()
        },
    ));
    out.push_str(&format!(
        "bad-prefetch burst: peak {} in interval {}; {} bad/interval before \
         stability vs {} after\n",
        a.peak_bad_count,
        a.peak_bad_interval,
        f3(a.bad_rate_before_stable),
        f3(a.bad_rate_after_stable),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppf_types::json::{FromJson, ToJson};
    use ppf_types::stats::PerSource;

    fn rec(interval: u64, fraction_good: f64, bad: u64) -> IntervalRecord {
        IntervalRecord {
            interval,
            start_cycle: interval * 100,
            end_cycle: (interval + 1) * 100,
            instructions: 120,
            ipc: 1.2,
            l1_miss_rate: 0.1,
            prefetch_issued: PerSource::default(),
            prefetch_filtered: PerSource::default(),
            prefetch_dropped: PerSource::default(),
            prefetch_good: 5,
            prefetch_bad: bad,
            fraction_good,
            bus_occupancy: 0.3,
            mshr_live: 1,
            queue_backlog: 0,
        }
    }

    #[test]
    fn analyze_finds_convergence_boundary() {
        let records = vec![
            rec(0, 1.0, 40),
            rec(1, 0.9, 30),
            rec(2, 0.8, 10),
            rec(3, 0.79, 2),
            rec(4, 0.80, 1),
        ];
        let a = analyze(&records);
        assert_eq!(a.start_fraction_good, 1.0);
        assert_eq!(a.final_fraction_good, 0.80);
        assert!(a.converged);
        assert_eq!(a.intervals_to_stable, 2);
        assert_eq!(a.cycles_to_stable, 200);
        assert_eq!(a.peak_bad_interval, 0);
        assert_eq!(a.peak_bad_count, 40);
        assert!(a.bad_rate_before_stable > a.bad_rate_after_stable);
    }

    #[test]
    fn analyze_flat_series_is_stable_from_the_start() {
        let records = vec![rec(0, 0.9, 3), rec(1, 0.9, 3), rec(2, 0.9, 3)];
        let a = analyze(&records);
        assert!(a.converged);
        assert_eq!(a.intervals_to_stable, 0);
        assert_eq!(a.bad_rate_before_stable, 0.0);
    }

    #[test]
    fn timeline_run_is_deterministic_and_shows_warmup() {
        let settings = TimelineSettings::default();
        let a = run(&settings).expect("timeline runs");
        let b = run(&settings).expect("timeline runs");
        assert_eq!(a, b, "pinned seed => identical series");
        assert!(!a.records.is_empty());
        // The weakly-good init: the curve starts at (or near) 1.0 and
        // decays as bad prefetches train the history table.
        assert!(a.analysis.start_fraction_good > 0.99);
        assert!(a.analysis.final_fraction_good < a.analysis.start_fraction_good);
    }

    #[test]
    fn timeline_report_json_round_trips() {
        let settings = TimelineSettings {
            insts: 60_000,
            ..TimelineSettings::default()
        };
        let report = run(&settings).expect("timeline runs");
        let back = TimelineReport::from_json_str(&report.to_json_string()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn too_short_run_is_a_structured_error() {
        let settings = TimelineSettings {
            insts: 10,
            interval_cycles: 1_000_000,
            ..TimelineSettings::default()
        };
        let err = run(&settings).unwrap_err();
        assert!(err.message.contains("no interval"), "{err}");
    }

    fn report_of(records: Vec<IntervalRecord>) -> TimelineReport {
        TimelineReport {
            workload: "em3d".to_string(),
            filter: "PA".to_string(),
            seed: 42,
            interval_cycles: 100,
            analysis: analyze(&records),
            records,
        }
    }

    #[test]
    fn empty_series_analyzes_neutral_and_renders() {
        // An empty telemetry JSONL stream must not panic anywhere in the
        // analyze/render pipeline.
        let a = analyze(&[]);
        assert!(!a.converged, "nothing observed is not convergence");
        assert_eq!(a.peak_bad_count, 0);
        let text = render(&report_of(Vec::new()));
        assert!(text.contains("== timeline:"), "{text}");
        assert!(text.contains("not yet stable"), "{text}");
        assert!(!text.contains("intervals shown"), "no downsampling note");
    }

    #[test]
    fn single_interval_renders_stable_table() {
        let text = render(&report_of(vec![rec(0, 0.95, 7)]));
        // The one record is its own final value: trivially converged, and
        // the row must actually appear in the table.
        assert!(text.contains("stable within"), "{text}");
        assert!(text.contains("0..100"), "{text}");
        assert!(!text.contains("intervals shown"), "no downsampling note");
    }

    #[test]
    fn series_below_downsample_width_keeps_every_row() {
        let n = MAX_ROWS - 1;
        let records: Vec<IntervalRecord> = (0..n as u64).map(|i| rec(i, 0.9, 1)).collect();
        let text = render(&report_of(records));
        for i in 0..n as u64 {
            assert!(
                text.contains(&format!("{}..{}", i * 100, (i + 1) * 100)),
                "interval {i} missing from an un-downsampled table"
            );
        }
        assert!(!text.contains("intervals shown"), "no downsampling note");
    }

    #[test]
    fn render_downsamples_long_series() {
        let records: Vec<IntervalRecord> = (0..200).map(|i| rec(i, 0.9, 1)).collect();
        let report = TimelineReport {
            workload: "em3d".to_string(),
            filter: "PA".to_string(),
            seed: 42,
            interval_cycles: 100,
            analysis: analyze(&records),
            records,
        };
        let text = render(&report);
        assert!(text.lines().count() < 60, "downsampled: {}", text.len());
        assert!(text.contains("intervals shown"));
        assert!(text.contains("warm-up: fraction_good"));
    }
}
